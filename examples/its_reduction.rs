//! The paper's Figure 2/8 scenario: a warp-level reduction tail that
//! relied on pre-Volta lockstep execution. Under Independent Thread
//! Scheduling the missing `__syncwarp()` is a race — this example shows
//! (a) the wrong *values* the race can produce under ITS schedules,
//! (b) lockstep mode masking the bug, and (c) iGUARD catching it on every
//! schedule, fixed or not manifested.
//!
//! ```text
//! cargo run --release --example its_reduction [-- --seed S]
//! ```
//!
//! `--seed S` shifts the 24-schedule ITS sweep to seeds `S..S+24`
//! (default 0), for poking at other regions of the schedule space.

use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::{Iguard, RaceKind};
use iguard_repro::nvbit_sim::Instrumented;

/// The reduction tail: lane 1 folds sdata[3] into sdata[1]; lane 0 then
/// folds sdata[1] into sdata[0]. Correct only if the two steps are ordered.
fn reduction_tail(with_syncwarp: bool) -> Kernel {
    let mut b = KernelBuilder::new(if with_syncwarp {
        "tail_fixed"
    } else {
        "tail_racy"
    });
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    // if (tid < 2) sdata[tid] += sdata[tid + 2];
    let lt2 = b.lt(tid, 2u32);
    let after1 = b.fwd_label();
    b.bra_ifnot(lt2, after1);
    let off = b.mul(tid, 4u32);
    let mya = b.add(base, off);
    let mine = b.ld(mya, 0);
    let other = b.ld(mya, 2);
    let s = b.add(mine, other);
    b.loc("sdata[tid] = mySum + sdata[tid + 2]   // Figure 8 line 5");
    b.st(mya, 0, s);
    b.bind(after1);
    if with_syncwarp {
        b.loc("__syncwarp()   // Figure 8 line 6 (the fix)");
        b.syncwarp();
    }
    // if (tid == 0) sdata[0] += sdata[1];
    let is0 = b.eq(tid, 0u32);
    let after2 = b.fwd_label();
    b.bra_ifnot(is0, after2);
    let v0 = b.ld(base, 0);
    let v1 = b.ld(base, 1);
    let s = b.add(v0, v1);
    b.loc("sdata[tid] = mySum + sdata[tid + 1]   // Figure 8 line 8");
    b.st(base, 0, s);
    b.bind(after2);
    b.build()
}

fn run_once(kernel: &Kernel, mode: ExecMode, seed: u64) -> (u32, usize) {
    // Crank up ITS schedule fuzzing so the reordering actually manifests
    // within a few dozen seeds (detection does not depend on this).
    let cfg = GpuConfig {
        mode,
        seed,
        its_split_prob: 0.3,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let buf = gpu.alloc(4).expect("alloc");
    gpu.write_slice(buf, &[1, 2, 3, 4]); // correct total: 10
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(kernel, 1, 32, &[buf], &mut tool)
        .expect("launch");
    let its_races = tool
        .tool_mut()
        .races()
        .iter()
        .filter(|r| r.kind == RaceKind::IntraWarp)
        .count();
    (gpu.read(buf, 0), its_races)
}

/// Parses `--seed S` from the process arguments (default `default`).
fn seed_arg(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--seed" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("--seed requires a value");
                std::process::exit(2);
            });
            return v.parse().unwrap_or_else(|_| {
                eprintln!("--seed expects a number, got `{v}`");
                std::process::exit(2);
            });
        }
    }
    default
}

fn main() {
    let base = seed_arg(0);
    let racy = reduction_tail(false);
    let fixed = reduction_tail(true);

    println!("input [1,2,3,4]; correct reduction = 10 (seeds {base}..{})\n", base + 24);

    println!("pre-Volta lockstep (the bug hides):");
    let (sum, _) = run_once(&racy, ExecMode::Lockstep, base.wrapping_add(1));
    println!("  racy kernel  -> sum = {sum}");

    println!("\nVolta+ ITS across schedules:");
    let mut wrong = 0;
    for seed in base..base + 24 {
        let (sum, races) = run_once(&racy, ExecMode::Its, seed);
        if sum != 10 {
            wrong += 1;
        }
        assert!(
            races > 0,
            "iGUARD must flag the race on every schedule (seed {seed})"
        );
    }
    println!("  racy kernel  -> wrong result on {wrong}/24 schedules; iGUARD flags ALL 24");

    let mut all_right = true;
    for seed in base..base + 24 {
        let (sum, races) = run_once(&fixed, ExecMode::Its, seed);
        all_right &= sum == 10;
        assert_eq!(races, 0, "fixed kernel must be clean (seed {seed})");
    }
    println!("  fixed kernel -> correct on all schedules ({all_right}); iGUARD reports nothing");
    println!("\nthe detector is order-insensitive: it catches the race even on");
    println!("schedules where the values happen to come out right.");
}
