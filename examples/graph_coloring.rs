//! The paper's Figure 1 scenario: graph-coloring work stealing where the
//! partition head is updated with a *block-scope* atomic. The moment one
//! block steals from another with a device-scope atomic, the two scopes
//! fail to synchronize and updates are lost — iGUARD classifies it as an
//! insufficient-atomic-scope (AS) race at the steal site.
//!
//! ```text
//! cargo run --release --example graph_coloring
//! ```

use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::{Iguard, RaceKind};
use iguard_repro::nvbit_sim::Instrumented;

/// getWork() from Figure 1: `own_scope` is the scope of the owner's
/// atomicAdd on its own partition head. The paper's bug is `Scope::Block`.
fn get_work_kernel(own_scope: Scope) -> Kernel {
    let name = if own_scope == Scope::Block {
        "getWork_block_scope"
    } else {
        "getWork_dev_scope"
    };
    let mut b = KernelBuilder::new(name);
    let pnext = b.param(0); // nextHead[] per block
    let pend = b.param(1); // partitionEnd[] per block
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let gd = b.special(Special::GridDim);
    let is0 = b.eq(tid, 0u32);
    let done = b.fwd_label();
    b.bra_ifnot(is0, done);
    // Several coloring iterations so partitions exhaust and stealing kicks in.
    let iter = b.imm(0);
    let top = b.here();
    let iters_done = b.ge(iter, 4u32);
    b.bra_if(iters_done, done);
    // currHead = atomicAdd_block(&nextHead[blockId], NTHREADS)  (lines 5-7)
    let off = b.mul(bid, 4u32);
    let my_head = b.add(pnext, off);
    let one = b.imm(1);
    b.loc("atomicAdd_block(&nextHead[blockId], NTHREADS)");
    let curr = b.atom(AtomOp::Add, own_scope, my_head, 0, one);
    // Work left in own partition?  (lines 9-10)
    let end_a = b.add(pend, off);
    let my_end = b.ld(end_a, 0);
    let next_iter = b.fwd_label();
    let has_work = b.lt(curr, my_end);
    b.bra_if(has_work, next_iter);
    // Steal from the victim with a device-scope atomic  (lines 14-16)
    let b1 = b.add(bid, 1u32);
    let victim = b.rem(b1, gd);
    let voff = b.mul(victim, 4u32);
    let vhead = b.add(pnext, voff);
    b.loc("atomicAdd(&nextHead[victimBlock], NTHREADS)   // the racy steal");
    let _ = b.atom(AtomOp::Add, Scope::Device, vhead, 0, one);
    b.bind(next_iter);
    b.assign_add(iter, iter, 1u32);
    b.bra(top);
    b.bind(done);
    b.build()
}

fn run(kernel: &Kernel) -> (Vec<u32>, Vec<String>) {
    let grid = 4u32;
    let mut gpu = Gpu::new(GpuConfig::default());
    let next_head = gpu.alloc(grid as usize).expect("alloc");
    let partition_end = gpu.alloc(grid as usize).expect("alloc");
    for blk in 0..grid as usize {
        gpu.write(partition_end, blk, if blk % 2 == 0 { 1 } else { 4 });
    }
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(kernel, grid, 32, &[next_head, partition_end], &mut tool)
        .expect("launch");
    let heads = gpu.read_slice(next_head, grid as usize);
    let reports = tool
        .tool_mut()
        .races()
        .iter()
        .map(ToString::to_string)
        .collect();
    (heads, reports)
}

fn main() {
    println!("Figure 1: work stealing with an under-scoped partition head\n");

    let (heads, reports) = run(&get_work_kernel(Scope::Block));
    println!("buggy kernel (atomicAdd_block):");
    println!("  final nextHead[] = {heads:?}   <- steals can be lost to block scope");
    for r in &reports {
        println!("  {r}");
    }
    assert!(reports
        .iter()
        .any(|r| r.contains(RaceKind::AtomicScope.code())));

    let (heads, reports) = run(&get_work_kernel(Scope::Device));
    println!("\nfixed kernel (device-scope atomicAdd everywhere):");
    println!("  final nextHead[] = {heads:?}");
    println!("  {} race(s) reported", reports.len());
    assert!(reports.is_empty(), "fixed kernel must be clean");
}
