//! The paper's Figure 9 scenario: lock inference and per-thread locking
//! protocols. CUDA has no lock instruction — iGUARD infers
//! `atomicCAS`+fence as acquire and fence+`atomicExch` as release, and
//! *detects at runtime* whether a warp locks as a unit or per thread.
//! Two threads of one warp holding *different* locks while updating the
//! same word is an improper-locking (IL) race by lockset analysis.
//!
//! ```text
//! cargo run --release --example lock_inference
//! ```

use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::{Iguard, RaceKind};
use iguard_repro::nvbit_sim::Instrumented;

/// Figure 9's `lockingKernel`: lanes 0 and 1 acquire `lock[lockId]` and
/// update the same shared word. `shared_lock` selects lockId = 0 for both
/// (correct) or lockId = tid (the bug: disjoint locksets).
fn locking_kernel(shared_lock: bool) -> Kernel {
    let name = if shared_lock {
        "locking_shared"
    } else {
        "locking_per_thread"
    };
    let mut b = KernelBuilder::new(name);
    let plocks = b.param(0);
    let pdata = b.param(1);
    let tid = b.special(Special::Tid);
    let lt2 = b.lt(tid, 2u32);
    let done = b.fwd_label();
    b.bra_ifnot(lt2, done);
    let lock_idx = if shared_lock { b.imm(0) } else { tid };
    let off = b.mul(lock_idx, 4u32);
    let lock_addr = b.add(plocks, off);
    // while (atomicCAS(&lock[lockId], 0, 1) != 0);  __threadfence();
    b.lock(Scope::Device, lock_addr, 0);
    // data[warpId] += value[threadId];   (Figure 9 line 8)
    let v = b.ld(pdata, 0);
    let v2 = b.add(v, tid);
    let v3 = b.add(v2, 1u32);
    b.loc("data[warpId] += value[threadId]   // Figure 9 line 8");
    b.st(pdata, 0, v3);
    // __threadfence();  atomicExch(&lock[lockId], 0);
    b.unlock(Scope::Device, lock_addr, 0);
    b.bind(done);
    b.build()
}

fn run(kernel: &Kernel, seed: u64) -> Vec<iguard_repro::iguard::RaceRecord> {
    let cfg = GpuConfig {
        seed,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let locks = gpu.alloc(4).expect("alloc");
    let data = gpu.alloc(4).expect("alloc");
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(kernel, 1, 32, &[locks, data], &mut tool)
        .expect("launch");
    tool.tool_mut().races()
}

fn main() {
    println!("Figure 9: inferred locks and the per-thread locking protocol\n");
    println!("note: on pre-Volta lockstep GPUs the per-thread variant would");
    println!("deadlock — it only runs at all because of ITS (Sec 6.6).\n");

    // The racy variant: distinct per-thread locks. The interleaving decides
    // whether the conflict shows up as IL (after the unlock fence) or as an
    // intra-warp conflict (while the lock is still held) — scan schedules.
    let mut il_seen = false;
    for seed in 0..24 {
        let races = run(&locking_kernel(false), seed);
        if races.iter().any(|r| r.kind == RaceKind::Locking) {
            il_seen = true;
            println!("per-thread locks, schedule #{seed}:");
            for r in &races {
                println!("  {r}");
            }
            break;
        }
    }
    assert!(
        il_seen,
        "the disjoint-lockset race must be classified IL on some schedule"
    );

    // The correct variant: both lanes serialize on one lock.
    for seed in 0..24 {
        let races = run(&locking_kernel(true), seed);
        assert!(
            races.is_empty(),
            "shared lock must be race-free (seed {seed})"
        );
    }
    println!("\nshared lock: 24/24 schedules clean —");
    println!("the lockset intersection is non-empty, so no P or R condition fires.");
}
