//! Quickstart: write a tiny racy kernel, run it on the simulated GPU with
//! iGUARD attached, and print the race report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::Iguard;
use iguard_repro::nvbit_sim::Instrumented;

fn main() {
    // __global__ void racy(int* a) {
    //     if (tid == 1) a[1] = 77;       // lane 1 produces
    //     /* missing __syncwarp() */
    //     if (tid == 0) a[0] = a[1];     // lane 0 consumes
    // }
    let mut b = KernelBuilder::new("racy");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    let is1 = b.eq(tid, 1u32);
    let skip = b.fwd_label();
    b.bra_ifnot(is1, skip);
    let v = b.imm(77);
    b.loc("a[1] = 77");
    b.st(base, 1, v);
    b.bind(skip);
    // b.syncwarp();  // <-- uncommenting this line fixes the race
    let is0 = b.eq(tid, 0u32);
    let done = b.fwd_label();
    b.bra_ifnot(is0, done);
    b.loc("a[0] = a[1]");
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(done);
    let kernel = b.build();

    // A simulated Titan RTX with Independent Thread Scheduling.
    let mut gpu = Gpu::new(GpuConfig::default());
    let buf = gpu.alloc(4).expect("alloc");

    // Attach iGUARD through the binary-instrumentation layer — note the
    // kernel is not recompiled or even inspected at source level.
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(&kernel, 1, 32, &[buf], &mut tool)
        .expect("launch");

    let races = tool.tool_mut().races();
    println!("kernel finished; a[0] = {}", gpu.read(buf, 0));
    println!("{} race(s) detected:", races.len());
    for r in &races {
        println!("  {r}");
    }
    assert!(
        races
            .iter()
            .any(|r| r.kind == iguard_repro::iguard::RaceKind::IntraWarp),
        "the missing-__syncwarp ITS race must be caught"
    );
    println!("\n(the fix: insert __syncwarp() between producer and consumer)");
}
