//! The tool zoo: one racy kernel, four detectors — iGUARD, the ScoRD-like
//! scoped-only detector, CURD, and Barracuda — plus the scratchpad
//! extension on a shared-memory bug none of them watch. A live rendition
//! of the paper's Table 1.
//!
//! ```text
//! cargo run --release --example tool_zoo [-- --seed S]
//! ```
//!
//! `--seed S` picks the ITS schedule seed all detectors run under
//! (default: the simulator's default seed). Detection is
//! schedule-insensitive for these bugs, so the verdicts do not move.

use iguard_repro::barracuda::{Barracuda, BinaryKind, Curd};
use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::{Iguard, IguardConfig, ScratchpadGuard};
use iguard_repro::nvbit_sim::Instrumented;

/// A kernel with one bug per race class: a block-scope atomic shared
/// across blocks (AS), a divergent same-warp handoff (ITS), an unbarriered
/// cross-warp store pair (BR) — and a scratchpad handoff missing its
/// barrier, which global-memory detectors rightfully ignore.
fn menagerie() -> Kernel {
    let mut b = KernelBuilder::new("menagerie");
    b.shared(8);
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let base = b.param(0);
    // Per-block words keep the ITS and BR bugs intra-block:
    // its_addr = &base[4 + bid], br_addr = &base[12 + bid].
    let its_idx = b.add(bid, 4u32);
    let its_off = b.mul(its_idx, 4u32);
    let its_addr = b.add(base, its_off);
    let br_idx = b.add(bid, 12u32);
    let br_off = b.mul(br_idx, 4u32);
    let br_addr = b.add(base, br_off);

    // AS: every block's leader, block-scope atomic on a shared counter.
    let is0 = b.eq(tid, 0u32);
    let n1 = b.fwd_label();
    b.bra_ifnot(is0, n1);
    let one = b.imm(1);
    b.loc("AS: atomicAdd_block(counter)");
    let _ = b.atom(AtomOp::Add, Scope::Block, base, 0, one);
    b.bind(n1);

    // ITS: lane 1 stores, lane 0 loads, no __syncwarp.
    let is1 = b.eq(tid, 1u32);
    let n2 = b.fwd_label();
    b.bra_ifnot(is1, n2);
    let v = b.imm(7);
    b.loc("ITS: producer store");
    b.st(its_addr, 0, v);
    b.bind(n2);
    let is0b = b.eq(tid, 0u32);
    let n3 = b.fwd_label();
    b.bra_ifnot(is0b, n3);
    b.loc("ITS: consumer load");
    let _ = b.ld(its_addr, 0);
    b.bind(n3);

    // BR: threads 0 and 40 (different warps) store one word, no barrier.
    let is40 = b.eq(tid, 40u32);
    let hit = b.or(is0b, is40);
    let n4 = b.fwd_label();
    b.bra_ifnot(hit, n4);
    b.loc("BR: unbarriered cross-warp store");
    b.st(br_addr, 0, tid);
    b.bind(n4);

    // Scratchpad: warp-1 thread writes sdata[1], warp-0 thread reads it.
    let is33 = b.eq(tid, 33u32);
    let n5 = b.fwd_label();
    b.bra_ifnot(is33, n5);
    let v = b.imm(5);
    let four = b.imm(4);
    b.loc("scratchpad: unbarriered shared store");
    b.st_shared(four, 0, v);
    b.bind(n5);
    let is2 = b.eq(tid, 2u32);
    let n6 = b.fwd_label();
    b.bra_ifnot(is2, n6);
    let four = b.imm(4);
    b.loc("scratchpad: unbarriered shared load");
    let _ = b.ld_shared(four, 0);
    b.bind(n6);
    b.build()
}

/// Parses `--seed S` from the process arguments.
fn gpu_config() -> GpuConfig {
    let mut cfg = GpuConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--seed" {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("--seed requires a value");
                std::process::exit(2);
            });
            cfg.seed = v.parse().unwrap_or_else(|_| {
                eprintln!("--seed expects a number, got `{v}`");
                std::process::exit(2);
            });
        }
    }
    cfg
}

fn main() {
    let k = menagerie();
    let run = |label: &str, races: usize, note: &str| {
        println!("{label:<24} {races:>2} race(s)   {note}");
    };

    println!("one kernel, every detector (grid 4x64, seed {}):\n", gpu_config().seed);

    // iGUARD.
    let mut gpu = Gpu::new(gpu_config());
    let buf = gpu.alloc(32).unwrap();
    let mut ig = Instrumented::new(Iguard::default());
    gpu.launch(&k, 4, 64, &[buf], &mut ig).unwrap();
    let ig_races = ig.tool_mut().races();
    run("iGUARD", ig_races.len(), "AS + ITS + BR — the full set");
    for r in &ig_races {
        println!("    {r}");
    }

    // ScoRD-like (no ITS).
    let mut gpu = Gpu::new(gpu_config());
    let buf = gpu.alloc(32).unwrap();
    let mut sc = Instrumented::new(Iguard::new(IguardConfig::scord_like()));
    gpu.launch(&k, 4, 64, &[buf], &mut sc).unwrap();
    run(
        "\nScoRD-like (no ITS)",
        sc.tool().unique_races(),
        "misses the intra-warp handoff",
    );

    // CURD / Barracuda: refuse the binary (scoped atomics).
    let refusal = iguard_repro::barracuda::supports(&[&k], BinaryKind::SingleFile).unwrap_err();
    println!(
        "\n{:<24} —          refuses the binary: {refusal}",
        "Barracuda"
    );
    let curd_refusal = Curd::for_kernels(&[&k], BinaryKind::SingleFile, Default::default())
        .err()
        .unwrap();
    println!(
        "{:<24} —          refuses the binary: {curd_refusal}",
        "CURD"
    );
    let _ = Barracuda::default();

    // The scratchpad extension sees the one bug iGUARD scopes out.
    let mut gpu = Gpu::new(gpu_config());
    let buf = gpu.alloc(32).unwrap();
    let mut sp = Instrumented::new(ScratchpadGuard::new());
    gpu.launch(&k, 4, 64, &[buf], &mut sp).unwrap();
    println!(
        "\n{:<24} {:>2} race(s)   the shared-memory bug",
        "ScratchpadGuard (ext.)",
        sp.tool().races().len()
    );
    for r in sp.tool().races() {
        println!(
            "    [{}] {} race on sdata+0x{:x} (block {}){}",
            r.kernel,
            r.kind.code(),
            r.offset,
            r.block,
            r.line
                .as_deref()
                .map(|l| format!("  // {l}"))
                .unwrap_or_default()
        );
    }

    assert!(ig_races.len() >= 3);
    assert!(sc.tool().unique_races() < ig_races.len());
    assert_eq!(sp.tool().races().len(), 1);
}
