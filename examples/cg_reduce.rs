//! The paper's Figure 3/10 scenario: cooperative-groups grid
//! synchronization with the leader-only fence bug NVIDIA acknowledged.
//! The grid *execution* barrier works — every block arrives before any
//! proceeds — but the *memory* barrier half is broken: the device fence is
//! executed only by each block's leader, so non-leader writes are not
//! published. iGUARD reports the post-sync reads as inter-block (DR)
//! races; with the fence executed by all threads the kernel is clean.
//!
//! ```text
//! cargo run --release --example cg_reduce
//! ```

use iguard_repro::gpu_sim::prelude::*;
use iguard_repro::iguard::{Iguard, RaceKind};
use iguard_repro::nvbit_sim::Instrumented;

const GRID: u32 = 4;
const BLOCK: u32 = 64;

/// Every thread writes its slot, the grid syncs, then every thread reads a
/// slot written by the *next block*. `fenced_by_all` toggles Figure 10's
/// commented-out line 3.
fn grid_reduce(fenced_by_all: bool) -> Kernel {
    let mut b = KernelBuilder::new(if fenced_by_all {
        "gsync_fixed"
    } else {
        "gsync_buggy"
    });
    let pdata = b.param(0);
    let psync = b.param(1);
    let pout = b.param(2);
    let g = b.special(Special::GlobalTid);
    let off = b.mul(g, 4u32);
    let da = b.add(pdata, off);
    let val = b.mul(g, 3u32);
    b.loc("partial[rank] = ...   (pre-sync write by EVERY thread)");
    b.st(da, 0, val);

    // ---- sync_grid(), Figure 10 --------------------------------------
    if fenced_by_all {
        b.loc("__threadfence();        // line 3: executed by ALL (the fix)");
        b.membar(Scope::Device);
    }
    b.syncthreads();
    let tid = b.special(Special::Tid);
    let is0 = b.eq(tid, 0u32);
    let wait = b.fwd_label();
    b.bra_ifnot(is0, wait);
    b.loc("__threadfence();        // line 6: leader only");
    b.membar(Scope::Device);
    let one = b.imm(1);
    b.loc("atomicAdd(arrived, 1);  // line 7");
    let _ = b.atomic_add(Scope::Device, psync, 0, one);
    let spin = b.here();
    b.loc("while (*arrived != gridSize);  // line 8");
    let got = b.ld_volatile(psync, 0);
    let not_all = b.ne(got, GRID);
    b.bra_if(not_all, spin);
    b.bind(wait);
    b.syncthreads();
    // -------------------------------------------------------------------

    // Post-sync: read the next block's slot.
    let bdim = b.special(Special::BlockDim);
    let shifted = b.add(g, bdim);
    let total = b.imm(GRID * BLOCK);
    let idx = b.rem(shifted, total);
    let roff = b.mul(idx, 4u32);
    let ra = b.add(pdata, roff);
    b.loc("out[rank] = partial[neighbour]   (post-sync cross-block read)");
    let v = b.ld(ra, 0);
    let oa = b.add(pout, off);
    b.st(oa, 0, v);
    b.build()
}

fn run(kernel: &Kernel) -> (bool, Vec<String>) {
    let mut gpu = Gpu::new(GpuConfig::default());
    let data = gpu.alloc((GRID * BLOCK) as usize).expect("alloc");
    let sync = gpu.alloc(1).expect("alloc");
    let out = gpu.alloc((GRID * BLOCK) as usize).expect("alloc");
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(kernel, GRID, BLOCK, &[data, sync, out], &mut tool)
        .expect("launch");
    let results = gpu.read_slice(out, (GRID * BLOCK) as usize);
    let correct = results
        .iter()
        .enumerate()
        .all(|(g, &v)| v == ((g as u32 + BLOCK) % (GRID * BLOCK)) * 3);
    let reports = tool
        .tool_mut()
        .races()
        .iter()
        .map(ToString::to_string)
        .collect();
    (correct, reports)
}

fn main() {
    println!("Figure 10: NVIDIA's grid_sync with the leader-only fence\n");

    let (correct, reports) = run(&grid_reduce(false));
    println!("buggy sync (leader-only fence):");
    println!("  values all correct this run: {correct}   (stale reads are schedule-dependent)");
    println!("  iGUARD reports:");
    for r in &reports {
        println!("    {r}");
    }
    assert!(reports
        .iter()
        .any(|r| r.contains(RaceKind::InterBlock.code())));

    let (correct, reports) = run(&grid_reduce(true));
    println!("\nfixed sync (fence executed by all threads):");
    println!("  values all correct: {correct}");
    println!("  iGUARD reports: {} race(s)", reports.len());
    assert!(correct && reports.is_empty());
    println!("\nNVIDIA filed an internal bug report for exactly this (Sec 7.1).");
}
