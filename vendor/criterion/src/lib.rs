//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion's API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, the `b.iter(...)` timer, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are intentionally simple — per-sample medians over a fixed
//! warmup + measurement schedule — because the workspace only needs
//! directional numbers, not criterion's full bootstrap analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so existing `black_box` imports through criterion work.
pub use std::hint::black_box;

/// The per-benchmark timer handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, auto-scaling iterations so one sample is long enough
    /// to measure, and records `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + iteration-count calibration (~25 ms target/sample).
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(25) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
        }
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{id:<40} median {median:>12.3?}   range [{lo:.3?} .. {hi:.3?}]   n={}",
        samples.len()
    );
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Fresh driver with the default sample size.
    #[must_use]
    pub fn new() -> Self {
        Criterion { sample_size: 20 }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: if self.sample_size == 0 {
                20
            } else {
                self.sample_size
            },
        };
        f(&mut b);
        report(id, &mut b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size).max(1),
        };
        f(&mut b);
        report(id.as_ref(), &mut b.samples);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
