//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the rand 0.10 API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling helpers (`random_range`, `random_bool`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction real `SmallRng` uses on 64-bit targets. Streams are not
//! guaranteed bit-identical to upstream rand; everything in this
//! workspace only relies on *determinism for a given seed*, which this
//! implementation provides.

#![forbid(unsafe_code)]

/// A random number generator: the minimal core trait.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, mirroring the rand 0.10 `Rng`/`RngExt` surface.
pub trait RngExt: Rng {
    /// Uniform sample from `range` (`start..end` or `start..=end`).
    ///
    /// Panics if the range is empty, like upstream.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample_inclusive(self, lo, hi_inclusive)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`, like upstream.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 uniform mantissa bits, the standard open interval trick.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: Rng> RngExt for T {}

/// Integer types `random_range` can sample.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from the inclusive range `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u128;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                // Widening-multiply rejection sampling (Lemire).
                let zone = u128::from(u64::MAX) + 1 - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v < zone {
                        return lo.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Lower bound and *inclusive* upper bound.
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt + OneStep> SampleRange<T> for core::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, self.end.step_down())
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Decrement by one, used to turn an exclusive bound inclusive.
pub trait OneStep {
    /// `self - 1`; only called on values known to be above the range start.
    fn step_down(self) -> Self;
}

macro_rules! impl_one_step {
    ($($t:ty),*) => {$(
        impl OneStep for $t {
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}

impl_one_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — small, fast, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random_range(0usize..97), b.random_range(0usize..97));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }
}
