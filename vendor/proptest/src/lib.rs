//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest's API its test suites use: the
//! [`Strategy`] trait with `prop_map`/`boxed`, integer-range and tuple
//! strategies, [`any`], [`Just`], `prop_oneof!`, `prop::collection::vec`,
//! and the `proptest!` test macro with `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberate for an offline shim:
//! - **No shrinking.** A failing case prints its generated inputs and
//!   re-raises the panic; it is not minimized.
//! - **Deterministic seeding.** Every test function draws from a fixed
//!   seed, so failures reproduce exactly across runs. Set
//!   `PROPTEST_CASES=<n>` to override the per-test case count.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator with the given seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` via widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generator of test values: the core proptest abstraction, minus
/// shrinking.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returning a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms. Panics if empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (`any::<u32>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with lengths in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after the `PROPTEST_CASES` environment override.
    #[must_use]
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...)` body runs
/// for `cases` generated inputs. On panic, the failing inputs are printed
/// and the panic re-raised (no shrinking).
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __cases = __config.resolved_cases();
                // Fixed per-test seed: failures reproduce across runs.
                let mut __rng = $crate::TestRng::from_seed(
                    0xD00D_F00D_5EED_u64 ^ (stringify!($name).len() as u64),
                );
                for __case in 0..__cases {
                    let __vals = ($($crate::Strategy::generate(&($strat), &mut __rng),)*);
                    let __repr = format!("{:?}", __vals);
                    #[allow(unused_variables)]
                    let ($($pat,)*) = __vals;
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(__e) = __result {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs {}",
                            stringify!($name), __case + 1, __cases, __repr,
                        );
                        ::std::panic::resume_unwind(__e);
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a property holds; counts as a failing case otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal; counts as a failing case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Green(u32),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps_compose(v in (1u8..5, any::<bool>()).prop_map(|(a, b)| (a, b))) {
            prop_assert!((1..5).contains(&v.0));
        }

        #[test]
        fn oneof_picks_only_listed_arms(
            c in prop_oneof![Just(Color::Red), (1u32..9).prop_map(Color::Green)],
        ) {
            match c {
                Color::Red => {}
                Color::Green(n) => prop_assert!((1..9).contains(&n)),
            }
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_seed(1);
        let mut b = crate::TestRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
