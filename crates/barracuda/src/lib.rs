//! # barracuda: the CPU-side baseline detector
//!
//! A re-implementation of the architecture of **Barracuda** (Eizenberg et
//! al., PLDI 2017), the closest prior work the iGUARD paper compares
//! against (§4, §7): GPU kernels are instrumented to *log* every memory
//! and synchronization event into a serialized channel, and the actual
//! race detection — vector-clock happens-before — runs on the CPU.
//!
//! The point of this crate is a faithful *baseline*, including the
//! limitations the paper documents:
//!
//! | Limitation | Where modelled |
//! |---|---|
//! | no scoped (`_block`) atomics | [`supports`] rejects the binary |
//! | no `__syncwarp` / ITS        | [`supports`]; warp events dropped; lockstep assumption in [`hb`] |
//! | PTX embedding fails for multi-file libraries | [`supports`] with [`BinaryKind::MultiFile`] |
//! | 50 % memory reservation ⇒ OOM on large footprints | [`detector`] launch check |
//! | serialized CPU detection ⇒ 10–1000× overheads | serial ship + CPU charges |
//! | may not terminate (`interac`) | serial-cycle budget in [`Barracuda::finish`] |

#![forbid(unsafe_code)]

pub mod curd;
pub mod detector;
pub mod event;
pub mod hb;
pub mod vc;

pub use curd::{Curd, CurdConfig, CurdPath};
pub use detector::{Barracuda, BarracudaConfig, BarracudaFailure};
pub use hb::CpuRace;

use gpu_sim::kernel::Kernel;
use nvbit_sim::inspect;

/// How the workload's binary is packaged, for the PTX-embedding gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryKind {
    /// A single self-contained module: Barracuda can embed its PTX.
    SingleFile,
    /// A large multi-file library (Gunrock, LonestarGPU, SlabHash, cuML):
    /// "it requires a single PTX file to be embedded in a binary. It
    /// cannot handle large, multi-file real-world GPU libraries" (§7.1).
    MultiFile,
}

/// Why Barracuda refuses a binary before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsupported {
    /// Contains scoped (`_block`) atomic operations (§4).
    ScopedAtomics,
    /// Contains `__syncwarp` (no ITS support, §4).
    WarpBarriers,
    /// Multi-file PTX cannot be embedded (§7.1).
    MultiFilePtx,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsupported::ScopedAtomics => write!(f, "scoped atomics unsupported"),
            Unsupported::WarpBarriers => write!(f, "warp-level barriers unsupported"),
            Unsupported::MultiFilePtx => write!(f, "cannot embed PTX for multi-file library"),
        }
    }
}

/// The front-end gate: can Barracuda run these kernels at all?
pub fn supports(kernels: &[&Kernel], kind: BinaryKind) -> Result<(), Unsupported> {
    if kind == BinaryKind::MultiFile {
        return Err(Unsupported::MultiFilePtx);
    }
    for k in kernels {
        let census = inspect::census(k);
        if census.block_scope_atomics > 0 {
            return Err(Unsupported::ScopedAtomics);
        }
        if census.warp_barriers > 0 {
            return Err(Unsupported::WarpBarriers);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::prelude::*;

    fn kernel_with_block_atomic() -> Kernel {
        let mut b = KernelBuilder::new("scoped");
        let base = b.param(0);
        let one = b.imm(1);
        let _ = b.atomic_add(Scope::Block, base, 0, one);
        b.build()
    }

    fn kernel_with_syncwarp() -> Kernel {
        let mut b = KernelBuilder::new("warped");
        b.syncwarp();
        b.build()
    }

    fn plain_kernel() -> Kernel {
        let mut b = KernelBuilder::new("plain");
        let base = b.param(0);
        let one = b.imm(1);
        let _ = b.atomic_add(Scope::Device, base, 0, one);
        b.syncthreads();
        b.membar(Scope::Device);
        b.build()
    }

    #[test]
    fn rejects_scoped_atomics() {
        let k = kernel_with_block_atomic();
        assert_eq!(
            supports(&[&k], BinaryKind::SingleFile),
            Err(Unsupported::ScopedAtomics)
        );
    }

    #[test]
    fn rejects_syncwarp() {
        let k = kernel_with_syncwarp();
        assert_eq!(
            supports(&[&k], BinaryKind::SingleFile),
            Err(Unsupported::WarpBarriers)
        );
    }

    #[test]
    fn rejects_multi_file_libraries() {
        let k = plain_kernel();
        assert_eq!(
            supports(&[&k], BinaryKind::MultiFile),
            Err(Unsupported::MultiFilePtx)
        );
    }

    #[test]
    fn accepts_traditional_kernels() {
        let k = plain_kernel();
        assert_eq!(supports(&[&k], BinaryKind::SingleFile), Ok(()));
    }
}
