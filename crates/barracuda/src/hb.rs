//! The CPU-side happens-before engine.
//!
//! Consumes the serialized event stream shipped from the GPU and applies a
//! FastTrack-flavoured analysis:
//!
//! - `__syncthreads()` joins the clocks of a block's threads (barrier);
//! - fences behave as SC fences against a per-block or global fence clock
//!   (Barracuda "detects races due to threadfences", §4);
//! - (device-scope) atomics are release+acquire on their location;
//! - **same-warp accesses are assumed ordered** — the pre-Volta lockstep
//!   assumption baked into Barracuda (SM35), which is exactly why it
//!   misses ITS races (§4, Table 1);
//! - scoped (`_block`) atomics are *unsupported*: the front end refuses
//!   such binaries before execution (see [`crate::supports`]).

use std::collections::HashMap;

use crate::event::Event;
use crate::vc::{Epoch, VectorClock};

/// A race found by the CPU-side analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuRace {
    /// pc of the second (racing) access.
    pub pc: usize,
    /// Word index raced on.
    pub word: u32,
    /// The two unordered threads.
    pub tids: (u32, u32),
    /// Whether the second access was a write.
    pub second_is_write: bool,
}

#[derive(Debug, Default, Clone)]
struct WordState {
    write: Option<Epoch>,
    write_warp: u32,
    reads: Vec<(Epoch, u32)>, // (epoch, warp)
}

/// The happens-before detector state.
#[derive(Debug)]
pub struct HbDetector {
    threads: usize,
    block_dim: u32,
    vc: Vec<VectorClock>,
    global_fence: VectorClock,
    block_fence: Vec<VectorClock>,
    /// Per thread: own-clock value at its last *device-scope* fence. CUDA
    /// atomics are relaxed, so an atomic release publishes only writes the
    /// thread has device-fenced — this is what lets Barracuda catch
    /// wrongly-scoped fences (Table 1 "Sc. fence: Yes").
    dev_released: Vec<u32>,
    loc_sync: HashMap<u32, VectorClock>,
    words: HashMap<u32, WordState>,
    races: Vec<CpuRace>,
    seen: std::collections::HashSet<(usize, bool)>,
    /// Events processed (the serialized CPU work the paper blames for
    /// Barracuda's overheads).
    pub events_processed: u64,
}

impl HbDetector {
    /// State for a launch of `blocks` × `block_dim` threads.
    #[must_use]
    pub fn new(blocks: u32, block_dim: u32) -> Self {
        let threads = (blocks * block_dim) as usize;
        HbDetector {
            threads,
            block_dim,
            vc: (0..threads).map(|_| VectorClock::new(threads)).collect(),
            global_fence: VectorClock::new(threads),
            block_fence: (0..blocks).map(|_| VectorClock::new(threads)).collect(),
            dev_released: vec![0; threads],
            loc_sync: HashMap::new(),
            words: HashMap::new(),
            races: Vec::new(),
            seen: std::collections::HashSet::new(),
            events_processed: 0,
        }
    }

    /// Races found so far (deduplicated per (pc, direction)).
    #[must_use]
    pub fn races(&self) -> &[CpuRace] {
        &self.races
    }

    /// Applies one event.
    pub fn process(&mut self, ev: &Event) {
        self.events_processed += 1;
        match *ev {
            Event::Access {
                word,
                tid,
                warp,
                is_write,
                is_atomic,
                pc,
            } => {
                self.access(word, tid, warp, is_write, is_atomic, pc);
            }
            Event::BlockBarrier { block } => self.barrier(block),
            Event::Fence { tid, device_scope } => self.fence(tid, device_scope),
        }
    }

    fn report(&mut self, pc: usize, word: u32, other: u32, tid: u32, second_is_write: bool) {
        if self.seen.insert((pc, second_is_write)) {
            self.races.push(CpuRace {
                pc,
                word,
                tids: (other, tid),
                second_is_write,
            });
        }
    }

    fn access(
        &mut self,
        word: u32,
        tid: u32,
        warp: u32,
        is_write: bool,
        is_atomic: bool,
        pc: usize,
    ) {
        if is_atomic {
            // Acquire through the location's sync clock.
            if let Some(l) = self.loc_sync.get(&word) {
                self.vc[tid as usize].join(l);
            }
        }
        // An atomic read acquires through the location and is otherwise
        // invisible: it cannot tear, and atomic writes do not race with it.
        if is_atomic && !is_write {
            return;
        }

        // Snapshot the word state so the reports below can borrow self.
        let snapshot = self.words.get(&word).cloned().unwrap_or_default();
        let my_vc = &self.vc[tid as usize];

        // Write-read / write-write conflicts with the last write.
        if let Some(w) = snapshot.write {
            let same_warp = snapshot.write_warp_id() == warp; // lockstep assumption
            let both_atomic = is_atomic && snapshot.write_is_atomic();
            if w.tid != tid && !same_warp && !both_atomic && !my_vc.covers(w.tid, w.clk) {
                self.report(pc, word, w.tid, tid, is_write);
            }
        }
        // Read-write conflicts: a write must be ordered after every read.
        if is_write {
            let my_vc = &self.vc[tid as usize];
            let racy = snapshot
                .reads
                .iter()
                .find(|(r, rwarp)| r.tid != tid && *rwarp != warp && !my_vc.covers(r.tid, r.clk))
                .map(|(r, _)| r.tid);
            if let Some(other) = racy {
                self.report(pc, word, other, tid, true);
            }
        }

        // Update epochs.
        let clk = self.vc[tid as usize].get(tid).max(1);
        let state = self.words.entry(word).or_default();
        if is_write {
            state.write = Some(Epoch { tid, clk });
            state.write_warp = warp;
            state.set_write_atomic(is_atomic);
            state.reads.clear();
        } else {
            state.reads.retain(|(r, _)| r.tid != tid);
            state.reads.push((Epoch { tid, clk }, warp));
        }

        if is_atomic {
            // A relaxed atomic's "release" publishes only the writes the
            // calling thread has already ordered with a *device-scope*
            // fence — not its unfenced stores, and not writes it merely
            // observed through a barrier (the Figure 10 subtlety). The
            // atomic write itself stays atomic via the epoch bookkeeping.
            self.vc[tid as usize].tick(tid);
            let released = self.dev_released[tid as usize];
            self.loc_sync
                .entry(word)
                .or_insert_with(|| VectorClock::new(self.threads))
                .raise(tid, released);
        }
    }

    fn barrier(&mut self, block: u32) {
        let base = (block * self.block_dim) as usize;
        let end = (base + self.block_dim as usize).min(self.threads);
        let mut joined = VectorClock::new(self.threads);
        for t in base..end {
            self.vc[t].tick(t as u32);
            joined.join(&self.vc[t]);
        }
        for t in base..end {
            self.vc[t] = joined.clone();
        }
    }

    fn fence(&mut self, tid: u32, device_scope: bool) {
        self.vc[tid as usize].tick(tid);
        let own = self.vc[tid as usize].get(tid);
        if device_scope {
            self.dev_released[tid as usize] = own;
        }
        let clock = if device_scope {
            &mut self.global_fence
        } else {
            &mut self.block_fence[(tid / self.block_dim) as usize]
        };
        // Release: the fence publishes only the calling thread's writes
        // ("the effect of a threadfence is limited to writes of the
        // calling thread only", §7.1). Acquire: the thread observes every
        // write published into the fence clock so far.
        clock.raise(tid, own);
        let snapshot = clock.clone();
        self.vc[tid as usize].join(&snapshot);
    }
}

impl WordState {
    // The write-atomicity bit is folded into `write_warp`'s top bit to keep
    // the struct small; these helpers keep that encoding in one place.
    fn set_write_atomic(&mut self, atomic: bool) {
        if atomic {
            self.write_warp |= 1 << 31;
        } else {
            self.write_warp &= !(1 << 31);
        }
    }

    fn write_is_atomic(&self) -> bool {
        self.write_warp & (1 << 31) != 0
    }

    fn write_warp_id(&self) -> u32 {
        self.write_warp & !(1 << 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(word: u32, tid: u32, warp: u32, is_write: bool, pc: usize) -> Event {
        Event::Access {
            word,
            tid,
            warp,
            is_write,
            is_atomic: false,
            pc,
        }
    }

    #[test]
    fn unordered_cross_warp_write_read_is_race() {
        let mut hb = HbDetector::new(1, 64);
        hb.process(&access(0, 40, 1, true, 1)); // warp 1 writes
        hb.process(&access(0, 0, 0, false, 2)); // warp 0 reads, no sync
        assert_eq!(hb.races().len(), 1);
        assert_eq!(hb.races()[0].tids, (40, 0));
    }

    #[test]
    fn barrier_orders_block_accesses() {
        let mut hb = HbDetector::new(1, 64);
        hb.process(&access(0, 40, 1, true, 1));
        hb.process(&Event::BlockBarrier { block: 0 });
        hb.process(&access(0, 0, 0, false, 2));
        assert!(hb.races().is_empty());
    }

    #[test]
    fn same_warp_conflicts_are_assumed_ordered() {
        // The SM35 lockstep assumption: Barracuda misses ITS races (§4).
        let mut hb = HbDetector::new(1, 32);
        hb.process(&access(0, 1, 0, true, 1));
        hb.process(&access(0, 0, 0, false, 2));
        assert!(
            hb.races().is_empty(),
            "Barracuda cannot see intra-warp races"
        );
    }

    #[test]
    fn fence_pair_orders_cross_block_accesses() {
        let mut hb = HbDetector::new(2, 32);
        hb.process(&access(0, 0, 0, true, 1)); // block 0 writes
        hb.process(&Event::Fence {
            tid: 0,
            device_scope: true,
        }); // release
        hb.process(&Event::Fence {
            tid: 32,
            device_scope: true,
        }); // acquire
        hb.process(&access(0, 32, 1, false, 2)); // block 1 reads
        assert!(hb.races().is_empty());
    }

    #[test]
    fn missing_release_fence_is_race() {
        let mut hb = HbDetector::new(2, 32);
        hb.process(&access(0, 0, 0, true, 1));
        hb.process(&Event::Fence {
            tid: 32,
            device_scope: true,
        }); // acquire only
        hb.process(&access(0, 32, 1, false, 2));
        assert_eq!(hb.races().len(), 1);
    }

    #[test]
    fn block_fence_does_not_order_cross_block() {
        let mut hb = HbDetector::new(2, 32);
        hb.process(&access(0, 0, 0, true, 1));
        hb.process(&Event::Fence {
            tid: 0,
            device_scope: false,
        });
        hb.process(&Event::Fence {
            tid: 32,
            device_scope: false,
        });
        hb.process(&access(0, 32, 1, false, 2));
        assert_eq!(
            hb.races().len(),
            1,
            "block fences must not synchronize across blocks"
        );
    }

    #[test]
    fn fenced_atomics_synchronize_through_their_location() {
        let mut hb = HbDetector::new(2, 32);
        // Producer: write data(1), device fence, release via atomic on flag(0).
        hb.process(&access(1, 0, 0, true, 1));
        hb.process(&Event::Fence {
            tid: 0,
            device_scope: true,
        });
        hb.process(&Event::Access {
            word: 0,
            tid: 0,
            warp: 0,
            is_write: true,
            is_atomic: true,
            pc: 2,
        });
        // Consumer: acquire via atomic on flag, then read data.
        hb.process(&Event::Access {
            word: 0,
            tid: 32,
            warp: 1,
            is_write: true,
            is_atomic: true,
            pc: 3,
        });
        hb.process(&access(1, 32, 1, false, 4));
        assert!(
            hb.races().is_empty(),
            "fence + atomic release/acquire must order the data access"
        );
    }

    #[test]
    fn unfenced_atomic_release_does_not_order_plain_writes() {
        // CUDA atomics are relaxed: without the device fence, the data
        // write is not published — and a *block*-scope fence is not enough
        // (the wrongly-scoped-fence races Barracuda detects, Table 1).
        let mut hb = HbDetector::new(2, 32);
        hb.process(&access(1, 0, 0, true, 1));
        hb.process(&Event::Fence {
            tid: 0,
            device_scope: false,
        }); // wrong scope
        hb.process(&Event::Access {
            word: 0,
            tid: 0,
            warp: 0,
            is_write: true,
            is_atomic: true,
            pc: 2,
        });
        hb.process(&Event::Access {
            word: 0,
            tid: 32,
            warp: 1,
            is_write: true,
            is_atomic: true,
            pc: 3,
        });
        hb.process(&access(1, 32, 1, false, 4));
        assert_eq!(
            hb.races().len(),
            1,
            "block fence must not release across blocks"
        );
    }

    #[test]
    fn write_write_race_detected() {
        let mut hb = HbDetector::new(2, 32);
        hb.process(&access(0, 0, 0, true, 1));
        hb.process(&access(0, 32, 1, true, 2));
        assert_eq!(hb.races().len(), 1);
    }

    #[test]
    fn read_write_race_detected() {
        let mut hb = HbDetector::new(2, 32);
        hb.process(&access(0, 0, 0, false, 1));
        hb.process(&access(0, 32, 1, true, 2));
        assert_eq!(hb.races().len(), 1);
    }

    #[test]
    fn duplicate_races_deduplicated_by_pc() {
        let mut hb = HbDetector::new(1, 64);
        hb.process(&access(0, 40, 1, true, 1));
        for _ in 0..10 {
            hb.process(&access(0, 0, 0, false, 2));
        }
        assert_eq!(hb.races().len(), 1);
    }

    #[test]
    fn multiple_unordered_readers_all_conflict_with_a_write() {
        // Reader epochs accumulate; a later write must be checked against
        // every live reader, not just the most recent one.
        let mut hb = HbDetector::new(2, 32);
        hb.process(&access(0, 0, 0, false, 1)); // block 0 reads
        hb.process(&access(0, 5, 0, false, 2)); // same warp, another reader
        hb.process(&access(0, 40, 1, false, 3)); // block 1 reads
        hb.process(&access(0, 33, 1, true, 4)); // block 1 writes
                                                // The write conflicts with block 0's readers (no sync).
        assert_eq!(hb.races().len(), 1);
    }

    #[test]
    fn barrier_then_write_after_reads_is_ordered() {
        let mut hb = HbDetector::new(1, 64);
        hb.process(&access(0, 0, 0, false, 1));
        hb.process(&access(0, 40, 1, false, 2));
        hb.process(&Event::BlockBarrier { block: 0 });
        hb.process(&access(0, 33, 1, true, 3));
        assert!(hb.races().is_empty());
    }

    #[test]
    fn a_write_clears_the_reader_set() {
        let mut hb = HbDetector::new(1, 64);
        hb.process(&access(0, 0, 0, false, 1));
        hb.process(&Event::BlockBarrier { block: 0 });
        hb.process(&access(0, 40, 1, true, 2)); // ordered write
        hb.process(&Event::BlockBarrier { block: 0 });
        // A later ordered read conflicts with nothing stale.
        hb.process(&access(0, 5, 0, false, 3));
        assert!(hb.races().is_empty());
    }
}
