//! Vector clocks for the CPU-side happens-before detector.
//!
//! Barracuda performs its race detection on the host, where pairwise
//! thread-ordering state is affordable (§4: "detecting GPU races
//! effectively reduces to that on the CPU"). This module provides the
//! dense vector-clock arithmetic that analysis uses. The cost of this
//! luxury is exactly what iGUARD's in-GPU design avoids: every event must
//! funnel through one serialized consumer.

/// A dense vector clock over `n` threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u32>,
}

impl VectorClock {
    /// The zero clock over `n` threads.
    #[must_use]
    pub fn new(n: usize) -> Self {
        VectorClock { clocks: vec![0; n] }
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether the clock has no components.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Component `tid`.
    #[must_use]
    pub fn get(&self, tid: u32) -> u32 {
        self.clocks[tid as usize]
    }

    /// Advances this thread's own component (a release point).
    pub fn tick(&mut self, tid: u32) {
        self.clocks[tid as usize] += 1;
    }

    /// Pointwise maximum with `other` (acquire).
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.clocks.iter_mut().zip(&other.clocks) {
            *a = (*a).max(*b);
        }
    }

    /// Raises component `tid` to at least `clk` — the *release* of one
    /// thread's own writes. CUDA fences publish only the calling thread's
    /// writes (the Figure 10 subtlety), so releases must not leak the
    /// whole clock.
    pub fn raise(&mut self, tid: u32, clk: u32) {
        let c = &mut self.clocks[tid as usize];
        *c = (*c).max(clk);
    }

    /// Does the epoch `(tid, clk)` happen before this clock?
    #[must_use]
    pub fn covers(&self, tid: u32, clk: u32) -> bool {
        self.get(tid) >= clk
    }
}

/// A lightweight `(thread, clock)` epoch, FastTrack style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Thread id.
    pub tid: u32,
    /// That thread's clock at the access.
    pub clk: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clock_is_zero() {
        let vc = VectorClock::new(4);
        assert_eq!(vc.get(0), 0);
        assert!(vc.covers(2, 0));
        assert!(!vc.covers(2, 1));
    }

    #[test]
    fn tick_advances_own_component_only() {
        let mut vc = VectorClock::new(4);
        vc.tick(1);
        assert_eq!(vc.get(1), 1);
        assert_eq!(vc.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 0);
    }

    #[test]
    fn covers_is_happens_before() {
        let mut writer = VectorClock::new(2);
        writer.tick(0); // write at epoch (0, 1)... then release
        let epoch = Epoch {
            tid: 0,
            clk: writer.get(0),
        };
        let mut reader = VectorClock::new(2);
        assert!(!reader.covers(epoch.tid, epoch.clk), "unsynchronized: race");
        reader.join(&writer);
        assert!(
            reader.covers(epoch.tid, epoch.clk),
            "after acquire: ordered"
        );
    }
}
