//! The records Barracuda ships from the GPU to the CPU.
//!
//! Unlike iGUARD, which only ships race *reports*, Barracuda ships **every
//! memory access and synchronization operation** — this per-event
//! serialization is the paper's explanation for its 10–1000× overheads.

/// One device→host record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A global-memory access by one thread.
    Access {
        /// Word index (byte address / 4).
        word: u32,
        /// Global thread id.
        tid: u32,
        /// Global warp id (for the lockstep assumption).
        warp: u32,
        /// Store or atomic.
        is_write: bool,
        /// Atomic operation (release/acquire on the location).
        is_atomic: bool,
        /// pc of the access, for reporting.
        pc: usize,
    },
    /// A released `__syncthreads()`.
    BlockBarrier {
        /// Block whose threads synchronized.
        block: u32,
    },
    /// A `__threadfence[_block]()` by one thread.
    Fence {
        /// Global thread id.
        tid: u32,
        /// True for device scope.
        device_scope: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_compact() {
        // The shipping cost model assumes fixed-size ring-buffer slots.
        assert!(std::mem::size_of::<Event>() <= 32);
    }
}
