//! The Barracuda tool: GPU-side logging, CPU-side detection.
//!
//! Faithful to the architecture (and architectural limitations) the paper
//! describes in §4 and §7:
//!
//! - every instrumented event pays a **serial** shipping charge into the
//!   host channel (the device-side ring-buffer slot reservation is a
//!   device-wide serialization point) and a **serial** CPU processing
//!   charge (one consumer thread);
//! - **memory reservation**: buffers claim 50 % of device capacity plus a
//!   footprint-proportional shadow — the policy that runs out of memory in
//!   Figure 14 where iGUARD's UVM approach degrades gracefully;
//! - **feature gate**: binaries containing scoped (`_block`) atomics or
//!   `__syncwarp` are rejected before execution, and "multi-file" binaries
//!   (real-world libraries like Gunrock) cannot have their PTX embedded —
//!   see [`crate::supports`];
//! - same-warp accesses are assumed lockstep-ordered (SM35), so ITS races
//!   are invisible to it.

use gpu_sim::hook::{AccessKind, LaunchInfo, MemAccess, SyncEvent};
use gpu_sim::ir::Scope;
use gpu_sim::timing::{Clock, CostCategory};
use nvbit_sim::channel::HostChannel;
use nvbit_sim::Tool;

use crate::event::Event;
use crate::hb::{CpuRace, HbDetector};

/// Cost/behaviour parameters of the baseline.
#[derive(Debug, Clone)]
pub struct BarracudaConfig {
    /// Serial cycles to reserve a channel slot and ship one event.
    pub ship_cost: u64,
    /// Serial cycles for the CPU to process one event.
    pub cpu_cost: u64,
    /// Serial cycles per forced channel flush.
    pub flush_cost: u64,
    /// Channel capacity in events before a forced flush.
    pub channel_capacity: usize,
    /// Fraction of device memory reserved for buffers (the paper: "prior
    /// works, e.g., Barracuda reserves 50% of the memory capacity").
    pub reserve_fraction: f64,
    /// Serial-cycle budget after which the run is declared non-terminating
    /// (the paper's `interac` case).
    pub timeout_serial_cycles: u64,
}

impl Default for BarracudaConfig {
    fn default() -> Self {
        BarracudaConfig {
            ship_cost: 34,
            cpu_cost: 40,
            flush_cost: 1_500,
            channel_capacity: 1 << 16,
            reserve_fraction: 0.5,
            timeout_serial_cycles: u64::MAX,
        }
    }
}

/// Why Barracuda could not produce results for a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarracudaFailure {
    /// Device memory could not fit the 50 % reservation + shadow buffers.
    OutOfMemory {
        /// Bytes the reservation needed.
        needed: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// The event stream exceeded the serial-processing budget.
    DidNotTerminate,
}

/// The Barracuda detector tool.
#[derive(Debug)]
pub struct Barracuda {
    cfg: BarracudaConfig,
    /// Events tagged with their *record* id — one record per instrumented
    /// warp split (Barracuda ships compact per-warp records; lanes of one
    /// split share a ring-buffer slot).
    channel: HostChannel<(u64, Event)>,
    hb: Option<HbDetector>,
    block_dim: u32,
    kernel_name: std::sync::Arc<str>,
    failure: Option<BarracudaFailure>,
    serial_shipped: u64,
    events_sent: u64,
    records_sent: u64,
    records_processed: u64,
    last_record_seen: Option<u64>,
    races: Vec<CpuRace>,
}

impl Default for Barracuda {
    fn default() -> Self {
        Self::new(BarracudaConfig::default())
    }
}

impl Barracuda {
    /// Creates the baseline detector.
    #[must_use]
    pub fn new(cfg: BarracudaConfig) -> Self {
        // Per-record shipping cost is charged explicitly in `record()`;
        // the channel itself only charges forced flushes.
        let channel = HostChannel::new(
            cfg.channel_capacity.max(1),
            0,
            cfg.flush_cost,
            CostCategory::Detection,
        )
        .expect("capacity clamped to >= 1");
        Barracuda {
            cfg,
            channel,
            hb: None,
            block_dim: 0,
            kernel_name: std::sync::Arc::from(""),
            failure: None,
            serial_shipped: 0,
            events_sent: 0,
            records_sent: 0,
            records_processed: 0,
            last_record_seen: None,
            races: Vec::new(),
        }
    }

    /// Whether (and why) the run failed.
    #[must_use]
    pub fn failure(&self) -> Option<&BarracudaFailure> {
        self.failure.as_ref()
    }

    /// Events shipped so far.
    #[must_use]
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Drains the channel and runs the CPU-side analysis on the pending
    /// events against the *current kernel's* happens-before state.
    ///
    /// Charges the serialized CPU analysis cost to `clock`; when the
    /// cumulative budget is exceeded the run is marked
    /// [`BarracudaFailure::DidNotTerminate`] and later events are dropped
    /// (the paper: Barracuda "did not terminate for interac ... and misses
    /// a true race").
    fn drain_and_process(&mut self, clock: &mut Clock) {
        let events = self.channel.drain();
        let Some(hb) = self.hb.as_mut() else {
            return;
        };
        let budget_records = self
            .cfg
            .timeout_serial_cycles
            .checked_div(self.cfg.cpu_cost)
            .unwrap_or(u64::MAX);
        let before = hb.races().len();
        let mut processed_now = 0u64;
        for (record, ev) in &events {
            if self.last_record_seen != Some(*record) {
                self.last_record_seen = Some(*record);
                self.records_processed += 1;
                processed_now += 1;
            }
            if self.records_processed > budget_records {
                self.failure = Some(BarracudaFailure::DidNotTerminate);
                break;
            }
            hb.process(ev);
        }
        clock.charge_serial(CostCategory::Detection, processed_now * self.cfg.cpu_cost);
        let new_races = hb.races()[before.min(hb.races().len())..].to_vec();
        self.races.extend(new_races);
    }

    /// Finishes CPU-side processing and returns every race found so far.
    pub fn finish(&mut self, clock: &mut Clock) -> Vec<CpuRace> {
        self.drain_and_process(clock);
        self.races.clone()
    }

    /// Opens a new per-split record and charges its serialized shipping.
    fn record(&mut self, clock: &mut Clock) -> u64 {
        self.records_sent += 1;
        self.serial_shipped += self.cfg.ship_cost;
        clock.charge_serial(CostCategory::Detection, self.cfg.ship_cost);
        self.records_sent
    }

    fn ship(&mut self, record: u64, ev: Event, clock: &mut Clock) {
        self.events_sent += 1;
        self.channel.send((record, ev), clock);
    }

    fn global_tid(&self, block_id: u32, tid_in_block: u32) -> u32 {
        block_id * self.block_dim + tid_in_block
    }
}

impl Tool for Barracuda {
    fn at_launch(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        // Analyze any events still pending from the previous kernel before
        // resetting the happens-before state (each launch gets fresh state:
        // the implicit inter-kernel barrier orders everything).
        self.drain_and_process(clock);
        self.block_dim = info.block_dim;
        self.kernel_name = info.kernel_name.clone();
        self.hb = Some(HbDetector::new(info.grid_dim, info.block_dim));

        // Reservation policy: 50 % of capacity for buffers plus a shadow
        // proportional to the application footprint.
        let needed = (info.device_capacity_bytes as f64 * self.cfg.reserve_fraction) as u64
            + 2 * info.app_footprint_bytes;
        if needed > info.device_capacity_bytes {
            self.failure = Some(BarracudaFailure::OutOfMemory {
                needed,
                capacity: info.device_capacity_bytes,
            });
        }
        // Metadata buffers are pinned eagerly: a fixed setup charge.
        clock.charge_serial(CostCategory::Setup, 1_000);
    }

    fn at_exit(&mut self, _info: &LaunchInfo, clock: &mut Clock) {
        self.drain_and_process(clock);
    }

    fn on_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        if self.failure.is_some() || access.space != gpu_sim::ir::Space::Global {
            // Shared-memory detection is disabled for the comparison, as
            // the paper does ("we disable shared memory race detection in
            // Barracuda since iGUARD focuses only on global memory", §7).
            return;
        }
        // Volatile accesses are word-atomic flag-protocol traffic; model
        // them as relaxed atomics (Barracuda "fully supports atomics", §4,
        // and reports no false positives on spin-flag idioms).
        let (is_write, is_atomic) = match access.kind {
            AccessKind::Load => (false, access.volatile),
            AccessKind::Store => (true, access.volatile),
            AccessKind::Atomic { .. } => (true, true),
        };
        let block_id = access.block_id;
        let pc = access.pc;
        let warp = access.global_warp;
        let lanes: Vec<(u32, u32)> = access
            .lanes
            .iter()
            .map(|l| (l.tid_in_block, l.addr))
            .collect();
        let record = self.record(clock);
        for (tid_in_block, addr) in lanes {
            let ev = Event::Access {
                word: addr / 4,
                tid: self.global_tid(block_id, tid_in_block),
                warp,
                is_write,
                is_atomic,
                pc,
            };
            self.ship(record, ev, clock);
        }
    }

    fn on_sync(&mut self, event: &SyncEvent<'_>, clock: &mut Clock) {
        if self.failure.is_some() {
            return;
        }
        match event {
            SyncEvent::BlockBarrier { block_id } => {
                let record = self.record(clock);
                self.ship(record, Event::BlockBarrier { block: *block_id }, clock);
            }
            SyncEvent::WarpBarrier { .. } => {
                // Barracuda has no notion of warp-level barriers (§4); the
                // event is dropped, exactly the blind spot Table 1 lists.
            }
            SyncEvent::Fence {
                scope,
                block_id,
                tids,
                ..
            } => {
                let device_scope = *scope == Scope::Device;
                let pairs: Vec<u32> = tids.iter().map(|&(_, tid)| tid).collect();
                let record = self.record(clock);
                for tid_in_block in pairs {
                    let ev = Event::Fence {
                        tid: self.global_tid(*block_id, tid_in_block),
                        device_scope,
                    };
                    self.ship(record, ev, clock);
                }
            }
        }
    }
}
