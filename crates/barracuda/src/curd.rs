//! CURD (Peng, Grover, Devietti — PLDI '18): the compiler-directed
//! extension of Barracuda the paper also compares against (§4, Table 1).
//!
//! CURD's design, reproduced here:
//!
//! - at (re)compilation it inspects the kernel: if it synchronizes **only
//!   with `__syncthreads()`** — no atomics, no fences, no `__syncwarp` —
//!   a cheap *barrier-interval* detector is compiled in ("CURD reduces
//!   overheads for traditional bulk-synchronous programs to 3×");
//! - anything else **falls back to Barracuda wholesale** ("it falls back
//!   on Barracuda in the presence of atomics or fences"), inheriting all
//!   of Barracuda's costs and blind spots;
//! - like Barracuda it is a compiler technique: closed-source multi-file
//!   libraries are out of reach.
//!
//! The barrier-interval detector: within one block, two conflicting
//! accesses to a word race iff they fall in the same barrier interval
//! (no `__syncthreads()` between them); any cross-block conflict is a race
//! (`__syncthreads()` never orders across blocks).

use std::collections::{HashMap, HashSet};

use gpu_sim::hook::{AccessKind, LaunchInfo, MemAccess, SyncEvent};
use gpu_sim::kernel::Kernel;
use gpu_sim::timing::{Clock, CostCategory};
use nvbit_sim::inspect;
use nvbit_sim::Tool;

use crate::detector::{Barracuda, BarracudaConfig};
use crate::hb::CpuRace;
use crate::{supports, BinaryKind, Unsupported};

/// Which engine CURD compiled in for a given binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurdPath {
    /// `__syncthreads()`-only kernel: the cheap barrier-interval detector.
    Fast,
    /// Atomics/fences present: wholesale Barracuda fallback.
    BarracudaFallback,
}

/// Decides CURD's path for a binary, or refuses it (same front-end gates
/// as Barracuda: it is also a compiler technique).
pub fn curd_path(kernels: &[&Kernel], kind: BinaryKind) -> Result<CurdPath, Unsupported> {
    supports(kernels, kind)?;
    let simple = kernels.iter().all(|k| {
        let c = inspect::census(k);
        c.atomics == 0 && c.fences == 0 && c.warp_barriers == 0
    });
    Ok(if simple {
        CurdPath::Fast
    } else {
        CurdPath::BarracudaFallback
    })
}

/// Cost parameters of the fast path. CURD's instrumentation is inlined by
/// the compiler (no binary-rewriting dispatch) and its per-interval logs
/// are processed in bulk — the paper's "3×" regime.
#[derive(Debug, Clone)]
pub struct CurdConfig {
    /// Serial cycles per warp-split record on the fast path.
    pub fast_record_cost: u64,
    /// Barracuda configuration used on the fallback path.
    pub fallback: BarracudaConfig,
}

impl Default for CurdConfig {
    fn default() -> Self {
        CurdConfig {
            fast_record_cost: 2,
            fallback: BarracudaConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IntervalAccess {
    tid: u32,
    warp: u32,
    interval: u32,
    is_write: bool,
}

/// The CURD tool. Construct per binary via [`Curd::for_kernels`].
#[derive(Debug)]
pub struct Curd {
    path: CurdPath,
    cfg: CurdConfig,
    fallback: Barracuda,
    // Fast-path state.
    block_interval: Vec<u32>,
    block_dim: u32,
    words: HashMap<u32, Vec<IntervalAccess>>,
    /// Dedup key includes the kernel: two kernels racing at the same pc
    /// are two distinct races.
    seen: HashSet<(std::sync::Arc<str>, usize, bool)>,
    kernel_name: std::sync::Arc<str>,
    races: Vec<CpuRace>,
}

impl Curd {
    /// "Compiles" the binary: inspects it and selects the engine.
    pub fn for_kernels(
        kernels: &[&Kernel],
        kind: BinaryKind,
        cfg: CurdConfig,
    ) -> Result<Self, Unsupported> {
        let path = curd_path(kernels, kind)?;
        Ok(Curd {
            path,
            fallback: Barracuda::new(cfg.fallback.clone()),
            cfg,
            block_interval: Vec::new(),
            block_dim: 0,
            words: HashMap::new(),
            seen: HashSet::new(),
            kernel_name: std::sync::Arc::from(""),
            races: Vec::new(),
        })
    }

    /// The engine in use.
    #[must_use]
    pub fn path(&self) -> CurdPath {
        self.path
    }

    /// Finishes detection and returns every race found.
    pub fn finish(&mut self, clock: &mut Clock) -> Vec<CpuRace> {
        match self.path {
            CurdPath::Fast => self.races.clone(),
            CurdPath::BarracudaFallback => self.fallback.finish(clock),
        }
    }

    fn report(&mut self, pc: usize, word: u32, other: u32, tid: u32, second_is_write: bool) {
        if self
            .seen
            .insert((self.kernel_name.clone(), pc, second_is_write))
        {
            self.races.push(CpuRace {
                pc,
                word,
                tids: (other, tid),
                second_is_write,
            });
        }
    }

    fn fast_access(&mut self, word: u32, acc: IntervalAccess, block: u32, pc: usize) {
        let block_dim = self.block_dim.max(1);
        let history = self.words.entry(word).or_default();
        let mut conflict: Option<u32> = None;
        for prev in history.iter() {
            if prev.tid == acc.tid || (!prev.is_write && !acc.is_write) {
                continue;
            }
            let prev_block = prev.tid / block_dim;
            let same_block = prev_block == block;
            let ordered = if same_block {
                // Ordered iff a __syncthreads() separates the intervals;
                // same-warp accesses are also ordered (SM-era lockstep —
                // CURD "could, in theory, detect races due to ITS but does
                // not support warp-level barriers", §4).
                prev.interval != acc.interval || prev.warp == acc.warp
            } else {
                // __syncthreads() never orders across blocks.
                false
            };
            if !ordered {
                conflict = Some(prev.tid);
                break;
            }
        }
        // Keep one record per (thread, kind) — enough for interval logic.
        history.retain(|p| !(p.tid == acc.tid && p.is_write == acc.is_write));
        history.push(acc);
        if let Some(other) = conflict {
            self.report(pc, word, other, acc.tid, acc.is_write);
        }
    }
}

impl Tool for Curd {
    fn at_launch(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        match self.path {
            CurdPath::Fast => {
                self.block_interval = vec![0; info.grid_dim as usize];
                self.block_dim = info.block_dim;
                self.kernel_name = info.kernel_name.clone();
                self.words.clear();
                // Compiler-inserted instrumentation: modest setup.
                clock.charge_serial(CostCategory::Setup, 500);
            }
            CurdPath::BarracudaFallback => self.fallback.at_launch(info, clock),
        }
    }

    fn at_exit(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        if self.path == CurdPath::BarracudaFallback {
            self.fallback.at_exit(info, clock);
        }
    }

    fn on_mem(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        if access.space != gpu_sim::ir::Space::Global {
            return;
        }
        match self.path {
            CurdPath::Fast => {
                clock.charge_serial(CostCategory::Detection, self.cfg.fast_record_cost);
                let interval = self.block_interval[access.block_id as usize];
                let lanes: Vec<(u32, u32)> = access
                    .lanes
                    .iter()
                    .map(|l| (l.tid_in_block, l.addr))
                    .collect();
                let is_write = !matches!(access.kind, AccessKind::Load);
                for (tid_in_block, addr) in lanes {
                    let acc = IntervalAccess {
                        tid: access.block_id * self.block_dim + tid_in_block,
                        warp: access.global_warp,
                        interval,
                        is_write,
                    };
                    self.fast_access(addr / 4, acc, access.block_id, access.pc);
                }
            }
            CurdPath::BarracudaFallback => self.fallback.on_mem(access, clock),
        }
    }

    fn on_sync(&mut self, event: &SyncEvent<'_>, clock: &mut Clock) {
        match self.path {
            CurdPath::Fast => {
                if let SyncEvent::BlockBarrier { block_id } = event {
                    self.block_interval[*block_id as usize] += 1;
                }
            }
            CurdPath::BarracudaFallback => self.fallback.on_sync(event, clock),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::prelude::*;
    use nvbit_sim::Instrumented;

    fn barrier_kernel(with_barrier: bool) -> Kernel {
        let mut b = KernelBuilder::new(if with_barrier { "bar_ok" } else { "bar_racy" });
        let tid = b.special(Special::Tid);
        let base = b.param(0);
        let is40 = b.eq(tid, 40u32);
        let after = b.fwd_label();
        b.bra_ifnot(is40, after);
        let v = b.imm(5);
        b.st(base, 1, v);
        b.bind(after);
        if with_barrier {
            b.syncthreads();
        }
        let is0 = b.eq(tid, 0u32);
        let fin = b.fwd_label();
        b.bra_ifnot(is0, fin);
        let got = b.ld(base, 1);
        b.st(base, 0, got);
        b.bind(fin);
        b.build()
    }

    fn run_curd(k: &Kernel, grid: u32, block: u32) -> (CurdPath, usize) {
        let curd = Curd::for_kernels(&[k], BinaryKind::SingleFile, CurdConfig::default())
            .expect("supported");
        let path = curd.path();
        let mut gpu = Gpu::new(GpuConfig {
            seed: 3,
            ..GpuConfig::default()
        });
        let buf = gpu.alloc(8).unwrap();
        let mut tool = Instrumented::new(curd);
        gpu.launch(k, grid, block, &[buf], &mut tool).unwrap();
        let races = tool.tool_mut().finish(gpu.clock_mut()).len();
        (path, races)
    }

    #[test]
    fn syncthreads_only_kernels_take_the_fast_path() {
        let (path, races) = run_curd(&barrier_kernel(true), 1, 64);
        assert_eq!(path, CurdPath::Fast);
        assert_eq!(races, 0);
    }

    #[test]
    fn fast_path_detects_missing_barriers() {
        let (path, races) = run_curd(&barrier_kernel(false), 1, 64);
        assert_eq!(path, CurdPath::Fast);
        assert_eq!(races, 1);
    }

    #[test]
    fn fast_path_detects_cross_block_conflicts() {
        // Every block's leader stores the same word; syncthreads cannot
        // order across blocks.
        let mut b = KernelBuilder::new("cross_block");
        let base = b.param(0);
        let tid = b.special(Special::Tid);
        let is0 = b.eq(tid, 0u32);
        let fin = b.fwd_label();
        b.bra_ifnot(is0, fin);
        b.st(base, 0, tid);
        b.bind(fin);
        b.syncthreads();
        let k = b.build();
        let (path, races) = run_curd(&k, 4, 32);
        assert_eq!(path, CurdPath::Fast);
        assert_eq!(races, 1);
    }

    #[test]
    fn atomics_force_the_barracuda_fallback() {
        let mut b = KernelBuilder::new("with_atomic");
        let base = b.param(0);
        let one = b.imm(1);
        let _ = b.atom(AtomOp::Add, Scope::Device, base, 0, one);
        let k = b.build();
        let curd = Curd::for_kernels(&[&k], BinaryKind::SingleFile, CurdConfig::default())
            .expect("supported");
        assert_eq!(curd.path(), CurdPath::BarracudaFallback);
    }

    #[test]
    fn scoped_atomics_remain_unsupported() {
        let mut b = KernelBuilder::new("with_scoped");
        let base = b.param(0);
        let one = b.imm(1);
        let _ = b.atom(AtomOp::Add, Scope::Block, base, 0, one);
        let k = b.build();
        assert_eq!(
            Curd::for_kernels(&[&k], BinaryKind::SingleFile, CurdConfig::default()).err(),
            Some(Unsupported::ScopedAtomics)
        );
    }

    #[test]
    fn multi_file_remains_unsupported() {
        let k = barrier_kernel(true);
        assert_eq!(
            Curd::for_kernels(&[&k], BinaryKind::MultiFile, CurdConfig::default()).err(),
            Some(Unsupported::MultiFilePtx)
        );
    }

    #[test]
    fn fast_path_misses_its_races_like_the_paper_says() {
        // "It could, in theory, detect races due to ITS but does not
        // support warp-level barriers" (§4) — same-warp accesses are
        // treated as lockstep-ordered.
        let mut b = KernelBuilder::new("its_racy");
        let tid = b.special(Special::Tid);
        let base = b.param(0);
        let is1 = b.eq(tid, 1u32);
        let skip = b.fwd_label();
        b.bra_ifnot(is1, skip);
        let v = b.imm(7);
        b.st(base, 1, v);
        b.bind(skip);
        let is0 = b.eq(tid, 0u32);
        let fin = b.fwd_label();
        b.bra_ifnot(is0, fin);
        let got = b.ld(base, 1);
        b.st(base, 0, got);
        b.bind(fin);
        let k = b.build();
        let (path, races) = run_curd(&k, 1, 32);
        assert_eq!(path, CurdPath::Fast);
        assert_eq!(
            races, 0,
            "the lockstep assumption hides the intra-warp race"
        );
    }
}
