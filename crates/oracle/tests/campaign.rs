//! The differential fuzz campaign as a tier-1 test: 200 generated kernels,
//! full schedule-space oracle on each, iGUARD + Barracuda verdicts checked
//! against ground truth, zero unexplained divergences allowed.

use oracle::diff::{diff_spec, generate_specs, DiffConfig, Verdict};
use oracle::explore::explore;
use oracle::observer::Observer;
use oracle::shrink::shrink_spec;
use oracle::spec::NUM_SLOTS;
use oracle::{oracle_gpu_config, KernelSpec};

use gpu_sim::machine::Gpu;
use gpu_sim::sched::ReplayScheduler;

const CAMPAIGN_SEED: u64 = 0x1_C0FFEE;
const CAMPAIGN_KERNELS: usize = 200;

#[test]
fn campaign_over_200_kernels_has_no_unexplained_divergence() {
    let cfg = DiffConfig::default();
    let mut racy = 0usize;
    let mut explained = 0usize;
    let mut failures = Vec::new();
    for spec in generate_specs(CAMPAIGN_KERNELS, CAMPAIGN_SEED) {
        let r = diff_spec(&spec, &cfg);
        racy += usize::from(r.oracle.racy);
        explained += r.divergences.len() - r.unexplained().len();
        if !r.unexplained().is_empty() {
            // Shrink before reporting so the failure is actionable.
            let small = shrink_spec(&spec, |s| {
                !diff_spec(s, &cfg).unexplained().is_empty()
            });
            failures.push(format!(
                "unexplained divergence, shrunk to: {}",
                diff_spec(&small, &cfg).describe()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    // The generator must actually exercise both verdicts and produce at
    // least some paper-predicted divergences, or the campaign is vacuous.
    assert!(racy > 20, "only {racy}/{CAMPAIGN_KERNELS} racy kernels");
    assert!(
        racy < CAMPAIGN_KERNELS - 20,
        "only {} clean kernels",
        CAMPAIGN_KERNELS - racy
    );
    assert!(explained > 0, "campaign produced no explained divergences");
}

/// A witness trace is a real artifact: replaying it reproduces the exact
/// access interleaving (digest-identical), and iGUARD flags the race on
/// that very schedule.
#[test]
fn witness_traces_replay_deterministically_and_convict() {
    let cfg = DiffConfig::default();
    let mut checked = 0usize;
    for spec in generate_specs(60, CAMPAIGN_SEED ^ 0xDEAD) {
        let oracle_report = explore(&spec, &cfg.explore);
        let Some(trace) = oracle_report.witness else {
            continue;
        };
        let digests: Vec<u64> = (0..2)
            .map(|_| {
                let (grid, block) = spec.grid_block();
                let mut gpu = Gpu::new(oracle_gpu_config(cfg.explore.max_steps));
                let buf = gpu.alloc(NUM_SLOTS as usize).unwrap();
                let mut obs = Observer::default();
                let mut sched = ReplayScheduler::new(trace.clone());
                gpu.launch_with(&spec.build(), grid, block, &[buf], &mut obs, &mut sched)
                    .unwrap();
                assert!(sched.finished(), "{}: trace not consumed", spec.to_compact_string());
                obs.digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1], "{}", spec.to_compact_string());
        checked += 1;
    }
    assert!(checked > 10, "only {checked} witnesses checked");
}

/// Replay survives the kernel being rebuilt (a fresh `Kernel` value, hence
/// a fresh Arc identity in the nvbit analysis cache): the trace keys on
/// decisions, not on object identity.
#[test]
fn replay_is_stable_across_kernel_rebuilds() {
    let spec = KernelSpec::parse("v1;CB;S0.L1/S0").unwrap();
    let cfg = DiffConfig::default();
    let report = explore(&spec, &cfg.explore);
    let trace = report.witness.expect("spec is racy");
    let mut digests = Vec::new();
    for _ in 0..2 {
        // Build a brand-new Kernel each iteration.
        let kernel = spec.build();
        let mut gpu = Gpu::new(oracle_gpu_config(cfg.explore.max_steps));
        let buf = gpu.alloc(NUM_SLOTS as usize).unwrap();
        let mut obs = Observer::default();
        let mut sched = ReplayScheduler::new(trace.clone());
        gpu.launch_with(&kernel, 2, 1, &[buf], &mut obs, &mut sched)
            .unwrap();
        digests.push(obs.digest());
    }
    assert_eq!(digests[0], digests[1]);

    // And the detector convicts on the replayed witness schedule.
    let r = diff_spec(&spec, &cfg);
    assert_eq!(r.iguard, Verdict::Flagged, "{}", r.describe());
}
