//! Bounded exhaustive schedule exploration and the order-variance oracle.
//!
//! # Ground truth by order variance
//!
//! For the kernel family of [`crate::spec`], control flow is
//! schedule-independent, so the k-th dynamic access of a given thread is
//! the same static operation in every schedule — an access *instance*
//! `(block, tid, ordinal)` is well-defined across the whole schedule
//! space. Two conflicting instances race **iff the enumeration observes
//! them in both orders**: if every feasible schedule runs them in one
//! order, the program's synchronization (barriers blocking progress)
//! enforces that order, and the pair is properly synchronized. The
//! enumeration executes real machine semantics, so barrier blocking,
//! exit-releases, and ITS interleaving are all accounted for without a
//! happens-before model — the verdict is definitionally ground truth as
//! long as the space was covered completely ([`OracleReport::complete`]).
//!
//! # Conflict rules
//!
//! Mirrors the paper's treatment (§3, §6.2): load/load never conflicts;
//! plain-write pairs and atomic-vs-plain pairs always do; atomic/atomic
//! pairs conflict only across blocks when either side's scope is
//! insufficient (`.block` scope — the AS class). Device-scope atomic
//! pairs are synchronization, not races, even though they commute in both
//! orders.

use std::collections::HashMap;

use gpu_sim::hook::ExecMode;
use gpu_sim::machine::{Gpu, GpuConfig};
use gpu_sim::prelude::{EnumeratingScheduler, RecordingScheduler, ScheduleTrace};
use gpu_sim::ir::Scope;

use crate::observer::{ObservedAccess, Observer};
use crate::spec::{KernelSpec, NUM_SLOTS};

/// Bounds on the exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum branching decisions per schedule (DFS depth budget).
    pub max_decisions: usize,
    /// Maximum schedules to visit before giving up on completeness.
    pub max_schedules: u64,
    /// Per-schedule step watchdog.
    pub max_steps: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_decisions: 128,
            max_schedules: 200_000,
            max_steps: 10_000,
        }
    }
}

/// The GPU configuration used for every oracle run: tiny backing store
/// (the slot pool is 4 words) so the ~10⁴–10⁵ launches of an exploration
/// cost microseconds each, not milliseconds of memory zeroing.
#[must_use]
pub fn oracle_gpu_config(max_steps: u64) -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        mem_words: 64,
        max_steps,
        mode: ExecMode::Its,
        // Unused under an EnumeratingScheduler; relevant only when the
        // same config drives random-path detector runs.
        seed: 0,
        its_split_prob: 0.3,
        ..GpuConfig::default()
    }
}

/// One racing instance pair, classified by the accessors' relationship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleRace {
    /// `"ITS"` (same warp), `"BR"` (same block, different warp),
    /// `"DR"` (different blocks), or `"AS"` (atomic/atomic across blocks
    /// with insufficient scope) — the paper's Table 4 codes.
    pub kind: &'static str,
    /// Byte address raced on.
    pub addr: u32,
    /// `(block, tid_in_block, pc)` of the two instances.
    pub a: (u32, u32, usize),
    pub b: (u32, u32, usize),
}

/// The oracle's verdict over the explored schedule space.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Whether any conflicting pair was observed in both orders.
    pub racy: bool,
    /// Whether the whole bounded schedule space was covered. Racy
    /// verdicts are sound regardless; clean verdicts are only conclusive
    /// when complete.
    pub complete: bool,
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct racing pairs.
    pub races: Vec<OracleRace>,
    /// A schedule exhibiting one racing pair in one order.
    pub witness: Option<ScheduleTrace>,
    /// A schedule exhibiting the *same* pair in the opposite order.
    /// Dynamic detectors can be order-sensitive (e.g. R1 fires only when
    /// the insufficient-scope atomic precedes the plain access), so a fair
    /// false-negative verdict must replay both.
    pub counter_witness: Option<ScheduleTrace>,
}

impl OracleReport {
    /// Race kind codes, deduplicated, sorted.
    #[must_use]
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut k: Vec<&'static str> = self.races.iter().map(|r| r.kind).collect();
        k.sort_unstable();
        k.dedup();
        k
    }
}

/// An access instance: `(block, tid_in_block, per-thread ordinal)`.
type Instance = (u32, u32, u32);

struct PairState {
    /// Trace of the schedule where "lower instance first" was observed.
    fwd: Option<ScheduleTrace>,
    /// Trace of the schedule with the opposite order.
    rev: Option<ScheduleTrace>,
    race: OracleRace,
}

impl PairState {
    fn racy(&self) -> bool {
        self.fwd.is_some() && self.rev.is_some()
    }
}

/// Exhaustively explores the ITS schedule space of `spec` (up to the
/// bounds) and returns the ground-truth verdict.
///
/// # Panics
/// Panics if a launch faults — the spec family is fault-free by
/// construction, so a fault is a generator or simulator bug.
#[must_use]
pub fn explore(spec: &KernelSpec, cfg: &ExploreConfig) -> OracleReport {
    let kernel = spec.build();
    let (grid, block_dim) = spec.grid_block();
    let mut enumerator = EnumeratingScheduler::new(cfg.max_decisions);
    let mut pairs: HashMap<(Instance, Instance), PairState> = HashMap::new();
    let hit_cap;

    loop {
        let mut gpu = Gpu::new(oracle_gpu_config(cfg.max_steps));
        let buf = gpu
            .alloc(usize::from(NUM_SLOTS))
            .expect("oracle pool allocation");
        let mut obs = Observer::default();
        let mut rec = RecordingScheduler::new(&mut enumerator);
        gpu.launch_with(&kernel, grid, block_dim, &[buf], &mut obs, &mut rec)
            .unwrap_or_else(|e| {
                panic!(
                    "oracle kernel {} faulted during enumeration: {e}",
                    spec.to_compact_string()
                )
            });
        let trace = rec.into_trace();

        accumulate_orders(&obs.events, &trace, &mut pairs);

        if !enumerator.advance() {
            hit_cap = false;
            break;
        }
        if enumerator.schedules_completed() >= cfg.max_schedules {
            hit_cap = true;
            break;
        }
    }

    // Deterministic witness choice: the racy pair with the smallest key.
    let mut racy_pairs: Vec<(&(Instance, Instance), &PairState)> =
        pairs.iter().filter(|(_, p)| p.racy()).collect();
    racy_pairs.sort_by_key(|(k, _)| **k);
    let (witness, counter_witness) = racy_pairs
        .first()
        .map_or((None, None), |(_, p)| (p.fwd.clone(), p.rev.clone()));

    let races: Vec<OracleRace> = pairs
        .into_values()
        .filter(PairState::racy)
        .map(|p| p.race)
        .collect();
    OracleReport {
        racy: !races.is_empty(),
        complete: !hit_cap && !enumerator.truncated(),
        schedules: enumerator.schedules_completed(),
        races,
        witness,
        counter_witness,
    }
}

/// Folds one schedule's event sequence into the cross-schedule order map,
/// remembering `trace` as the witness for each newly observed direction.
fn accumulate_orders(
    events: &[ObservedAccess],
    trace: &ScheduleTrace,
    pairs: &mut HashMap<(Instance, Instance), PairState>,
) {
    // Per-thread ordinals; the family's control flow is
    // schedule-independent, so ordinals identify instances across runs.
    let mut ordinals: HashMap<(u32, u32), u32> = HashMap::new();
    let mut instances: Vec<(Instance, &ObservedAccess)> = Vec::with_capacity(events.len());
    for e in events {
        let ord = ordinals.entry((e.block, e.tid_in_block)).or_insert(0);
        instances.push(((e.block, e.tid_in_block, *ord), e));
        *ord += 1;
    }

    for i in 0..instances.len() {
        for j in (i + 1)..instances.len() {
            let (ia, ea) = instances[i];
            let (ib, eb) = instances[j];
            if !conflicts(ea, eb) {
                continue;
            }
            // Canonical unordered key; `fwd` means "lower instance first".
            let (key, first_is_lower) = if ia <= ib { ((ia, ib), true) } else { ((ib, ia), false) };
            let st = pairs.entry(key).or_insert_with(|| PairState {
                fwd: None,
                rev: None,
                race: classify(ea, eb),
            });
            if ea.step == eb.step {
                // Same warp split: simultaneous conflicting accesses
                // (cannot occur in the current family, handled for
                // robustness).
                st.fwd.get_or_insert_with(|| trace.clone());
                st.rev.get_or_insert_with(|| trace.clone());
            } else if first_is_lower {
                st.fwd.get_or_insert_with(|| trace.clone());
            } else {
                st.rev.get_or_insert_with(|| trace.clone());
            }
        }
    }
}

/// Paper-faithful conflict predicate over two dynamic accesses.
fn conflicts(a: &ObservedAccess, b: &ObservedAccess) -> bool {
    if a.block == b.block && a.tid_in_block == b.tid_in_block {
        return false;
    }
    if a.addr != b.addr {
        return false;
    }
    if !a.is_write && !b.is_write {
        return false;
    }
    // An atomic paired with another atomic or with a plain *load* is safe
    // at sufficient scope: RMWs mutually exclude, and word-sized loads of
    // an atomically-updated word are hardware-atomic (check P6 — the flag
    // polling idiom). Only an insufficient (.block) scope used across
    // blocks leaves a race (R1). A plain *store* on either side always
    // conflicts.
    let atomic_protected = (a.is_atomic && (b.is_atomic || !b.is_write))
        || (b.is_atomic && (a.is_atomic || !a.is_write));
    if atomic_protected {
        return a.block != b.block
            && (a.scope == Some(Scope::Block) || b.scope == Some(Scope::Block));
    }
    true
}

/// Classifies a racing pair by accessor relationship (Table 4 codes).
fn classify(a: &ObservedAccess, b: &ObservedAccess) -> OracleRace {
    const WARP: u32 = gpu_sim::ir::WARP_SIZE as u32;
    let kind = if a.block != b.block {
        // A cross-block race involving a block-scope atomic is the
        // insufficient-scope class (R1); any other cross-block race is a
        // plain device race (R4).
        if a.scope == Some(Scope::Block) || b.scope == Some(Scope::Block) {
            "AS"
        } else {
            "DR"
        }
    } else if a.tid_in_block / WARP == b.tid_in_block / WARP {
        "ITS"
    } else {
        "BR"
    };
    OracleRace {
        kind,
        addr: a.addr,
        a: (a.block, a.tid_in_block, a.pc),
        b: (b.block, b.tid_in_block, b.pc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Op, Placement};

    fn sw(actor0: Vec<Op>, actor1: Vec<Op>) -> KernelSpec {
        KernelSpec {
            placement: Placement::SameWarp,
            actors: [actor0, actor1],
        }
    }

    fn cb(actor0: Vec<Op>, actor1: Vec<Op>) -> KernelSpec {
        KernelSpec {
            placement: Placement::CrossBlock,
            actors: [actor0, actor1],
        }
    }

    #[test]
    fn same_warp_store_load_is_an_its_race() {
        let r = explore(
            &sw(vec![Op::Store { slot: 0 }], vec![Op::Load { slot: 0 }]),
            &ExploreConfig::default(),
        );
        assert!(r.complete);
        assert!(r.racy);
        assert_eq!(r.kinds(), vec!["ITS"]);
        assert!(r.witness.is_some());
    }

    #[test]
    fn cross_block_store_store_is_a_dr_race() {
        let r = explore(
            &cb(vec![Op::Store { slot: 2 }], vec![Op::Store { slot: 2 }]),
            &ExploreConfig::default(),
        );
        assert!(r.complete);
        assert!(r.racy);
        assert_eq!(r.kinds(), vec!["DR"]);
    }

    #[test]
    fn block_scope_atomics_across_blocks_are_an_as_race() {
        let a = |scope| Op::AtomicAdd { slot: 1, scope };
        let r = explore(
            &cb(vec![a(Scope::Block)], vec![a(Scope::Block)]),
            &ExploreConfig::default(),
        );
        assert!(r.complete && r.racy);
        assert_eq!(r.kinds(), vec!["AS"]);

        // Device scope is sufficient: both orders occur, but atomics
        // synchronize — clean.
        let r = explore(
            &cb(vec![a(Scope::Device)], vec![a(Scope::Device)]),
            &ExploreConfig::default(),
        );
        assert!(r.complete);
        assert!(!r.racy);
    }

    #[test]
    fn disjoint_slots_and_read_only_sharing_are_clean() {
        let r = explore(
            &sw(vec![Op::Store { slot: 0 }], vec![Op::Store { slot: 1 }]),
            &ExploreConfig::default(),
        );
        assert!(r.complete && !r.racy);
        let r = explore(
            &cb(vec![Op::Load { slot: 0 }], vec![Op::Load { slot: 0 }]),
            &ExploreConfig::default(),
        );
        assert!(r.complete && !r.racy);
    }

    #[test]
    fn aligned_syncwarp_orders_the_pair() {
        // store ; syncwarp   ||   syncwarp ; load  — the barrier blocks
        // the loader until the storer arrives, so only one order is
        // feasible: clean.
        let r = explore(
            &sw(
                vec![Op::Store { slot: 0 }, Op::SyncWarp],
                vec![Op::SyncWarp, Op::Load { slot: 0 }],
            ),
            &ExploreConfig::default(),
        );
        assert!(r.complete, "space must still be fully covered");
        assert!(!r.racy, "barrier-ordered pair must not be a race");

        // Both accesses on the same side of the barrier: still racy.
        let r = explore(
            &sw(
                vec![Op::Store { slot: 0 }, Op::SyncWarp],
                vec![Op::Load { slot: 0 }, Op::SyncWarp],
            ),
            &ExploreConfig::default(),
        );
        assert!(r.complete && r.racy);
    }

    #[test]
    fn aligned_syncthreads_orders_same_warp_actors_too() {
        let r = explore(
            &sw(
                vec![Op::Store { slot: 3 }, Op::SyncThreads],
                vec![Op::SyncThreads, Op::Load { slot: 3 }],
            ),
            &ExploreConfig::default(),
        );
        assert!(r.complete && !r.racy);
    }

    #[test]
    fn schedule_count_is_exactly_the_interleaving_count() {
        fn binomial(n: u64, k: u64) -> u64 {
            let mut r = 1u64;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        // Cross-block: the two single-thread blocks run independent
        // straight-line paths of lengths m and n (prologue included), and
        // the schedule space is every merge of the two sequences:
        // C(m + n, m). The enumerator must count exactly that many.
        let spec = cb(
            vec![Op::Store { slot: 0 }, Op::Load { slot: 1 }],
            vec![Op::Load { slot: 0 }],
        );
        let (m, n) = spec.path_lengths();
        let r = explore(&spec, &ExploreConfig::default());
        assert!(r.complete);
        assert_eq!(
            r.schedules,
            binomial((m + n) as u64, m as u64),
            "cross-block schedule space must be all C({m}+{n}, {m}) merges"
        );

        // Same-warp: the 4-instruction prologue is converged (a single
        // split with one PC — no choice), so only the two diverged
        // regions interleave: C(r0 + r1, r0) with region lengths
        // r = src-imm? + ops + exit.
        let spec = sw(
            vec![Op::Store { slot: 0 }, Op::Load { slot: 1 }],
            vec![Op::Load { slot: 0 }],
        );
        let r0 = 1 + 2 + 1; // imm + 2 ops + exit
        let r1 = 2; // load + exit
        let rep = explore(&spec, &ExploreConfig::default());
        assert!(rep.complete);
        assert_eq!(rep.schedules, binomial((r0 + r1) as u64, r0 as u64));
    }

    #[test]
    fn truncation_is_reported_as_incomplete() {
        let spec = cb(
            vec![Op::Store { slot: 0 }, Op::Load { slot: 1 }],
            vec![Op::Load { slot: 0 }],
        );
        let r = explore(
            &spec,
            &ExploreConfig {
                max_schedules: 10,
                ..ExploreConfig::default()
            },
        );
        assert!(!r.complete);
        assert_eq!(r.schedules, 10);
    }
}
