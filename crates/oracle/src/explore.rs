//! Bounded exhaustive schedule exploration and the order-variance oracle.
//!
//! # Ground truth by order variance
//!
//! For the kernel family of [`crate::spec`], control flow is
//! schedule-independent, so the k-th dynamic access of a given thread is
//! the same static operation in every schedule — an access *instance*
//! `(block, tid, ordinal)` is well-defined across the whole schedule
//! space. Two conflicting instances race **iff the enumeration observes
//! them in both orders**: if every feasible schedule runs them in one
//! order, the program's synchronization (barriers blocking progress)
//! enforces that order, and the pair is properly synchronized. The
//! enumeration executes real machine semantics, so barrier blocking,
//! exit-releases, and ITS interleaving are all accounted for without a
//! happens-before model — the verdict is definitionally ground truth as
//! long as the space was covered completely ([`OracleReport::complete`]).
//!
//! # Conflict rules
//!
//! Mirrors the paper's treatment (§3, §6.2): load/load never conflicts;
//! plain-write pairs and atomic-vs-plain pairs always do; atomic/atomic
//! pairs conflict only across blocks when either side's scope is
//! insufficient (`.block` scope — the AS class). Device-scope atomic
//! pairs are synchronization, not races, even though they commute in both
//! orders.

use std::collections::{BTreeMap, HashMap};

use gpu_sim::hook::ExecMode;
use gpu_sim::ir::{AtomOp, Instr};
use gpu_sim::kernel::Kernel;
use gpu_sim::machine::{Gpu, GpuConfig};
use gpu_sim::prelude::{EnumeratingScheduler, RecordingScheduler, ScheduleTrace};
use gpu_sim::ir::Scope;

use crate::litmus::{Cond, LitmusSpec};
use crate::observer::{ObservedAccess, Observer};
use crate::spec::{KernelSpec, Placement, NUM_SLOTS};

/// Bounds on the exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum branching decisions per schedule (DFS depth budget).
    pub max_decisions: usize,
    /// Maximum schedules to visit before giving up on completeness.
    pub max_schedules: u64,
    /// Per-schedule step watchdog.
    pub max_steps: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_decisions: 128,
            max_schedules: 200_000,
            max_steps: 10_000,
        }
    }
}

/// The GPU configuration used for every oracle run: tiny backing store
/// (the slot pool is 4 words) so the ~10⁴–10⁵ launches of an exploration
/// cost microseconds each, not milliseconds of memory zeroing.
#[must_use]
pub fn oracle_gpu_config(max_steps: u64) -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        mem_words: 64,
        max_steps,
        mode: ExecMode::Its,
        // Unused under an EnumeratingScheduler; relevant only when the
        // same config drives random-path detector runs.
        seed: 0,
        its_split_prob: 0.3,
        ..GpuConfig::default()
    }
}

/// One racing instance pair, classified by the accessors' relationship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleRace {
    /// `"ITS"` (same warp), `"BR"` (same block, different warp),
    /// `"DR"` (different blocks), or `"AS"` (atomic/atomic across blocks
    /// with insufficient scope) — the paper's Table 4 codes.
    pub kind: &'static str,
    /// Byte address raced on.
    pub addr: u32,
    /// `(block, tid_in_block, pc)` of the two instances.
    pub a: (u32, u32, usize),
    pub b: (u32, u32, usize),
}

/// The oracle's verdict over the explored schedule space.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Whether any conflicting pair was observed in both orders.
    pub racy: bool,
    /// Whether the whole bounded schedule space was covered. Racy
    /// verdicts are sound regardless; clean verdicts are only conclusive
    /// when complete.
    pub complete: bool,
    /// Schedules executed.
    pub schedules: u64,
    /// Distinct racing pairs.
    pub races: Vec<OracleRace>,
    /// A schedule exhibiting one racing pair in one order.
    pub witness: Option<ScheduleTrace>,
    /// A schedule exhibiting the *same* pair in the opposite order.
    /// Dynamic detectors can be order-sensitive (e.g. R1 fires only when
    /// the insufficient-scope atomic precedes the plain access), so a fair
    /// false-negative verdict must replay both.
    pub counter_witness: Option<ScheduleTrace>,
}

impl OracleReport {
    /// Race kind codes, deduplicated, sorted.
    #[must_use]
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut k: Vec<&'static str> = self.races.iter().map(|r| r.kind).collect();
        k.sort_unstable();
        k.dedup();
        k
    }
}

/// An access instance: `(block, tid_in_block, per-thread ordinal)`.
type Instance = (u32, u32, u32);

struct PairState {
    /// Trace of the schedule where "lower instance first" was observed.
    fwd: Option<ScheduleTrace>,
    /// Trace of the schedule with the opposite order.
    rev: Option<ScheduleTrace>,
    race: OracleRace,
}

impl PairState {
    fn racy(&self) -> bool {
        self.fwd.is_some() && self.rev.is_some()
    }
}

/// Exhaustively explores the ITS schedule space of `spec` (up to the
/// bounds) and returns the ground-truth verdict.
///
/// # Panics
/// Panics if a launch faults — the spec family is fault-free by
/// construction, so a fault is a generator or simulator bug.
#[must_use]
pub fn explore(spec: &KernelSpec, cfg: &ExploreConfig) -> OracleReport {
    let kernel = spec.build();
    let (grid, block_dim) = spec.grid_block();
    let mut enumerator = EnumeratingScheduler::new(cfg.max_decisions);
    let mut pairs: HashMap<(Instance, Instance), PairState> = HashMap::new();
    let hit_cap;

    loop {
        let mut gpu = Gpu::new(oracle_gpu_config(cfg.max_steps));
        let buf = gpu
            .alloc(usize::from(NUM_SLOTS))
            .expect("oracle pool allocation");
        let mut obs = Observer::default();
        let mut rec = RecordingScheduler::new(&mut enumerator);
        gpu.launch_with(&kernel, grid, block_dim, &[buf], &mut obs, &mut rec)
            .unwrap_or_else(|e| {
                panic!(
                    "oracle kernel {} faulted during enumeration: {e}",
                    spec.to_compact_string()
                )
            });
        let trace = rec.into_trace();

        accumulate_orders(&obs.events, &trace, &mut pairs);

        if !enumerator.advance() {
            hit_cap = false;
            break;
        }
        if enumerator.schedules_completed() >= cfg.max_schedules {
            hit_cap = true;
            break;
        }
    }

    // Deterministic witness choice: the racy pair with the smallest key.
    let mut racy_pairs: Vec<(&(Instance, Instance), &PairState)> =
        pairs.iter().filter(|(_, p)| p.racy()).collect();
    racy_pairs.sort_by_key(|(k, _)| **k);
    let (witness, counter_witness) = racy_pairs
        .first()
        .map_or((None, None), |(_, p)| (p.fwd.clone(), p.rev.clone()));

    let races: Vec<OracleRace> = pairs
        .into_values()
        .filter(PairState::racy)
        .map(|p| p.race)
        .collect();
    OracleReport {
        racy: !races.is_empty(),
        complete: !hit_cap && !enumerator.truncated(),
        schedules: enumerator.schedules_completed(),
        races,
        witness,
        counter_witness,
    }
}

/// Folds one schedule's event sequence into the cross-schedule order map,
/// remembering `trace` as the witness for each newly observed direction.
fn accumulate_orders(
    events: &[ObservedAccess],
    trace: &ScheduleTrace,
    pairs: &mut HashMap<(Instance, Instance), PairState>,
) {
    // Per-thread ordinals; the family's control flow is
    // schedule-independent, so ordinals identify instances across runs.
    let mut ordinals: HashMap<(u32, u32), u32> = HashMap::new();
    let mut instances: Vec<(Instance, &ObservedAccess)> = Vec::with_capacity(events.len());
    for e in events {
        let ord = ordinals.entry((e.block, e.tid_in_block)).or_insert(0);
        instances.push(((e.block, e.tid_in_block, *ord), e));
        *ord += 1;
    }

    for i in 0..instances.len() {
        for j in (i + 1)..instances.len() {
            let (ia, ea) = instances[i];
            let (ib, eb) = instances[j];
            if !conflicts(ea, eb) {
                continue;
            }
            // Canonical unordered key; `fwd` means "lower instance first".
            let (key, first_is_lower) = if ia <= ib { ((ia, ib), true) } else { ((ib, ia), false) };
            let st = pairs.entry(key).or_insert_with(|| PairState {
                fwd: None,
                rev: None,
                race: classify(ea, eb),
            });
            if ea.step == eb.step {
                // Same warp split: simultaneous conflicting accesses
                // (cannot occur in the current family, handled for
                // robustness).
                st.fwd.get_or_insert_with(|| trace.clone());
                st.rev.get_or_insert_with(|| trace.clone());
            } else if first_is_lower {
                st.fwd.get_or_insert_with(|| trace.clone());
            } else {
                st.rev.get_or_insert_with(|| trace.clone());
            }
        }
    }
}

/// Paper-faithful conflict predicate over two dynamic accesses.
fn conflicts(a: &ObservedAccess, b: &ObservedAccess) -> bool {
    if a.block == b.block && a.tid_in_block == b.tid_in_block {
        return false;
    }
    if a.addr != b.addr {
        return false;
    }
    if !a.is_write && !b.is_write {
        return false;
    }
    // An atomic paired with another atomic or with a plain *load* is safe
    // at sufficient scope: RMWs mutually exclude, and word-sized loads of
    // an atomically-updated word are hardware-atomic (check P6 — the flag
    // polling idiom). Only an insufficient (.block) scope used across
    // blocks leaves a race (R1). A plain *store* on either side always
    // conflicts.
    let atomic_protected = (a.is_atomic && (b.is_atomic || !b.is_write))
        || (b.is_atomic && (a.is_atomic || !a.is_write));
    if atomic_protected {
        return a.block != b.block
            && (a.scope == Some(Scope::Block) || b.scope == Some(Scope::Block));
    }
    true
}

/// Classifies a racing pair by accessor relationship (Table 4 codes).
fn classify(a: &ObservedAccess, b: &ObservedAccess) -> OracleRace {
    const WARP: u32 = gpu_sim::ir::WARP_SIZE as u32;
    let kind = if a.block != b.block {
        // A cross-block race involving a block-scope atomic is the
        // insufficient-scope class (R1); any other cross-block race is a
        // plain device race (R4).
        if a.scope == Some(Scope::Block) || b.scope == Some(Scope::Block) {
            "AS"
        } else {
            "DR"
        }
    } else if a.tid_in_block / WARP == b.tid_in_block / WARP {
        "ITS"
    } else {
        "BR"
    };
    OracleRace {
        kind,
        addr: a.addr,
        a: (a.block, a.tid_in_block, a.pc),
        b: (b.block, b.tid_in_block, b.pc),
    }
}

/// The GPU configuration for litmus runs: one SM per actor (so each
/// cross-block actor owns a private L1 and weak visibility has cross-SM
/// effects to enumerate), load values recorded for assertion evaluation,
/// and — when `weak` — the versioned relaxed-visibility memory model.
#[must_use]
pub fn litmus_gpu_config(num_actors: u32, max_steps: u64, weak: bool) -> GpuConfig {
    GpuConfig {
        num_sms: num_actors.max(2) as usize,
        mem_words: 64,
        max_steps,
        mode: ExecMode::Its,
        seed: 0,
        its_split_prob: 0.3,
        weak_visibility: weak,
        record_load_values: true,
        ..GpuConfig::default()
    }
}

/// Verdict on the spec's final-state assertion clause over the explored
/// schedule × visibility space.
#[derive(Debug, Clone)]
pub struct AssertionVerdict {
    /// Some run satisfied every conjunct.
    pub reachable: bool,
    /// Some *sequentially consistent* run satisfied it (a run whose loads
    /// are all explained by a single coherent interleaving).
    pub sc_reachable: bool,
    /// Trace of the first satisfying run.
    pub witness: Option<ScheduleTrace>,
}

/// One distinct final register state of a litmus run.
#[derive(Debug, Clone)]
pub struct LitmusOutcome {
    /// Reached by at least one SC-equivalent run.
    pub sc: bool,
    /// Reached by at least one non-SC (weak-visibility) run.
    pub weak: bool,
    /// Trace of the first run reaching this outcome.
    pub witness: ScheduleTrace,
}

/// The litmus oracle's verdict: race analysis (as in [`OracleReport`])
/// plus the weak-memory outcome census and the assertion verdict.
#[derive(Debug, Clone)]
pub struct LitmusReport {
    pub racy: bool,
    pub complete: bool,
    pub schedules: u64,
    pub races: Vec<OracleRace>,
    pub witness: Option<ScheduleTrace>,
    pub counter_witness: Option<ScheduleTrace>,
    /// Distinct final register states, keyed by the observed values of
    /// every plain load, concatenated in (actor, program-order) order.
    pub outcomes: BTreeMap<Vec<u32>, LitmusOutcome>,
    /// `None` when the spec has no assertion clause.
    pub assertion: Option<AssertionVerdict>,
}

impl LitmusReport {
    /// Race kind codes, deduplicated, sorted.
    #[must_use]
    pub fn kinds(&self) -> Vec<&'static str> {
        let mut k: Vec<&'static str> = self.races.iter().map(|r| r.kind).collect();
        k.sort_unstable();
        k.dedup();
        k
    }

    /// Whether any register outcome is reachable *only* through weak
    /// visibility — the signature of a weak-memory anomaly.
    #[must_use]
    pub fn has_weak_only_outcome(&self) -> bool {
        self.outcomes.values().any(|o| o.weak && !o.sc)
    }
}

/// Exhaustively explores the schedule × visibility space of a litmus spec
/// under the eager-invisible enumerator. With `weak = false` the machine
/// keeps the legacy (per-run coherent L1) model and the exploration
/// degrades to pure interleaving enumeration over visible operations.
///
/// # Panics
/// Panics on malformed specs (validate first) or simulator faults.
#[must_use]
pub fn explore_litmus(spec: &LitmusSpec, cfg: &ExploreConfig, weak: bool) -> LitmusReport {
    spec.validate()
        .unwrap_or_else(|e| panic!("explore_litmus on invalid spec: {e}"));
    let kernel = spec.build();
    let (grid, block_dim) = spec.grid_block();
    let n_actors = spec.actors.len();
    let mut enumerator = EnumeratingScheduler::new_eager(cfg.max_decisions);
    let mut pairs: HashMap<(Instance, Instance), PairState> = HashMap::new();
    let mut outcomes: BTreeMap<Vec<u32>, LitmusOutcome> = BTreeMap::new();
    let mut assertion = (!spec.assertion.is_empty()).then_some(AssertionVerdict {
        reachable: false,
        sc_reachable: false,
        witness: None,
    });
    let hit_cap;

    loop {
        let mut gpu = Gpu::new(litmus_gpu_config(n_actors as u32, cfg.max_steps, weak));
        let buf = gpu
            .alloc(usize::from(NUM_SLOTS))
            .expect("litmus pool allocation");
        let mut obs = Observer::default();
        let mut rec = RecordingScheduler::new(&mut enumerator);
        gpu.launch_with(&kernel, grid, block_dim, &[buf], &mut obs, &mut rec)
            .unwrap_or_else(|e| {
                panic!(
                    "litmus kernel {} faulted during enumeration: {e}",
                    spec.to_compact_string()
                )
            });
        let trace = rec.into_trace();

        accumulate_orders(&obs.events, &trace, &mut pairs);

        let regs = collect_regs(spec, &obs, buf);
        let sc = run_is_sc(&kernel, &obs, buf);
        let key: Vec<u32> = regs.iter().flatten().copied().collect();
        let out = outcomes.entry(key).or_insert_with(|| LitmusOutcome {
            sc: false,
            weak: false,
            witness: trace.clone(),
        });
        if sc {
            out.sc = true;
        } else {
            out.weak = true;
        }

        if let Some(av) = &mut assertion {
            let final_mem = gpu.read_slice(buf, usize::from(NUM_SLOTS));
            if eval_assertion(spec, &regs, &final_mem) {
                av.reachable = true;
                av.sc_reachable |= sc;
                av.witness.get_or_insert_with(|| trace.clone());
            }
        }

        if !enumerator.advance() {
            hit_cap = false;
            break;
        }
        if enumerator.schedules_completed() >= cfg.max_schedules {
            hit_cap = true;
            break;
        }
    }

    let mut racy_pairs: Vec<(&(Instance, Instance), &PairState)> =
        pairs.iter().filter(|(_, p)| p.racy()).collect();
    racy_pairs.sort_by_key(|(k, _)| **k);
    let (witness, counter_witness) = racy_pairs
        .first()
        .map_or((None, None), |(_, p)| (p.fwd.clone(), p.rev.clone()));
    let races: Vec<OracleRace> = pairs
        .into_values()
        .filter(PairState::racy)
        .map(|p| p.race)
        .collect();
    LitmusReport {
        racy: !races.is_empty(),
        complete: !hit_cap && !enumerator.truncated(),
        schedules: enumerator.schedules_completed(),
        races,
        witness,
        counter_witness,
        outcomes,
        assertion,
    }
}

/// Groups a run's observed load values by actor, in program order. The
/// family's control flow is schedule-independent, so every run of a spec
/// yields `spec.num_loads(a)` values for actor `a`.
fn collect_regs(spec: &LitmusSpec, obs: &Observer, buf: u32) -> Vec<Vec<u32>> {
    let mut regs: Vec<Vec<u32>> = vec![Vec::new(); spec.actors.len()];
    for l in &obs.loads {
        let actor = match spec.placement {
            Placement::CrossBlock => l.block as usize,
            Placement::SameWarp => l.tid_in_block as usize,
        };
        debug_assert!(l.addr >= buf && actor < regs.len());
        regs[actor].push(l.value);
    }
    for (a, r) in regs.iter().enumerate() {
        debug_assert_eq!(r.len(), spec.num_loads(a), "load count drifted");
    }
    regs
}

/// Whether a run is explainable by a single coherent interleaving: replay
/// the observed event order through a sequentially consistent shadow
/// memory (using the kernel's own code to interpret each access) and
/// check every load saw exactly the shadow value. A mismatch means some
/// load took a stale or early line — weak-visibility behaviour.
fn run_is_sc(kernel: &Kernel, obs: &Observer, buf: u32) -> bool {
    let mut shadow = [0u32; NUM_SLOTS as usize];
    let mut next_load = 0usize;
    for e in &obs.events {
        let slot = ((e.addr - buf) / 4) as usize;
        match &kernel.code[e.pc] {
            Instr::St { .. } => shadow[slot] = 1,
            Instr::Atom { op: AtomOp::Add, .. } => shadow[slot] += 1,
            Instr::Atom { op: AtomOp::Exch, .. } => shadow[slot] = 1,
            Instr::Atom { op, .. } => unreachable!("litmus family has no {op:?}"),
            Instr::Ld { .. } => {
                let observed = obs.loads[next_load].value;
                next_load += 1;
                if observed != shadow[slot] {
                    return false;
                }
            }
            other => unreachable!("non-memory instr {other:?} in event stream"),
        }
    }
    true
}

/// Evaluates the assertion conjunction against one run's registers and
/// final coherent memory.
fn eval_assertion(spec: &LitmusSpec, regs: &[Vec<u32>], final_mem: &[u32]) -> bool {
    spec.assertion.iter().all(|c| match *c {
        Cond::Reg { actor, load, value } => regs[actor as usize][load as usize] == value,
        Cond::Mem { loc, value } => final_mem[loc as usize] == value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Op, Placement};

    fn sw(actor0: Vec<Op>, actor1: Vec<Op>) -> KernelSpec {
        KernelSpec {
            placement: Placement::SameWarp,
            actors: [actor0, actor1],
        }
    }

    fn cb(actor0: Vec<Op>, actor1: Vec<Op>) -> KernelSpec {
        KernelSpec {
            placement: Placement::CrossBlock,
            actors: [actor0, actor1],
        }
    }

    #[test]
    fn same_warp_store_load_is_an_its_race() {
        let r = explore(
            &sw(vec![Op::Store { slot: 0 }], vec![Op::Load { slot: 0 }]),
            &ExploreConfig::default(),
        );
        assert!(r.complete);
        assert!(r.racy);
        assert_eq!(r.kinds(), vec!["ITS"]);
        assert!(r.witness.is_some());
    }

    #[test]
    fn cross_block_store_store_is_a_dr_race() {
        let r = explore(
            &cb(vec![Op::Store { slot: 2 }], vec![Op::Store { slot: 2 }]),
            &ExploreConfig::default(),
        );
        assert!(r.complete);
        assert!(r.racy);
        assert_eq!(r.kinds(), vec!["DR"]);
    }

    #[test]
    fn block_scope_atomics_across_blocks_are_an_as_race() {
        let a = |scope| Op::AtomicAdd { slot: 1, scope };
        let r = explore(
            &cb(vec![a(Scope::Block)], vec![a(Scope::Block)]),
            &ExploreConfig::default(),
        );
        assert!(r.complete && r.racy);
        assert_eq!(r.kinds(), vec!["AS"]);

        // Device scope is sufficient: both orders occur, but atomics
        // synchronize — clean.
        let r = explore(
            &cb(vec![a(Scope::Device)], vec![a(Scope::Device)]),
            &ExploreConfig::default(),
        );
        assert!(r.complete);
        assert!(!r.racy);
    }

    #[test]
    fn disjoint_slots_and_read_only_sharing_are_clean() {
        let r = explore(
            &sw(vec![Op::Store { slot: 0 }], vec![Op::Store { slot: 1 }]),
            &ExploreConfig::default(),
        );
        assert!(r.complete && !r.racy);
        let r = explore(
            &cb(vec![Op::Load { slot: 0 }], vec![Op::Load { slot: 0 }]),
            &ExploreConfig::default(),
        );
        assert!(r.complete && !r.racy);
    }

    #[test]
    fn aligned_syncwarp_orders_the_pair() {
        // store ; syncwarp   ||   syncwarp ; load  — the barrier blocks
        // the loader until the storer arrives, so only one order is
        // feasible: clean.
        let r = explore(
            &sw(
                vec![Op::Store { slot: 0 }, Op::SyncWarp],
                vec![Op::SyncWarp, Op::Load { slot: 0 }],
            ),
            &ExploreConfig::default(),
        );
        assert!(r.complete, "space must still be fully covered");
        assert!(!r.racy, "barrier-ordered pair must not be a race");

        // Both accesses on the same side of the barrier: still racy.
        let r = explore(
            &sw(
                vec![Op::Store { slot: 0 }, Op::SyncWarp],
                vec![Op::Load { slot: 0 }, Op::SyncWarp],
            ),
            &ExploreConfig::default(),
        );
        assert!(r.complete && r.racy);
    }

    #[test]
    fn aligned_syncthreads_orders_same_warp_actors_too() {
        let r = explore(
            &sw(
                vec![Op::Store { slot: 3 }, Op::SyncThreads],
                vec![Op::SyncThreads, Op::Load { slot: 3 }],
            ),
            &ExploreConfig::default(),
        );
        assert!(r.complete && !r.racy);
    }

    #[test]
    fn schedule_count_is_exactly_the_interleaving_count() {
        fn binomial(n: u64, k: u64) -> u64 {
            let mut r = 1u64;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        }
        // Cross-block: the two single-thread blocks run independent
        // straight-line paths of lengths m and n (prologue included), and
        // the schedule space is every merge of the two sequences:
        // C(m + n, m). The enumerator must count exactly that many.
        let spec = cb(
            vec![Op::Store { slot: 0 }, Op::Load { slot: 1 }],
            vec![Op::Load { slot: 0 }],
        );
        let (m, n) = spec.path_lengths();
        let r = explore(&spec, &ExploreConfig::default());
        assert!(r.complete);
        assert_eq!(
            r.schedules,
            binomial((m + n) as u64, m as u64),
            "cross-block schedule space must be all C({m}+{n}, {m}) merges"
        );

        // Same-warp: the 4-instruction prologue is converged (a single
        // split with one PC — no choice), so only the two diverged
        // regions interleave: C(r0 + r1, r0) with region lengths
        // r = src-imm? + ops + exit.
        let spec = sw(
            vec![Op::Store { slot: 0 }, Op::Load { slot: 1 }],
            vec![Op::Load { slot: 0 }],
        );
        let r0 = 1 + 2 + 1; // imm + 2 ops + exit
        let r1 = 2; // load + exit
        let rep = explore(&spec, &ExploreConfig::default());
        assert!(rep.complete);
        assert_eq!(rep.schedules, binomial((r0 + r1) as u64, r0 as u64));
    }

    #[test]
    fn truncation_is_reported_as_incomplete() {
        let spec = cb(
            vec![Op::Store { slot: 0 }, Op::Load { slot: 1 }],
            vec![Op::Load { slot: 0 }],
        );
        let r = explore(
            &spec,
            &ExploreConfig {
                max_schedules: 10,
                ..ExploreConfig::default()
            },
        );
        assert!(!r.complete);
        assert_eq!(r.schedules, 10);
    }
}
