//! Versioned regression corpus of oracle-checked kernels.
//!
//! Every spec that ever produced an interesting verdict — a race class, an
//! explained detector divergence, a shrunk campaign failure — is pinned
//! here as one line: the spec, the oracle verdict, the witness schedule
//! trace (if racy), and the iGUARD verdict that was observed. A tier-1 test
//! replays the whole file deterministically, so a detector or scheduler
//! regression flips a recorded line instead of hiding behind fresh random
//! kernels.
//!
//! Line format (`|`-separated, `#` comments, blank lines ignored):
//!
//! ```text
//! # oracle-corpus v1
//! <spec> | racy|clean | <witness trace or -> | iguard:flagged|clean
//! ```

use gpu_sim::sched::{ReplayScheduler, ScheduleTrace};

use crate::diff::{diff_litmus, diff_spec, DiffConfig, LitmusDiffReport, Verdict};
use crate::explore::{litmus_gpu_config, oracle_gpu_config};
use crate::litmus::LitmusSpec;
use crate::observer::Observer;
use crate::spec::{KernelSpec, NUM_SLOTS};

/// First line of every corpus file; bump on format changes.
pub const CORPUS_HEADER: &str = "# oracle-corpus v1";

/// One pinned kernel + expected verdicts.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    pub spec: KernelSpec,
    /// Ground-truth oracle verdict at record time.
    pub racy: bool,
    /// Schedule trace exhibiting the race (racy entries only).
    pub witness: Option<ScheduleTrace>,
    /// Whether iGUARD flagged the kernel at record time.
    pub iguard_flagged: bool,
}

/// Runs the full differential check and pins its outcome as a corpus entry.
#[must_use]
pub fn entry_for(spec: &KernelSpec, cfg: &DiffConfig) -> CorpusEntry {
    let r = diff_spec(spec, cfg);
    CorpusEntry {
        spec: spec.clone(),
        racy: r.oracle.racy,
        witness: r.oracle.witness,
        iguard_flagged: r.iguard == Verdict::Flagged,
    }
}

/// Serializes entries to the versioned text format.
#[must_use]
pub fn format(entries: &[CorpusEntry]) -> String {
    let mut out = String::from(CORPUS_HEADER);
    out.push('\n');
    for e in entries {
        out.push_str(&format!(
            "{} | {} | {} | iguard:{}\n",
            e.spec.to_compact_string(),
            if e.racy { "racy" } else { "clean" },
            e.witness
                .as_ref()
                .map_or_else(|| "-".to_string(), ScheduleTrace::to_compact_string),
            if e.iguard_flagged { "flagged" } else { "clean" },
        ));
    }
    out
}

/// Parses a corpus file; rejects unknown versions and malformed lines.
pub fn parse(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == CORPUS_HEADER => {}
        other => return Err(format!("bad corpus header: {other:?}")),
    }
    let mut entries = Vec::new();
    for (n, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields, got {}", n + 2, fields.len()));
        }
        let spec = KernelSpec::parse(fields[0]).map_err(|e| format!("line {}: {e}", n + 2))?;
        let racy = match fields[1] {
            "racy" => true,
            "clean" => false,
            other => return Err(format!("line {}: bad verdict {other:?}", n + 2)),
        };
        let witness = if fields[2] == "-" {
            None
        } else {
            Some(ScheduleTrace::parse(fields[2]).map_err(|e| format!("line {}: {e}", n + 2))?)
        };
        let iguard_flagged = match fields[3] {
            "iguard:flagged" => true,
            "iguard:clean" => false,
            other => return Err(format!("line {}: bad iguard verdict {other:?}", n + 2)),
        };
        entries.push(CorpusEntry {
            spec,
            racy,
            witness,
            iguard_flagged,
        });
    }
    Ok(entries)
}

/// Replays one entry against today's code: the oracle verdict, the iGUARD
/// verdict, and the witness trace must all still hold.
pub fn verify(entry: &CorpusEntry, cfg: &DiffConfig) -> Result<(), String> {
    let label = entry.spec.to_compact_string();

    // The witness trace must still drive a full launch to completion.
    if let Some(trace) = &entry.witness {
        let mut gpu = gpu_sim::machine::Gpu::new(oracle_gpu_config(cfg.explore.max_steps));
        let buf = gpu
            .alloc(NUM_SLOTS as usize)
            .map_err(|e| format!("{label}: alloc failed: {e}"))?;
        let (grid, block) = entry.spec.grid_block();
        let kernel = entry.spec.build();
        let mut obs = Observer::default();
        let mut sched = ReplayScheduler::new(trace.clone());
        gpu.launch_with(&kernel, grid, block, &[buf], &mut obs, &mut sched)
            .map_err(|e| format!("{label}: witness replay failed: {e}"))?;
        if !sched.finished() {
            return Err(format!("{label}: witness trace not fully consumed"));
        }
    }

    let r = diff_spec(&entry.spec, cfg);
    if r.oracle.racy != entry.racy {
        return Err(format!(
            "{label}: oracle verdict changed: recorded {}, now {}",
            entry.racy, r.oracle.racy
        ));
    }
    let now_flagged = r.iguard == Verdict::Flagged;
    if now_flagged != entry.iguard_flagged {
        return Err(format!(
            "{label}: iguard verdict changed: recorded {}, now {}",
            entry.iguard_flagged, now_flagged
        ));
    }
    Ok(())
}

// ========================= litmus corpus (v2) =========================
//
// Line format (`|`-separated, `#` comments, blank lines ignored):
//
// ```text
// # litmus-corpus v2
// <spec> | racy|clean | assert:-|no|sc|weak | <witness or -> |
//     iguard:flagged|clean | barracuda:flagged|clean|unsupported |
//     <expl,expl,... or ->
// ```
//
// `assert:` pins the ground-truth assertion verdict: `-` no clause, `no`
// unreachable, `sc` reachable under a sequentially consistent run, `weak`
// reachable only through relaxed visibility. The explanation list pins
// every divergence class (`iguard:FN:fence-scope-approximation`, ...);
// verification fails on any UNEXPLAINED entry.

/// First line of every litmus corpus file.
pub const LITMUS_CORPUS_HEADER: &str = "# litmus-corpus v2";

/// Ground-truth assertion verdict tag of a litmus corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertionTag {
    /// Spec has no assertion clause.
    None,
    /// Forbidden state unreachable in the whole explored space.
    Unreachable,
    /// Reachable under a sequentially consistent run.
    Sc,
    /// Reachable only through relaxed visibility — a weak-memory anomaly.
    WeakOnly,
}

impl AssertionTag {
    fn as_str(self) -> &'static str {
        match self {
            AssertionTag::None => "-",
            AssertionTag::Unreachable => "no",
            AssertionTag::Sc => "sc",
            AssertionTag::WeakOnly => "weak",
        }
    }

    fn parse(s: &str) -> Option<AssertionTag> {
        match s {
            "-" => Some(AssertionTag::None),
            "no" => Some(AssertionTag::Unreachable),
            "sc" => Some(AssertionTag::Sc),
            "weak" => Some(AssertionTag::WeakOnly),
            _ => None,
        }
    }
}

/// One pinned litmus test + expected verdicts.
#[derive(Debug, Clone)]
pub struct LitmusCorpusEntry {
    pub spec: LitmusSpec,
    pub racy: bool,
    pub assertion: AssertionTag,
    /// Race witness if racy, else the assertion witness if reachable.
    pub witness: Option<ScheduleTrace>,
    pub iguard_flagged: bool,
    pub barracuda: Verdict,
    /// Sorted, deduplicated `detector:FN|FP:reason` strings.
    pub explanations: Vec<String>,
}

fn assertion_tag(r: &LitmusDiffReport) -> AssertionTag {
    match &r.oracle.assertion {
        None => AssertionTag::None,
        Some(a) if !a.reachable => AssertionTag::Unreachable,
        Some(a) if a.sc_reachable => AssertionTag::Sc,
        Some(_) => AssertionTag::WeakOnly,
    }
}

fn explanation_strings(r: &LitmusDiffReport) -> Vec<String> {
    let mut ex: Vec<String> = r
        .divergences
        .iter()
        .map(|d| {
            format!(
                "{}:{}:{}",
                d.detector,
                if d.false_negative { "FN" } else { "FP" },
                d.explanation.unwrap_or("UNEXPLAINED")
            )
        })
        .collect();
    ex.sort();
    ex.dedup();
    ex
}

/// Runs the litmus differential check and pins its outcome.
#[must_use]
pub fn entry_for_litmus(spec: &LitmusSpec, cfg: &DiffConfig) -> LitmusCorpusEntry {
    let r = diff_litmus(spec, cfg);
    let witness = r
        .oracle
        .witness
        .clone()
        .or_else(|| r.oracle.assertion.as_ref().and_then(|a| a.witness.clone()));
    LitmusCorpusEntry {
        spec: spec.clone(),
        racy: r.oracle.racy,
        assertion: assertion_tag(&r),
        witness,
        iguard_flagged: r.iguard == Verdict::Flagged,
        barracuda: r.barracuda,
        explanations: explanation_strings(&r),
    }
}

/// Serializes litmus entries to the versioned text format.
#[must_use]
pub fn format_litmus(entries: &[LitmusCorpusEntry]) -> String {
    let mut out = String::from(LITMUS_CORPUS_HEADER);
    out.push('\n');
    for e in entries {
        let ba = match e.barracuda {
            Verdict::Flagged => "flagged",
            Verdict::Clean => "clean",
            Verdict::Unsupported => "unsupported",
        };
        out.push_str(&format!(
            "{} | {} | assert:{} | {} | iguard:{} | barracuda:{ba} | {}\n",
            e.spec.to_compact_string(),
            if e.racy { "racy" } else { "clean" },
            e.assertion.as_str(),
            e.witness
                .as_ref()
                .map_or_else(|| "-".to_string(), ScheduleTrace::to_compact_string),
            if e.iguard_flagged { "flagged" } else { "clean" },
            if e.explanations.is_empty() {
                "-".to_string()
            } else {
                e.explanations.join(",")
            },
        ));
    }
    out
}

/// Parses a litmus corpus file; rejects unknown versions and malformed
/// lines.
pub fn parse_litmus(text: &str) -> Result<Vec<LitmusCorpusEntry>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == LITMUS_CORPUS_HEADER => {}
        other => return Err(format!("bad litmus corpus header: {other:?}")),
    }
    let mut entries = Vec::new();
    for (n, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", n + 2);
        let fields: Vec<&str> = line.split('|').map(str::trim).collect();
        if fields.len() != 7 {
            return Err(at(format!("expected 7 fields, got {}", fields.len())));
        }
        let spec = LitmusSpec::parse(fields[0]).map_err(|e| at(e.to_string()))?;
        let racy = match fields[1] {
            "racy" => true,
            "clean" => false,
            other => return Err(at(format!("bad verdict {other:?}"))),
        };
        let assertion = fields[2]
            .strip_prefix("assert:")
            .and_then(AssertionTag::parse)
            .ok_or_else(|| at(format!("bad assertion tag {:?}", fields[2])))?;
        let witness = if fields[3] == "-" {
            None
        } else {
            Some(ScheduleTrace::parse(fields[3]).map_err(|e| at(e.to_string()))?)
        };
        let iguard_flagged = match fields[4] {
            "iguard:flagged" => true,
            "iguard:clean" => false,
            other => return Err(at(format!("bad iguard verdict {other:?}"))),
        };
        let barracuda = match fields[5] {
            "barracuda:flagged" => Verdict::Flagged,
            "barracuda:clean" => Verdict::Clean,
            "barracuda:unsupported" => Verdict::Unsupported,
            other => return Err(at(format!("bad barracuda verdict {other:?}"))),
        };
        let explanations = if fields[6] == "-" {
            Vec::new()
        } else {
            fields[6].split(',').map(str::to_string).collect()
        };
        entries.push(LitmusCorpusEntry {
            spec,
            racy,
            assertion,
            witness,
            iguard_flagged,
            barracuda,
            explanations,
        });
    }
    Ok(entries)
}

/// Replays one litmus entry against today's code: witness replay on the
/// weak-visibility machine, then a full re-diff whose verdicts, assertion
/// tag, and divergence classes must all still hold — and none of them may
/// be UNEXPLAINED.
pub fn verify_litmus(entry: &LitmusCorpusEntry, cfg: &DiffConfig) -> Result<(), String> {
    let label = entry.spec.to_compact_string();

    if let Some(trace) = &entry.witness {
        let mut gpu = gpu_sim::machine::Gpu::new(litmus_gpu_config(
            entry.spec.actors.len() as u32,
            cfg.explore.max_steps,
            true,
        ));
        let buf = gpu
            .alloc(NUM_SLOTS as usize)
            .map_err(|e| format!("{label}: alloc failed: {e}"))?;
        let (grid, block) = entry.spec.grid_block();
        let kernel = entry.spec.build();
        let mut obs = Observer::default();
        let mut sched = ReplayScheduler::new(trace.clone());
        gpu.launch_with(&kernel, grid, block, &[buf], &mut obs, &mut sched)
            .map_err(|e| format!("{label}: witness replay failed: {e}"))?;
        if !sched.finished() {
            return Err(format!("{label}: witness trace not fully consumed"));
        }
    }

    let r = diff_litmus(&entry.spec, cfg);
    if r.oracle.racy != entry.racy {
        return Err(format!(
            "{label}: oracle verdict changed: recorded {}, now {}",
            entry.racy, r.oracle.racy
        ));
    }
    let tag = assertion_tag(&r);
    if tag != entry.assertion {
        return Err(format!(
            "{label}: assertion verdict changed: recorded {}, now {}",
            entry.assertion.as_str(),
            tag.as_str()
        ));
    }
    let now_flagged = r.iguard == Verdict::Flagged;
    if now_flagged != entry.iguard_flagged {
        return Err(format!(
            "{label}: iguard verdict changed: recorded {}, now {}",
            entry.iguard_flagged, now_flagged
        ));
    }
    if r.barracuda != entry.barracuda {
        return Err(format!(
            "{label}: barracuda verdict changed: recorded {:?}, now {:?}",
            entry.barracuda, r.barracuda
        ));
    }
    let ex = explanation_strings(&r);
    if ex != entry.explanations {
        return Err(format!(
            "{label}: divergence classes changed: recorded [{}], now [{}]",
            entry.explanations.join(","),
            ex.join(",")
        ));
    }
    if ex.iter().any(|e| e.ends_with("UNEXPLAINED")) {
        return Err(format!("{label}: unexplained divergence pinned in corpus"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Op, Placement};

    fn racy_spec() -> KernelSpec {
        KernelSpec {
            placement: Placement::CrossBlock,
            actors: [vec![Op::Store { slot: 0 }], vec![Op::Load { slot: 0 }]],
        }
    }

    #[test]
    fn format_parse_roundtrip() {
        let cfg = DiffConfig::default();
        let entries = vec![
            entry_for(&racy_spec(), &cfg),
            entry_for(
                &KernelSpec {
                    placement: Placement::SameWarp,
                    actors: [vec![Op::Load { slot: 0 }], vec![Op::Load { slot: 0 }]],
                },
                &cfg,
            ),
        ];
        assert!(entries[0].racy && entries[0].witness.is_some());
        assert!(!entries[1].racy && entries[1].witness.is_none());
        let text = format(&entries);
        let back = parse(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].spec, entries[0].spec);
        assert_eq!(back[0].racy, entries[0].racy);
        assert_eq!(
            back[0].witness.as_ref().map(ScheduleTrace::digest),
            entries[0].witness.as_ref().map(ScheduleTrace::digest)
        );
        assert_eq!(back[1].iguard_flagged, entries[1].iguard_flagged);
    }

    #[test]
    fn recorded_entries_verify_against_current_code() {
        let cfg = DiffConfig::default();
        let e = entry_for(&racy_spec(), &cfg);
        verify(&e, &cfg).unwrap();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("no header\n").is_err());
        assert!(parse(&format!("{CORPUS_HEADER}\nonly | three | fields\n")).is_err());
        assert!(parse(&format!(
            "{CORPUS_HEADER}\nv1;CB;S0/L0 | maybe | - | iguard:flagged\n"
        ))
        .is_err());
    }

    #[test]
    fn litmus_format_parse_roundtrip_and_verify() {
        let cfg = DiffConfig::default();
        let racy = LitmusSpec::parse("v2;CB;Sx/Lx").unwrap();
        let mp = LitmusSpec::mp(crate::spec::Placement::CrossBlock, None);
        let entries = vec![entry_for_litmus(&racy, &cfg), entry_for_litmus(&mp, &cfg)];
        assert!(entries[0].racy && entries[0].witness.is_some());
        let text = format_litmus(&entries);
        let back = parse_litmus(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].spec, entries[0].spec);
        assert_eq!(back[0].racy, entries[0].racy);
        assert_eq!(back[0].assertion, entries[0].assertion);
        assert_eq!(back[0].barracuda, entries[0].barracuda);
        assert_eq!(back[0].explanations, entries[0].explanations);
        assert_eq!(
            back[0].witness.as_ref().map(ScheduleTrace::digest),
            entries[0].witness.as_ref().map(ScheduleTrace::digest)
        );
        for e in &back {
            verify_litmus(e, &cfg).unwrap();
        }
    }

    #[test]
    fn litmus_parse_rejects_garbage() {
        assert!(parse_litmus("no header\n").is_err());
        assert!(parse_litmus(&format!("{LITMUS_CORPUS_HEADER}\na | b | c\n")).is_err());
        assert!(parse_litmus(&format!(
            "{LITMUS_CORPUS_HEADER}\nv2;CB;Sx/Lx | racy | assert:maybe | - | iguard:clean | barracuda:clean | -\n"
        ))
        .is_err());
        assert!(parse_litmus(&format!(
            "{LITMUS_CORPUS_HEADER}\nv2;CB;Sx/Lx | racy | assert:- | - | iguard:clean | barracuda:odd | -\n"
        ))
        .is_err());
    }
}
