//! Versioned regression corpus of oracle-checked kernels.
//!
//! Every spec that ever produced an interesting verdict — a race class, an
//! explained detector divergence, a shrunk campaign failure — is pinned
//! here as one line: the spec, the oracle verdict, the witness schedule
//! trace (if racy), and the iGUARD verdict that was observed. A tier-1 test
//! replays the whole file deterministically, so a detector or scheduler
//! regression flips a recorded line instead of hiding behind fresh random
//! kernels.
//!
//! Line format (`|`-separated, `#` comments, blank lines ignored):
//!
//! ```text
//! # oracle-corpus v1
//! <spec> | racy|clean | <witness trace or -> | iguard:flagged|clean
//! ```

use gpu_sim::sched::{ReplayScheduler, ScheduleTrace};

use crate::diff::{diff_spec, DiffConfig, Verdict};
use crate::explore::oracle_gpu_config;
use crate::observer::Observer;
use crate::spec::{KernelSpec, NUM_SLOTS};

/// First line of every corpus file; bump on format changes.
pub const CORPUS_HEADER: &str = "# oracle-corpus v1";

/// One pinned kernel + expected verdicts.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    pub spec: KernelSpec,
    /// Ground-truth oracle verdict at record time.
    pub racy: bool,
    /// Schedule trace exhibiting the race (racy entries only).
    pub witness: Option<ScheduleTrace>,
    /// Whether iGUARD flagged the kernel at record time.
    pub iguard_flagged: bool,
}

/// Runs the full differential check and pins its outcome as a corpus entry.
#[must_use]
pub fn entry_for(spec: &KernelSpec, cfg: &DiffConfig) -> CorpusEntry {
    let r = diff_spec(spec, cfg);
    CorpusEntry {
        spec: spec.clone(),
        racy: r.oracle.racy,
        witness: r.oracle.witness,
        iguard_flagged: r.iguard == Verdict::Flagged,
    }
}

/// Serializes entries to the versioned text format.
#[must_use]
pub fn format(entries: &[CorpusEntry]) -> String {
    let mut out = String::from(CORPUS_HEADER);
    out.push('\n');
    for e in entries {
        out.push_str(&format!(
            "{} | {} | {} | iguard:{}\n",
            e.spec.to_compact_string(),
            if e.racy { "racy" } else { "clean" },
            e.witness
                .as_ref()
                .map_or_else(|| "-".to_string(), ScheduleTrace::to_compact_string),
            if e.iguard_flagged { "flagged" } else { "clean" },
        ));
    }
    out
}

/// Parses a corpus file; rejects unknown versions and malformed lines.
pub fn parse(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == CORPUS_HEADER => {}
        other => return Err(format!("bad corpus header: {other:?}")),
    }
    let mut entries = Vec::new();
    for (n, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields, got {}", n + 2, fields.len()));
        }
        let spec = KernelSpec::parse(fields[0]).map_err(|e| format!("line {}: {e}", n + 2))?;
        let racy = match fields[1] {
            "racy" => true,
            "clean" => false,
            other => return Err(format!("line {}: bad verdict {other:?}", n + 2)),
        };
        let witness = if fields[2] == "-" {
            None
        } else {
            Some(ScheduleTrace::parse(fields[2]).map_err(|e| format!("line {}: {e}", n + 2))?)
        };
        let iguard_flagged = match fields[3] {
            "iguard:flagged" => true,
            "iguard:clean" => false,
            other => return Err(format!("line {}: bad iguard verdict {other:?}", n + 2)),
        };
        entries.push(CorpusEntry {
            spec,
            racy,
            witness,
            iguard_flagged,
        });
    }
    Ok(entries)
}

/// Replays one entry against today's code: the oracle verdict, the iGUARD
/// verdict, and the witness trace must all still hold.
pub fn verify(entry: &CorpusEntry, cfg: &DiffConfig) -> Result<(), String> {
    let label = entry.spec.to_compact_string();

    // The witness trace must still drive a full launch to completion.
    if let Some(trace) = &entry.witness {
        let mut gpu = gpu_sim::machine::Gpu::new(oracle_gpu_config(cfg.explore.max_steps));
        let buf = gpu
            .alloc(NUM_SLOTS as usize)
            .map_err(|e| format!("{label}: alloc failed: {e}"))?;
        let (grid, block) = entry.spec.grid_block();
        let kernel = entry.spec.build();
        let mut obs = Observer::default();
        let mut sched = ReplayScheduler::new(trace.clone());
        gpu.launch_with(&kernel, grid, block, &[buf], &mut obs, &mut sched)
            .map_err(|e| format!("{label}: witness replay failed: {e}"))?;
        if !sched.finished() {
            return Err(format!("{label}: witness trace not fully consumed"));
        }
    }

    let r = diff_spec(&entry.spec, cfg);
    if r.oracle.racy != entry.racy {
        return Err(format!(
            "{label}: oracle verdict changed: recorded {}, now {}",
            entry.racy, r.oracle.racy
        ));
    }
    let now_flagged = r.iguard == Verdict::Flagged;
    if now_flagged != entry.iguard_flagged {
        return Err(format!(
            "{label}: iguard verdict changed: recorded {}, now {}",
            entry.iguard_flagged, now_flagged
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Op, Placement};

    fn racy_spec() -> KernelSpec {
        KernelSpec {
            placement: Placement::CrossBlock,
            actors: [vec![Op::Store { slot: 0 }], vec![Op::Load { slot: 0 }]],
        }
    }

    #[test]
    fn format_parse_roundtrip() {
        let cfg = DiffConfig::default();
        let entries = vec![
            entry_for(&racy_spec(), &cfg),
            entry_for(
                &KernelSpec {
                    placement: Placement::SameWarp,
                    actors: [vec![Op::Load { slot: 0 }], vec![Op::Load { slot: 0 }]],
                },
                &cfg,
            ),
        ];
        assert!(entries[0].racy && entries[0].witness.is_some());
        assert!(!entries[1].racy && entries[1].witness.is_none());
        let text = format(&entries);
        let back = parse(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].spec, entries[0].spec);
        assert_eq!(back[0].racy, entries[0].racy);
        assert_eq!(
            back[0].witness.as_ref().map(ScheduleTrace::digest),
            entries[0].witness.as_ref().map(ScheduleTrace::digest)
        );
        assert_eq!(back[1].iguard_flagged, entries[1].iguard_flagged);
    }

    #[test]
    fn recorded_entries_verify_against_current_code() {
        let cfg = DiffConfig::default();
        let e = entry_for(&racy_spec(), &cfg);
        verify(&e, &cfg).unwrap();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("no header\n").is_err());
        assert!(parse(&format!("{CORPUS_HEADER}\nonly | three | fields\n")).is_err());
        assert!(parse(&format!(
            "{CORPUS_HEADER}\nv1;CB;S0/L0 | maybe | - | iguard:flagged\n"
        ))
        .is_err());
    }
}
