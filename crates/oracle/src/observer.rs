//! A minimal hook recording the dynamic global-memory access sequence.
//!
//! The oracle attaches this directly to the GPU (no NVBit layer, no
//! detector): ground truth needs the *order of accesses*, nothing else.
//! Scheduling decisions never depend on attached hooks — hooks only charge
//! the clock — so a schedule trace recorded under the observer replays
//! identically under `Instrumented<Iguard>` or any other tool.

use gpu_sim::hook::{AccessKind, Hook, MemAccess};
use gpu_sim::ir::{Scope, Space};
use gpu_sim::timing::Clock;

/// One dynamic global-memory access by one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedAccess {
    pub block: u32,
    pub tid_in_block: u32,
    /// Byte address of the accessed word.
    pub addr: u32,
    pub pc: usize,
    pub is_write: bool,
    pub is_atomic: bool,
    /// Atomic scope, when the access is an atomic.
    pub scope: Option<Scope>,
    /// Scheduler step of the access (equal steps ⇒ same warp split ⇒
    /// simultaneous execution).
    pub step: u64,
}

/// One dynamic plain load together with the value the lane observed. Only
/// recorded when the launch runs with `GpuConfig::record_load_values` (or
/// weak visibility, which implies it); under the default config the
/// callback never fires and `loads` stays empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedLoad {
    pub block: u32,
    pub tid_in_block: u32,
    pub addr: u32,
    pub pc: usize,
    pub value: u32,
}

/// Records every global access of a launch in execution order.
#[derive(Debug, Default)]
pub struct Observer {
    pub events: Vec<ObservedAccess>,
    /// Observed load values, in execution order (litmus runs only; the
    /// k-th plain-load entry of `events` pairs with `loads[k]`).
    pub loads: Vec<ObservedLoad>,
}

impl Observer {
    /// FNV-1a digest over the event stream: a cheap determinism witness
    /// for replay tests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for e in &self.events {
            eat(u64::from(e.block));
            eat(u64::from(e.tid_in_block));
            eat(u64::from(e.addr));
            eat(e.pc as u64);
            eat(u64::from(e.is_write) | (u64::from(e.is_atomic) << 1));
        }
        h
    }
}

impl Hook for Observer {
    fn on_load_value(&mut self, block_id: u32, tid_in_block: u32, addr: u32, pc: usize, value: u32) {
        self.loads.push(ObservedLoad {
            block: block_id,
            tid_in_block,
            addr,
            pc,
            value,
        });
    }

    fn on_mem_access(&mut self, access: &MemAccess<'_>, _clock: &mut Clock) {
        if access.space != Space::Global {
            return;
        }
        let (is_write, is_atomic, scope) = match access.kind {
            AccessKind::Load => (false, false, None),
            AccessKind::Store => (true, false, None),
            AccessKind::Atomic { scope, .. } => (true, true, Some(scope)),
        };
        for lane in access.lanes {
            self.events.push(ObservedAccess {
                block: access.block_id,
                tid_in_block: lane.tid_in_block,
                addr: lane.addr,
                pc: access.pc,
                is_write,
                is_atomic,
                scope,
                step: access.step,
            });
        }
    }
}
