//! Schedule-space ground truth for the race detectors.
//!
//! The simulator's ITS mode samples one interleaving per seed, so a detector
//! test can only say "iGUARD flagged / did not flag this kernel *on the
//! schedules we happened to draw*". This crate removes the sampling from the
//! verdict: for a family of tiny two-actor kernels it enumerates **every**
//! reachable ITS schedule with [`gpu_sim::sched::EnumeratingScheduler`],
//! derives the ground-truth race verdict from order variance across the
//! whole space ([`explore`]), and then runs iGUARD and Barracuda over the
//! same kernels, classifying each disagreement as a false negative / false
//! positive or as one of the *explained* divergences the paper itself
//! predicts ([`diff`]).
//!
//! Divergent kernels are shrunk to a minimal spec ([`shrink`]) and stored
//! with their witness schedule trace in a versioned regression corpus
//! ([`corpus`]) that a tier-1 test replays deterministically.
//!
//! On top of the v1 two-actor family sits the **weak-memory litmus
//! engine**: a `v2` multi-actor litmus language ([`litmus`]), relaxed-
//! visibility enumeration producing "racy / race-free /
//! assertion-violating under weak memory" verdicts
//! ([`explore::explore_litmus`]), a litmus-specific differential check
//! with weak-memory divergence classes ([`diff::diff_litmus`]), and its
//! own versioned corpus (`tests/corpus/litmus_v2.corpus`).

pub mod corpus;
pub mod diff;
pub mod explore;
pub mod litmus;
pub mod observer;
pub mod shrink;
pub mod spec;

pub use diff::{
    diff_litmus, diff_spec, DiffConfig, DiffReport, Divergence, LitmusDiffReport, Verdict,
};
pub use explore::{
    explore, explore_litmus, litmus_gpu_config, oracle_gpu_config, AssertionVerdict,
    ExploreConfig, LitmusOutcome, LitmusReport, OracleRace, OracleReport,
};
pub use litmus::{Cond, LitmusError, LitmusOp, LitmusSpec, MAX_ACTORS, MIN_ACTORS};
pub use observer::{ObservedAccess, ObservedLoad, Observer};
pub use shrink::{shrink_litmus, shrink_spec};
pub use spec::{KernelSpec, Op, Placement, NUM_SLOTS};
