//! The `v2` litmus language: multi-actor weak-memory test specs.
//!
//! A [`LitmusSpec`] generalizes the two-actor `v1` [`KernelSpec`]
//! family to the shape of classic weak-memory litmus tests:
//!
//! - **2–4 actors**, each a straight-line sequence of operations over
//!   **named shared locations** `x`, `y`, `z`, `u` (slots 0–3 of the
//!   oracle pool);
//! - plain loads/stores, scoped `atomicAdd`/`atomicExch` RMWs, scoped
//!   fences, and (same-warp only) aligned barriers;
//! - an optional **final-state assertion clause**: a conjunction of
//!   per-actor register conditions (`1:r0=1` — actor 1's first plain
//!   load observed 1) and final-memory conditions (`[x]=1`).
//!
//! Compact form (`v2;` header, actors `/`-separated, assertion after
//! `;?`, conditions `&`-joined):
//!
//! ```text
//! v2;CB;Sx.fD.Sy/Ly.Lx;?1:r0=1&1:r1=0       # message passing (MP)
//! v2;CB;Sx.Ly/Sy.Lx;?0:r0=0&1:r0=0          # store buffering (SB)
//! v2;CB;Sx/Sy/Lx.Ly/Ly.Lx                   # IRIW, no assertion
//! ```
//!
//! Parsing never panics: every malformed input maps to a typed
//! [`LitmusError`]. The classic MP/SB/LB/IRIW/WRC shapes have
//! constructors ([`LitmusSpec::mp`] etc.) parameterized on fence scope,
//! so both block- and device-scope variants are one call away.

use std::fmt;

use gpu_sim::ir::Scope;
use gpu_sim::kernel::Kernel;
use gpu_sim::prelude::{KernelBuilder, Special};
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::spec::{Placement, NUM_SLOTS};

/// Inclusive actor-count bounds of the `v2` family.
pub const MIN_ACTORS: usize = 2;
pub const MAX_ACTORS: usize = 4;

/// Location names, in slot order: `x`→slot 0 … `u`→slot 3.
pub const LOC_NAMES: [char; NUM_SLOTS as usize] = ['x', 'y', 'z', 'u'];

fn loc_name(loc: u8) -> char {
    LOC_NAMES[loc as usize]
}

fn loc_of(c: char) -> Option<u8> {
    LOC_NAMES.iter().position(|&n| n == c).map(|i| i as u8)
}

/// One operation of a litmus actor. Stores and exchanges write the
/// constant 1 (litmus tests distinguish "saw the write" from "didn't",
/// not which of several values arrived), `atomicAdd` adds 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitmusOp {
    /// Plain global load of a location (`Lx`).
    Load { loc: u8 },
    /// Plain global store of 1 (`Sx`).
    Store { loc: u8 },
    /// `atomicAdd(&loc, 1)` at the given scope (`aBx` / `aDx`).
    AtomicAdd { loc: u8, scope: Scope },
    /// `atomicExch(&loc, 1)` at the given scope (`eBx` / `eDx`).
    AtomicExch { loc: u8, scope: Scope },
    /// `__threadfence[_block]()` (`fB` / `fD`).
    Fence { scope: Scope },
    /// `__syncwarp()` (`w`; same-warp placement only).
    SyncWarp,
    /// `__syncthreads()` (`t`; same-warp placement only).
    SyncThreads,
}

impl LitmusOp {
    fn token(self) -> String {
        let sc = |s: Scope| if s == Scope::Block { 'B' } else { 'D' };
        match self {
            LitmusOp::Load { loc } => format!("L{}", loc_name(loc)),
            LitmusOp::Store { loc } => format!("S{}", loc_name(loc)),
            LitmusOp::AtomicAdd { loc, scope } => format!("a{}{}", sc(scope), loc_name(loc)),
            LitmusOp::AtomicExch { loc, scope } => format!("e{}{}", sc(scope), loc_name(loc)),
            LitmusOp::Fence { scope } => format!("f{}", sc(scope)),
            LitmusOp::SyncWarp => "w".into(),
            LitmusOp::SyncThreads => "t".into(),
        }
    }

    fn parse(tok: &str) -> Result<LitmusOp, LitmusError> {
        let loc_arg = |rest: &str| -> Result<u8, LitmusError> {
            let mut chars = rest.chars();
            match (chars.next().and_then(loc_of), chars.next()) {
                (Some(loc), None) => Ok(loc),
                _ => Err(LitmusError::UnknownLocation {
                    token: tok.to_string(),
                }),
            }
        };
        match tok {
            "w" => Ok(LitmusOp::SyncWarp),
            "t" => Ok(LitmusOp::SyncThreads),
            "fB" => Ok(LitmusOp::Fence { scope: Scope::Block }),
            "fD" => Ok(LitmusOp::Fence { scope: Scope::Device }),
            _ if tok.starts_with("aB") => Ok(LitmusOp::AtomicAdd {
                loc: loc_arg(&tok[2..])?,
                scope: Scope::Block,
            }),
            _ if tok.starts_with("aD") => Ok(LitmusOp::AtomicAdd {
                loc: loc_arg(&tok[2..])?,
                scope: Scope::Device,
            }),
            _ if tok.starts_with("eB") => Ok(LitmusOp::AtomicExch {
                loc: loc_arg(&tok[2..])?,
                scope: Scope::Block,
            }),
            _ if tok.starts_with("eD") => Ok(LitmusOp::AtomicExch {
                loc: loc_arg(&tok[2..])?,
                scope: Scope::Device,
            }),
            _ if tok.starts_with('L') => Ok(LitmusOp::Load {
                loc: loc_arg(&tok[1..])?,
            }),
            _ if tok.starts_with('S') => Ok(LitmusOp::Store {
                loc: loc_arg(&tok[1..])?,
            }),
            _ => Err(LitmusError::UnknownOp {
                token: tok.to_string(),
            }),
        }
    }

    /// Whether this op is a visible (global-memory or fence) operation —
    /// the eager-POR scheduling choice points.
    #[must_use]
    pub fn is_visible(self) -> bool {
        !matches!(self, LitmusOp::SyncWarp | LitmusOp::SyncThreads)
    }

    /// Whether this op writes a location.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(
            self,
            LitmusOp::Store { .. } | LitmusOp::AtomicAdd { .. } | LitmusOp::AtomicExch { .. }
        )
    }
}

/// One conjunct of the final-state assertion clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// The `load`-th plain load of `actor` observed `value` (`0:r1=1`).
    Reg { actor: u8, load: u8, value: u32 },
    /// The location holds `value` in the final coherent memory (`[x]=1`).
    Mem { loc: u8, value: u32 },
}

impl Cond {
    fn token(self) -> String {
        match self {
            Cond::Reg { actor, load, value } => format!("{actor}:r{load}={value}"),
            Cond::Mem { loc, value } => format!("[{}]={value}", loc_name(loc)),
        }
    }
}

/// Typed parse/validation error for `v2` specs. Every malformed input is
/// one of these — no panicking parse paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LitmusError {
    /// Input does not start with the `v2;` version tag.
    Version { found: String },
    /// Header structure (placement / actors segments) is missing.
    Header { found: String },
    /// Placement is neither `CB` nor `SW`.
    Placement { found: String },
    /// Actor count outside `MIN_ACTORS..=MAX_ACTORS`.
    ActorCount { count: usize },
    /// An actor has no operations.
    EmptyActor { actor: usize },
    /// Unrecognized operation token.
    UnknownOp { token: String },
    /// Operation names no known location (`x`/`y`/`z`/`u`).
    UnknownLocation { token: String },
    /// `w`/`t` barrier in a cross-block spec (meaningless there: each
    /// block is a single thread that releases its own barrier instantly).
    BarrierUnderCrossBlock { token: String },
    /// Assertion clause is syntactically malformed.
    Assertion { clause: String },
    /// Assertion condition names a nonexistent actor.
    ActorRef { actor: usize, actors: usize },
    /// Assertion condition names a plain-load ordinal the actor never
    /// executes.
    LoadRef {
        actor: usize,
        load: usize,
        loads: usize,
    },
}

impl fmt::Display for LitmusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LitmusError::Version { found } => write!(f, "unknown spec version in {found:?}"),
            LitmusError::Header { found } => write!(f, "bad spec header in {found:?}"),
            LitmusError::Placement { found } => write!(f, "unknown placement {found:?}"),
            LitmusError::ActorCount { count } => write!(
                f,
                "actor count {count} outside {MIN_ACTORS}..={MAX_ACTORS}"
            ),
            LitmusError::EmptyActor { actor } => write!(f, "actor {actor} has no ops"),
            LitmusError::UnknownOp { token } => write!(f, "unknown op token {token:?}"),
            LitmusError::UnknownLocation { token } => {
                write!(f, "unknown location in op {token:?}")
            }
            LitmusError::BarrierUnderCrossBlock { token } => {
                write!(f, "barrier {token:?} is meaningless under CB placement")
            }
            LitmusError::Assertion { clause } => write!(f, "bad assertion clause {clause:?}"),
            LitmusError::ActorRef { actor, actors } => {
                write!(f, "assertion names actor {actor} of {actors}")
            }
            LitmusError::LoadRef { actor, load, loads } => write!(
                f,
                "assertion names load r{load} of actor {actor}, which has {loads} loads"
            ),
        }
    }
}

impl std::error::Error for LitmusError {}

/// A multi-actor weak-memory litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusSpec {
    pub placement: Placement,
    /// 2–4 actors' operation sequences.
    pub actors: Vec<Vec<LitmusOp>>,
    /// Conjunction of final-state conditions; empty = no assertion.
    pub assertion: Vec<Cond>,
}

impl LitmusSpec {
    /// `(grid_dim, block_dim)`: one single-thread block per actor under
    /// `CB` (each block lands on its own SM in the litmus GPU config), or
    /// one block whose lanes are the actors under `SW`.
    #[must_use]
    pub fn grid_block(&self) -> (u32, u32) {
        let n = self.actors.len() as u32;
        match self.placement {
            Placement::SameWarp => (1, n),
            Placement::CrossBlock => (n, 1),
        }
    }

    /// Whether any actor contains a fence.
    #[must_use]
    pub fn has_fence(&self) -> bool {
        self.actors
            .iter()
            .flatten()
            .any(|o| matches!(o, LitmusOp::Fence { .. }))
    }

    /// Number of plain loads actor `a` executes (the `r0..` register file
    /// the assertion clause can name).
    #[must_use]
    pub fn num_loads(&self, a: usize) -> usize {
        self.actors[a]
            .iter()
            .filter(|o| matches!(o, LitmusOp::Load { .. }))
            .count()
    }

    /// Per-actor visible-operation counts (loads, stores, RMWs, fences) —
    /// the eager-POR schedule space of a cross-block spec is exactly the
    /// multinomial over these.
    #[must_use]
    pub fn visible_counts(&self) -> Vec<usize> {
        self.actors
            .iter()
            .map(|a| a.iter().filter(|o| o.is_visible()).count())
            .collect()
    }

    /// Structural validity check backing [`LitmusSpec::parse`]; also used
    /// on programmatically built specs before exploration.
    pub fn validate(&self) -> Result<(), LitmusError> {
        let n = self.actors.len();
        if !(MIN_ACTORS..=MAX_ACTORS).contains(&n) {
            return Err(LitmusError::ActorCount { count: n });
        }
        for (i, ops) in self.actors.iter().enumerate() {
            if ops.is_empty() {
                return Err(LitmusError::EmptyActor { actor: i });
            }
            if self.placement == Placement::CrossBlock {
                if let Some(bar) = ops
                    .iter()
                    .find(|o| matches!(o, LitmusOp::SyncWarp | LitmusOp::SyncThreads))
                {
                    return Err(LitmusError::BarrierUnderCrossBlock {
                        token: bar.token(),
                    });
                }
            }
        }
        for c in &self.assertion {
            if let Cond::Reg { actor, load, .. } = *c {
                let (actor, load) = (actor as usize, load as usize);
                if actor >= n {
                    return Err(LitmusError::ActorRef { actor, actors: n });
                }
                let loads = self.num_loads(actor);
                if load >= loads {
                    return Err(LitmusError::LoadRef { actor, load, loads });
                }
            }
        }
        Ok(())
    }

    /// Serializes to the versioned single-line form, e.g.
    /// `v2;CB;Sx.fD.Sy/Ly.Lx;?1:r0=1&1:r1=0`.
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let place = match self.placement {
            Placement::SameWarp => "SW",
            Placement::CrossBlock => "CB",
        };
        let actors = self
            .actors
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|o| o.token())
                    .collect::<Vec<_>>()
                    .join(".")
            })
            .collect::<Vec<_>>()
            .join("/");
        let mut s = format!("v2;{place};{actors}");
        if !self.assertion.is_empty() {
            s.push_str(";?");
            s.push_str(
                &self
                    .assertion
                    .iter()
                    .map(|c| c.token())
                    .collect::<Vec<_>>()
                    .join("&"),
            );
        }
        s
    }

    /// Parses the form produced by [`LitmusSpec::to_compact_string`].
    pub fn parse(s: &str) -> Result<Self, LitmusError> {
        let rest = s.strip_prefix("v2;").ok_or_else(|| LitmusError::Version {
            found: s.to_string(),
        })?;
        let mut segs = rest.splitn(3, ';');
        let place = segs.next().unwrap_or_default();
        let body = segs.next().ok_or_else(|| LitmusError::Header {
            found: s.to_string(),
        })?;
        let placement = match place {
            "SW" => Placement::SameWarp,
            "CB" => Placement::CrossBlock,
            other => {
                return Err(LitmusError::Placement {
                    found: other.to_string(),
                })
            }
        };
        let actors: Vec<Vec<LitmusOp>> = body
            .split('/')
            .map(|part| {
                if part.is_empty() {
                    Ok(Vec::new())
                } else {
                    part.split('.').map(LitmusOp::parse).collect()
                }
            })
            .collect::<Result<_, _>>()?;
        let assertion = match segs.next() {
            None => Vec::new(),
            Some(a) => {
                let conds = a.strip_prefix('?').ok_or_else(|| LitmusError::Assertion {
                    clause: a.to_string(),
                })?;
                conds.split('&').map(Self::parse_cond).collect::<Result<_, _>>()?
            }
        };
        let spec = LitmusSpec {
            placement,
            actors,
            assertion,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn parse_cond(clause: &str) -> Result<Cond, LitmusError> {
        let bad = || LitmusError::Assertion {
            clause: clause.to_string(),
        };
        let (lhs, value) = clause.split_once('=').ok_or_else(bad)?;
        let value: u32 = value.parse().map_err(|_| bad())?;
        if let Some(loc_part) = lhs.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let mut chars = loc_part.chars();
            let loc = match (chars.next().and_then(loc_of), chars.next()) {
                (Some(l), None) => l,
                _ => return Err(bad()),
            };
            return Ok(Cond::Mem { loc, value });
        }
        let (actor, reg) = lhs.split_once(':').ok_or_else(bad)?;
        let actor: u8 = actor.parse().map_err(|_| bad())?;
        let load: u8 = reg.strip_prefix('r').ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Ok(Cond::Reg { actor, load, value })
    }

    /// Builds the kernel: a chain of `eq`/`bra_ifnot` dispatches on the
    /// actor id (`tid` under `SW`, `blockIdx` under `CB`) into per-actor
    /// straight-line regions that each end in `exit` — the n-actor
    /// generalization of the `v1` two-way prologue.
    #[must_use]
    pub fn build(&self) -> Kernel {
        let mut b = KernelBuilder::new("litmus_gen");
        let base = b.param(0);
        let id = match self.placement {
            Placement::SameWarp => b.special(Special::Tid),
            Placement::CrossBlock => b.special(Special::BlockId),
        };
        let n = self.actors.len();
        for (a, ops) in self.actors.iter().enumerate() {
            if a + 1 == n {
                // Last actor is the fallthrough of the dispatch chain.
                Self::emit_region(&mut b, base, ops);
            } else {
                let is_a = b.eq(id, a as u32);
                let skip = b.fwd_label();
                b.bra_ifnot(is_a, skip);
                Self::emit_region(&mut b, base, ops);
                b.bind(skip);
            }
        }
        b.build()
    }

    fn emit_region(b: &mut KernelBuilder, base: gpu_sim::ir::Reg, ops: &[LitmusOp]) {
        let src = ops.iter().any(|o| o.is_write()).then(|| b.imm(1));
        for op in ops {
            match *op {
                LitmusOp::Load { loc } => {
                    let _ = b.ld(base, i32::from(loc));
                }
                LitmusOp::Store { loc } => b.st(base, i32::from(loc), src.unwrap()),
                LitmusOp::AtomicAdd { loc, scope } => {
                    let _ = b.atomic_add(scope, base, i32::from(loc), src.unwrap());
                }
                LitmusOp::AtomicExch { loc, scope } => {
                    let _ = b.atomic_exch(scope, base, i32::from(loc), src.unwrap());
                }
                LitmusOp::Fence { scope } => b.membar(scope),
                LitmusOp::SyncWarp => b.syncwarp(),
                LitmusOp::SyncThreads => b.syncthreads(),
            }
        }
        b.exit();
    }

    // ----- classic shapes ---------------------------------------------
    //
    // Locations: x = slot 0, y = slot 1. `fence` inserts a scoped fence at
    // the canonical position of each actor (between the two accesses);
    // `None` gives the plain variant.

    fn f(fence: Option<Scope>) -> Vec<LitmusOp> {
        fence.map(|scope| LitmusOp::Fence { scope }).into_iter().collect()
    }

    /// Message passing: `Sx [f] Sy / Ly [f] Lx`, forbidden outcome
    /// "saw the flag, missed the data" (`1:r0=1 & 1:r1=0`).
    #[must_use]
    pub fn mp(placement: Placement, fence: Option<Scope>) -> LitmusSpec {
        let mut a0 = vec![LitmusOp::Store { loc: 0 }];
        a0.extend(Self::f(fence));
        a0.push(LitmusOp::Store { loc: 1 });
        let mut a1 = vec![LitmusOp::Load { loc: 1 }];
        a1.extend(Self::f(fence));
        a1.push(LitmusOp::Load { loc: 0 });
        LitmusSpec {
            placement,
            actors: vec![a0, a1],
            assertion: vec![
                Cond::Reg { actor: 1, load: 0, value: 1 },
                Cond::Reg { actor: 1, load: 1, value: 0 },
            ],
        }
    }

    /// Store buffering: `Sx [f] Ly / Sy [f] Lx`, forbidden outcome "both
    /// loads miss" (`0:r0=0 & 1:r0=0`).
    #[must_use]
    pub fn sb(placement: Placement, fence: Option<Scope>) -> LitmusSpec {
        let mut a0 = vec![LitmusOp::Store { loc: 0 }];
        a0.extend(Self::f(fence));
        a0.push(LitmusOp::Load { loc: 1 });
        let mut a1 = vec![LitmusOp::Store { loc: 1 }];
        a1.extend(Self::f(fence));
        a1.push(LitmusOp::Load { loc: 0 });
        LitmusSpec {
            placement,
            actors: vec![a0, a1],
            assertion: vec![
                Cond::Reg { actor: 0, load: 0, value: 0 },
                Cond::Reg { actor: 1, load: 0, value: 0 },
            ],
        }
    }

    /// Load buffering: `Lx [f] Sy / Ly [f] Sx`, forbidden outcome "both
    /// loads see the other's future store" (`0:r0=1 & 1:r0=1`).
    #[must_use]
    pub fn lb(placement: Placement, fence: Option<Scope>) -> LitmusSpec {
        let mut a0 = vec![LitmusOp::Load { loc: 0 }];
        a0.extend(Self::f(fence));
        a0.push(LitmusOp::Store { loc: 1 });
        let mut a1 = vec![LitmusOp::Load { loc: 1 }];
        a1.extend(Self::f(fence));
        a1.push(LitmusOp::Store { loc: 0 });
        LitmusSpec {
            placement,
            actors: vec![a0, a1],
            assertion: vec![
                Cond::Reg { actor: 0, load: 0, value: 1 },
                Cond::Reg { actor: 1, load: 0, value: 1 },
            ],
        }
    }

    /// Independent reads of independent writes: `Sx / Sy / Lx [f] Ly /
    /// Ly [f] Lx`, forbidden outcome "the two readers disagree on the
    /// write order" (`2:r0=1 & 2:r1=0 & 3:r0=1 & 3:r1=0`).
    #[must_use]
    pub fn iriw(placement: Placement, fence: Option<Scope>) -> LitmusSpec {
        let mut a2 = vec![LitmusOp::Load { loc: 0 }];
        a2.extend(Self::f(fence));
        a2.push(LitmusOp::Load { loc: 1 });
        let mut a3 = vec![LitmusOp::Load { loc: 1 }];
        a3.extend(Self::f(fence));
        a3.push(LitmusOp::Load { loc: 0 });
        LitmusSpec {
            placement,
            actors: vec![
                vec![LitmusOp::Store { loc: 0 }],
                vec![LitmusOp::Store { loc: 1 }],
                a2,
                a3,
            ],
            assertion: vec![
                Cond::Reg { actor: 2, load: 0, value: 1 },
                Cond::Reg { actor: 2, load: 1, value: 0 },
                Cond::Reg { actor: 3, load: 0, value: 1 },
                Cond::Reg { actor: 3, load: 1, value: 0 },
            ],
        }
    }

    /// Write-read causality: `Sx / Lx [f] Sy / Ly [f] Lx`, forbidden
    /// outcome "causality chain observed, origin missed"
    /// (`1:r0=1 & 2:r0=1 & 2:r1=0`).
    #[must_use]
    pub fn wrc(placement: Placement, fence: Option<Scope>) -> LitmusSpec {
        let mut a1 = vec![LitmusOp::Load { loc: 0 }];
        a1.extend(Self::f(fence));
        a1.push(LitmusOp::Store { loc: 1 });
        let mut a2 = vec![LitmusOp::Load { loc: 1 }];
        a2.extend(Self::f(fence));
        a2.push(LitmusOp::Load { loc: 0 });
        LitmusSpec {
            placement,
            actors: vec![vec![LitmusOp::Store { loc: 0 }], a1, a2],
            assertion: vec![
                Cond::Reg { actor: 1, load: 0, value: 1 },
                Cond::Reg { actor: 2, load: 0, value: 1 },
                Cond::Reg { actor: 2, load: 1, value: 0 },
            ],
        }
    }

    /// Draws a random well-formed litmus spec: 2–4 actors, 1–3 ops each,
    /// mostly plain loads/stores with occasional RMWs and fences; about
    /// half the specs carry an assertion over their loads/locations.
    #[must_use]
    pub fn random(rng: &mut SmallRng) -> Self {
        let placement = if rng.random_bool(0.3) {
            Placement::SameWarp
        } else {
            Placement::CrossBlock
        };
        let n = rng.random_range(MIN_ACTORS..=MAX_ACTORS);
        let mut actors = Vec::with_capacity(n);
        for _ in 0..n {
            let k = rng.random_range(1usize..=3);
            let mut ops = Vec::with_capacity(k);
            for _ in 0..k {
                let loc = rng.random_range(0..NUM_SLOTS);
                let scope = if rng.random_bool(0.5) {
                    Scope::Block
                } else {
                    Scope::Device
                };
                let roll = rng.random_range(0u32..100);
                ops.push(match roll {
                    0..=39 => LitmusOp::Load { loc },
                    40..=77 => LitmusOp::Store { loc },
                    78..=85 => LitmusOp::AtomicAdd { loc, scope },
                    86..=91 => LitmusOp::AtomicExch { loc, scope },
                    _ => LitmusOp::Fence { scope },
                });
            }
            actors.push(ops);
        }
        let mut spec = LitmusSpec {
            placement,
            actors,
            assertion: Vec::new(),
        };
        if placement == Placement::SameWarp && rng.random_bool(0.4) {
            // Aligned barrier at the same gap in every actor, so it
            // actually orders the accesses around it.
            let bar = if rng.random_bool(0.5) {
                LitmusOp::SyncWarp
            } else {
                LitmusOp::SyncThreads
            };
            let max_gap = spec.actors.iter().map(Vec::len).min().unwrap_or(0);
            let gap = rng.random_range(0..=max_gap);
            for ops in &mut spec.actors {
                ops.insert(gap, bar);
            }
        }
        if rng.random_bool(0.5) {
            let conds = rng.random_range(1usize..=2);
            for _ in 0..conds {
                let cond = if rng.random_bool(0.3) {
                    Cond::Mem {
                        loc: rng.random_range(0..NUM_SLOTS),
                        value: u32::from(rng.random_bool(0.5)),
                    }
                } else {
                    // Pick a random existing load, if any actor has one.
                    let with_loads: Vec<usize> = (0..spec.actors.len())
                        .filter(|&a| spec.num_loads(a) > 0)
                        .collect();
                    match with_loads.as_slice() {
                        [] => continue,
                        choices => {
                            let a = choices[rng.random_range(0..choices.len())];
                            let load = rng.random_range(0..spec.num_loads(a));
                            Cond::Reg {
                                actor: a as u8,
                                load: load as u8,
                                value: u32::from(rng.random_bool(0.5)),
                            }
                        }
                    }
                };
                spec.assertion.push(cond);
            }
        }
        debug_assert!(spec.validate().is_ok());
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn classic_shapes_roundtrip() {
        let mp = LitmusSpec::mp(Placement::CrossBlock, Some(Scope::Device));
        assert_eq!(mp.to_compact_string(), "v2;CB;Sx.fD.Sy/Ly.fD.Lx;?1:r0=1&1:r1=0");
        assert_eq!(LitmusSpec::parse(&mp.to_compact_string()).unwrap(), mp);

        let iriw = LitmusSpec::iriw(Placement::CrossBlock, None);
        assert_eq!(
            iriw.to_compact_string(),
            "v2;CB;Sx/Sy/Lx.Ly/Ly.Lx;?2:r0=1&2:r1=0&3:r0=1&3:r1=0"
        );
        assert_eq!(LitmusSpec::parse(&iriw.to_compact_string()).unwrap(), iriw);

        for spec in [
            LitmusSpec::sb(Placement::SameWarp, None),
            LitmusSpec::lb(Placement::CrossBlock, Some(Scope::Block)),
            LitmusSpec::wrc(Placement::CrossBlock, Some(Scope::Device)),
        ] {
            spec.validate().unwrap();
            assert_eq!(LitmusSpec::parse(&spec.to_compact_string()).unwrap(), spec);
        }
    }

    #[test]
    fn malformed_specs_map_to_typed_errors() {
        use LitmusError as E;
        let err = |s: &str| LitmusSpec::parse(s).unwrap_err();
        assert!(matches!(err("v1;CB;Sx/Lx"), E::Version { .. }));
        assert!(matches!(err("v2;CB"), E::Header { .. }));
        assert!(matches!(err("v2;XX;Sx/Lx"), E::Placement { .. }));
        assert!(matches!(err("v2;CB;Sx"), E::ActorCount { count: 1 }));
        assert!(matches!(
            err("v2;CB;Sx/Lx/Lx/Lx/Lx"),
            E::ActorCount { count: 5 }
        ));
        assert!(matches!(err("v2;CB;Sx//Lx"), E::EmptyActor { actor: 1 }));
        assert!(matches!(err("v2;CB;Qx/Lx"), E::UnknownOp { .. }));
        assert!(matches!(err("v2;CB;S9/Lx"), E::UnknownLocation { .. }));
        assert!(matches!(err("v2;CB;Sxx/Lx"), E::UnknownLocation { .. }));
        assert!(matches!(
            err("v2;CB;Sx.w/Lx"),
            E::BarrierUnderCrossBlock { .. }
        ));
        assert!(matches!(err("v2;CB;Sx/Lx;?garbage"), E::Assertion { .. }));
        assert!(matches!(err("v2;CB;Sx/Lx;?[q]=1"), E::Assertion { .. }));
        assert!(matches!(
            err("v2;CB;Sx/Lx;?5:r0=1"),
            E::ActorRef { actor: 5, actors: 2 }
        ));
        assert!(matches!(
            err("v2;CB;Sx/Lx;?0:r0=1"),
            E::LoadRef { actor: 0, load: 0, loads: 0 }
        ));
        assert!(matches!(
            err("v2;CB;Sx/Lx;?1:r3=0"),
            E::LoadRef { actor: 1, load: 3, loads: 1 }
        ));
        // Errors render and are std errors.
        let e: Box<dyn std::error::Error> = Box::new(err("v2;CB;Sx"));
        assert!(e.to_string().contains("actor count"));
    }

    #[test]
    fn random_specs_roundtrip_and_validate() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..300 {
            let spec = LitmusSpec::random(&mut rng);
            spec.validate().unwrap();
            let s = spec.to_compact_string();
            assert_eq!(LitmusSpec::parse(&s).unwrap(), spec, "{s}");
        }
    }

    #[test]
    fn built_kernels_execute_every_actor() {
        use gpu_sim::hook::NullHook;
        use gpu_sim::machine::{Gpu, GpuConfig};
        let spec = LitmusSpec::iriw(Placement::CrossBlock, Some(Scope::Device));
        let k = spec.build();
        let mut gpu = Gpu::new(GpuConfig {
            mem_words: 64,
            num_sms: 4,
            max_steps: 10_000,
            ..GpuConfig::default()
        });
        let buf = gpu.alloc(usize::from(NUM_SLOTS)).unwrap();
        let (grid, block) = spec.grid_block();
        gpu.launch(&k, grid, block, &[buf], &mut NullHook).unwrap();
        // Both writers ran: final memory has x = y = 1.
        assert_eq!(gpu.read_slice(buf, 2), vec![1, 1]);
    }
}
