//! Differential check: detectors vs the enumeration oracle.
//!
//! For one [`KernelSpec`] the oracle verdict comes from
//! [`explore`](crate::explore::explore) — every reachable ITS schedule, so
//! "racy" and "clean" are facts, not samples. Each detector then runs over
//! the *same* kernel on a handful of random schedules **plus a replay of the
//! oracle's witness schedule** (hooks never influence scheduling decisions,
//! so a trace recorded under the observer replays bit-identically under an
//! instrumented detector). Replaying the witness removes schedule-sampling
//! luck from the false-negative classification: if the detector stays silent
//! on the very interleaving that exhibits the race, the miss is the
//! detector's, not the sampler's.
//!
//! Divergences the paper itself predicts are *explained*, not failures:
//!
//! - `barracuda-unsupported` — the front end refuses scoped atomics and
//!   warp-level barriers (§4 / Table 4).
//! - `barracuda-its-blind` — same-warp accesses are assumed
//!   lockstep-ordered, so every purely intra-warp race is invisible (§4).
//! - `barracuda-benign-atomic-read` — no P6 equivalent: plain loads of
//!   atomically-updated words (flag polling) are reported as races.
//! - `iguard-fence-approximation` — iGUARD models the release side of a
//!   `membar` conservatively, so fence-dependent verdicts may differ (§6.2).
//! - `oracle-incomplete` — the enumeration hit its budget, so a "clean"
//!   oracle verdict is only a lower bound and a detector flag on top of it
//!   is not evidence of a false positive.
//!
//! Anything else is an **unexplained** divergence and fails the campaign.

use barracuda::{self, Barracuda, BarracudaConfig, BinaryKind};
use gpu_sim::machine::{Gpu, GpuConfig};
use gpu_sim::sched::{ReplayScheduler, ScheduleTrace};
use iguard::Iguard;
use nvbit_sim::Instrumented;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::explore::{
    explore, explore_litmus, litmus_gpu_config, oracle_gpu_config, ExploreConfig, LitmusReport,
    OracleReport,
};
use crate::litmus::{LitmusOp, LitmusSpec};
use crate::spec::{KernelSpec, Op, NUM_SLOTS};

/// How hard the differential check tries per kernel.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Oracle enumeration budget.
    pub explore: ExploreConfig,
    /// Random-scheduler seeds each detector runs under (in addition to the
    /// witness replay).
    pub seeds: Vec<u64>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            explore: ExploreConfig::default(),
            seeds: vec![1, 2, 3],
        }
    }
}

/// One detector's verdict on one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The front end refused the kernel (Barracuda only).
    Unsupported,
    /// Flagged at least one race on at least one run.
    Flagged,
    /// Silent on every run, including the witness replay.
    Clean,
}

/// A detector/oracle disagreement, classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// `"iguard"` or `"barracuda"`.
    pub detector: &'static str,
    /// True when the oracle says racy and the detector stayed silent
    /// (false negative); false for the false-positive direction.
    pub false_negative: bool,
    /// A paper-predicted reason, or `None` for an unexplained divergence.
    pub explanation: Option<&'static str>,
}

/// Full differential result for one kernel.
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub spec: KernelSpec,
    pub oracle: OracleReport,
    pub iguard: Verdict,
    pub barracuda: Verdict,
    pub divergences: Vec<Divergence>,
}

impl DiffReport {
    /// Divergences with no paper-predicted explanation. A non-empty result
    /// fails the campaign.
    #[must_use]
    pub fn unexplained(&self) -> Vec<Divergence> {
        self.divergences
            .iter()
            .copied()
            .filter(|d| d.explanation.is_none())
            .collect()
    }

    /// One-line human summary, for campaign logs and shrunk repros.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut s = format!(
            "{} oracle={} ({} schedules{}) iguard={:?} barracuda={:?}",
            self.spec.to_compact_string(),
            if self.oracle.racy { "racy" } else { "clean" },
            self.oracle.schedules,
            if self.oracle.complete {
                ""
            } else {
                ", truncated"
            },
            self.iguard,
            self.barracuda,
        );
        for d in &self.divergences {
            s.push_str(&format!(
                " [{} {}: {}]",
                d.detector,
                if d.false_negative { "FN" } else { "FP" },
                d.explanation.unwrap_or("UNEXPLAINED"),
            ));
        }
        s
    }
}

fn detector_gpu(seed: u64, cfg: &ExploreConfig) -> (Gpu, u32) {
    let mut gpu = Gpu::new(GpuConfig {
        seed,
        ..oracle_gpu_config(cfg.max_steps)
    });
    let buf = gpu
        .alloc(NUM_SLOTS as usize)
        .expect("oracle slot buffer fits");
    (gpu, buf)
}

/// Runs iGUARD on one random schedule (or a witness replay) and reports
/// whether it flagged anything.
fn iguard_flags(
    spec: &KernelSpec,
    seed: u64,
    replay: Option<&ScheduleTrace>,
    cfg: &DiffConfig,
) -> bool {
    let kernel = spec.build();
    let (grid, block) = spec.grid_block();
    let (mut gpu, buf) = detector_gpu(seed, &cfg.explore);
    let mut tool = Instrumented::new(Iguard::default());
    let result = match replay {
        Some(trace) => {
            let mut sched = ReplayScheduler::new(trace.clone());
            gpu.launch_with(&kernel, grid, block, &[buf], &mut tool, &mut sched)
        }
        None => gpu.launch(&kernel, grid, block, &[buf], &mut tool),
    };
    result.unwrap_or_else(|e| panic!("iguard run of {} failed: {e}", spec.to_compact_string()));
    tool.tool().unique_races() > 0
}

/// Runs Barracuda likewise. `None` means the front end refused the kernel.
fn barracuda_flags(
    spec: &KernelSpec,
    seed: u64,
    replay: Option<&ScheduleTrace>,
    cfg: &DiffConfig,
) -> Option<bool> {
    let kernel = spec.build();
    barracuda::supports(&[&kernel], BinaryKind::SingleFile).ok()?;
    let (grid, block) = spec.grid_block();
    let (mut gpu, buf) = detector_gpu(seed, &cfg.explore);
    let mut tool = Instrumented::new(Barracuda::new(BarracudaConfig::default()));
    let result = match replay {
        Some(trace) => {
            let mut sched = ReplayScheduler::new(trace.clone());
            gpu.launch_with(&kernel, grid, block, &[buf], &mut tool, &mut sched)
        }
        None => gpu.launch(&kernel, grid, block, &[buf], &mut tool),
    };
    result.unwrap_or_else(|e| panic!("barracuda run of {} failed: {e}", spec.to_compact_string()));
    Some(!tool.tool_mut().finish(gpu.clock_mut()).is_empty())
}

/// Explains an iGUARD false negative, if the paper predicts one.
fn explain_iguard_fn(spec: &KernelSpec) -> Option<&'static str> {
    spec.has_fence().then_some("iguard-fence-approximation")
}

/// Explains a Barracuda false negative, if the paper predicts one.
fn explain_barracuda_fn(spec: &KernelSpec, oracle: &OracleReport) -> Option<&'static str> {
    if oracle.kinds().iter().all(|k| *k == "ITS" || *k == "BR") {
        // Every race is intra-warp: hidden by the lockstep assumption.
        return Some("barracuda-its-blind");
    }
    spec.has_fence().then_some("barracuda-fence-model")
}

/// Explains a Barracuda false positive, if the paper predicts one:
/// Barracuda's HB engine has no benign-atomic-read convention (iGUARD's
/// P6), so a plain load of a word updated by sufficient-scope atomics —
/// the flag-polling idiom the paper uses to motivate P6 — is reported as
/// a write-read race.
fn explain_barracuda_fp(spec: &KernelSpec) -> Option<&'static str> {
    let touches = |ops: &[Op], want_atomic: bool, s: u8| {
        ops.iter().any(|op| match *op {
            Op::AtomicAdd { slot, .. } => want_atomic && slot == s,
            Op::Load { slot } => !want_atomic && slot == s,
            _ => false,
        })
    };
    let [a0, a1] = &spec.actors;
    let benign_pair = (0..crate::spec::NUM_SLOTS).any(|s| {
        (touches(a0, true, s) && touches(a1, false, s))
            || (touches(a1, true, s) && touches(a0, false, s))
    });
    benign_pair.then_some("barracuda-benign-atomic-read")
}

/// The full differential check for one kernel spec.
#[must_use]
pub fn diff_spec(spec: &KernelSpec, cfg: &DiffConfig) -> DiffReport {
    let oracle = explore(spec, &cfg.explore);
    // Both orders of the racing pair: detection can be order-sensitive.
    let witnesses: Vec<&ScheduleTrace> = [&oracle.witness, &oracle.counter_witness]
        .into_iter()
        .filter_map(Option::as_ref)
        .collect();

    let mut ig = cfg.seeds.iter().any(|&s| iguard_flags(spec, s, None, cfg));
    if !ig {
        ig = witnesses.iter().any(|t| iguard_flags(spec, 0, Some(t), cfg));
    }
    let iguard = if ig { Verdict::Flagged } else { Verdict::Clean };

    let mut ba = match barracuda_flags(spec, cfg.seeds.first().copied().unwrap_or(1), None, cfg) {
        None => Verdict::Unsupported,
        Some(true) => Verdict::Flagged,
        Some(false) => Verdict::Clean,
    };
    if ba == Verdict::Clean {
        for &s in cfg.seeds.iter().skip(1) {
            if barracuda_flags(spec, s, None, cfg) == Some(true) {
                ba = Verdict::Flagged;
                break;
            }
        }
        if ba == Verdict::Clean
            && witnesses
                .iter()
                .any(|t| barracuda_flags(spec, 0, Some(t), cfg) == Some(true))
        {
            ba = Verdict::Flagged;
        }
    }

    let mut divergences = Vec::new();
    match (oracle.racy, iguard) {
        (true, Verdict::Clean) => divergences.push(Divergence {
            detector: "iguard",
            false_negative: true,
            explanation: explain_iguard_fn(spec),
        }),
        (false, Verdict::Flagged) => divergences.push(Divergence {
            detector: "iguard",
            false_negative: false,
            // An incomplete enumeration makes "clean" a lower bound only.
            explanation: (!oracle.complete).then_some("oracle-incomplete"),
        }),
        _ => {}
    }
    match (oracle.racy, ba) {
        (true, Verdict::Unsupported) => divergences.push(Divergence {
            detector: "barracuda",
            false_negative: true,
            explanation: Some("barracuda-unsupported"),
        }),
        (true, Verdict::Clean) => divergences.push(Divergence {
            detector: "barracuda",
            false_negative: true,
            explanation: explain_barracuda_fn(spec, &oracle),
        }),
        (false, Verdict::Flagged) => divergences.push(Divergence {
            detector: "barracuda",
            false_negative: false,
            explanation: explain_barracuda_fp(spec)
                .or_else(|| (!oracle.complete).then_some("oracle-incomplete")),
        }),
        _ => {}
    }

    DiffReport {
        spec: spec.clone(),
        oracle,
        iguard,
        barracuda: ba,
        divergences,
    }
}

/// Deterministic spec stream for a campaign: `n` kernels from `seed`.
#[must_use]
pub fn generate_specs(n: usize, seed: u64) -> Vec<KernelSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| KernelSpec::random(&mut rng)).collect()
}

// ===================== litmus differential check =====================
//
// Same structure as `diff_spec`, but over the v2 litmus family on the
// weak-visibility machine, and with one extra divergence source: a
// **weak-memory anomaly** — the assertion's forbidden outcome reachable
// only through relaxed visibility — that a silent detector cannot report
// even in principle. Race detectors reason about access *orders*, never
// about which *value* a load returns, so these blind spots are explained
// taxonomy classes, not campaign failures:
//
// - `visibility-blind` — the spec has no fence; the anomaly is plain
//   cross-SM staleness (e.g. unfenced MP/SB), invisible to order-based
//   detection.
// - `fence-scope-approximation` — the spec fences, yet the anomaly (or a
//   race) survives: the detectors model fences as release-side
//   approximations at an approximate scope, so fence-bearing verdicts
//   diverge. This subsumes v1's `iguard-fence-approximation` and is the
//   demonstrated beyond-the-six-races false-negative class (see the
//   pinned stale-re-read shape in `tests/regressions_replay.rs`).

/// Full differential result for one litmus spec.
#[derive(Debug, Clone)]
pub struct LitmusDiffReport {
    pub spec: LitmusSpec,
    pub oracle: LitmusReport,
    pub iguard: Verdict,
    pub barracuda: Verdict,
    pub divergences: Vec<Divergence>,
}

impl LitmusDiffReport {
    /// Divergences with no predicted explanation; non-empty fails a
    /// campaign.
    #[must_use]
    pub fn unexplained(&self) -> Vec<Divergence> {
        self.divergences
            .iter()
            .copied()
            .filter(|d| d.explanation.is_none())
            .collect()
    }

    /// One-line human summary.
    #[must_use]
    pub fn describe(&self) -> String {
        let assert_tag = match &self.oracle.assertion {
            None => "-",
            Some(a) if !a.reachable => "no",
            Some(a) if a.sc_reachable => "sc",
            Some(_) => "weak",
        };
        let mut s = format!(
            "{} oracle={} assert={assert_tag} ({} schedules, {} outcomes{}) iguard={:?} barracuda={:?}",
            self.spec.to_compact_string(),
            if self.oracle.racy { "racy" } else { "clean" },
            self.oracle.schedules,
            self.oracle.outcomes.len(),
            if self.oracle.complete { "" } else { ", truncated" },
            self.iguard,
            self.barracuda,
        );
        for d in &self.divergences {
            s.push_str(&format!(
                " [{} {}: {}]",
                d.detector,
                if d.false_negative { "FN" } else { "FP" },
                d.explanation.unwrap_or("UNEXPLAINED"),
            ));
        }
        s
    }
}

fn litmus_detector_gpu(spec: &LitmusSpec, seed: u64, cfg: &ExploreConfig) -> (Gpu, u32) {
    let mut gpu = Gpu::new(GpuConfig {
        seed,
        ..litmus_gpu_config(spec.actors.len() as u32, cfg.max_steps, true)
    });
    let buf = gpu.alloc(NUM_SLOTS as usize).expect("litmus slot buffer fits");
    (gpu, buf)
}

/// Runs iGUARD over one random schedule (or a witness replay) of a litmus
/// kernel on the weak-visibility machine. Witness traces were recorded
/// under the weak machine, so they carry `Vis` decisions and must replay
/// on the same configuration.
fn iguard_flags_litmus(
    spec: &LitmusSpec,
    seed: u64,
    replay: Option<&ScheduleTrace>,
    cfg: &DiffConfig,
) -> bool {
    let kernel = spec.build();
    let (grid, block) = spec.grid_block();
    let (mut gpu, buf) = litmus_detector_gpu(spec, seed, &cfg.explore);
    let mut tool = Instrumented::new(Iguard::default());
    let result = match replay {
        Some(trace) => {
            let mut sched = ReplayScheduler::new(trace.clone());
            gpu.launch_with(&kernel, grid, block, &[buf], &mut tool, &mut sched)
        }
        None => gpu.launch(&kernel, grid, block, &[buf], &mut tool),
    };
    result
        .unwrap_or_else(|e| panic!("iguard litmus run of {} failed: {e}", spec.to_compact_string()));
    tool.tool().unique_races() > 0
}

/// Runs Barracuda likewise. `None` = the front end refused the kernel.
fn barracuda_flags_litmus(
    spec: &LitmusSpec,
    seed: u64,
    replay: Option<&ScheduleTrace>,
    cfg: &DiffConfig,
) -> Option<bool> {
    let kernel = spec.build();
    barracuda::supports(&[&kernel], BinaryKind::SingleFile).ok()?;
    let (grid, block) = spec.grid_block();
    let (mut gpu, buf) = litmus_detector_gpu(spec, seed, &cfg.explore);
    let mut tool = Instrumented::new(Barracuda::new(BarracudaConfig::default()));
    let result = match replay {
        Some(trace) => {
            let mut sched = ReplayScheduler::new(trace.clone());
            gpu.launch_with(&kernel, grid, block, &[buf], &mut tool, &mut sched)
        }
        None => gpu.launch(&kernel, grid, block, &[buf], &mut tool),
    };
    result.unwrap_or_else(|e| {
        panic!("barracuda litmus run of {} failed: {e}", spec.to_compact_string())
    });
    Some(!tool.tool_mut().finish(gpu.clock_mut()).is_empty())
}

/// Explains an iGUARD false negative on a litmus race.
fn explain_iguard_litmus_fn(spec: &LitmusSpec) -> Option<&'static str> {
    spec.has_fence().then_some("fence-scope-approximation")
}

/// Explains a Barracuda false negative on a litmus race.
fn explain_barracuda_litmus_fn(spec: &LitmusSpec, oracle: &LitmusReport) -> Option<&'static str> {
    if oracle.kinds().iter().all(|k| *k == "ITS" || *k == "BR") {
        return Some("barracuda-its-blind");
    }
    spec.has_fence().then_some("barracuda-fence-model")
}

/// Explains a detector false positive on a litmus kernel (Barracuda's
/// missing benign-atomic-read convention, as in v1).
fn explain_barracuda_litmus_fp(spec: &LitmusSpec) -> Option<&'static str> {
    let touches = |ops: &[LitmusOp], want_atomic: bool, l: u8| {
        ops.iter().any(|op| match *op {
            LitmusOp::AtomicAdd { loc, .. } | LitmusOp::AtomicExch { loc, .. } => {
                want_atomic && loc == l
            }
            LitmusOp::Load { loc } => !want_atomic && loc == l,
            _ => false,
        })
    };
    let benign_pair = (0..NUM_SLOTS).any(|l| {
        spec.actors.iter().enumerate().any(|(i, a)| {
            touches(a, true, l)
                && spec
                    .actors
                    .iter()
                    .enumerate()
                    .any(|(j, b)| i != j && touches(b, false, l))
        })
    });
    benign_pair.then_some("barracuda-benign-atomic-read")
}

/// Explains the weak-anomaly blindness class of a silent detector.
fn explain_weak_anomaly(spec: &LitmusSpec) -> &'static str {
    if spec.has_fence() {
        "fence-scope-approximation"
    } else {
        "visibility-blind"
    }
}

/// The full differential check for one litmus spec: weak-visibility
/// oracle vs both detectors on random schedules plus witness replays.
#[must_use]
pub fn diff_litmus(spec: &LitmusSpec, cfg: &DiffConfig) -> LitmusDiffReport {
    let oracle = explore_litmus(spec, &cfg.explore, true);
    let witnesses: Vec<&ScheduleTrace> = [&oracle.witness, &oracle.counter_witness]
        .into_iter()
        .filter_map(Option::as_ref)
        .collect();

    let mut ig = cfg
        .seeds
        .iter()
        .any(|&s| iguard_flags_litmus(spec, s, None, cfg));
    if !ig {
        ig = witnesses
            .iter()
            .any(|t| iguard_flags_litmus(spec, 0, Some(t), cfg));
    }
    let iguard = if ig { Verdict::Flagged } else { Verdict::Clean };

    let mut ba = match barracuda_flags_litmus(
        spec,
        cfg.seeds.first().copied().unwrap_or(1),
        None,
        cfg,
    ) {
        None => Verdict::Unsupported,
        Some(true) => Verdict::Flagged,
        Some(false) => Verdict::Clean,
    };
    if ba == Verdict::Clean {
        for &s in cfg.seeds.iter().skip(1) {
            if barracuda_flags_litmus(spec, s, None, cfg) == Some(true) {
                ba = Verdict::Flagged;
                break;
            }
        }
        if ba == Verdict::Clean
            && witnesses
                .iter()
                .any(|t| barracuda_flags_litmus(spec, 0, Some(t), cfg) == Some(true))
        {
            ba = Verdict::Flagged;
        }
    }

    let mut divergences = Vec::new();
    match (oracle.racy, iguard) {
        (true, Verdict::Clean) => divergences.push(Divergence {
            detector: "iguard",
            false_negative: true,
            explanation: explain_iguard_litmus_fn(spec),
        }),
        (false, Verdict::Flagged) => divergences.push(Divergence {
            detector: "iguard",
            false_negative: false,
            explanation: (!oracle.complete).then_some("oracle-incomplete"),
        }),
        _ => {}
    }
    match (oracle.racy, ba) {
        (true, Verdict::Unsupported) => divergences.push(Divergence {
            detector: "barracuda",
            false_negative: true,
            explanation: Some("barracuda-unsupported"),
        }),
        (true, Verdict::Clean) => divergences.push(Divergence {
            detector: "barracuda",
            false_negative: true,
            explanation: explain_barracuda_litmus_fn(spec, &oracle),
        }),
        (false, Verdict::Flagged) => divergences.push(Divergence {
            detector: "barracuda",
            false_negative: false,
            explanation: explain_barracuda_litmus_fp(spec)
                .or_else(|| (!oracle.complete).then_some("oracle-incomplete")),
        }),
        _ => {}
    }

    // Weak-memory anomaly: the forbidden final state is reachable, but
    // only through relaxed visibility, and a detector reported nothing at
    // all — an order-blind miss no race report covers.
    let weak_violation = oracle
        .assertion
        .as_ref()
        .is_some_and(|a| a.reachable && !a.sc_reachable);
    if weak_violation {
        if iguard == Verdict::Clean {
            divergences.push(Divergence {
                detector: "iguard",
                false_negative: true,
                explanation: Some(explain_weak_anomaly(spec)),
            });
        }
        match ba {
            Verdict::Clean => divergences.push(Divergence {
                detector: "barracuda",
                false_negative: true,
                explanation: Some(explain_weak_anomaly(spec)),
            }),
            Verdict::Unsupported => divergences.push(Divergence {
                detector: "barracuda",
                false_negative: true,
                explanation: Some("barracuda-unsupported"),
            }),
            Verdict::Flagged => {}
        }
    }

    LitmusDiffReport {
        spec: spec.clone(),
        oracle,
        iguard,
        barracuda: ba,
        divergences,
    }
}

/// Deterministic litmus stream for a campaign: `n` specs from `seed`.
#[must_use]
pub fn generate_litmus(n: usize, seed: u64) -> Vec<LitmusSpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| LitmusSpec::random(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Op, Placement};
    use gpu_sim::ir::Scope;

    fn spec(placement: Placement, a0: Vec<Op>, a1: Vec<Op>) -> KernelSpec {
        KernelSpec {
            placement,
            actors: [a0, a1],
        }
    }

    #[test]
    fn iguard_agrees_on_a_cross_block_race() {
        let s = spec(
            Placement::CrossBlock,
            vec![Op::Store { slot: 0 }],
            vec![Op::Load { slot: 0 }],
        );
        let r = diff_spec(&s, &DiffConfig::default());
        assert!(r.oracle.racy);
        assert_eq!(r.iguard, Verdict::Flagged);
        assert!(r.unexplained().is_empty(), "{}", r.describe());
    }

    #[test]
    fn barracuda_miss_of_an_its_race_is_explained() {
        let s = spec(
            Placement::SameWarp,
            vec![Op::Store { slot: 1 }],
            vec![Op::Load { slot: 1 }],
        );
        let r = diff_spec(&s, &DiffConfig::default());
        assert!(r.oracle.racy);
        assert_eq!(r.iguard, Verdict::Flagged, "{}", r.describe());
        assert_eq!(r.barracuda, Verdict::Clean, "{}", r.describe());
        let div: Vec<_> = r.divergences.iter().collect();
        assert_eq!(div.len(), 1);
        assert_eq!(div[0].explanation, Some("barracuda-its-blind"));
        assert!(r.unexplained().is_empty());
    }

    #[test]
    fn scoped_atomic_kernels_divert_to_barracuda_unsupported() {
        let s = spec(
            Placement::CrossBlock,
            vec![Op::AtomicAdd {
                slot: 0,
                scope: Scope::Block,
            }],
            vec![Op::AtomicAdd {
                slot: 0,
                scope: Scope::Block,
            }],
        );
        let r = diff_spec(&s, &DiffConfig::default());
        assert!(r.oracle.racy, "{}", r.describe());
        assert_eq!(r.barracuda, Verdict::Unsupported);
        assert!(r
            .divergences
            .iter()
            .all(|d| d.explanation == Some("barracuda-unsupported")
                || d.detector == "iguard"));
        assert!(r.unexplained().is_empty(), "{}", r.describe());
    }

    #[test]
    fn clean_kernels_produce_no_divergence() {
        let s = spec(
            Placement::CrossBlock,
            vec![Op::Load { slot: 0 }, Op::Store { slot: 1 }],
            vec![Op::Load { slot: 0 }, Op::Store { slot: 2 }],
        );
        let r = diff_spec(&s, &DiffConfig::default());
        assert!(!r.oracle.racy);
        assert!(r.oracle.complete);
        assert_eq!(r.iguard, Verdict::Clean, "{}", r.describe());
        assert!(r.divergences.is_empty(), "{}", r.describe());
    }
}
