//! Greedy spec shrinking: find a minimal kernel that still diverges.
//!
//! A campaign failure is only useful if a human can stare at it, so before
//! a divergent spec enters the corpus it is shrunk: repeatedly delete one
//! op from one actor and keep the deletion whenever the caller's predicate
//! (typically "still has an unexplained divergence") holds. The loop runs
//! to a fixpoint, so the result is 1-minimal: removing any single remaining
//! op changes the verdict.

use crate::litmus::{Cond, LitmusOp, LitmusSpec};
use crate::spec::KernelSpec;

/// Shrinks `spec` while `still_interesting` holds. The predicate is only
/// ever called on candidates with at least one op left per actor, and the
/// returned spec always satisfies it (assuming the input does).
pub fn shrink_spec<F>(spec: &KernelSpec, mut still_interesting: F) -> KernelSpec
where
    F: FnMut(&KernelSpec) -> bool,
{
    let mut best = spec.clone();
    loop {
        let mut improved = false;
        'outer: for actor in 0..2 {
            for i in 0..best.actors[actor].len() {
                if best.actors[actor].len() == 1 {
                    continue;
                }
                let mut cand = best.clone();
                cand.actors[actor].remove(i);
                if still_interesting(&cand) {
                    best = cand;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Shrinks a `v2` litmus spec while `still_interesting` holds, to the
/// same greedy 1-minimal fixpoint as [`shrink_spec`]. Three move kinds,
/// tried in order of how much they delete:
///
/// 1. drop a whole actor (down to 2), renumbering assertion actor refs;
/// 2. drop one op from one actor (never emptying it), dropping/renumbering
///    assertion refs to the deleted load;
/// 3. drop one assertion conjunct.
///
/// Every candidate passed to the predicate is structurally valid.
pub fn shrink_litmus<F>(spec: &LitmusSpec, mut still_interesting: F) -> LitmusSpec
where
    F: FnMut(&LitmusSpec) -> bool,
{
    let mut best = spec.clone();
    loop {
        let mut improved = false;
        'outer: {
            // Move 1: delete an entire actor.
            if best.actors.len() > 2 {
                for a in 0..best.actors.len() {
                    let cand = drop_actor(&best, a);
                    if still_interesting(&cand) {
                        best = cand;
                        improved = true;
                        break 'outer;
                    }
                }
            }
            // Move 2: delete one op.
            for a in 0..best.actors.len() {
                if best.actors[a].len() == 1 {
                    continue;
                }
                for i in 0..best.actors[a].len() {
                    let cand = drop_op(&best, a, i);
                    if still_interesting(&cand) {
                        best = cand;
                        improved = true;
                        break 'outer;
                    }
                }
            }
            // Move 3: delete one assertion conjunct.
            for c in 0..best.assertion.len() {
                let mut cand = best.clone();
                cand.assertion.remove(c);
                if still_interesting(&cand) {
                    best = cand;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            debug_assert!(best.validate().is_ok());
            return best;
        }
    }
}

/// `spec` minus actor `a`, with assertion actor refs renumbered and refs
/// to the deleted actor dropped.
fn drop_actor(spec: &LitmusSpec, a: usize) -> LitmusSpec {
    let mut cand = spec.clone();
    cand.actors.remove(a);
    cand.assertion.retain_mut(|c| match c {
        Cond::Reg { actor, .. } => match (*actor as usize).cmp(&a) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => false,
            std::cmp::Ordering::Greater => {
                *actor -= 1;
                true
            }
        },
        Cond::Mem { .. } => true,
    });
    cand
}

/// `spec` minus op `i` of actor `a`, with assertion load ordinals
/// adjusted when the deleted op was a plain load.
fn drop_op(spec: &LitmusSpec, a: usize, i: usize) -> LitmusSpec {
    let mut cand = spec.clone();
    let removed = cand.actors[a].remove(i);
    if matches!(removed, LitmusOp::Load { .. }) {
        let removed_ord = spec.actors[a][..i]
            .iter()
            .filter(|o| matches!(o, LitmusOp::Load { .. }))
            .count();
        cand.assertion.retain_mut(|c| match c {
            Cond::Reg { actor, load, .. } if *actor as usize == a => {
                match (*load as usize).cmp(&removed_ord) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => false,
                    std::cmp::Ordering::Greater => {
                        *load -= 1;
                        true
                    }
                }
            }
            _ => true,
        });
    }
    cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Op, Placement};

    fn spec(a0: Vec<Op>, a1: Vec<Op>) -> KernelSpec {
        KernelSpec {
            placement: Placement::CrossBlock,
            actors: [a0, a1],
        }
    }

    #[test]
    fn shrinks_to_the_interesting_core() {
        // "Interesting" = both actors still touch slot 0.
        let touches = |s: &KernelSpec| {
            s.actors.iter().all(|a| {
                a.iter()
                    .any(|op| matches!(op, Op::Store { slot: 0 } | Op::Load { slot: 0 }))
            })
        };
        let fat = spec(
            vec![
                Op::Load { slot: 1 },
                Op::Store { slot: 0 },
                Op::Load { slot: 2 },
            ],
            vec![Op::Store { slot: 3 }, Op::Load { slot: 0 }],
        );
        assert!(touches(&fat));
        let thin = shrink_spec(&fat, touches);
        assert_eq!(thin.actors[0], vec![Op::Store { slot: 0 }]);
        assert_eq!(thin.actors[1], vec![Op::Load { slot: 0 }]);
    }

    #[test]
    fn result_is_one_minimal() {
        let pred = |s: &KernelSpec| s.actors[0].len() + s.actors[1].len() >= 3;
        let fat = spec(
            vec![Op::Load { slot: 0 }; 4],
            vec![Op::Store { slot: 1 }; 3],
        );
        let thin = shrink_spec(&fat, pred);
        assert_eq!(thin.actors[0].len() + thin.actors[1].len(), 3);
        // Every single-op deletion falls below the predicate.
        for actor in 0..2 {
            for i in 0..thin.actors[actor].len() {
                if thin.actors[actor].len() == 1 {
                    continue;
                }
                let mut cand = thin.clone();
                cand.actors[actor].remove(i);
                assert!(!pred(&cand));
            }
        }
    }

    #[test]
    fn never_empties_an_actor() {
        let always = |_: &KernelSpec| true;
        let thin = shrink_spec(&spec(vec![Op::Load { slot: 0 }; 3], vec![Op::Store { slot: 0 }]), always);
        assert_eq!(thin.actors[0].len(), 1);
        assert_eq!(thin.actors[1].len(), 1);
    }

    #[test]
    fn litmus_shrink_drops_actors_ops_and_conds() {
        // Interesting = actor holding `Sx` and an actor with a load of x
        // still exist. Everything else must shrink away.
        let fat = LitmusSpec::parse("v2;CB;Sx.Sy.fD/Lz.Lx/Sz.Su;?1:r0=0&1:r1=0&[y]=1")
            .unwrap();
        let pred = |s: &LitmusSpec| {
            s.validate().is_ok()
                && s.actors.iter().any(|a| a.contains(&LitmusOp::Store { loc: 0 }))
                && s.actors
                    .iter()
                    .any(|a| a.contains(&LitmusOp::Load { loc: 0 }))
        };
        assert!(pred(&fat));
        let thin = shrink_litmus(&fat, pred);
        assert!(pred(&thin));
        thin.validate().unwrap();
        assert_eq!(thin.actors.len(), 2);
        assert_eq!(thin.actors[0], vec![LitmusOp::Store { loc: 0 }]);
        assert_eq!(thin.actors[1], vec![LitmusOp::Load { loc: 0 }]);
        assert!(thin.assertion.is_empty());
    }

    #[test]
    fn litmus_shrink_renumbers_assertion_refs() {
        // Predicate pins the cond on actor 2's second load; shrinking must
        // keep that cond valid while deleting the other actor/ops.
        let fat = LitmusSpec::parse("v2;CB;Sx/Sy/Lz.Ly.Lx;?2:r2=0").unwrap();
        let pred = |s: &LitmusSpec| {
            s.validate().is_ok()
                && s.assertion
                    .iter()
                    .any(|c| matches!(c, Cond::Reg { value: 0, .. }))
        };
        let thin = shrink_litmus(&fat, pred);
        thin.validate().unwrap();
        assert_eq!(thin.actors.len(), 2, "{}", thin.to_compact_string());
        assert_eq!(thin.assertion.len(), 1);
    }
}
