//! Greedy spec shrinking: find a minimal kernel that still diverges.
//!
//! A campaign failure is only useful if a human can stare at it, so before
//! a divergent spec enters the corpus it is shrunk: repeatedly delete one
//! op from one actor and keep the deletion whenever the caller's predicate
//! (typically "still has an unexplained divergence") holds. The loop runs
//! to a fixpoint, so the result is 1-minimal: removing any single remaining
//! op changes the verdict.

use crate::spec::KernelSpec;

/// Shrinks `spec` while `still_interesting` holds. The predicate is only
/// ever called on candidates with at least one op left per actor, and the
/// returned spec always satisfies it (assuming the input does).
pub fn shrink_spec<F>(spec: &KernelSpec, mut still_interesting: F) -> KernelSpec
where
    F: FnMut(&KernelSpec) -> bool,
{
    let mut best = spec.clone();
    loop {
        let mut improved = false;
        'outer: for actor in 0..2 {
            for i in 0..best.actors[actor].len() {
                if best.actors[actor].len() == 1 {
                    continue;
                }
                let mut cand = best.clone();
                cand.actors[actor].remove(i);
                if still_interesting(&cand) {
                    best = cand;
                    improved = true;
                    break 'outer;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Op, Placement};

    fn spec(a0: Vec<Op>, a1: Vec<Op>) -> KernelSpec {
        KernelSpec {
            placement: Placement::CrossBlock,
            actors: [a0, a1],
        }
    }

    #[test]
    fn shrinks_to_the_interesting_core() {
        // "Interesting" = both actors still touch slot 0.
        let touches = |s: &KernelSpec| {
            s.actors.iter().all(|a| {
                a.iter()
                    .any(|op| matches!(op, Op::Store { slot: 0 } | Op::Load { slot: 0 }))
            })
        };
        let fat = spec(
            vec![
                Op::Load { slot: 1 },
                Op::Store { slot: 0 },
                Op::Load { slot: 2 },
            ],
            vec![Op::Store { slot: 3 }, Op::Load { slot: 0 }],
        );
        assert!(touches(&fat));
        let thin = shrink_spec(&fat, touches);
        assert_eq!(thin.actors[0], vec![Op::Store { slot: 0 }]);
        assert_eq!(thin.actors[1], vec![Op::Load { slot: 0 }]);
    }

    #[test]
    fn result_is_one_minimal() {
        let pred = |s: &KernelSpec| s.actors[0].len() + s.actors[1].len() >= 3;
        let fat = spec(
            vec![Op::Load { slot: 0 }; 4],
            vec![Op::Store { slot: 1 }; 3],
        );
        let thin = shrink_spec(&fat, pred);
        assert_eq!(thin.actors[0].len() + thin.actors[1].len(), 3);
        // Every single-op deletion falls below the predicate.
        for actor in 0..2 {
            for i in 0..thin.actors[actor].len() {
                if thin.actors[actor].len() == 1 {
                    continue;
                }
                let mut cand = thin.clone();
                cand.actors[actor].remove(i);
                assert!(!pred(&cand));
            }
        }
    }

    #[test]
    fn never_empties_an_actor() {
        let always = |_: &KernelSpec| true;
        let thin = shrink_spec(&spec(vec![Op::Load { slot: 0 }; 3], vec![Op::Store { slot: 0 }]), always);
        assert_eq!(thin.actors[0].len(), 1);
        assert_eq!(thin.actors[1].len(), 1);
    }
}
