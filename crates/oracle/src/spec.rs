//! The generated-kernel family the oracle can reason about exhaustively.
//!
//! A [`KernelSpec`] describes a tiny two-actor kernel: two threads, each
//! running its own straight-line *region* of global-memory operations over
//! a small shared slot pool, dispatched by a short branch prologue. The
//! family is deliberately narrow so that three properties hold:
//!
//! 1. **No passenger lanes.** Every thread of the launch is an actor
//!    ([`Placement::SameWarp`] uses `grid=1, block=2`;
//!    [`Placement::CrossBlock`] uses `grid=2, block=1`), so the schedule
//!    space is exactly the interleavings of the two actors' instruction
//!    sequences — small enough to enumerate exhaustively. A 33-thread
//!    cross-warp layout would drag 31 exiting lanes through the space and
//!    blow it up by orders of magnitude.
//! 2. **Schedule-independent control flow.** Branches depend only on
//!    `tid`/`blockIdx`, never on loaded data, so the k-th dynamic access
//!    of a thread is the *same static operation* in every schedule —
//!    which is what lets the oracle identify access instances across
//!    schedules and decide race-ness by order variance.
//! 3. **Single-lane memory operations.** All global accesses happen
//!    inside per-actor regions, after divergence, so coalescing and
//!    same-split simultaneity never muddy the observed order.

use gpu_sim::ir::Scope;
use gpu_sim::kernel::Kernel;
use gpu_sim::prelude::{KernelBuilder, Special};
use rand::rngs::SmallRng;
use rand::RngExt;

/// Number of 4-byte slots in the shared address pool.
pub const NUM_SLOTS: u8 = 4;

/// Where the two actors live relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Both actors are lanes 0 and 1 of the same warp (`grid=1, block=2`);
    /// races here are intra-warp ITS races, the paper's headline class.
    SameWarp,
    /// Actors are the sole threads of two different blocks
    /// (`grid=2, block=1`); races here are inter-block (DR) or
    /// insufficient-atomic-scope (AS) races.
    CrossBlock,
}

/// One operation of an actor's region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Plain global load of a slot.
    Load { slot: u8 },
    /// Plain global store to a slot.
    Store { slot: u8 },
    /// `atomicAdd` on a slot with the given scope.
    AtomicAdd { slot: u8, scope: Scope },
    /// `__syncwarp()` (meaningful under [`Placement::SameWarp`] only).
    SyncWarp,
    /// `__syncthreads()` (meaningful under [`Placement::SameWarp`] only —
    /// a one-thread block releases its own barrier instantly).
    SyncThreads,
    /// `__threadfence[_block]()`.
    Fence { scope: Scope },
}

impl Op {
    fn token(self) -> String {
        match self {
            Op::Load { slot } => format!("L{slot}"),
            Op::Store { slot } => format!("S{slot}"),
            Op::AtomicAdd {
                slot,
                scope: Scope::Block,
            } => format!("aB{slot}"),
            Op::AtomicAdd {
                slot,
                scope: Scope::Device,
            } => format!("aD{slot}"),
            Op::SyncWarp => "w".into(),
            Op::SyncThreads => "t".into(),
            Op::Fence {
                scope: Scope::Block,
            } => "fB".into(),
            Op::Fence {
                scope: Scope::Device,
            } => "fD".into(),
        }
    }

    fn parse(tok: &str) -> Result<Op, String> {
        let slot_of = |s: &str| -> Result<u8, String> {
            let n: u8 = s.parse().map_err(|e| format!("bad slot in {tok:?}: {e}"))?;
            if n >= NUM_SLOTS {
                return Err(format!("slot {n} out of range in {tok:?}"));
            }
            Ok(n)
        };
        match tok {
            "w" => Ok(Op::SyncWarp),
            "t" => Ok(Op::SyncThreads),
            "fB" => Ok(Op::Fence {
                scope: Scope::Block,
            }),
            "fD" => Ok(Op::Fence {
                scope: Scope::Device,
            }),
            _ if tok.starts_with("aB") => Ok(Op::AtomicAdd {
                slot: slot_of(&tok[2..])?,
                scope: Scope::Block,
            }),
            _ if tok.starts_with("aD") => Ok(Op::AtomicAdd {
                slot: slot_of(&tok[2..])?,
                scope: Scope::Device,
            }),
            _ if tok.starts_with('L') => Ok(Op::Load {
                slot: slot_of(&tok[1..])?,
            }),
            _ if tok.starts_with('S') => Ok(Op::Store {
                slot: slot_of(&tok[1..])?,
            }),
            _ => Err(format!("unknown op token {tok:?}")),
        }
    }

    /// Whether this op touches global memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. } | Op::AtomicAdd { .. })
    }
}

/// A tiny two-actor kernel, fully describing what the oracle explores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpec {
    pub placement: Placement,
    /// The two actors' operation regions.
    pub actors: [Vec<Op>; 2],
}

impl KernelSpec {
    /// `(grid_dim, block_dim)` of the launch this spec describes.
    #[must_use]
    pub fn grid_block(&self) -> (u32, u32) {
        match self.placement {
            Placement::SameWarp => (1, 2),
            Placement::CrossBlock => (2, 1),
        }
    }

    /// Whether any actor contains a fence (iGUARD's fence checks are a
    /// release-side approximation inherited from ScoRD, so fence kernels
    /// can produce *explained* detector divergences).
    #[must_use]
    pub fn has_fence(&self) -> bool {
        self.actors
            .iter()
            .any(|a| a.iter().any(|o| matches!(o, Op::Fence { .. })))
    }

    /// Serializes to the versioned single-line corpus form, e.g.
    /// `v1;SW;S0.w.L1/L0.w.S1`.
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let place = match self.placement {
            Placement::SameWarp => "SW",
            Placement::CrossBlock => "CB",
        };
        let actor = |ops: &[Op]| {
            ops.iter()
                .map(|o| o.token())
                .collect::<Vec<_>>()
                .join(".")
        };
        format!(
            "v1;{place};{}/{}",
            actor(&self.actors[0]),
            actor(&self.actors[1])
        )
    }

    /// Parses the form produced by [`KernelSpec::to_compact_string`].
    pub fn parse(s: &str) -> Result<Self, String> {
        let rest = s
            .strip_prefix("v1;")
            .ok_or_else(|| format!("unknown spec version in {s:?}"))?;
        let (place, body) = rest
            .split_once(';')
            .ok_or_else(|| format!("bad spec header in {s:?}"))?;
        let placement = match place {
            "SW" => Placement::SameWarp,
            "CB" => Placement::CrossBlock,
            _ => return Err(format!("unknown placement {place:?} in {s:?}")),
        };
        let (a0, a1) = body
            .split_once('/')
            .ok_or_else(|| format!("missing actor separator in {s:?}"))?;
        let parse_actor = |part: &str| -> Result<Vec<Op>, String> {
            if part.is_empty() {
                return Ok(Vec::new());
            }
            part.split('.').map(Op::parse).collect()
        };
        Ok(KernelSpec {
            placement,
            actors: [parse_actor(a0)?, parse_actor(a1)?],
        })
    }

    /// Builds the kernel: a branch prologue dispatching on the actor id
    /// (`tid` for same-warp, `blockIdx` for cross-block) into two
    /// straight-line regions that each end in `exit`.
    #[must_use]
    pub fn build(&self) -> Kernel {
        let mut b = KernelBuilder::new("oracle_gen");
        let base = b.param(0);
        let id = match self.placement {
            Placement::SameWarp => b.special(Special::Tid),
            Placement::CrossBlock => b.special(Special::BlockId),
        };
        let is0 = b.eq(id, 0u32);
        let l1 = b.fwd_label();
        b.bra_ifnot(is0, l1);
        Self::emit_region(&mut b, base, &self.actors[0]);
        b.bind(l1);
        Self::emit_region(&mut b, base, &self.actors[1]);
        b.build()
    }

    /// Instructions each actor executes, prologue included — the two
    /// sequence lengths whose interleaving count is the schedule-space
    /// size for passenger-free kernels (see the oracle completeness test).
    #[must_use]
    pub fn path_lengths(&self) -> (usize, usize) {
        // Prologue: param, special, eq, bra_ifnot — executed by both.
        let region = |ops: &[Op]| {
            let needs_src = ops
                .iter()
                .any(|o| matches!(o, Op::Store { .. } | Op::AtomicAdd { .. }));
            4 + usize::from(needs_src) + ops.len() + 1 // + exit
        };
        (region(&self.actors[0]), region(&self.actors[1]))
    }

    fn emit_region(b: &mut KernelBuilder, base: gpu_sim::ir::Reg, ops: &[Op]) {
        let needs_src = ops
            .iter()
            .any(|o| matches!(o, Op::Store { .. } | Op::AtomicAdd { .. }));
        let src = needs_src.then(|| b.imm(1));
        for op in ops {
            match *op {
                Op::Load { slot } => {
                    let _ = b.ld(base, i32::from(slot));
                }
                Op::Store { slot } => b.st(base, i32::from(slot), src.unwrap()),
                Op::AtomicAdd { slot, scope } => {
                    let _ = b.atomic_add(scope, base, i32::from(slot), src.unwrap());
                }
                Op::SyncWarp => b.syncwarp(),
                Op::SyncThreads => b.syncthreads(),
                Op::Fence { scope } => b.membar(scope),
            }
        }
        b.exit();
    }

    /// Draws a random spec. Operation mix: mostly plain loads/stores with
    /// occasional scoped atomics and (rarely) fences; same-warp kernels
    /// get an aligned barrier pair inserted about half the time, which is
    /// what produces genuinely clean synchronized kernels.
    #[must_use]
    pub fn random(rng: &mut SmallRng) -> Self {
        let placement = if rng.random_bool(0.5) {
            Placement::SameWarp
        } else {
            Placement::CrossBlock
        };
        let mut actors: [Vec<Op>; 2] = [Vec::new(), Vec::new()];
        for actor in &mut actors {
            let k = rng.random_range(1usize..=3);
            for _ in 0..k {
                let slot = rng.random_range(0..NUM_SLOTS);
                let roll = rng.random_range(0u32..100);
                actor.push(match roll {
                    0..=37 => Op::Load { slot },
                    38..=75 => Op::Store { slot },
                    76..=86 => Op::AtomicAdd {
                        slot,
                        scope: Scope::Block,
                    },
                    87..=94 => Op::AtomicAdd {
                        slot,
                        scope: Scope::Device,
                    },
                    _ => Op::Fence {
                        scope: if roll >= 98 {
                            Scope::Block
                        } else {
                            Scope::Device
                        },
                    },
                });
            }
        }
        let mut spec = KernelSpec { placement, actors };
        if placement == Placement::SameWarp && rng.random_bool(0.5) {
            // Insert an aligned barrier pair at the same gap in both
            // actors so it actually orders the accesses around it.
            let bar = if rng.random_bool(0.5) {
                Op::SyncWarp
            } else {
                Op::SyncThreads
            };
            let max_gap = spec.actors[0].len().min(spec.actors[1].len());
            let gap = rng.random_range(0..=max_gap);
            spec.actors[0].insert(gap, bar);
            spec.actors[1].insert(gap, bar);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spec_roundtrips_through_compact_string() {
        let spec = KernelSpec {
            placement: Placement::SameWarp,
            actors: [
                vec![
                    Op::Store { slot: 0 },
                    Op::SyncWarp,
                    Op::Load { slot: 1 },
                    Op::Fence {
                        scope: Scope::Device,
                    },
                ],
                vec![
                    Op::AtomicAdd {
                        slot: 2,
                        scope: Scope::Block,
                    },
                    Op::SyncThreads,
                ],
            ],
        };
        let s = spec.to_compact_string();
        assert_eq!(s, "v1;SW;S0.w.L1.fD/aB2.t");
        assert_eq!(KernelSpec::parse(&s).unwrap(), spec);

        let empty = KernelSpec {
            placement: Placement::CrossBlock,
            actors: [vec![], vec![Op::Load { slot: 3 }]],
        };
        assert_eq!(
            KernelSpec::parse(&empty.to_compact_string()).unwrap(),
            empty
        );
        assert!(KernelSpec::parse("v2;SW;L0/L0").is_err());
        assert!(KernelSpec::parse("v1;XX;L0/L0").is_err());
        assert!(KernelSpec::parse("v1;SW;L9/L0").is_err());
        assert!(KernelSpec::parse("v1;SW;L0").is_err());
    }

    #[test]
    fn built_kernels_run_and_path_lengths_match() {
        use gpu_sim::hook::NullHook;
        use gpu_sim::machine::{Gpu, GpuConfig};
        let spec = KernelSpec {
            placement: Placement::CrossBlock,
            actors: [
                vec![Op::Store { slot: 0 }, Op::Load { slot: 1 }],
                vec![Op::Load { slot: 0 }],
            ],
        };
        let k = spec.build();
        let mut gpu = Gpu::new(GpuConfig {
            mem_words: 256,
            num_sms: 2,
            max_steps: 10_000,
            ..GpuConfig::default()
        });
        let buf = gpu.alloc(usize::from(NUM_SLOTS)).unwrap();
        let (grid, block) = spec.grid_block();
        let stats = gpu.launch(&k, grid, block, &[buf], &mut NullHook).unwrap();
        let (p0, p1) = spec.path_lengths();
        // Every step executes one split; with one thread per block the
        // total dynamic instruction count is exactly the two path lengths.
        assert_eq!(stats.dyn_instrs as usize, p0 + p1);
    }

    #[test]
    fn random_specs_are_well_formed() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let spec = KernelSpec::random(&mut rng);
            let s = spec.to_compact_string();
            assert_eq!(KernelSpec::parse(&s).unwrap(), spec);
            assert!(spec.actors.iter().all(|a| !a.is_empty()));
            // Barrier ops only appear under SameWarp (aligned insertion).
            if spec.placement == Placement::CrossBlock {
                assert!(!spec
                    .actors
                    .iter()
                    .flatten()
                    .any(|o| matches!(o, Op::SyncWarp | Op::SyncThreads)));
            }
        }
    }
}
