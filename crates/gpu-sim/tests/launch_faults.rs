//! The fault plane at the launch boundary: injected aborts and hangs,
//! typed construction errors, and the zero-fault invariant.

use faults::{FaultConfig, FaultSite, RATE_ONE};
use gpu_sim::error::SimError;
use gpu_sim::machine::{Gpu, GpuConfig};
use gpu_sim::prelude::*;

fn fill_kernel() -> Kernel {
    let mut b = KernelBuilder::new("fill");
    let gtid = b.special(Special::GlobalTid);
    let base = b.param(0);
    let off = b.mul(gtid, 4u32);
    let addr = b.add(base, off);
    b.st(addr, 0, gtid);
    b.build()
}

fn cfg_with(faults: FaultConfig) -> GpuConfig {
    GpuConfig {
        max_steps: 2_000_000,
        faults,
        ..GpuConfig::default()
    }
}

#[test]
fn bad_config_is_a_typed_error() {
    let cfg = GpuConfig {
        mem_words: (1 << 30) + 1,
        ..GpuConfig::default()
    };
    match Gpu::try_new(cfg).map(|_| ()) {
        Err(SimError::BadConfig { reason }) => {
            assert!(reason.contains("32-bit"), "reason: {reason}");
        }
        other => panic!("expected BadConfig, got {other:?}"),
    }
    let cfg = GpuConfig {
        num_sms: 0,
        ..GpuConfig::default()
    };
    assert!(matches!(
        Gpu::try_new(cfg).map(|_| ()),
        Err(SimError::BadConfig { .. })
    ));
}

#[test]
#[should_panic(expected = "exceeds the 32-bit simulated address space")]
fn infallible_constructor_keeps_its_panic() {
    let _ = Gpu::new(GpuConfig {
        mem_words: (1 << 30) + 1,
        ..GpuConfig::default()
    });
}

#[test]
fn certain_abort_kills_every_launch_and_is_counted() {
    let faults = FaultConfig::disabled()
        .with_seed(11)
        .with_rate(FaultSite::KernelAbort, RATE_ONE);
    let mut gpu = Gpu::new(cfg_with(faults));
    let buf = gpu.alloc(256).unwrap();
    let k = fill_kernel();
    match gpu.launch(&k, 4, 64, &[buf], &mut NullHook) {
        Err(SimError::InjectedFault { site }) => assert_eq!(site, "kernel-abort"),
        other => panic!("expected InjectedFault, got {other:?}"),
    }
    assert_eq!(gpu.fault_stats().get(FaultSite::KernelAbort), 1);
    // The aborted launch never ran: memory is untouched.
    assert!(gpu.read_slice(buf, 256).iter().all(|&v| v == 0));
}

#[test]
fn injected_hang_is_killed_by_the_watchdog() {
    let faults = FaultConfig::disabled()
        .with_seed(11)
        .with_rate(FaultSite::KernelHang, RATE_ONE);
    let mut gpu = Gpu::new(cfg_with(faults));
    let buf = gpu.alloc(4096).unwrap();
    let k = fill_kernel();
    // A big enough grid that the hang point lands mid-execution for most
    // draws; either way the launch must *end* (no infinite loop) and any
    // truncation must surface as Timeout.
    let r = gpu.launch(&k, 32, 128, &[buf], &mut NullHook);
    match r {
        Ok(_) => {} // hang point drawn beyond the kernel's natural length
        Err(SimError::Timeout { .. }) => {
            assert_eq!(gpu.fault_stats().get(FaultSite::KernelHang), 1);
        }
        other => panic!("expected Ok or Timeout, got {other:?}"),
    }
}

#[test]
fn hang_draw_is_deterministic_across_reruns() {
    let run = || {
        let faults = FaultConfig::disabled()
            .with_seed(42)
            .with_rate(FaultSite::KernelHang, RATE_ONE / 2);
        let mut gpu = Gpu::new(cfg_with(faults));
        let buf = gpu.alloc(4096).unwrap();
        let k = fill_kernel();
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            outcomes.push(match gpu.launch(&k, 32, 128, &[buf], &mut NullHook) {
                Ok(s) => format!("ok:{}", s.steps),
                Err(e) => format!("err:{e}"),
            });
        }
        (outcomes, gpu.fault_stats())
    };
    assert_eq!(run(), run());
}

#[test]
fn disabled_faults_leave_launch_byte_identical() {
    let run = |faults: FaultConfig| {
        let mut gpu = Gpu::new(cfg_with(faults));
        let buf = gpu.alloc(256).unwrap();
        let k = fill_kernel();
        let s = gpu.launch(&k, 4, 64, &[buf], &mut NullHook).unwrap();
        (s, gpu.read_slice(buf, 256), gpu.clock().total_time())
    };
    // An enabled-but-all-zero-rates config must match the default too.
    let baseline = run(FaultConfig::disabled());
    assert_eq!(baseline, run(FaultConfig::uniform(99, 0)));
    let with_plane = run(FaultConfig::disabled().with_seed(123));
    assert_eq!(baseline, with_plane);
}
