//! Differential testing of the interpreter: random straight-line programs
//! executed by the simulator must agree with a host-side reference
//! interpreter, for every ALU op, comparison, select, and special value.

use gpu_sim::prelude::*;
use proptest::prelude::*;

/// A straight-line op in a tiny three-register language.
#[derive(Debug, Clone, Copy)]
enum Op {
    Alu(AluOp, u8, u8, u32),
    Cmp(CmpOp, u8, u8, u32),
    Sel(u8, u8, u32, u32),
    MovImm(u8, u32),
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::Min),
        Just(AluOp::Max),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::SLt),
        Just(CmpOp::SGt),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (alu_op(), 0u8..3, 0u8..3, 1u32..u32::MAX).prop_map(|(o, d, a, b)| Op::Alu(o, d, a, b)),
        (cmp_op(), 0u8..3, 0u8..3, any::<u32>()).prop_map(|(o, d, a, b)| Op::Cmp(o, d, a, b)),
        (0u8..3, 0u8..3, any::<u32>(), any::<u32>()).prop_map(|(d, c, a, b)| Op::Sel(d, c, a, b)),
        (0u8..3, any::<u32>()).prop_map(|(d, v)| Op::MovImm(d, v)),
    ]
}

/// Host-side reference semantics.
fn reference(ops: &[Op], tid: u32) -> [u32; 3] {
    let mut r = [tid, tid ^ 0xDEAD_BEEF, tid.wrapping_mul(3)];
    for &op in ops {
        match op {
            Op::Alu(o, d, a, b) => {
                let x = r[a as usize];
                r[d as usize] = match o {
                    AluOp::Add => x.wrapping_add(b),
                    AluOp::Sub => x.wrapping_sub(b),
                    AluOp::Mul => x.wrapping_mul(b),
                    AluOp::Div => x / b, // b >= 1 by construction
                    AluOp::Rem => x % b,
                    AluOp::Min => x.min(b),
                    AluOp::Max => x.max(b),
                    AluOp::And => x & b,
                    AluOp::Or => x | b,
                    AluOp::Xor => x ^ b,
                    AluOp::Shl => x.wrapping_shl(b),
                    AluOp::Shr => x.wrapping_shr(b),
                };
            }
            Op::Cmp(o, d, a, b) => {
                let x = r[a as usize];
                let t = match o {
                    CmpOp::Eq => x == b,
                    CmpOp::Ne => x != b,
                    CmpOp::Lt => x < b,
                    CmpOp::Le => x <= b,
                    CmpOp::Gt => x > b,
                    CmpOp::Ge => x >= b,
                    CmpOp::SLt => (x as i32) < (b as i32),
                    CmpOp::SGt => (x as i32) > (b as i32),
                };
                r[d as usize] = u32::from(t);
            }
            Op::Sel(d, c, a, b) => {
                r[d as usize] = if r[c as usize] != 0 { a } else { b };
            }
            Op::MovImm(d, v) => r[d as usize] = v,
        }
    }
    r
}

/// Builds the same program for the simulator: three virtual registers
/// seeded from tid, every result stored to out[gtid*3 + i].
fn build(ops: &[Op]) -> Kernel {
    let mut b = KernelBuilder::new("interp_diff");
    let tid = b.special(Special::GlobalTid);
    let out = b.param(0);
    let r0 = b.reg();
    let r1 = b.reg();
    let r2 = b.reg();
    let regs = [r0, r1, r2];
    b.mov(r0, tid);
    let x = b.xor(tid, 0xDEAD_BEEFu32);
    b.mov(r1, x);
    let m = b.mul(tid, 3u32);
    b.mov(r2, m);
    for &op in ops {
        match op {
            Op::Alu(o, d, a, imm) => b.assign(o, regs[d as usize], regs[a as usize], imm),
            Op::Cmp(o, d, a, imm) => b.assign_cmp(o, regs[d as usize], regs[a as usize], imm),
            Op::Sel(d, c, x, y) => {
                let v = b.sel(regs[c as usize], x, y);
                b.mov(regs[d as usize], v);
            }
            Op::MovImm(d, v) => b.mov(regs[d as usize], v),
        }
    }
    // Store all three registers.
    let three = b.mul(tid, 3u32);
    for (i, &r) in regs.iter().enumerate() {
        let idx = b.add(three, i as u32);
        let off = b.mul(idx, 4u32);
        let a = b.add(out, off);
        b.st(a, 0, r);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every thread of a multi-warp grid, the simulator's register
    /// machine agrees with the reference on arbitrary op sequences.
    #[test]
    fn interpreter_matches_reference(
        ops in prop::collection::vec(op_strategy(), 1..16),
        seed in any::<u64>(),
    ) {
        let k = build(&ops);
        let cfg = GpuConfig { seed, ..GpuConfig::default() };
        let mut gpu = Gpu::new(cfg);
        let n = 2 * 48u32; // two blocks, partial warps
        let out = gpu.alloc(3 * n as usize).unwrap();
        gpu.launch(&k, 2, 48, &[out], &mut NullHook).unwrap();
        for tid in 0..n {
            let expect = reference(&ops, tid);
            for i in 0..3 {
                let got = gpu.read(out, (tid * 3 + i) as usize);
                prop_assert_eq!(got, expect[i as usize], "tid {} r{}", tid, i);
            }
        }
    }
}
