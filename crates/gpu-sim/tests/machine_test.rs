//! End-to-end tests of the simulated GPU: kernels, scheduling modes,
//! divergence, barriers, scoped visibility, and fault handling.

use gpu_sim::prelude::*;

fn gpu_with(mode: ExecMode, seed: u64) -> Gpu {
    let cfg = GpuConfig {
        mode,
        seed,
        max_steps: 2_000_000,
        ..GpuConfig::default()
    };
    Gpu::new(cfg)
}

fn gpu() -> Gpu {
    gpu_with(ExecMode::Its, 7)
}

/// `a[gtid] = gtid` across multiple blocks.
fn fill_kernel() -> Kernel {
    let mut b = KernelBuilder::new("fill");
    let gtid = b.special(Special::GlobalTid);
    let base = b.param(0);
    let off = b.mul(gtid, 4u32);
    let addr = b.add(base, off);
    b.st(addr, 0, gtid);
    b.build()
}

#[test]
fn multi_block_fill() {
    let mut gpu = gpu();
    let buf = gpu.alloc(256).unwrap();
    let k = fill_kernel();
    gpu.launch(&k, 4, 64, &[buf], &mut NullHook).unwrap();
    let out = gpu.read_slice(buf, 256);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as u32);
    }
}

#[test]
fn partial_warp_block() {
    let mut gpu = gpu();
    let buf = gpu.alloc(80).unwrap();
    let k = fill_kernel();
    // 40 threads per block: one full warp + one 8-lane warp.
    gpu.launch(&k, 2, 40, &[buf], &mut NullHook).unwrap();
    let out = gpu.read_slice(buf, 80);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as u32);
    }
}

/// Tree reduction within a block using shared memory and `__syncthreads`.
fn block_reduce_kernel(block_dim: u32) -> Kernel {
    let mut b = KernelBuilder::new("block_reduce");
    b.shared(block_dim as usize);
    let tid = b.special(Special::Tid);
    let gtid = b.special(Special::GlobalTid);
    let input = b.param(0);
    let out = b.param(1);
    // sdata[tid] = input[gtid]
    let goff = b.mul(gtid, 4u32);
    let gaddr = b.add(input, goff);
    let v = b.ld(gaddr, 0);
    let soff = b.mul(tid, 4u32);
    b.st_shared(soff, 0, v);
    b.syncthreads();
    // for (s = dim/2; s > 0; s >>= 1)
    let stride = b.imm(block_dim / 2);
    let top = b.here();
    let done = b.eq(stride, 0u32);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let in_range = b.lt(tid, stride);
    let skip = b.fwd_label();
    b.bra_ifnot(in_range, skip);
    // sdata[tid] += sdata[tid + stride]
    let mine = b.ld_shared(soff, 0);
    let other_idx = b.add(tid, stride);
    let ooff = b.mul(other_idx, 4u32);
    let theirs = b.ld_shared(ooff, 0);
    let sum = b.add(mine, theirs);
    b.st_shared(soff, 0, sum);
    b.bind(skip);
    b.syncthreads();
    let half = b.shr(stride, 1u32);
    b.mov(stride, half);
    b.bra(top);
    b.bind(exit_l);
    // if (tid == 0) out[blockId] = sdata[0]
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let res = b.ld_shared(soff, 0); // tid==0 so soff==0
    let bid = b.special(Special::BlockId);
    let boff = b.mul(bid, 4u32);
    let oaddr = b.add(out, boff);
    b.st(oaddr, 0, res);
    b.bind(fin);
    b.build()
}

#[test]
fn block_reduction_with_barriers_is_correct_under_its() {
    for seed in 0..8 {
        let mut gpu = gpu_with(ExecMode::Its, seed);
        let n = 128u32;
        let input = gpu.alloc(n as usize).unwrap();
        let out = gpu.alloc(2).unwrap();
        let data: Vec<u32> = (0..n).collect();
        gpu.write_slice(input, &data);
        let k = block_reduce_kernel(64);
        gpu.launch(&k, 2, 64, &[input, out], &mut NullHook).unwrap();
        let expect0: u32 = (0..64).sum();
        let expect1: u32 = (64..128).sum();
        assert_eq!(gpu.read(out, 0), expect0, "seed {seed}");
        assert_eq!(gpu.read(out, 1), expect1, "seed {seed}");
    }
}

#[test]
fn device_atomics_sum_across_blocks() {
    let mut gpu = gpu();
    let buf = gpu.alloc(4).unwrap();
    let mut b = KernelBuilder::new("atomic_sum");
    let base = b.param(0);
    let one = b.imm(1);
    let _ = b.atomic_add(Scope::Device, base, 0, one);
    let k = b.build();
    gpu.launch(&k, 8, 64, &[buf], &mut NullHook).unwrap();
    assert_eq!(gpu.read(buf, 0), 8 * 64);
}

#[test]
fn block_scope_atomics_lose_updates_across_sms() {
    // Two blocks on different SMs atomicAdd_block the same counter:
    // the narrow scope makes one SM's updates invisible to the other.
    let mut gpu = gpu();
    let buf = gpu.alloc(4).unwrap();
    let mut b = KernelBuilder::new("underscoped");
    let base = b.param(0);
    let one = b.imm(1);
    let _ = b.atomic_add(Scope::Block, base, 0, one);
    let k = b.build();
    gpu.launch(&k, 4, 32, &[buf], &mut NullHook).unwrap();
    let v = gpu.read(buf, 0);
    assert!(
        v < 4 * 32,
        "under-scoped atomics must lose updates, got {v}"
    );
    assert!(v >= 32, "each block's own updates are coherent, got {v}");
}

#[test]
fn spin_lock_protects_critical_section() {
    // counter++ under a device-scope spin lock, many contending warps.
    let mut gpu = gpu();
    let buf = gpu.alloc(8).unwrap(); // [lock, counter]
    let mut b = KernelBuilder::new("locked_inc");
    let base = b.param(0);
    let tid = b.special(Special::Tid);
    let is_leader = b.eq(tid, 0u32);
    let skip = b.fwd_label();
    b.bra_ifnot(is_leader, skip);
    b.lock(Scope::Device, base, 0);
    let v = b.ld(base, 1);
    let v1 = b.add(v, 1u32);
    b.st(base, 1, v1);
    b.unlock(Scope::Device, base, 0);
    b.bind(skip);
    let k = b.build();
    gpu.launch(&k, 6, 32, &[buf], &mut NullHook).unwrap();
    assert_eq!(gpu.read(buf, 1), 6, "one increment per block leader");
    assert_eq!(gpu.read(buf, 0), 0, "lock released");
}

/// The Figure 2 pattern: lane 1 stores, lane 0 loads the stored value,
/// optionally separated by `__syncwarp()`.
fn warp_handoff_kernel(with_syncwarp: bool) -> Kernel {
    let mut b = KernelBuilder::new(if with_syncwarp {
        "handoff_sync"
    } else {
        "handoff_racy"
    });
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    // if (tid == 1) a[1] = 77;
    let is1 = b.eq(tid, 1u32);
    let after_store = b.fwd_label();
    b.bra_ifnot(is1, after_store);
    let v = b.imm(77);
    b.st(base, 1, v);
    b.bind(after_store);
    if with_syncwarp {
        b.syncwarp();
    }
    // if (tid == 0) a[0] = a[1];
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(fin);
    b.build()
}

#[test]
fn missing_syncwarp_misorders_under_its_for_some_seed() {
    let mut misordered = false;
    for seed in 0..64 {
        let mut gpu = gpu_with(ExecMode::Its, seed);
        let buf = gpu.alloc(4).unwrap();
        let k = warp_handoff_kernel(false);
        gpu.launch(&k, 1, 32, &[buf], &mut NullHook).unwrap();
        if gpu.read(buf, 0) != 77 {
            misordered = true;
            break;
        }
    }
    assert!(
        misordered,
        "ITS must reorder the unsynchronized warp handoff for some schedule"
    );
}

#[test]
fn syncwarp_orders_warp_handoff_on_all_seeds() {
    for seed in 0..64 {
        let mut gpu = gpu_with(ExecMode::Its, seed);
        let buf = gpu.alloc(4).unwrap();
        let k = warp_handoff_kernel(true);
        gpu.launch(&k, 1, 32, &[buf], &mut NullHook).unwrap();
        assert_eq!(gpu.read(buf, 0), 77, "seed {seed}");
    }
}

#[test]
fn lockstep_orders_warp_handoff_without_syncwarp() {
    // Pre-Volta lockstep: the store (earlier pc) always precedes the load.
    for seed in 0..16 {
        let mut gpu = gpu_with(ExecMode::Lockstep, seed);
        let buf = gpu.alloc(4).unwrap();
        let k = warp_handoff_kernel(false);
        gpu.launch(&k, 1, 32, &[buf], &mut NullHook).unwrap();
        assert_eq!(gpu.read(buf, 0), 77, "seed {seed}");
    }
}

#[test]
fn volatile_flag_handoff_across_blocks() {
    // Block 0 publishes data then sets a flag; block 1 spins on the flag
    // (volatile) then reads the data after a device fence pair.
    let mut gpu = gpu();
    let buf = gpu.alloc(8).unwrap(); // [flag, data]
    let mut b = KernelBuilder::new("flag_handoff");
    let base = b.param(0);
    let bid = b.special(Special::BlockId);
    let tid = b.special(Special::Tid);
    let is_producer = b.eq(bid, 0u32);
    let consumer = b.fwd_label();
    b.bra_ifnot(is_producer, consumer);
    // producer (block 0, thread 0)
    let t0 = b.eq(tid, 0u32);
    let pdone = b.fwd_label();
    b.bra_ifnot(t0, pdone);
    let v = b.imm(123);
    b.st(base, 1, v);
    b.membar(Scope::Device);
    let one = b.imm(1);
    b.st_volatile(base, 0, one);
    b.bind(pdone);
    let endl = b.fwd_label();
    b.bra(endl);
    // consumer (block 1, thread 0)
    b.bind(consumer);
    let t0c = b.eq(tid, 0u32);
    let cdone = b.fwd_label();
    b.bra_ifnot(t0c, cdone);
    let spin = b.here();
    let f = b.ld_volatile(base, 0);
    let unset = b.eq(f, 0u32);
    b.bra_if(unset, spin);
    b.membar(Scope::Device);
    let d = b.ld(base, 1);
    b.st(base, 2, d);
    b.bind(cdone);
    b.bind(endl);
    let k = b.build();
    gpu.launch(&k, 2, 32, &[buf], &mut NullHook).unwrap();
    assert_eq!(gpu.read(buf, 2), 123);
}

#[test]
fn infinite_loop_hits_watchdog() {
    let cfg = GpuConfig {
        max_steps: 10_000,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let mut b = KernelBuilder::new("spin_forever");
    let top = b.here();
    b.bra(top);
    let k = b.build();
    let err = gpu.launch(&k, 1, 32, &[], &mut NullHook).unwrap_err();
    assert!(matches!(err, SimError::Timeout { .. }));
}

#[test]
fn mixed_barrier_wait_is_deadlock() {
    // Lane 0 waits at the block barrier; lane 1 waits at a warp barrier.
    // Neither can ever release: a real CUDA hang, detected as deadlock.
    let mut gpu = gpu();
    let mut b = KernelBuilder::new("mixed_barriers");
    let tid = b.special(Special::Tid);
    let is0 = b.eq(tid, 0u32);
    let warp_path = b.fwd_label();
    b.bra_ifnot(is0, warp_path);
    b.syncthreads();
    let endl = b.fwd_label();
    b.bra(endl);
    b.bind(warp_path);
    b.syncwarp();
    b.bind(endl);
    let k = b.build();
    let buf = gpu.alloc(4).unwrap();
    let err = gpu.launch(&k, 1, 2, &[buf], &mut NullHook).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "got {err:?}");
}

#[test]
fn out_of_bounds_access_faults() {
    let mut gpu = gpu();
    let mut b = KernelBuilder::new("wild");
    let addr = b.imm(0x3FFF_FFFC);
    let v = b.imm(1);
    b.st(addr, 0, v);
    let k = b.build();
    let err = gpu.launch(&k, 1, 1, &[], &mut NullHook).unwrap_err();
    assert!(matches!(err, SimError::OutOfBounds { .. }));
}

#[test]
fn divide_by_zero_faults() {
    let mut gpu = gpu();
    let mut b = KernelBuilder::new("div0");
    let a = b.imm(10);
    let z = b.imm(0);
    let _ = b.div(a, z);
    let k = b.build();
    let err = gpu.launch(&k, 1, 1, &[], &mut NullHook).unwrap_err();
    assert!(matches!(err, SimError::DivideByZero { .. }));
}

#[test]
fn bad_launch_configs_rejected() {
    let mut gpu = gpu();
    let k = fill_kernel();
    assert!(matches!(
        gpu.launch(&k, 1, 2000, &[0], &mut NullHook),
        Err(SimError::BadLaunch { .. })
    ));
    assert!(matches!(
        gpu.launch(&k, 0, 32, &[0], &mut NullHook),
        Err(SimError::BadLaunch { .. })
    ));
}

#[test]
fn allocation_exhaustion_is_oom() {
    let cfg = GpuConfig {
        mem_words: 1024,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    assert!(gpu.alloc(512).is_ok());
    assert!(matches!(
        gpu.alloc(100_000),
        Err(SimError::OutOfMemory { .. })
    ));
}

#[test]
fn logical_allocation_tracks_capacity() {
    let cfg = GpuConfig {
        device_mem_bytes: 1 << 30,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let before = gpu.free_device_bytes();
    gpu.alloc_logical(16, 512 << 20).unwrap();
    assert_eq!(before - gpu.free_device_bytes(), 512 << 20);
    assert!(matches!(
        gpu.alloc_logical(16, 600 << 20),
        Err(SimError::OutOfMemory { .. })
    ));
}

/// A hook that counts what it observes, verifying instrumentation delivery.
#[derive(Default)]
struct CountingHook {
    loads: u64,
    stores: u64,
    atomics: u64,
    fences: u64,
    block_barriers: u64,
    warp_barriers: u64,
    lanes_seen: u64,
    launches: u64,
}

impl Hook for CountingHook {
    fn on_kernel_launch(&mut self, _info: &LaunchInfo, _clock: &mut Clock) {
        self.launches += 1;
    }
    fn on_mem_access(&mut self, a: &MemAccess<'_>, _clock: &mut Clock) {
        self.lanes_seen += a.lanes.len() as u64;
        match a.kind {
            AccessKind::Load => self.loads += 1,
            AccessKind::Store => self.stores += 1,
            AccessKind::Atomic { .. } => self.atomics += 1,
        }
        // The active mask must cover exactly the reported lanes.
        let mask_bits = a.active_mask.count_ones() as usize;
        assert_eq!(mask_bits, a.lanes.len());
    }
    fn on_sync(&mut self, e: &SyncEvent<'_>, _clock: &mut Clock) {
        match e {
            SyncEvent::Fence { .. } => self.fences += 1,
            SyncEvent::BlockBarrier { .. } => self.block_barriers += 1,
            SyncEvent::WarpBarrier { .. } => self.warp_barriers += 1,
        }
    }
}

#[test]
fn hook_observes_all_instrumentable_events() {
    let mut gpu = gpu_with(ExecMode::Lockstep, 1);
    let buf = gpu.alloc(64).unwrap();
    let mut b = KernelBuilder::new("observed");
    let base = b.param(0);
    let tid = b.special(Special::Tid);
    let off = b.mul(tid, 4u32);
    let addr = b.add(base, off);
    let v = b.ld(addr, 0); // 1 load per split
    let v2 = b.add(v, 1u32);
    b.st(addr, 0, v2); // 1 store
    b.syncthreads();
    b.membar(Scope::Device); // 1 fence event per split
    b.syncwarp();
    let one = b.imm(1);
    let _ = b.atomic_add(Scope::Device, base, 0, one); // 1 atomic
    let k = b.build();
    let mut h = CountingHook::default();
    gpu.launch(&k, 1, 32, &[buf], &mut h).unwrap();
    assert_eq!(h.launches, 1);
    assert_eq!(h.loads, 1, "one full-warp load split");
    assert_eq!(h.stores, 1);
    assert_eq!(h.atomics, 1);
    assert_eq!(h.fences, 1);
    assert_eq!(h.block_barriers, 1);
    assert_eq!(h.warp_barriers, 1);
    assert_eq!(h.lanes_seen, 3 * 32);
}

#[test]
fn native_clock_accumulates() {
    let mut gpu = gpu();
    let buf = gpu.alloc(64).unwrap();
    let k = fill_kernel();
    gpu.launch(&k, 1, 32, &[buf], &mut NullHook).unwrap();
    let native = gpu.clock().time(CostCategory::Native);
    assert!(native > 0.0);
    assert_eq!(gpu.clock().time(CostCategory::Detection), 0.0);
}

#[test]
fn stats_count_dynamic_instructions() {
    let mut gpu = gpu_with(ExecMode::Lockstep, 0);
    let buf = gpu.alloc(64).unwrap();
    let k = fill_kernel();
    let stats = gpu.launch(&k, 1, 32, &[buf], &mut NullHook).unwrap();
    // 6 instructions (incl. implicit Exit), one split each in lockstep.
    assert_eq!(stats.dyn_instrs, 6);
    assert_eq!(stats.lane_instrs, 6 * 32);
}
