//! Property-based tests of the simulator's core invariants:
//! - thread-local (race-free) programs are deterministic across ITS
//!   schedules and agree with a host-side reference interpreter;
//! - device-scope atomics never lose updates regardless of schedule;
//! - correctly barriered producer/consumer patterns are schedule-invariant.

use gpu_sim::prelude::*;
use proptest::prelude::*;

/// A small thread-local op applied to a thread's private accumulator.
#[derive(Debug, Clone, Copy)]
enum LocalOp {
    Add(u32),
    Mul(u32),
    Xor(u32),
    Shl(u32),
}

fn apply(op: LocalOp, v: u32) -> u32 {
    match op {
        LocalOp::Add(k) => v.wrapping_add(k),
        LocalOp::Mul(k) => v.wrapping_mul(k),
        LocalOp::Xor(k) => v ^ k,
        LocalOp::Shl(k) => v.wrapping_shl(k),
    }
}

fn local_op_strategy() -> impl Strategy<Value = LocalOp> {
    prop_oneof![
        any::<u32>().prop_map(LocalOp::Add),
        any::<u32>().prop_map(LocalOp::Mul),
        any::<u32>().prop_map(LocalOp::Xor),
        (0u32..31).prop_map(LocalOp::Shl),
    ]
}

/// Builds `a[gtid] = f(a[gtid])` where `f` is the given op sequence.
fn local_kernel(ops: &[LocalOp]) -> Kernel {
    let mut b = KernelBuilder::new("local_ops");
    let gtid = b.special(Special::GlobalTid);
    let base = b.param(0);
    let off = b.mul(gtid, 4u32);
    let addr = b.add(base, off);
    let v = b.ld(addr, 0);
    let mut cur = v;
    for &op in ops {
        cur = match op {
            LocalOp::Add(k) => b.add(cur, k),
            LocalOp::Mul(k) => b.mul(cur, k),
            LocalOp::Xor(k) => b.xor(cur, k),
            LocalOp::Shl(k) => b.shl(cur, k),
        };
    }
    b.st(addr, 0, cur);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Race-free per-thread programs compute the reference result under any
    /// ITS schedule seed.
    #[test]
    fn thread_local_programs_are_schedule_deterministic(
        ops in prop::collection::vec(local_op_strategy(), 1..12),
        seed in any::<u64>(),
        grid in 1u32..4,
    ) {
        let block_dim = 48u32; // deliberately a partial second warp
        let n = (grid * block_dim) as usize;
        let k = local_kernel(&ops);
        let cfg = GpuConfig { mode: ExecMode::Its, seed, ..GpuConfig::default() };
        let mut gpu = Gpu::new(cfg);
        let buf = gpu.alloc(n).unwrap();
        let init: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        gpu.write_slice(buf, &init);
        gpu.launch(&k, grid, block_dim, &[buf], &mut NullHook).unwrap();
        let got = gpu.read_slice(buf, n);
        for i in 0..n {
            let expect = ops.iter().fold(init[i], |v, &op| apply(op, v));
            prop_assert_eq!(got[i], expect, "thread {}", i);
        }
    }

    /// Device-scope atomic increments never lose updates under any schedule.
    #[test]
    fn device_atomics_are_schedule_invariant(seed in any::<u64>(), grid in 1u32..6) {
        let mut b = KernelBuilder::new("atomic_inc");
        let base = b.param(0);
        let one = b.imm(1);
        let _ = b.atomic_add(Scope::Device, base, 0, one);
        let k = b.build();
        let cfg = GpuConfig { mode: ExecMode::Its, seed, ..GpuConfig::default() };
        let mut gpu = Gpu::new(cfg);
        let buf = gpu.alloc(1).unwrap();
        gpu.launch(&k, grid, 64, &[buf], &mut NullHook).unwrap();
        prop_assert_eq!(gpu.read(buf, 0), grid * 64);
    }

    /// A syncthreads-separated producer/consumer inside a block always
    /// observes the produced value, under any ITS schedule.
    #[test]
    fn barriered_handoff_is_schedule_invariant(seed in any::<u64>()) {
        // thread 5 stores a[1] = 99; __syncthreads(); thread 0 reads a[1].
        let mut b = KernelBuilder::new("barriered");
        let tid = b.special(Special::Tid);
        let base = b.param(0);
        let is5 = b.eq(tid, 5u32);
        let after = b.fwd_label();
        b.bra_ifnot(is5, after);
        let v = b.imm(99);
        b.st(base, 1, v);
        b.bind(after);
        b.syncthreads();
        let is0 = b.eq(tid, 0u32);
        let fin = b.fwd_label();
        b.bra_ifnot(is0, fin);
        let got = b.ld(base, 1);
        b.st(base, 0, got);
        b.bind(fin);
        let k = b.build();
        let cfg = GpuConfig { mode: ExecMode::Its, seed, ..GpuConfig::default() };
        let mut gpu = Gpu::new(cfg);
        let buf = gpu.alloc(2).unwrap();
        gpu.launch(&k, 1, 64, &[buf], &mut NullHook).unwrap();
        prop_assert_eq!(gpu.read(buf, 0), 99);
    }

    /// `__syncwarp()`-separated intra-warp handoff is schedule-invariant
    /// even though the participating threads are diverged.
    #[test]
    fn syncwarp_handoff_is_schedule_invariant(seed in any::<u64>()) {
        let mut b = KernelBuilder::new("warp_handoff");
        let tid = b.special(Special::Tid);
        let base = b.param(0);
        let is1 = b.eq(tid, 1u32);
        let after = b.fwd_label();
        b.bra_ifnot(is1, after);
        let v = b.imm(7);
        b.st(base, 1, v);
        b.bind(after);
        b.syncwarp();
        let is0 = b.eq(tid, 0u32);
        let fin = b.fwd_label();
        b.bra_ifnot(is0, fin);
        let got = b.ld(base, 1);
        b.st(base, 0, got);
        b.bind(fin);
        let k = b.build();
        let cfg = GpuConfig { mode: ExecMode::Its, seed, ..GpuConfig::default() };
        let mut gpu = Gpu::new(cfg);
        let buf = gpu.alloc(2).unwrap();
        gpu.launch(&k, 1, 32, &[buf], &mut NullHook).unwrap();
        prop_assert_eq!(gpu.read(buf, 0), 7);
    }
}
