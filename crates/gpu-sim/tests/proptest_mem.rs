//! Property tests of the scoped memory hierarchy: random operation
//! sequences against a reference model of "what a correctly synchronized
//! observer must see".

use gpu_sim::ir::{AtomOp, Scope};
use gpu_sim::mem::GlobalMem;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum MemOp {
    Store { sm: usize, word: u32, value: u32 },
    DeviceAtomicAdd { sm: usize, word: u32, value: u32 },
    DeviceFence { sm: usize },
    BlockFence { sm: usize },
    Load { sm: usize, word: u32 },
}

fn op_strategy(sms: usize, words: u32) -> impl Strategy<Value = MemOp> {
    let sm = 0..sms;
    let word = 0..words;
    prop_oneof![
        (sm.clone(), word.clone(), any::<u32>()).prop_map(|(sm, word, value)| MemOp::Store {
            sm,
            word,
            value
        }),
        (sm.clone(), word.clone(), 1u32..1000)
            .prop_map(|(sm, word, value)| MemOp::DeviceAtomicAdd { sm, word, value }),
        (sm.clone(),).prop_map(|(sm,)| MemOp::DeviceFence { sm }),
        (sm.clone(),).prop_map(|(sm,)| MemOp::BlockFence { sm }),
        (sm, word).prop_map(|(sm, word)| MemOp::Load { sm, word }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After flushing every SM (the kernel-exit barrier), the coherent view
    /// equals a reference that applies, per word, the *last* plain store of
    /// each SM or the accumulated atomics — here simplified to: if only
    /// device atomics touched a word, the total must be exact.
    #[test]
    fn device_atomics_are_never_lost(
        ops in prop::collection::vec(op_strategy(4, 4), 1..64),
    ) {
        let mut m = GlobalMem::new(64, 4);
        let mut expected = [0u64; 4];
        let mut plain_store_touched = [false; 4];
        for op in &ops {
            match *op {
                MemOp::Store { sm, word, value } => {
                    m.store(sm, word * 4, value, false).unwrap();
                    plain_store_touched[word as usize] = true;
                }
                MemOp::DeviceAtomicAdd { sm, word, value } => {
                    m.atomic(sm, word * 4, AtomOp::Add, value, 0, Scope::Device).unwrap();
                    expected[word as usize] += u64::from(value);
                }
                MemOp::DeviceFence { sm } => m.fence(sm, Scope::Device),
                MemOp::BlockFence { sm } => m.fence(sm, Scope::Block),
                MemOp::Load { sm, word } => {
                    let _ = m.load(sm, word * 4, false).unwrap();
                }
            }
        }
        m.flush_all();
        for w in 0..4 {
            if !plain_store_touched[w] {
                prop_assert_eq!(
                    u64::from(m.read_coherent(w as u32 * 4)),
                    expected[w] & 0xFFFF_FFFF,
                    "word {} touched only by device atomics", w
                );
            }
        }
    }

    /// An SM always observes its own program order: a load after a store
    /// from the same SM returns that store's value (absent interleaving
    /// writes from the same SM).
    #[test]
    fn same_sm_reads_own_writes(
        sm in 0usize..4,
        word in 0u32..8,
        value in any::<u32>(),
        noise in prop::collection::vec(op_strategy(4, 8), 0..16),
    ) {
        let mut m = GlobalMem::new(64, 4);
        // Noise from *other* SMs only, and no atomics on our word (a
        // same-word device atomic on this SM would fold our store in).
        for op in &noise {
            match *op {
                MemOp::Store { sm: s, word: w, value: v } if s != sm => {
                    m.store(s, w * 4, v, false).unwrap();
                }
                MemOp::DeviceFence { sm: s } if s != sm => m.fence(s, Scope::Device),
                _ => {}
            }
        }
        m.store(sm, word * 4, value, false).unwrap();
        prop_assert_eq!(m.load(sm, word * 4, false).unwrap(), value);
    }

    /// Publication is monotonic: once a value is visible to a fresh
    /// observer after the writer's device fence, later fences by anyone
    /// cannot un-publish it (absent new writes).
    #[test]
    fn publication_is_monotonic(sm in 0usize..4, word in 0u32..8, value in any::<u32>()) {
        let mut m = GlobalMem::new(64, 4);
        m.store(sm, word * 4, value, false).unwrap();
        m.fence(sm, Scope::Device);
        for observer in 0..4 {
            m.fence(observer, Scope::Device);
            prop_assert_eq!(m.load(observer, word * 4, false).unwrap(), value);
        }
    }
}
