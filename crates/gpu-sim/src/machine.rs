//! The simulated GPU device: allocation, launch, scheduling, execution.
//!
//! # Execution model
//!
//! A launch creates `grid_dim` blocks of `block_dim` threads; blocks are
//! assigned round-robin to SMs and are all resident (cooperative-launch
//! style), so grid-wide spin synchronization — the pattern behind the
//! paper's CG workloads — can make progress. Threads are grouped into
//! 32-lane warps. The scheduler repeatedly picks a warp (fair round-robin
//! across every warp in the grid) and executes **one instruction for one
//! warp split**: the subset of the warp's runnable lanes sharing a PC.
//!
//! - **Lockstep mode** (pre-Volta): the split at the *minimum* PC runs,
//!   which makes diverged lanes reconverge eagerly — the classic SIMT
//!   behaviour with its implicit per-instruction warp barrier.
//! - **ITS mode** (Volta+ Independent Thread Scheduling): a *random* split
//!   runs (seeded, deterministic), and with small probability a split is
//!   further subdivided — converged threads are never guaranteed to stay
//!   converged, exactly the guarantee NVIDIA dropped with ITS. This is what
//!   lets missing-`syncwarp` races manifest as observably wrong values.
//!
//! Fairness of the round-robin guarantees that spin-wait loops cannot
//! starve their producer; true livelocks (e.g. per-thread locks under
//! lockstep, §6.6) hit the step watchdog and report [`SimError::Timeout`].

use crate::error::SimError;
use crate::hook::{AccessKind, ExecMode, Hook, LaneAccess, LaunchInfo, MemAccess, SyncEvent};
use crate::ir::{AluOp, CmpOp, Instr, Operand, Reg, Space, Special, NUM_REGS, WARP_SIZE};
use crate::kernel::Kernel;
use crate::mem::GlobalMem;
use crate::overlap::{CopyModel, OverlapReport, Timeline};
use crate::sched::{LaunchContext, RandomScheduler, Scheduler};
use crate::timing::{Clock, CostCategory, CostModel, Phase, PhaseTimes};
use faults::{FaultConfig, FaultInjector, FaultSite, FaultStats};
use std::time::Instant;

/// Static configuration of the simulated device.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (Titan RTX: 72).
    pub num_sms: usize,
    /// Words of real backing storage for global memory.
    pub mem_words: usize,
    /// Logical device-memory capacity in bytes, for allocation accounting
    /// (Titan RTX: 24 GB). Allocations may declare a logical size larger
    /// than their backing storage so footprint-scaling experiments
    /// (Figure 14) can model tens of GB without hosting them.
    pub device_mem_bytes: u64,
    /// Scheduler-step watchdog; exceeded ⇒ [`SimError::Timeout`].
    pub max_steps: u64,
    /// Lockstep (pre-Volta) or ITS (Volta+) warp scheduling.
    pub mode: ExecMode,
    /// Seed for the ITS interleaving choices.
    pub seed: u64,
    /// Probability that ITS subdivides a converged split (schedule fuzzing).
    pub its_split_prob: f64,
    /// Warp-scheduler slots per SM; bounds effective parallelism.
    pub warp_slots_per_sm: usize,
    /// Instruction cost table.
    pub cost: CostModel,
    /// Measure wall-clock phase times (simulate / instrument / detect /
    /// UVM) into [`LaunchStats::phases`]. Off by default: the hot path
    /// then performs no clock reads.
    pub profile_phases: bool,
    /// Fault-injection plane (disabled by default; a disabled config is
    /// behaviour-identical to a build without the plane).
    pub faults: FaultConfig,
    /// Weak-visibility memory (litmus mode): non-volatile global loads may
    /// observe any legal candidate value, with the attached scheduler's
    /// `choose_visibility` picking among them. Off by default — the strong
    /// model is the production behaviour and the golden tests pin it.
    pub weak_visibility: bool,
    /// Fire [`Hook::on_load_value`] for every global load. Implied by
    /// `weak_visibility`; off by default (detectors are value-blind).
    pub record_load_values: bool,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 72,
            mem_words: 1 << 22, // 16 MiB backing
            device_mem_bytes: 24 * (1 << 30),
            max_steps: 50_000_000,
            mode: ExecMode::Its,
            seed: 0x16_0A2D,
            its_split_prob: 0.02,
            warp_slots_per_sm: 4,
            cost: CostModel::default(),
            profile_phases: false,
            faults: FaultConfig::disabled(),
            weak_visibility: false,
            record_load_values: false,
        }
    }
}

/// One device allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Base byte address.
    pub addr: u32,
    /// Backing words.
    pub words: usize,
    /// Logical size charged against device capacity.
    pub logical_bytes: u64,
}

/// Summary of a completed launch.
///
/// Equality compares only the *semantic* execution counters — the
/// wall-clock [`LaunchStats::phases`] are a measurement artifact of the
/// host machine and deliberately excluded, so determinism witnesses
/// (`assert_eq!` on two runs) hold whether or not profiling is enabled.
#[derive(Debug, Clone, Default)]
pub struct LaunchStats {
    /// Scheduler steps (warp-split executions).
    pub steps: u64,
    /// Dynamic instructions (one per split execution).
    pub dyn_instrs: u64,
    /// Dynamic lane-instructions (instructions × participating lanes).
    pub lane_instrs: u64,
    /// Wall-clock self-profiling phases for this launch (all zero unless
    /// [`GpuConfig::profile_phases`] is set).
    pub phases: PhaseTimes,
}

impl PartialEq for LaunchStats {
    fn eq(&self, other: &Self) -> bool {
        self.steps == other.steps
            && self.dyn_instrs == other.dyn_instrs
            && self.lane_instrs == other.lane_instrs
    }
}

impl Eq for LaunchStats {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    AtBlockBar,
    AtWarpBar,
    Exited,
}

#[derive(Debug)]
struct Thread {
    regs: Vec<u32>,
    pc: usize,
    status: Status,
}

impl Thread {
    fn new() -> Self {
        Thread {
            regs: vec![0; NUM_REGS],
            pc: 0,
            status: Status::Ready,
        }
    }

    fn get(&self, r: Reg) -> u32 {
        self.regs[r.0 as usize]
    }

    fn set(&mut self, r: Reg, v: u32) {
        self.regs[r.0 as usize] = v;
    }

    fn operand(&self, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.get(r),
            Operand::Imm(v) => v,
        }
    }
}

#[derive(Debug)]
struct Block {
    id: u32,
    sm: usize,
    shared: Vec<u32>,
    threads: Vec<Thread>,
}

/// The simulated GPU.
pub struct Gpu {
    cfg: GpuConfig,
    mem: GlobalMem,
    clock: Clock,
    allocs: Vec<Allocation>,
    bump_word: usize,
    logical_allocated: u64,
    faults: FaultInjector,
    /// Copy/compute overlap recorder (pure bookkeeping; never touches the
    /// clock, so golden outputs are unaffected).
    timeline: Timeline,
}

impl Gpu {
    /// Creates a device with the given configuration.
    ///
    /// # Panics
    /// Panics if `mem_words` exceeds the simulator's 32-bit byte address
    /// space (2^30 words): buffer addresses are `u32` byte addresses, so a
    /// larger backing store would silently wrap. Fallible callers use
    /// [`Gpu::try_new`].
    #[must_use]
    pub fn new(cfg: GpuConfig) -> Self {
        Gpu::try_new(cfg).unwrap_or_else(|e| match e {
            SimError::BadConfig { reason } => panic!("{reason}"),
            e => panic!("{e}"),
        })
    }

    /// Fallible [`Gpu::new`]: a structurally invalid configuration becomes
    /// [`SimError::BadConfig`] instead of a panic.
    pub fn try_new(cfg: GpuConfig) -> Result<Self, SimError> {
        if cfg.mem_words > 1 << 30 {
            return Err(SimError::BadConfig {
                reason: format!(
                    "mem_words {} exceeds the 32-bit simulated address space",
                    cfg.mem_words
                ),
            });
        }
        if cfg.num_sms == 0 {
            return Err(SimError::BadConfig {
                reason: "num_sms must be positive".into(),
            });
        }
        if cfg.warp_slots_per_sm == 0 {
            return Err(SimError::BadConfig {
                reason: "warp_slots_per_sm must be positive".into(),
            });
        }
        let mut mem = GlobalMem::new(cfg.mem_words, cfg.num_sms);
        if cfg.weak_visibility {
            mem.enable_weak();
        }
        let mut clock = Clock::new();
        clock.set_profiling(cfg.profile_phases);
        let faults = FaultInjector::new(&cfg.faults, "gpu-launch");
        Ok(Gpu {
            cfg,
            mem,
            clock,
            allocs: Vec::new(),
            // Reserve the first words so address 0 stays "null".
            bump_word: 16,
            logical_allocated: 64,
            faults,
            timeline: Timeline::default(),
        })
    }

    /// Injected-fault counters for the launch boundary.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The cycle accounting for this device.
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Mutable cycle accounting (benchmark harnesses reset between runs).
    pub fn clock_mut(&mut self) -> &mut Clock {
        &mut self.clock
    }

    /// Allocates `words` of global memory (logical size = backing size).
    ///
    /// Returns the base byte address (`cudaMalloc` analogue).
    pub fn alloc(&mut self, words: usize) -> Result<u32, SimError> {
        self.alloc_logical(words, words as u64 * 4)
    }

    /// Allocates `words` of backing storage while charging `logical_bytes`
    /// against device capacity. Used by footprint-scaling experiments to
    /// model multi-GB buffers with small backing arrays.
    pub fn alloc_logical(&mut self, words: usize, logical_bytes: u64) -> Result<u32, SimError> {
        if self.bump_word + words > self.mem.words() {
            return Err(SimError::OutOfMemory {
                requested: words as u64 * 4,
                available: (self.mem.words() - self.bump_word) as u64 * 4,
            });
        }
        if self.logical_allocated + logical_bytes > self.cfg.device_mem_bytes {
            return Err(SimError::OutOfMemory {
                requested: logical_bytes,
                available: self.cfg.device_mem_bytes - self.logical_allocated,
            });
        }
        let addr = (self.bump_word * 4) as u32;
        self.allocs.push(Allocation {
            addr,
            words,
            logical_bytes,
        });
        self.bump_word += words;
        self.logical_allocated += logical_bytes;
        Ok(addr)
    }

    /// Logical device bytes not claimed by any allocation.
    #[must_use]
    pub fn free_device_bytes(&self) -> u64 {
        self.cfg.device_mem_bytes - self.logical_allocated
    }

    /// Logical bytes currently allocated.
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.logical_allocated
    }

    /// Host write of word `idx` of the buffer at `base`.
    pub fn write(&mut self, base: u32, idx: usize, value: u32) {
        self.timeline.record_h2d(1);
        self.mem.write_coherent(base + (idx * 4) as u32, value);
    }

    /// Host read of word `idx` of the buffer at `base` (coherent view).
    #[must_use]
    pub fn read(&self, base: u32, idx: usize) -> u32 {
        self.timeline.record_d2h(1);
        self.mem.read_coherent(base + (idx * 4) as u32)
    }

    /// The copy/compute overlap recorder (one segment per successful
    /// launch; host writes/reads become H2D/D2H words).
    #[must_use]
    pub fn overlap_timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Mutable overlap recorder — harnesses use this to attribute
    /// detector traffic (e.g. drained race-report records) as D2H words.
    pub fn overlap_timeline_mut(&mut self) -> &mut Timeline {
        &mut self.timeline
    }

    /// Schedules the recorded launch timeline under `model`, yielding the
    /// pipelined-vs-serial latency comparison with per-engine busy/idle.
    #[must_use]
    pub fn overlap_report(&self, model: &CopyModel) -> OverlapReport {
        self.timeline.report(model)
    }

    /// Fills `idx..idx+data.len()` of the buffer at `base`.
    pub fn write_slice(&mut self, base: u32, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(base, i, v);
        }
    }

    /// Reads `len` words starting at the buffer at `base`.
    #[must_use]
    pub fn read_slice(&self, base: u32, len: usize) -> Vec<u32> {
        (0..len).map(|i| self.read(base, i)).collect()
    }

    /// Launches `kernel` on a 1-D grid with an attached tool, running it to
    /// completion (or fault/timeout).
    ///
    /// Scheduling decisions come from the production [`RandomScheduler`]
    /// seeded from [`GpuConfig::seed`]; [`Gpu::launch_with`] accepts any
    /// [`Scheduler`] instead.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        grid_dim: u32,
        block_dim: u32,
        params: &[u32],
        hook: &mut dyn Hook,
    ) -> Result<LaunchStats, SimError> {
        let mut sched = RandomScheduler::new(self.cfg.seed, self.cfg.its_split_prob);
        self.launch_with(kernel, grid_dim, block_dim, params, hook, &mut sched)
    }

    /// Launches `kernel` with an explicit [`Scheduler`] driving every
    /// warp-split decision (replay, systematic enumeration, recording).
    pub fn launch_with(
        &mut self,
        kernel: &Kernel,
        grid_dim: u32,
        block_dim: u32,
        params: &[u32],
        hook: &mut dyn Hook,
        sched: &mut dyn Scheduler,
    ) -> Result<LaunchStats, SimError> {
        if block_dim == 0 || block_dim > 1024 {
            return Err(SimError::BadLaunch {
                reason: format!("block_dim {block_dim} outside 1..=1024"),
            });
        }
        if grid_dim == 0 {
            return Err(SimError::BadLaunch {
                reason: "grid_dim is 0".into(),
            });
        }
        if params.len() > 16 {
            return Err(SimError::BadLaunch {
                reason: "more than 16 params".into(),
            });
        }

        // Fault plane: a launch can abort at the boundary (sticky device
        // fault) or hang partway and be killed by the watchdog. The hang
        // point is a deterministic draw, so a campaign replays exactly.
        let mut step_limit = self.cfg.max_steps;
        if self.faults.enabled() {
            if self.faults.fire(FaultSite::KernelAbort) {
                return Err(SimError::InjectedFault {
                    site: FaultSite::KernelAbort.name().into(),
                });
            }
            if self.faults.fire(FaultSite::KernelHang) {
                step_limit = step_limit.min(self.faults.draw(FaultSite::KernelHang, self.cfg.max_steps));
            }
        }

        let warps_per_block = block_dim.div_ceil(WARP_SIZE as u32);
        let total_threads = grid_dim * block_dim;
        let total_warps = grid_dim * warps_per_block;
        let info = LaunchInfo {
            kernel_name: kernel.name.clone(),
            grid_dim,
            block_dim,
            warps_per_block,
            total_threads,
            total_warps,
            mode: self.cfg.mode,
            num_sms: self.cfg.num_sms as u32,
            free_device_bytes: self.free_device_bytes(),
            app_footprint_bytes: self.logical_allocated,
            device_capacity_bytes: self.cfg.device_mem_bytes,
            backing_words: self.mem.words(),
            code_len: kernel.code.len(),
        };

        let eff = (total_warps as usize).min(self.cfg.num_sms * self.cfg.warp_slots_per_sm);
        self.clock.set_parallelism(eff.max(1) as f64);
        let seg_time_before = self.clock.total_time();
        let phases_before = self.clock.phases();
        let launch_t0 = self.clock.profiling().then(Instant::now);
        timed_hook_call(&mut self.clock, |clock| hook.on_kernel_launch(&info, clock));

        let mut blocks: Vec<Block> = (0..grid_dim)
            .map(|b| Block {
                id: b,
                sm: (b as usize) % self.cfg.num_sms,
                shared: vec![0; kernel.shared_words],
                threads: (0..block_dim).map(|_| Thread::new()).collect(),
            })
            .collect();

        sched.begin_launch(&LaunchContext {
            grid_dim,
            block_dim,
            mode: self.cfg.mode,
        });
        let mut run = RunState {
            kernel,
            code: predecode(&kernel.code, &self.cfg.cost),
            params,
            warps_per_block,
            block_dim,
            grid_dim,
            stats: LaunchStats::default(),
            live: total_threads as u64,
            lane_scratch: Vec::with_capacity(WARP_SIZE),
            tid_scratch: Vec::with_capacity(WARP_SIZE),
        };

        // Flattened (block, warp) schedule order.
        let warp_list: Vec<(usize, usize)> = (0..grid_dim as usize)
            .flat_map(|b| (0..warps_per_block as usize).map(move |w| (b, w)))
            .collect();
        let mut cursor = 0usize;
        // Scheduler scratch, reused every step (the hot loop allocates
        // nothing).
        let mut pcs_scratch: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        let mut lanes_scratch: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        let warp_choice = sched.wants_warp_choice();
        // Eager-invisible mode (partial-order reduction): instructions that
        // cannot touch memory run without consulting the scheduler, so only
        // memory operations branch a systematic enumeration.
        let eager = sched.wants_eager_invisible();
        let mut runnable_scratch: Vec<usize> = if warp_choice {
            Vec::with_capacity(warp_list.len())
        } else {
            Vec::new()
        };

        while run.live > 0 {
            run.stats.steps += 1;
            if run.stats.steps > step_limit {
                // Publish what executed so detectors can still report.
                self.mem.flush_all();
                return Err(SimError::Timeout {
                    steps: run.stats.steps,
                });
            }
            let mut executed = false;
            if warp_choice {
                // Systematic mode: offer the scheduler every warp with a
                // runnable lane, in flat (block, warp) order.
                runnable_scratch.clear();
                for (idx, &(bi, wi)) in warp_list.iter().enumerate() {
                    if warp_has_runnable(&blocks[bi], wi) {
                        runnable_scratch.push(idx);
                    }
                }
                if !runnable_scratch.is_empty() {
                    // Eager mode: a warp with a runnable lane at an
                    // invisible instruction runs first, deterministically
                    // and without a scheduling decision — such transitions
                    // commute with every other enabled transition.
                    let eager_pick = if eager {
                        runnable_scratch
                            .iter()
                            .copied()
                            .find(|&idx| {
                                let (bi, wi) = warp_list[idx];
                                warp_has_invisible_runnable(&blocks[bi], wi, &run.code)
                            })
                    } else {
                        None
                    };
                    let pick = if let Some(p) = eager_pick {
                        p
                    } else if runnable_scratch.len() == 1 {
                        runnable_scratch[0]
                    } else {
                        let i = sched.choose_warp(runnable_scratch.len());
                        runnable_scratch[i.min(runnable_scratch.len() - 1)]
                    };
                    let (bi, wi) = warp_list[pick];
                    let ok = pick_split(
                        &blocks[bi],
                        wi,
                        self.cfg.mode,
                        sched,
                        eager,
                        &run.code,
                        &mut pcs_scratch,
                        &mut lanes_scratch,
                    );
                    debug_assert!(ok, "chosen warp lost its runnable lanes");
                    self.exec_split(&mut blocks, bi, wi, &lanes_scratch, &mut run, hook, sched)?;
                    executed = true;
                }
            } else {
                // Production mode: fair round-robin scan for the next warp
                // with a runnable split.
                for scan in 0..warp_list.len() {
                    let (bi, wi) = warp_list[(cursor + scan) % warp_list.len()];
                    if pick_split(
                        &blocks[bi],
                        wi,
                        self.cfg.mode,
                        sched,
                        eager,
                        &run.code,
                        &mut pcs_scratch,
                        &mut lanes_scratch,
                    ) {
                        cursor = (cursor + scan + 1) % warp_list.len();
                        self.exec_split(&mut blocks, bi, wi, &lanes_scratch, &mut run, hook, sched)?;
                        executed = true;
                        break;
                    }
                }
            }
            if !executed {
                return Err(SimError::Deadlock {
                    kernel: kernel.name.to_string(),
                });
            }
        }

        // Implicit device-wide barrier at grid completion (§2.1).
        self.mem.flush_all();
        timed_hook_call(&mut self.clock, |clock| hook.on_kernel_end(&info, clock));
        if let Some(t) = launch_t0 {
            self.clock
                .add_phase_ns(Phase::Total, t.elapsed().as_nanos() as u64);
        }
        // Close this launch's overlap segment (timeout/fault paths return
        // earlier and record nothing: an aborted launch has no well-defined
        // pipeline slot).
        let seg_cycles = (self.clock.total_time() - seg_time_before).max(0.0).round() as u64;
        self.timeline.end_segment(kernel.name.clone(), seg_cycles);
        run.stats.phases = self.clock.phases().since(&phases_before);
        Ok(run.stats)
    }

    #[allow(clippy::too_many_lines)]
    #[allow(clippy::too_many_arguments)]
    fn exec_split(
        &mut self,
        blocks: &mut [Block],
        bi: usize,
        wi: usize,
        lanes: &[usize],
        run: &mut RunState<'_>,
        hook: &mut dyn Hook,
        sched: &mut dyn Scheduler,
    ) -> Result<(), SimError> {
        let kernel = run.kernel;
        let block = &mut blocks[bi];
        let block_id = block.id;
        let sm = block.sm;
        let warp_base = wi * WARP_SIZE;
        let pc = block.threads[warp_base + lanes[0]].pc;
        let d = run.code[pc];
        let instr = d.instr;
        let active_mask: u32 = lanes.iter().fold(0u32, |m, &l| m | (1 << l));
        let global_warp = block_id * run.warps_per_block + wi as u32;

        run.stats.dyn_instrs += 1;
        run.stats.lane_instrs += lanes.len() as u64;

        // Predecoded static cost: atomics serialize per lane (L2 ROP / SM
        // atomic unit), everything else charges a fixed per-split cost.
        if matches!(instr, Instr::Atom { .. }) {
            self.clock
                .charge(CostCategory::Native, d.cost * lanes.len() as u64);
            self.clock
                .charge_serial(CostCategory::Native, d.serial_cost * lanes.len() as u64);
        } else {
            self.clock.charge(CostCategory::Native, d.cost);
        }

        macro_rules! thread {
            ($lane:expr) => {
                block.threads[warp_base + $lane]
            };
        }

        match instr {
            Instr::Mov { rd, src } => {
                for &l in lanes {
                    let v = thread!(l).operand(src);
                    let t = &mut thread!(l);
                    t.set(rd, v);
                    t.pc = pc + 1;
                }
            }
            Instr::Read { rd, sp } => {
                for &l in lanes {
                    let tid = (warp_base + l) as u32;
                    let v = match sp {
                        Special::Tid => tid,
                        Special::BlockId => block_id,
                        Special::BlockDim => run.block_dim,
                        Special::GridDim => run.grid_dim,
                        Special::LaneId => l as u32,
                        Special::WarpInBlock => wi as u32,
                        Special::GlobalWarpId => global_warp,
                        Special::GlobalTid => block_id * run.block_dim + tid,
                        Special::ActiveMask => active_mask,
                    };
                    let t = &mut thread!(l);
                    t.set(rd, v);
                    t.pc = pc + 1;
                }
            }
            Instr::Param { rd, idx } => {
                let v = *run
                    .params
                    .get(idx as usize)
                    .ok_or_else(|| SimError::BadLaunch {
                        reason: format!("kernel `{}` reads missing param {idx}", kernel.name),
                    })?;
                for &l in lanes {
                    let t = &mut thread!(l);
                    t.set(rd, v);
                    t.pc = pc + 1;
                }
            }
            Instr::Alu { op, rd, ra, b } => {
                for &l in lanes {
                    let (a, bv) = {
                        let t = &thread!(l);
                        (t.get(ra), t.operand(b))
                    };
                    let v = eval_alu(op, a, bv).ok_or_else(|| SimError::DivideByZero {
                        kernel: kernel.name.to_string(),
                        pc,
                    })?;
                    let t = &mut thread!(l);
                    t.set(rd, v);
                    t.pc = pc + 1;
                }
            }
            Instr::Setp { op, rd, ra, b } => {
                for &l in lanes {
                    let (a, bv) = {
                        let t = &thread!(l);
                        (t.get(ra), t.operand(b))
                    };
                    let v = u32::from(eval_cmp(op, a, bv));
                    let t = &mut thread!(l);
                    t.set(rd, v);
                    t.pc = pc + 1;
                }
            }
            Instr::Sel { rd, cond, a, b } => {
                for &l in lanes {
                    let v = {
                        let t = &thread!(l);
                        if t.get(cond) != 0 {
                            t.operand(a)
                        } else {
                            t.operand(b)
                        }
                    };
                    let t = &mut thread!(l);
                    t.set(rd, v);
                    t.pc = pc + 1;
                }
            }
            Instr::Bra { target } => {
                for &l in lanes {
                    thread!(l).pc = target;
                }
            }
            Instr::BraIf { cond, target } => {
                for &l in lanes {
                    let taken = thread!(l).get(cond) != 0;
                    thread!(l).pc = if taken { target } else { pc + 1 };
                }
            }
            Instr::BraIfNot { cond, target } => {
                for &l in lanes {
                    let taken = thread!(l).get(cond) == 0;
                    thread!(l).pc = if taken { target } else { pc + 1 };
                }
            }
            Instr::Ld {
                rd,
                addr,
                offset,
                space,
                volatile,
            } => match space {
                Space::Shared => {
                    gather_lanes(block, warp_base, lanes, addr, offset, &mut run.lane_scratch);
                    self.fire_mem_hook(
                        kernel,
                        pc,
                        AccessKind::Load,
                        Space::Shared,
                        block_id,
                        wi as u32,
                        global_warp,
                        active_mask,
                        run,
                        sm,
                        volatile,
                        hook,
                    );
                    for &l in lanes {
                        let a = effective_addr(thread!(l).get(addr), offset);
                        let v = load_shared(&block.shared, a)?;
                        let t = &mut thread!(l);
                        t.set(rd, v);
                        t.pc = pc + 1;
                    }
                }
                Space::Global => {
                    gather_lanes(block, warp_base, lanes, addr, offset, &mut run.lane_scratch);
                    self.fire_mem_hook(
                        kernel,
                        pc,
                        AccessKind::Load,
                        Space::Global,
                        block_id,
                        wi as u32,
                        global_warp,
                        active_mask,
                        run,
                        sm,
                        volatile,
                        hook,
                    );
                    if self.cfg.weak_visibility && !volatile {
                        for (i, &l) in lanes.iter().enumerate() {
                            let a = run.lane_scratch[i].addr;
                            let v = self
                                .mem
                                .load_weak(sm, a, &mut |n| sched.choose_visibility(n))?;
                            hook.on_load_value(block_id, (warp_base + l) as u32, a, pc, v);
                            let t = &mut thread!(l);
                            t.set(rd, v);
                            t.pc = pc + 1;
                        }
                    } else if self.cfg.record_load_values || self.cfg.weak_visibility {
                        for (i, &l) in lanes.iter().enumerate() {
                            let a = run.lane_scratch[i].addr;
                            let v = self.mem.load(sm, a, volatile)?;
                            hook.on_load_value(block_id, (warp_base + l) as u32, a, pc, v);
                            let t = &mut thread!(l);
                            t.set(rd, v);
                            t.pc = pc + 1;
                        }
                    } else {
                        for (i, &l) in lanes.iter().enumerate() {
                            let v = self.mem.load(sm, run.lane_scratch[i].addr, volatile)?;
                            let t = &mut thread!(l);
                            t.set(rd, v);
                            t.pc = pc + 1;
                        }
                    }
                }
            },
            Instr::St {
                addr,
                offset,
                val,
                space,
                volatile,
            } => match space {
                Space::Shared => {
                    gather_lanes(block, warp_base, lanes, addr, offset, &mut run.lane_scratch);
                    self.fire_mem_hook(
                        kernel,
                        pc,
                        AccessKind::Store,
                        Space::Shared,
                        block_id,
                        wi as u32,
                        global_warp,
                        active_mask,
                        run,
                        sm,
                        volatile,
                        hook,
                    );
                    for &l in lanes {
                        let (a, v) = {
                            let t = &thread!(l);
                            (effective_addr(t.get(addr), offset), t.get(val))
                        };
                        store_shared(&mut block.shared, a, v)?;
                        thread!(l).pc = pc + 1;
                    }
                }
                Space::Global => {
                    gather_lanes(block, warp_base, lanes, addr, offset, &mut run.lane_scratch);
                    self.fire_mem_hook(
                        kernel,
                        pc,
                        AccessKind::Store,
                        Space::Global,
                        block_id,
                        wi as u32,
                        global_warp,
                        active_mask,
                        run,
                        sm,
                        volatile,
                        hook,
                    );
                    for (i, &l) in lanes.iter().enumerate() {
                        let v = thread!(l).get(val);
                        self.mem.store(sm, run.lane_scratch[i].addr, v, volatile)?;
                        thread!(l).pc = pc + 1;
                    }
                }
            },
            Instr::Atom {
                op,
                scope,
                rd,
                addr,
                offset,
                src,
                cmp,
            } => {
                gather_lanes(block, warp_base, lanes, addr, offset, &mut run.lane_scratch);
                self.fire_mem_hook(
                    kernel,
                    pc,
                    AccessKind::Atomic { op, scope },
                    Space::Global,
                    block_id,
                    wi as u32,
                    global_warp,
                    active_mask,
                    run,
                    sm,
                    false,
                    hook,
                );
                for (i, &l) in lanes.iter().enumerate() {
                    let (s, c) = {
                        let t = &thread!(l);
                        (t.get(src), t.get(cmp))
                    };
                    let old = self
                        .mem
                        .atomic(sm, run.lane_scratch[i].addr, op, s, c, scope)?;
                    let t = &mut thread!(l);
                    t.set(rd, old);
                    t.pc = pc + 1;
                }
            }
            Instr::Membar { scope } => {
                self.mem.fence(sm, scope);
                run.tid_scratch.clear();
                run.tid_scratch
                    .extend(lanes.iter().map(|&l| (l as u32, (warp_base + l) as u32)));
                let step = run.stats.steps;
                timed_hook_call(&mut self.clock, |clock| {
                    hook.on_sync(
                        &SyncEvent::Fence {
                            scope,
                            block_id,
                            global_warp,
                            tids: &run.tid_scratch,
                            active_mask,
                            pc,
                            step,
                        },
                        clock,
                    );
                });
                for &l in lanes {
                    thread!(l).pc = pc + 1;
                }
            }
            Instr::BarSync => {
                for &l in lanes {
                    let t = &mut thread!(l);
                    t.status = Status::AtBlockBar;
                    t.pc = pc + 1;
                }
                if release_block_barrier(block) {
                    timed_hook_call(&mut self.clock, |clock| {
                        hook.on_sync(&SyncEvent::BlockBarrier { block_id }, clock);
                    });
                }
            }
            Instr::BarWarp => {
                for &l in lanes {
                    let t = &mut thread!(l);
                    t.status = Status::AtWarpBar;
                    t.pc = pc + 1;
                }
                if release_warp_barrier(block, warp_base, run.block_dim as usize) {
                    timed_hook_call(&mut self.clock, |clock| {
                        hook.on_sync(
                            &SyncEvent::WarpBarrier {
                                block_id,
                                warp_in_block: wi as u32,
                                global_warp,
                            },
                            clock,
                        );
                    });
                }
            }
            Instr::Exit => {
                for &l in lanes {
                    thread!(l).status = Status::Exited;
                    run.live -= 1;
                }
                // Exiting threads release waiters (CUDA treats exited
                // threads as having arrived at subsequent barriers).
                if release_block_barrier(block) {
                    timed_hook_call(&mut self.clock, |clock| {
                        hook.on_sync(&SyncEvent::BlockBarrier { block_id }, clock);
                    });
                }
                if release_warp_barrier(block, warp_base, run.block_dim as usize) {
                    timed_hook_call(&mut self.clock, |clock| {
                        hook.on_sync(
                            &SyncEvent::WarpBarrier {
                                block_id,
                                warp_in_block: wi as u32,
                                global_warp,
                            },
                            clock,
                        );
                    });
                }
            }
            Instr::Nop => {
                for &l in lanes {
                    thread!(l).pc = pc + 1;
                }
            }
        }
        Ok(())
    }

    /// Fires the memory hook for the lanes gathered in
    /// [`RunState::lane_scratch`].
    #[allow(clippy::too_many_arguments)]
    fn fire_mem_hook(
        &mut self,
        kernel: &Kernel,
        pc: usize,
        kind: AccessKind,
        space: Space,
        block_id: u32,
        warp_in_block: u32,
        global_warp: u32,
        active_mask: u32,
        run: &RunState<'_>,
        sm: usize,
        volatile: bool,
        hook: &mut dyn Hook,
    ) {
        let access = MemAccess {
            kernel,
            pc,
            kind,
            space,
            block_id,
            warp_in_block,
            global_warp,
            active_mask,
            volatile,
            lanes: &run.lane_scratch,
            warps_per_block: run.warps_per_block,
            sm: sm as u32,
            step: run.stats.steps,
        };
        timed_hook_call(&mut self.clock, |clock| hook.on_mem_access(&access, clock));
    }
}

/// Runs one hook callback, attributing its wall time to [`Phase::Hook`]
/// when profiling is enabled (a single branch when it is not).
fn timed_hook_call(clock: &mut Clock, f: impl FnOnce(&mut Clock)) {
    let t0 = clock.profiling().then(Instant::now);
    f(clock);
    if let Some(t) = t0 {
        clock.add_phase_ns(Phase::Hook, t.elapsed().as_nanos() as u64);
    }
}

struct RunState<'a> {
    kernel: &'a Kernel,
    /// Predecoded instruction stream (one entry per pc of `kernel.code`).
    code: Vec<Decoded>,
    params: &'a [u32],
    warps_per_block: u32,
    block_dim: u32,
    grid_dim: u32,
    stats: LaunchStats,
    live: u64,
    /// Reused per-split lane-access buffer (no per-access allocation).
    lane_scratch: Vec<LaneAccess>,
    /// Reused fence `(lane, tid)` buffer.
    tid_scratch: Vec<(u32, u32)>,
}

/// One predecoded instruction: the raw [`Instr`] plus its launch-invariant
/// dispatch data, resolved once per launch instead of per dynamic
/// execution.
#[derive(Debug, Clone, Copy)]
struct Decoded {
    instr: Instr,
    /// Native cycles charged per execution (per participating lane for
    /// atomics, whose conflicting RMWs serialize on hardware).
    cost: u64,
    /// Serial (critical-path) cycles per lane; non-zero only for atomics
    /// (the L2 ROP / SM atomic unit processes RMWs to a line one at a
    /// time).
    serial_cost: u64,
}

/// Resolves the static cost table against each instruction of `code`.
fn predecode(code: &[Instr], cost: &CostModel) -> Vec<Decoded> {
    code.iter()
        .map(|&instr| {
            let (c, s) = match instr {
                Instr::Bra { .. } | Instr::BraIf { .. } | Instr::BraIfNot { .. } => {
                    (cost.branch, 0)
                }
                Instr::Ld { space, .. } => match space {
                    Space::Shared => (cost.ld_shared, 0),
                    Space::Global => (cost.ld_global, 0),
                },
                Instr::St { space, .. } => match space {
                    Space::Shared => (cost.st_shared, 0),
                    Space::Global => (cost.st_global, 0),
                },
                Instr::Atom { scope, .. } => match scope {
                    crate::ir::Scope::Block => (cost.atom_block, 1),
                    crate::ir::Scope::Device => (cost.atom_device, 2),
                },
                Instr::Membar { scope } => match scope {
                    crate::ir::Scope::Block => (cost.membar_block, 0),
                    crate::ir::Scope::Device => (cost.membar_device, 0),
                },
                Instr::BarSync => (cost.bar_sync, 0),
                Instr::BarWarp => (cost.bar_warp, 0),
                _ => (cost.alu, 0),
            };
            Decoded {
                instr,
                cost: c,
                serial_cost: s,
            }
        })
        .collect()
}

/// Whether warp `wi` of `block` has at least one runnable lane (cheap
/// pre-filter for the warp-choice scheduling path).
fn warp_has_runnable(block: &Block, wi: usize) -> bool {
    let warp_base = wi * WARP_SIZE;
    let end = (warp_base + WARP_SIZE).min(block.threads.len());
    block.threads[warp_base..end]
        .iter()
        .any(|t| t.status == Status::Ready)
}

/// Whether an instruction can affect or observe memory shared between
/// threads. Everything else (ALU, branches, moves, barrier arrivals,
/// exits) commutes with every concurrently enabled transition: it touches
/// only the executing thread's private state, or — for barrier arrivals
/// and exits — monotonically *enables* other threads without ever
/// disabling one. Eager-invisible scheduling (the litmus oracle's partial-
/// order reduction) therefore executes invisible instructions first,
/// without consulting the scheduler, and provably visits every
/// distinguishable outcome the full interleaving space contains.
fn instr_is_visible(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. } | Instr::Membar { .. }
    )
}

/// Whether warp `wi` has a runnable lane whose next instruction is
/// invisible (eligible for eager execution).
fn warp_has_invisible_runnable(block: &Block, wi: usize, code: &[Decoded]) -> bool {
    let warp_base = wi * WARP_SIZE;
    let end = (warp_base + WARP_SIZE).min(block.threads.len());
    block.threads[warp_base..end]
        .iter()
        .any(|t| t.status == Status::Ready && !instr_is_visible(&code[t.pc].instr))
}

/// Chooses the lanes (indices within the warp) to execute next for warp
/// `wi` of `block` into `out`; returns false if no lane is runnable. The
/// caller-owned `pcs`/`out` scratch buffers make this allocation-free.
/// All non-forced choices are delegated to `sched`; the scheduler is not
/// consulted at all when the warp has no runnable lane, so the production
/// round-robin scan consumes no randomness while skipping idle warps.
#[allow(clippy::too_many_arguments)]
fn pick_split(
    block: &Block,
    wi: usize,
    mode: ExecMode,
    sched: &mut dyn Scheduler,
    eager: bool,
    code: &[Decoded],
    pcs: &mut Vec<usize>,
    out: &mut Vec<usize>,
) -> bool {
    let warp_base = wi * WARP_SIZE;
    let end = (warp_base + WARP_SIZE).min(block.threads.len());
    out.clear();
    for t in warp_base..end {
        if block.threads[t].status == Status::Ready {
            out.push(t - warp_base);
        }
    }
    if out.is_empty() {
        return false;
    }
    let chosen_pc = match mode {
        ExecMode::Lockstep => out
            .iter()
            .map(|&l| block.threads[warp_base + l].pc)
            .min()
            .unwrap(),
        ExecMode::Its => {
            pcs.clear();
            pcs.extend(out.iter().map(|&l| block.threads[warp_base + l].pc));
            pcs.sort_unstable();
            pcs.dedup();
            // Eager mode: the lowest invisible PC runs deterministically —
            // no decision, no branch in the enumeration tree.
            let eager_pc = if eager {
                pcs.iter()
                    .copied()
                    .find(|&p| !instr_is_visible(&code[p].instr))
            } else {
                None
            };
            match eager_pc {
                Some(p) => p,
                // Consulted even for a single candidate: the production
                // scheduler historically drew from its RNG here, and the
                // byte-identity contract preserves every draw.
                None => pcs[sched.choose_pc(pcs.len()).min(pcs.len() - 1)],
            }
        }
    };
    out.retain(|&l| block.threads[warp_base + l].pc == chosen_pc);
    // Under ITS, converged threads may split apart at any time. Eager mode
    // skips subdivision: the oracle's completeness argument covers intact
    // splits only, and skipping keeps eager traces free of filler tokens.
    if mode == ExecMode::Its && out.len() > 1 && !eager {
        if let Some((start, keep)) = sched.choose_subdivision(out.len()) {
            let keep = keep.clamp(1, out.len() - 1);
            let start = start.min(out.len() - keep);
            out.drain(..start);
            out.truncate(keep);
        }
    }
    true
}

/// Releases the block barrier if every live thread has arrived.
/// Returns true if a release happened.
fn release_block_barrier(block: &mut Block) -> bool {
    let mut any_waiting = false;
    for t in &block.threads {
        match t.status {
            Status::AtBlockBar => any_waiting = true,
            Status::Exited => {}
            _ => return false,
        }
    }
    if !any_waiting {
        return false;
    }
    for t in &mut block.threads {
        if t.status == Status::AtBlockBar {
            t.status = Status::Ready;
        }
    }
    true
}

/// Releases warp `warp_base/WARP_SIZE`'s warp barrier if every live lane has
/// arrived. Returns true if a release happened.
fn release_warp_barrier(block: &mut Block, warp_base: usize, block_dim: usize) -> bool {
    let end = (warp_base + WARP_SIZE).min(block_dim);
    let mut any_waiting = false;
    for t in &block.threads[warp_base..end] {
        match t.status {
            Status::AtWarpBar => any_waiting = true,
            Status::Exited => {}
            _ => return false,
        }
    }
    if !any_waiting {
        return false;
    }
    for t in &mut block.threads[warp_base..end] {
        if t.status == Status::AtWarpBar {
            t.status = Status::Ready;
        }
    }
    true
}

/// Computes each participating lane's effective address into the reused
/// `out` scratch buffer.
fn gather_lanes(
    block: &Block,
    warp_base: usize,
    lanes: &[usize],
    addr: Reg,
    offset: i32,
    out: &mut Vec<LaneAccess>,
) {
    out.clear();
    out.extend(lanes.iter().map(|&l| {
        let t = &block.threads[warp_base + l];
        LaneAccess {
            lane: l as u32,
            tid_in_block: (warp_base + l) as u32,
            addr: effective_addr(t.get(addr), offset),
        }
    }));
}

fn effective_addr(base: u32, offset: i32) -> u32 {
    base.wrapping_add(offset as u32)
}

fn load_shared(shared: &[u32], addr: u32) -> Result<u32, SimError> {
    if !addr.is_multiple_of(4) {
        return Err(SimError::UnalignedAccess { addr });
    }
    let w = (addr / 4) as usize;
    shared.get(w).copied().ok_or(SimError::SharedOutOfBounds {
        addr,
        words: shared.len(),
    })
}

fn store_shared(shared: &mut [u32], addr: u32, v: u32) -> Result<(), SimError> {
    if !addr.is_multiple_of(4) {
        return Err(SimError::UnalignedAccess { addr });
    }
    let w = (addr / 4) as usize;
    match shared.get_mut(w) {
        Some(slot) => {
            *slot = v;
            Ok(())
        }
        None => Err(SimError::SharedOutOfBounds {
            addr,
            words: shared.len(),
        }),
    }
}

fn eval_alu(op: AluOp, a: u32, b: u32) -> Option<u32> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b)?,
        AluOp::Rem => a.checked_rem(b)?,
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b),
        AluOp::Shr => a.wrapping_shr(b),
    })
}

fn eval_cmp(op: CmpOp, a: u32, b: u32) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::SLt => (a as i32) < (b as i32),
        CmpOp::SGt => (a as i32) > (b as i32),
    }
}
