//! The instrumentation interface exposed by the simulated GPU.
//!
//! This is the point where `nvbit-sim` (and through it, the detectors)
//! attaches to executing kernels. The contract mirrors NVBit's: the tool
//! observes every dynamic global-memory access and synchronization operation
//! with full operand and active-mask information, and may charge extra
//! cycles to the [`Clock`] — the simulation analogue of injected SASS
//! callbacks slowing the kernel down.
//!
//! Hooks observe one *warp-split execution* at a time: one instruction
//! executed by the subset of a warp's lanes that are converged at that PC.
//! (NVBit tools receive per-lane calls and re-aggregate with warp intrinsics
//! such as `__activemask`; delivering the aggregate is equivalent and is
//! precisely the form iGUARD's coalescing optimization wants, §6.5.)

use crate::ir::{AtomOp, Scope, Space};
use crate::kernel::Kernel;
use crate::timing::Clock;

/// Execution mode of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Pre-Volta lockstep SIMT: a warp's threads reconverge eagerly and step
    /// together; implicit warp-level barrier after every instruction.
    Lockstep,
    /// Independent Thread Scheduling (Volta+): diverged threads of a warp
    /// interleave freely.
    Its,
}

/// What kind of global-memory access a [`MemAccess`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
    Atomic { op: AtomOp, scope: Scope },
}

impl AccessKind {
    /// Whether the access writes memory (stores and all atomics — the paper
    /// treats atomics as stores for detection purposes, §6.2).
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, AccessKind::Load)
    }
}

/// One lane's slice of a warp-split memory access.
#[derive(Debug, Clone, Copy)]
pub struct LaneAccess {
    /// Lane index within the warp (0..32). The 5-bit ThreadID of Figure 4.
    pub lane: u32,
    /// Thread index within the block.
    pub tid_in_block: u32,
    /// Byte address of the 4-byte word accessed.
    pub addr: u32,
}

/// A dynamic global-memory access by a warp split.
#[derive(Debug)]
pub struct MemAccess<'a> {
    /// Kernel being executed.
    pub kernel: &'a Kernel,
    /// Program counter of the instruction.
    pub pc: usize,
    /// Load / store / scoped atomic.
    pub kind: AccessKind,
    /// Memory space accessed. iGUARD proper only instruments
    /// [`Space::Global`]; shared-memory events exist so scratchpad tools
    /// (Racecheck-class) can be built on the same framework.
    pub space: Space,
    /// Block executing the split.
    pub block_id: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Globally unique warp id (`block_id * warps_per_block + warp_in_block`).
    pub global_warp: u32,
    /// Bitmask over the warp's 32 lanes that execute this instruction
    /// (`__activemask()` as the injected callback would see it).
    pub active_mask: u32,
    /// Whether the access is `volatile` (L1-bypassing). CUDA's `volatile`
    /// is the flag-polling idiom; detectors treat such accesses as part of
    /// the synchronization protocol rather than as data accesses.
    pub volatile: bool,
    /// The participating lanes, ascending by lane id.
    pub lanes: &'a [LaneAccess],
    /// Warps per block for this launch (constant per kernel; used by the
    /// detector to derive block ids from warp ids, §6.2).
    pub warps_per_block: u32,
    /// SM the block is resident on.
    pub sm: u32,
    /// Scheduler step at which the access executes; detectors use it to
    /// estimate metadata contention windows.
    pub step: u64,
}

/// A dynamic synchronization operation.
#[derive(Debug)]
pub enum SyncEvent<'a> {
    /// A released `__syncthreads()` barrier (fired once per release).
    BlockBarrier { block_id: u32 },
    /// A released `__syncwarp()` barrier (fired once per warp release).
    WarpBarrier {
        block_id: u32,
        warp_in_block: u32,
        global_warp: u32,
    },
    /// A scoped `__threadfence[_block]()` executed by a warp split; the
    /// fence is per-thread (§6.1), so every lane in `tids` fenced.
    Fence {
        scope: Scope,
        block_id: u32,
        global_warp: u32,
        /// `(lane, tid_in_block)` of each fencing thread.
        tids: &'a [(u32, u32)],
        /// Active mask of the split executing the fence.
        active_mask: u32,
        pc: usize,
        step: u64,
    },
}

/// Static launch parameters delivered to the tool at kernel entry.
#[derive(Debug, Clone)]
pub struct LaunchInfo {
    pub kernel_name: std::sync::Arc<str>,
    pub grid_dim: u32,
    pub block_dim: u32,
    pub warps_per_block: u32,
    pub total_threads: u32,
    pub total_warps: u32,
    pub mode: ExecMode,
    pub num_sms: u32,
    /// Logical device-memory bytes still free after application allocations
    /// (drives the detector's prefault decision, §6.1).
    pub free_device_bytes: u64,
    /// Logical bytes allocated by the application before launch.
    pub app_footprint_bytes: u64,
    /// Logical device-memory capacity in bytes (Titan RTX: 24 GB).
    pub device_capacity_bytes: u64,
    /// Words of real backing storage behind global memory (bounds the
    /// functional metadata table a detector needs).
    pub backing_words: usize,
    /// Static instruction count (drives the NVBit analysis-cost model).
    pub code_len: usize,
}

/// A tool attached to the GPU. All methods default to no-ops so simple tools
/// override only what they observe.
pub trait Hook {
    /// Called once per kernel launch, before any instruction executes.
    fn on_kernel_launch(&mut self, _info: &LaunchInfo, _clock: &mut Clock) {}

    /// Called after the grid's implicit final barrier.
    fn on_kernel_end(&mut self, _info: &LaunchInfo, _clock: &mut Clock) {}

    /// Called before each dynamic global-memory access.
    fn on_mem_access(&mut self, _access: &MemAccess<'_>, _clock: &mut Clock) {}

    /// Called after each dynamic global-memory *load* with the value the
    /// lane observed. Only fired when `GpuConfig::record_load_values` (or
    /// weak visibility, which implies it) is enabled — the litmus oracle
    /// needs observed values to evaluate final-state assertions, but the
    /// production detectors are value-blind and skip the callback cost.
    fn on_load_value(&mut self, _block_id: u32, _tid_in_block: u32, _addr: u32, _pc: usize, _value: u32) {}

    /// Called on each dynamic synchronization operation.
    fn on_sync(&mut self, _event: &SyncEvent<'_>, _clock: &mut Clock) {}
}

/// The trivial tool: observe nothing. Used for native (uninstrumented) runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHook;

impl Hook for NullHook {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_write_classification() {
        assert!(!AccessKind::Load.is_write());
        assert!(AccessKind::Store.is_write());
        assert!(AccessKind::Atomic {
            op: AtomOp::Add,
            scope: Scope::Block
        }
        .is_write());
    }
}
