//! Pluggable warp-split scheduling.
//!
//! The simulator's ITS interleaving choices — which warp steps next, which
//! PC group of a warp runs, and whether a converged split is subdivided —
//! were originally baked into `machine.rs` as calls on one seeded
//! [`SmallRng`]. This module lifts those choices behind the [`Scheduler`]
//! trait so the same execution core can be driven by:
//!
//! - [`RandomScheduler`] — the production scheduler, reproducing the
//!   original RNG call sequence *byte for byte* (the golden equivalence
//!   tests pin this);
//! - [`ReplayScheduler`] — replays a recorded [`ScheduleTrace`], turning
//!   any interleaving into a deterministic regression test;
//! - [`EnumeratingScheduler`] — depth-first systematic enumeration of the
//!   bounded schedule space, the engine behind the `oracle` crate's
//!   ground-truth race verdicts;
//! - [`RecordingScheduler`] — a transparent wrapper that captures the
//!   decision trace of any inner scheduler for later replay.
//!
//! # Decision protocol
//!
//! The machine consults the scheduler at exactly these points:
//!
//! 1. `begin_launch` once per launch, before any instruction executes.
//! 2. If [`Scheduler::wants_warp_choice`] is true, `choose_warp(n)` every
//!    step where `n > 1` warps have a runnable lane (the candidate list is
//!    ordered by flat `(block, warp)` index). Schedulers that decline keep
//!    the original fair round-robin scan, which consults no randomness.
//! 3. In ITS mode, `choose_pc(n)` over the warp's `n` distinct sorted PCs —
//!    called even when `n == 1`, because the original code unconditionally
//!    drew from the RNG there and byte-identity requires preserving the
//!    draw.
//! 4. In ITS mode, for a chosen split wider than one lane,
//!    `choose_subdivision(len)` may carve out a sub-range `(start, keep)`.
//!
//! A [`RecordingScheduler`] records the outcome of every consultation, so a
//! trace replayed through [`ReplayScheduler`] drives the machine through
//! the identical schedule regardless of which scheduler produced it.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::hook::ExecMode;

/// Launch parameters a scheduler may condition on (notably for per-launch
/// reseeding).
#[derive(Debug, Clone, Copy)]
pub struct LaunchContext {
    pub grid_dim: u32,
    pub block_dim: u32,
    pub mode: ExecMode,
}

/// The warp-split decision source driving a launch.
pub trait Scheduler {
    /// Called once per launch before any instruction executes.
    fn begin_launch(&mut self, ctx: &LaunchContext);

    /// Whether the machine should offer this scheduler the choice of which
    /// runnable warp steps next. When false (the default), the machine
    /// keeps its fair round-robin scan — the production behaviour.
    fn wants_warp_choice(&self) -> bool {
        false
    }

    /// Whether the machine should execute *invisible* instructions (ALU,
    /// branches, barrier arrivals, exits — anything that cannot affect or
    /// observe global memory) eagerly, without consulting the scheduler.
    /// This is the partial-order reduction behind the litmus oracle: only
    /// interleavings of global-memory operations branch the schedule tree,
    /// shrinking the space from a multinomial over *all* instructions to a
    /// multinomial over the visible ones. Off by default — the v1 oracle's
    /// completeness argument counts every instruction.
    fn wants_eager_invisible(&self) -> bool {
        false
    }

    /// Picks among `n > 1` distinct *visibility candidates* for a weak
    /// load (see `GpuConfig::weak_visibility`): index 0 is always the
    /// legacy (local-line-else-L2) value, further candidates are newer L2
    /// or remote not-yet-written-back values. Only consulted when weak
    /// visibility is enabled and more than one value is observable.
    fn choose_visibility(&mut self, n: usize) -> usize {
        let _ = n;
        0
    }

    /// Picks among `n > 1` runnable warps (index into the candidate list,
    /// ordered by flat `(block, warp)` position). Only called when
    /// [`Scheduler::wants_warp_choice`] is true.
    fn choose_warp(&mut self, n: usize) -> usize {
        let _ = n;
        0
    }

    /// Picks among the warp's `n` distinct PCs (ascending order). Called
    /// for every ITS split selection, including `n == 1`.
    fn choose_pc(&mut self, n: usize) -> usize;

    /// Optionally subdivides a converged split of `len > 1` lanes:
    /// `Some((start, keep))` keeps `keep` lanes beginning at `start`,
    /// `None` keeps the whole split.
    fn choose_subdivision(&mut self, len: usize) -> Option<(usize, usize)>;
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn begin_launch(&mut self, ctx: &LaunchContext) {
        (**self).begin_launch(ctx);
    }

    fn wants_warp_choice(&self) -> bool {
        (**self).wants_warp_choice()
    }

    fn wants_eager_invisible(&self) -> bool {
        (**self).wants_eager_invisible()
    }

    fn choose_visibility(&mut self, n: usize) -> usize {
        (**self).choose_visibility(n)
    }

    fn choose_warp(&mut self, n: usize) -> usize {
        (**self).choose_warp(n)
    }

    fn choose_pc(&mut self, n: usize) -> usize {
        (**self).choose_pc(n)
    }

    fn choose_subdivision(&mut self, len: usize) -> Option<(usize, usize)> {
        (**self).choose_subdivision(len)
    }
}

/// The production scheduler: seeded pseudo-random ITS choices.
///
/// Reproduces the pre-refactor behaviour exactly — same per-launch seed
/// derivation, same RNG call sequence, same sampling functions — so every
/// stat, report, and cycle count is byte-identical to the inline
/// implementation it replaced.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    seed: u64,
    split_prob: f64,
    rng: SmallRng,
}

impl RandomScheduler {
    /// A scheduler drawing from `seed` (per-launch reseeded) that
    /// subdivides converged splits with probability `split_prob`.
    #[must_use]
    pub fn new(seed: u64, split_prob: f64) -> Self {
        RandomScheduler {
            seed,
            split_prob,
            // Placeholder stream; begin_launch reseeds before use.
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn begin_launch(&mut self, ctx: &LaunchContext) {
        // The historical per-launch seed derivation; golden tests pin it.
        self.rng = SmallRng::seed_from_u64(
            self.seed ^ ((ctx.grid_dim as u64) << 32) ^ ctx.block_dim as u64,
        );
    }

    fn choose_pc(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }

    fn choose_subdivision(&mut self, len: usize) -> Option<(usize, usize)> {
        if !self.rng.random_bool(self.split_prob) {
            return None;
        }
        let keep = self.rng.random_range(1..len);
        let start = self.rng.random_range(0..=len - keep);
        Some((start, keep))
    }

    fn choose_visibility(&mut self, n: usize) -> usize {
        // Only reached in weak-visibility mode, so the extra draw cannot
        // perturb the golden (strong-memory) RNG sequence.
        self.rng.random_range(0..n)
    }
}

/// One recorded scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// `begin_launch` marker; delimits launches in multi-launch traces.
    Begin,
    /// Warp chosen among the runnable candidates.
    Warp(u32),
    /// PC group chosen within a warp.
    Pc(u32),
    /// Converged split kept whole.
    KeepAll,
    /// Converged split subdivided to `keep` lanes starting at `start`.
    Split { start: u32, keep: u32 },
    /// Visibility candidate chosen for a weak load.
    Vis(u32),
}

/// A complete, replayable record of a launch's scheduling decisions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Whether the recording scheduler drove warp choice (replay must run
    /// the machine through the same code path to stay aligned).
    pub warp_choice: bool,
    /// Whether the recording scheduler requested eager-invisible execution
    /// (replay must reproduce the same reduced branching structure).
    pub eager: bool,
    pub decisions: Vec<Decision>,
}

impl ScheduleTrace {
    /// FNV-1a digest of the decision stream — a compact schedule identity
    /// for corpus entries and golden pins.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u64| {
            for byte in b.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(u64::from(self.warp_choice));
        // Appended only when set so every pre-existing (non-eager) trace
        // keeps its historical digest.
        if self.eager {
            eat(7);
        }
        for d in &self.decisions {
            match *d {
                Decision::Begin => eat(1),
                Decision::Warp(i) => {
                    eat(2);
                    eat(u64::from(i));
                }
                Decision::Pc(i) => {
                    eat(3);
                    eat(u64::from(i));
                }
                Decision::KeepAll => eat(4),
                Decision::Split { start, keep } => {
                    eat(5);
                    eat(u64::from(start));
                    eat(u64::from(keep));
                }
                Decision::Vis(i) => {
                    eat(6);
                    eat(u64::from(i));
                }
            }
        }
        h
    }

    /// Serializes to the versioned single-line corpus form, e.g.
    /// `v1;w;B.W1.P0.K.S1:2` (`we`/`re` headers mark eager traces).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut s = String::from(match (self.warp_choice, self.eager) {
            (true, false) => "v1;w;",
            (false, false) => "v1;r;",
            (true, true) => "v1;we;",
            (false, true) => "v1;re;",
        });
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                s.push('.');
            }
            match *d {
                Decision::Begin => s.push('B'),
                Decision::Warp(n) => {
                    s.push('W');
                    s.push_str(&n.to_string());
                }
                Decision::Pc(n) => {
                    s.push('P');
                    s.push_str(&n.to_string());
                }
                Decision::KeepAll => s.push('K'),
                Decision::Split { start, keep } => {
                    s.push('S');
                    s.push_str(&start.to_string());
                    s.push(':');
                    s.push_str(&keep.to_string());
                }
                Decision::Vis(n) => {
                    s.push('V');
                    s.push_str(&n.to_string());
                }
            }
        }
        s
    }

    /// Parses the form produced by [`ScheduleTrace::to_compact_string`].
    pub fn parse(s: &str) -> Result<Self, String> {
        let rest = s
            .strip_prefix("v1;")
            .ok_or_else(|| format!("unknown trace version in {s:?}"))?;
        let (warp_choice, eager, body) = match rest.split_once(';') {
            Some(("w", b)) => (true, false, b),
            Some(("r", b)) => (false, false, b),
            Some(("we", b)) => (true, true, b),
            Some(("re", b)) => (false, true, b),
            _ => return Err(format!("bad trace header in {s:?}")),
        };
        let mut decisions = Vec::new();
        if !body.is_empty() {
            for tok in body.split('.') {
                let d = match tok.split_at(1) {
                    ("B", "") => Decision::Begin,
                    ("K", "") => Decision::KeepAll,
                    ("W", n) => Decision::Warp(n.parse().map_err(|e| format!("{tok:?}: {e}"))?),
                    ("P", n) => Decision::Pc(n.parse().map_err(|e| format!("{tok:?}: {e}"))?),
                    ("V", n) => Decision::Vis(n.parse().map_err(|e| format!("{tok:?}: {e}"))?),
                    ("S", n) => {
                        let (a, b) = n
                            .split_once(':')
                            .ok_or_else(|| format!("bad split token {tok:?}"))?;
                        Decision::Split {
                            start: a.parse().map_err(|e| format!("{tok:?}: {e}"))?,
                            keep: b.parse().map_err(|e| format!("{tok:?}: {e}"))?,
                        }
                    }
                    _ => return Err(format!("unknown trace token {tok:?}")),
                };
                decisions.push(d);
            }
        }
        Ok(ScheduleTrace {
            warp_choice,
            eager,
            decisions,
        })
    }
}

/// Wraps any scheduler, recording every decision it makes.
#[derive(Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    trace: ScheduleTrace,
}

impl<S: Scheduler> RecordingScheduler<S> {
    pub fn new(inner: S) -> Self {
        let warp_choice = inner.wants_warp_choice();
        let eager = inner.wants_eager_invisible();
        RecordingScheduler {
            inner,
            trace: ScheduleTrace {
                warp_choice,
                eager,
                decisions: Vec::new(),
            },
        }
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &ScheduleTrace {
        &self.trace
    }

    /// Consumes the wrapper, yielding the recorded trace.
    #[must_use]
    pub fn into_trace(self) -> ScheduleTrace {
        self.trace
    }

    /// The wrapped scheduler.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the wrapper, yielding `(inner, trace)`.
    #[must_use]
    pub fn into_parts(self) -> (S, ScheduleTrace) {
        (self.inner, self.trace)
    }

    /// Clears the recorded trace (reuse across runs of an enumeration).
    pub fn reset_trace(&mut self) {
        self.trace.decisions.clear();
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn begin_launch(&mut self, ctx: &LaunchContext) {
        self.inner.begin_launch(ctx);
        self.trace.decisions.push(Decision::Begin);
    }

    fn wants_warp_choice(&self) -> bool {
        self.inner.wants_warp_choice()
    }

    fn wants_eager_invisible(&self) -> bool {
        self.inner.wants_eager_invisible()
    }

    fn choose_visibility(&mut self, n: usize) -> usize {
        let i = self.inner.choose_visibility(n);
        self.trace.decisions.push(Decision::Vis(i as u32));
        i
    }

    fn choose_warp(&mut self, n: usize) -> usize {
        let i = self.inner.choose_warp(n);
        self.trace.decisions.push(Decision::Warp(i as u32));
        i
    }

    fn choose_pc(&mut self, n: usize) -> usize {
        let i = self.inner.choose_pc(n);
        self.trace.decisions.push(Decision::Pc(i as u32));
        i
    }

    fn choose_subdivision(&mut self, len: usize) -> Option<(usize, usize)> {
        match self.inner.choose_subdivision(len) {
            None => {
                self.trace.decisions.push(Decision::KeepAll);
                None
            }
            Some((start, keep)) => {
                self.trace.decisions.push(Decision::Split {
                    start: start as u32,
                    keep: keep as u32,
                });
                Some((start, keep))
            }
        }
    }
}

/// Replays a recorded [`ScheduleTrace`] decision-for-decision.
///
/// Panics loudly on any desynchronization (wrong decision kind, index out
/// of range, trace exhausted): a trace is only meaningful against the
/// exact kernel/launch it was recorded from, and silent drift would turn
/// a regression test into noise.
#[derive(Debug, Clone)]
pub struct ReplayScheduler {
    trace: ScheduleTrace,
    pos: usize,
}

impl ReplayScheduler {
    #[must_use]
    pub fn new(trace: ScheduleTrace) -> Self {
        ReplayScheduler { trace, pos: 0 }
    }

    /// Whether every recorded decision has been consumed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.pos == self.trace.decisions.len()
    }

    fn next(&mut self, expecting: &str) -> Decision {
        let d = *self.trace.decisions.get(self.pos).unwrap_or_else(|| {
            panic!(
                "replay trace exhausted at decision {} (expecting {expecting})",
                self.pos
            )
        });
        self.pos += 1;
        d
    }
}

impl Scheduler for ReplayScheduler {
    fn begin_launch(&mut self, _ctx: &LaunchContext) {
        match self.next("Begin") {
            Decision::Begin => {}
            d => panic!("replay desynchronized: expected Begin, trace has {d:?}"),
        }
    }

    fn wants_warp_choice(&self) -> bool {
        self.trace.warp_choice
    }

    fn wants_eager_invisible(&self) -> bool {
        self.trace.eager
    }

    fn choose_visibility(&mut self, n: usize) -> usize {
        match self.next("Vis") {
            Decision::Vis(i) if (i as usize) < n => i as usize,
            d => panic!("replay desynchronized: expected Vis(<{n}), trace has {d:?}"),
        }
    }

    fn choose_warp(&mut self, n: usize) -> usize {
        match self.next("Warp") {
            Decision::Warp(i) if (i as usize) < n => i as usize,
            d => panic!("replay desynchronized: expected Warp(<{n}), trace has {d:?}"),
        }
    }

    fn choose_pc(&mut self, n: usize) -> usize {
        match self.next("Pc") {
            Decision::Pc(i) if (i as usize) < n => i as usize,
            d => panic!("replay desynchronized: expected Pc(<{n}), trace has {d:?}"),
        }
    }

    fn choose_subdivision(&mut self, len: usize) -> Option<(usize, usize)> {
        match self.next("KeepAll/Split") {
            Decision::KeepAll => None,
            Decision::Split { start, keep }
                if keep >= 1 && (keep as usize) < len && (start as usize) + (keep as usize) <= len =>
            {
                Some((start as usize, keep as usize))
            }
            d => panic!("replay desynchronized: expected subdivision of {len} lanes, trace has {d:?}"),
        }
    }
}

/// Depth-first systematic enumeration of the bounded schedule space.
///
/// Each *run* of the machine traverses one root-to-leaf path of the
/// decision tree; [`EnumeratingScheduler::advance`] then steps to the next
/// unexplored path. Choice points with a single option are not part of the
/// tree (they cannot branch), and subdivision is never exercised —
/// enumeration explores warp and PC interleavings of intact splits, which
/// is the space the oracle's completeness argument covers.
///
/// ```text
/// let mut e = EnumeratingScheduler::new(64);
/// loop {
///     /* run one launch with &mut e, observe it */
///     if !e.advance() { break; }    // space exhausted
/// }
/// assert!(!e.truncated());          // bound was large enough
/// ```
#[derive(Debug, Clone)]
pub struct EnumeratingScheduler {
    /// DFS path: `(chosen, options)` per branching choice point.
    path: Vec<(u32, u32)>,
    /// Branching decisions consumed so far in the current run.
    depth: usize,
    /// Maximum branching decisions per run; beyond it the scheduler takes
    /// choice 0 and flags [`EnumeratingScheduler::truncated`].
    max_decisions: usize,
    truncated: bool,
    /// Completed runs (schedules), counted by `advance`.
    schedules: u64,
    /// Request eager-invisible execution (litmus partial-order reduction).
    eager: bool,
}

impl EnumeratingScheduler {
    /// An enumerator exploring at most `max_decisions` branching choice
    /// points per schedule.
    #[must_use]
    pub fn new(max_decisions: usize) -> Self {
        EnumeratingScheduler {
            path: Vec::new(),
            depth: 0,
            max_decisions,
            truncated: false,
            schedules: 0,
            eager: false,
        }
    }

    /// An enumerator that additionally requests eager-invisible execution,
    /// so only global-memory operations branch the schedule tree. Used by
    /// the litmus oracle, where multi-actor kernels would otherwise blow
    /// up the full-instruction interleaving space.
    #[must_use]
    pub fn new_eager(max_decisions: usize) -> Self {
        EnumeratingScheduler {
            eager: true,
            ..EnumeratingScheduler::new(max_decisions)
        }
    }

    /// Whether any run exceeded the decision budget (the enumeration is
    /// then a *prefix* of the space, not the whole space).
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Completed schedules so far (including the run `advance` just
    /// finished).
    #[must_use]
    pub fn schedules_completed(&self) -> u64 {
        self.schedules
    }

    /// Finishes the current run and moves to the next unexplored path.
    /// Returns false once the whole space has been visited.
    pub fn advance(&mut self) -> bool {
        self.schedules += 1;
        // Entries beyond this run's depth are stale leftovers from a
        // deeper sibling; the next path must not resurrect them.
        self.path.truncate(self.depth);
        self.depth = 0;
        while let Some(&(c, n)) = self.path.last() {
            if c + 1 < n {
                self.path.last_mut().unwrap().0 = c + 1;
                return true;
            }
            self.path.pop();
        }
        false
    }

    fn decide(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        if self.depth >= self.max_decisions {
            self.truncated = true;
            return 0;
        }
        if self.depth == self.path.len() {
            self.path.push((0, n as u32));
        }
        let (c, stored_n) = self.path[self.depth];
        assert_eq!(
            stored_n, n as u32,
            "enumeration desynchronized at depth {}: run offered {} options where a \
             previous run saw {} (kernel must be schedule-deterministic)",
            self.depth, n, stored_n
        );
        self.depth += 1;
        c as usize
    }
}

impl Scheduler for EnumeratingScheduler {
    fn begin_launch(&mut self, _ctx: &LaunchContext) {
        self.depth = 0;
    }

    fn wants_warp_choice(&self) -> bool {
        true
    }

    fn wants_eager_invisible(&self) -> bool {
        self.eager
    }

    fn choose_visibility(&mut self, n: usize) -> usize {
        self.decide(n)
    }

    fn choose_warp(&mut self, n: usize) -> usize {
        self.decide(n)
    }

    fn choose_pc(&mut self, n: usize) -> usize {
        self.decide(n)
    }

    fn choose_subdivision(&mut self, _len: usize) -> Option<(usize, usize)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_scheduler_matches_raw_rng_sequence() {
        // The refactor contract: RandomScheduler consumes the RNG exactly
        // as the inline code did.
        let ctx = LaunchContext {
            grid_dim: 3,
            block_dim: 64,
            mode: ExecMode::Its,
        };
        let mut s = RandomScheduler::new(42, 0.5);
        s.begin_launch(&ctx);
        let mut rng = SmallRng::seed_from_u64(42 ^ (3u64 << 32) ^ 64u64);
        for trial in 0..2000 {
            let n = 1 + trial % 5;
            assert_eq!(s.choose_pc(n), rng.random_range(0..n));
            let len = 2 + trial % 7;
            let expect = if rng.random_bool(0.5) {
                let keep = rng.random_range(1..len);
                let start = rng.random_range(0..=len - keep);
                Some((start, keep))
            } else {
                None
            };
            assert_eq!(s.choose_subdivision(len), expect);
        }
    }

    #[test]
    fn trace_roundtrips_through_compact_string() {
        let t = ScheduleTrace {
            warp_choice: true,
            eager: false,
            decisions: vec![
                Decision::Begin,
                Decision::Warp(3),
                Decision::Pc(0),
                Decision::KeepAll,
                Decision::Split { start: 1, keep: 2 },
            ],
        };
        let s = t.to_compact_string();
        assert_eq!(s, "v1;w;B.W3.P0.K.S1:2");
        assert_eq!(ScheduleTrace::parse(&s).unwrap(), t);
        let empty = ScheduleTrace::default();
        assert_eq!(
            ScheduleTrace::parse(&empty.to_compact_string()).unwrap(),
            empty
        );
        assert!(ScheduleTrace::parse("v2;r;B").is_err());
        assert!(ScheduleTrace::parse("v1;x;B").is_err());
        assert!(ScheduleTrace::parse("v1;r;Q9").is_err());
    }

    #[test]
    fn eager_trace_roundtrips_and_is_digest_distinct() {
        let t = ScheduleTrace {
            warp_choice: true,
            eager: true,
            decisions: vec![Decision::Begin, Decision::Warp(1), Decision::Vis(2)],
        };
        let s = t.to_compact_string();
        assert_eq!(s, "v1;we;B.W1.V2");
        assert_eq!(ScheduleTrace::parse(&s).unwrap(), t);
        let mut strong = t.clone();
        strong.eager = false;
        assert_eq!(strong.to_compact_string(), "v1;w;B.W1.V2");
        assert_ne!(t.digest(), strong.digest());
        assert!(ScheduleTrace::parse("v1;ew;B").is_err());
    }

    #[test]
    fn digest_distinguishes_traces() {
        let a = ScheduleTrace {
            warp_choice: false,
            eager: false,
            decisions: vec![Decision::Pc(0), Decision::Pc(1)],
        };
        let b = ScheduleTrace {
            warp_choice: false,
            eager: false,
            decisions: vec![Decision::Pc(1), Decision::Pc(0)],
        };
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
        // Pinned: the digest of a non-eager trace is the pre-litmus value —
        // corpus witnesses recorded before this field existed must not move.
        assert_eq!(ScheduleTrace::default().digest(), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in 0u64.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
    }

    #[test]
    fn recording_then_replaying_reproduces_decisions() {
        let ctx = LaunchContext {
            grid_dim: 1,
            block_dim: 32,
            mode: ExecMode::Its,
        };
        let mut rec = RecordingScheduler::new(RandomScheduler::new(7, 0.4));
        rec.begin_launch(&ctx);
        let mut made = Vec::new();
        for i in 0..200 {
            made.push((rec.choose_pc(1 + i % 4), rec.choose_subdivision(2 + i % 5)));
        }
        let trace = rec.into_trace();
        assert!(!trace.warp_choice);

        let mut rep = ReplayScheduler::new(trace);
        assert!(!rep.wants_warp_choice());
        rep.begin_launch(&ctx);
        for (i, &(pc, sub)) in made.iter().enumerate() {
            assert_eq!(rep.choose_pc(1 + i % 4), pc);
            assert_eq!(rep.choose_subdivision(2 + i % 5), sub);
        }
        assert!(rep.finished());
    }

    #[test]
    #[should_panic(expected = "replay desynchronized")]
    fn replay_panics_on_decision_kind_mismatch() {
        let mut rep = ReplayScheduler::new(ScheduleTrace {
            warp_choice: false,
            eager: false,
            decisions: vec![Decision::Begin, Decision::KeepAll],
        });
        rep.begin_launch(&LaunchContext {
            grid_dim: 1,
            block_dim: 32,
            mode: ExecMode::Its,
        });
        let _ = rep.choose_pc(4);
    }

    #[test]
    #[should_panic(expected = "replay trace exhausted")]
    fn replay_panics_on_exhausted_trace() {
        let mut rep = ReplayScheduler::new(ScheduleTrace::default());
        rep.begin_launch(&LaunchContext {
            grid_dim: 1,
            block_dim: 32,
            mode: ExecMode::Its,
        });
    }

    /// Drives the enumerator through a synthetic decision tree shaped like
    /// a machine run: every run asks for the same sequence of choice
    /// points. The enumerator must visit the full cross product once each.
    #[test]
    fn enumerator_covers_cross_product_exactly_once() {
        let ctx = LaunchContext {
            grid_dim: 1,
            block_dim: 32,
            mode: ExecMode::Its,
        };
        let mut e = EnumeratingScheduler::new(16);
        let mut seen = std::collections::HashSet::new();
        loop {
            e.begin_launch(&ctx);
            // Shape: 2 warp options, then (1 — non-branching), then 3 pcs.
            let a = e.choose_warp(2);
            let skip = e.choose_pc(1);
            assert_eq!(skip, 0);
            let b = e.choose_pc(3);
            assert!(seen.insert((a, b)), "schedule ({a},{b}) visited twice");
            if !e.advance() {
                break;
            }
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(e.schedules_completed(), 6);
        assert!(!e.truncated());
    }

    /// Runs can be ragged: a branch choice may change how many further
    /// choice points the run encounters.
    #[test]
    fn enumerator_handles_ragged_depths() {
        let ctx = LaunchContext {
            grid_dim: 1,
            block_dim: 32,
            mode: ExecMode::Its,
        };
        let mut e = EnumeratingScheduler::new(16);
        let mut leaves = Vec::new();
        loop {
            e.begin_launch(&ctx);
            // Choice 0 → two more binary choices; choice 1 → leaf.
            if e.choose_pc(2) == 0 {
                let x = e.choose_pc(2);
                let y = e.choose_pc(2);
                leaves.push((0, x, y));
            } else {
                leaves.push((1, 9, 9));
            }
            if !e.advance() {
                break;
            }
        }
        leaves.sort_unstable();
        assert_eq!(
            leaves,
            vec![(0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1), (1, 9, 9)]
        );
        assert!(!e.truncated());
    }

    #[test]
    fn enumerator_flags_truncation_beyond_budget() {
        let ctx = LaunchContext {
            grid_dim: 1,
            block_dim: 32,
            mode: ExecMode::Its,
        };
        let mut e = EnumeratingScheduler::new(2);
        let mut runs = 0;
        loop {
            e.begin_launch(&ctx);
            for _ in 0..4 {
                let _ = e.choose_pc(2);
            }
            runs += 1;
            if !e.advance() {
                break;
            }
        }
        // Only the first 2 choice points branch: 4 paths, not 16.
        assert_eq!(runs, 4);
        assert!(e.truncated());
    }
}
