//! Deterministic cycle accounting.
//!
//! The reproduction cannot measure wall-clock GPU time, so every experiment
//! in the paper's evaluation is regenerated from a first-order cycle model:
//! each dynamically executed instruction charges a cost, and charges are
//! split into two pools:
//!
//! - **parallel work** is divided by the launch's effective warp-level
//!   parallelism (a GPU hides it across SMs and warp schedulers);
//! - **serial work** is on the critical path no matter how wide the GPU is —
//!   contended metadata locks inside the detector, and Barracuda's
//!   ship-to-CPU channel, charge here. This is the mechanism behind the
//!   paper's headline 15× iGUARD-vs-Barracuda gap and behind Figure 12.
//!
//! Charges carry a [`CostCategory`] so that Figure 13's runtime breakdown
//! (Native / NVBit / Setup / Instrumentation / Detection / Misc) falls out
//! of the same accounting.

/// Cost buckets matching Figure 13 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostCategory {
    /// Application work: what the kernel costs with no tool attached.
    Native,
    /// Binary analysis / injection time of the instrumentation framework.
    Nvbit,
    /// Detector metadata allocation + initialization (prefault).
    Setup,
    /// Callback dispatch overhead added to each instrumented instruction.
    Instrumentation,
    /// Metadata lookup, race checks, and metadata-lock serialization.
    Detection,
    /// Everything else (kernel load, report draining, ...).
    Misc,
}

/// All categories, in Figure 13 order.
pub const COST_CATEGORIES: [CostCategory; 6] = [
    CostCategory::Native,
    CostCategory::Nvbit,
    CostCategory::Setup,
    CostCategory::Instrumentation,
    CostCategory::Detection,
    CostCategory::Misc,
];

const NUM_CATEGORIES: usize = 6;

fn index(c: CostCategory) -> usize {
    match c {
        CostCategory::Native => 0,
        CostCategory::Nvbit => 1,
        CostCategory::Setup => 2,
        CostCategory::Instrumentation => 3,
        CostCategory::Detection => 4,
        CostCategory::Misc => 5,
    }
}

/// Per-instruction cycle costs.
///
/// The only constant carried over from a *measurement in the paper* is the
/// 21× block-vs-device fence ratio (§1); everything else is an engineering
/// estimate at the right order of magnitude. Overheads in the evaluation are
/// ratios, so only relative magnitudes matter.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub alu: u64,
    pub branch: u64,
    pub ld_global: u64,
    pub st_global: u64,
    pub ld_shared: u64,
    pub st_shared: u64,
    pub atom_block: u64,
    pub atom_device: u64,
    /// `__threadfence_block()`.
    pub membar_block: u64,
    /// `__threadfence()`; 21× the block fence, the paper's measured ratio.
    pub membar_device: u64,
    pub bar_sync: u64,
    pub bar_warp: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            branch: 1,
            ld_global: 12,
            st_global: 12,
            ld_shared: 2,
            st_shared: 2,
            atom_block: 8,
            atom_device: 24,
            membar_block: 20,
            membar_device: 420,
            bar_sync: 30,
            bar_warp: 4,
        }
    }
}

/// Wall-clock self-profiling phases of the *reproduction itself* (not the
/// simulated GPU): where the host CPU time of one launch went.
///
/// The raw counters nest — `hook_ns` is contained in `total_ns`, and
/// `detect_ns`/`uvm_ns` are contained in `hook_ns` — so the exclusive
/// per-phase breakdown (simulate / instrument / detect / UVM) is derived
/// by the accessor methods. Counters are only advanced when profiling is
/// enabled ([`Clock::set_profiling`]); otherwise every field stays 0 and
/// the hot path pays a single branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Wall nanoseconds for the whole launch (interpreter + hooks).
    pub total_ns: u64,
    /// Wall nanoseconds inside instrumentation hook dispatch (includes
    /// the detector's work).
    pub hook_ns: u64,
    /// Wall nanoseconds inside the detector's per-access pipeline
    /// (includes UVM metadata touches).
    pub detect_ns: u64,
    /// Wall nanoseconds servicing UVM faults on metadata pages.
    pub uvm_ns: u64,
}

impl PhaseTimes {
    /// Pure interpretation work: total minus everything hook-side.
    #[must_use]
    pub fn simulate_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.hook_ns)
    }

    /// Framework dispatch overhead: hook window minus detector work.
    #[must_use]
    pub fn instrument_ns(&self) -> u64 {
        self.hook_ns.saturating_sub(self.detect_ns)
    }

    /// Detection work excluding UVM fault servicing.
    #[must_use]
    pub fn detect_exclusive_ns(&self) -> u64 {
        self.detect_ns.saturating_sub(self.uvm_ns)
    }

    /// Adds another measurement (used to aggregate across launches).
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.total_ns += other.total_ns;
        self.hook_ns += other.hook_ns;
        self.detect_ns += other.detect_ns;
        self.uvm_ns += other.uvm_ns;
    }

    /// Per-field difference against an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            total_ns: self.total_ns - earlier.total_ns,
            hook_ns: self.hook_ns - earlier.hook_ns,
            detect_ns: self.detect_ns - earlier.detect_ns,
            uvm_ns: self.uvm_ns - earlier.uvm_ns,
        }
    }
}

/// Which [`PhaseTimes`] counter a measured wall-clock span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The whole launch (interpreter loop).
    Total,
    /// Instrumentation hook dispatch (tool callbacks included).
    Hook,
    /// The detector's per-access pipeline.
    Detect,
    /// UVM fault servicing on metadata pages.
    Uvm,
}

/// Accumulates parallel and serial cycle charges per category.
#[derive(Debug, Clone)]
pub struct Clock {
    parallel: [u64; NUM_CATEGORIES],
    serial: [u64; NUM_CATEGORIES],
    /// Warp-level parallelism the parallel pool is divided by; set per
    /// launch from grid size and SM count.
    eff_parallelism: f64,
    /// Wall-clock self-profiling counters (all 0 unless profiling is on).
    phases: PhaseTimes,
    /// Whether wall-clock phase profiling is enabled.
    profiling: bool,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    /// A clock with parallelism 1 (set properly at each launch).
    #[must_use]
    pub fn new() -> Self {
        Clock {
            parallel: [0; NUM_CATEGORIES],
            serial: [0; NUM_CATEGORIES],
            eff_parallelism: 1.0,
            phases: PhaseTimes::default(),
            profiling: false,
        }
    }

    /// Enables or disables wall-clock phase profiling. Off by default:
    /// the hot path then performs no `Instant` reads at all.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Whether wall-clock phase profiling is enabled.
    #[must_use]
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Accumulated wall-clock phase counters.
    #[must_use]
    pub fn phases(&self) -> PhaseTimes {
        self.phases
    }

    /// Adds `ns` wall nanoseconds to `phase` (profiled layers call this
    /// only after checking [`Clock::profiling`]).
    pub fn add_phase_ns(&mut self, phase: Phase, ns: u64) {
        match phase {
            Phase::Total => self.phases.total_ns += ns,
            Phase::Hook => self.phases.hook_ns += ns,
            Phase::Detect => self.phases.detect_ns += ns,
            Phase::Uvm => self.phases.uvm_ns += ns,
        }
    }

    /// Sets the effective parallelism used to amortize parallel charges.
    pub fn set_parallelism(&mut self, p: f64) {
        assert!(p >= 1.0, "parallelism must be >= 1");
        self.eff_parallelism = p;
    }

    /// Current effective parallelism.
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        self.eff_parallelism
    }

    /// Charges `cycles` of parallelizable work.
    pub fn charge(&mut self, cat: CostCategory, cycles: u64) {
        self.parallel[index(cat)] += cycles;
    }

    /// Charges `cycles` of critical-path (unparallelizable) work.
    pub fn charge_serial(&mut self, cat: CostCategory, cycles: u64) {
        self.serial[index(cat)] += cycles;
    }

    /// Simulated time contributed by one category.
    #[must_use]
    pub fn time(&self, cat: CostCategory) -> f64 {
        let i = index(cat);
        self.parallel[i] as f64 / self.eff_parallelism + self.serial[i] as f64
    }

    /// Total simulated time across all categories.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        COST_CATEGORIES.iter().map(|&c| self.time(c)).sum()
    }

    /// Raw (parallel, serial) cycles for one category, for diagnostics.
    #[must_use]
    pub fn raw(&self, cat: CostCategory) -> (u64, u64) {
        let i = index(cat);
        (self.parallel[i], self.serial[i])
    }

    /// Clears all charges and phase counters, keeping the parallelism and
    /// profiling settings.
    pub fn reset(&mut self) {
        self.parallel = [0; NUM_CATEGORIES];
        self.serial = [0; NUM_CATEGORIES];
        self.phases = PhaseTimes::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fence_ratio_is_21x() {
        let c = CostModel::default();
        assert_eq!(c.membar_device / c.membar_block, 21);
    }

    #[test]
    fn parallel_charges_are_amortized() {
        let mut clk = Clock::new();
        clk.set_parallelism(10.0);
        clk.charge(CostCategory::Native, 100);
        assert!((clk.time(CostCategory::Native) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn serial_charges_are_not_amortized() {
        let mut clk = Clock::new();
        clk.set_parallelism(1000.0);
        clk.charge_serial(CostCategory::Detection, 100);
        assert!((clk.time(CostCategory::Detection) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn total_sums_categories() {
        let mut clk = Clock::new();
        clk.charge(CostCategory::Native, 50);
        clk.charge_serial(CostCategory::Misc, 7);
        assert!((clk.total_time() - 57.0).abs() < 1e-9);
    }

    #[test]
    fn reset_keeps_parallelism() {
        let mut clk = Clock::new();
        clk.set_parallelism(4.0);
        clk.charge(CostCategory::Native, 8);
        clk.reset();
        assert_eq!(clk.total_time(), 0.0);
        assert_eq!(clk.parallelism(), 4.0);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_rejected() {
        Clock::new().set_parallelism(0.5);
    }
}
