//! An ergonomic assembler for the simulated ISA.
//!
//! [`KernelBuilder`] hands out virtual registers, resolves symbolic labels,
//! and records optional source annotations ("debug info") that the detector
//! quotes in race reports. Every workload in `crates/workloads` is written
//! with this builder.
//!
//! Two instruction styles are provided:
//! - *value style*: `let x = b.add(a, 1);` allocates a fresh destination
//!   register — convenient for straight-line expressions;
//! - *mutate style*: `b.assign_add(x, x, 1);` writes an existing register —
//!   required for loop counters and accumulators.

use crate::ir::{AluOp, AtomOp, CmpOp, Instr, Operand, Reg, Scope, Space, Special, NUM_REGS};
use crate::kernel::Kernel;

/// A forward-referencable branch target.
///
/// Create one with [`KernelBuilder::fwd_label`], branch to it, then pin it
/// with [`KernelBuilder::bind`]. Backward targets can be taken directly from
/// [`KernelBuilder::here`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Incrementally builds a [`Kernel`].
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    code: Vec<Instr>,
    lines: Vec<Option<String>>,
    shared_words: usize,
    next_reg: u8,
    labels: Vec<Option<usize>>,
    pending_line: Option<String>,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            code: Vec::new(),
            lines: Vec::new(),
            shared_words: 0,
            next_reg: 0,
            labels: Vec::new(),
            pending_line: None,
        }
    }

    /// Declares `words` of `__shared__` scratchpad per block.
    pub fn shared(&mut self, words: usize) -> &mut Self {
        self.shared_words = words;
        self
    }

    /// Allocates a fresh virtual register.
    ///
    /// # Panics
    /// Panics if the kernel exceeds [`NUM_REGS`] registers; like exceeding
    /// the register file on real hardware, this is a build-time error.
    pub fn reg(&mut self) -> Reg {
        assert!(
            (self.next_reg as usize) < NUM_REGS,
            "kernel `{}` exceeds {NUM_REGS} registers",
            self.name
        );
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Attaches a source annotation to the *next* emitted instruction.
    pub fn loc(&mut self, text: impl Into<String>) -> &mut Self {
        self.pending_line = Some(text.into());
        self
    }

    fn emit(&mut self, i: Instr) {
        self.code.push(i);
        self.lines.push(self.pending_line.take());
    }

    // ---- labels & control flow -------------------------------------------

    /// Declares a label to be bound later (forward branch target).
    pub fn fwd_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(
            slot.is_none(),
            "label bound twice in kernel `{}`",
            self.name
        );
        *slot = Some(self.code.len());
    }

    /// Creates a label bound to the current position (backward target).
    pub fn here(&mut self) -> Label {
        let l = self.fwd_label();
        self.bind(l);
        l
    }

    /// Unconditional branch.
    pub fn bra(&mut self, target: Label) {
        // Encode the label id; patched to a pc in `build`.
        self.emit(Instr::Bra { target: target.0 });
    }

    /// Branch if `cond != 0`.
    pub fn bra_if(&mut self, cond: Reg, target: Label) {
        self.emit(Instr::BraIf {
            cond,
            target: target.0,
        });
    }

    /// Branch if `cond == 0`.
    pub fn bra_ifnot(&mut self, cond: Reg, target: Label) {
        self.emit(Instr::BraIfNot {
            cond,
            target: target.0,
        });
    }

    // ---- moves & specials -------------------------------------------------

    /// `rd = src`.
    pub fn mov(&mut self, rd: Reg, src: impl Into<Operand>) {
        self.emit(Instr::Mov {
            rd,
            src: src.into(),
        });
    }

    /// Fresh register holding an immediate.
    pub fn imm(&mut self, v: u32) -> Reg {
        let rd = self.reg();
        self.mov(rd, v);
        rd
    }

    /// Fresh register holding a special value (tid, blockId, ...).
    pub fn special(&mut self, sp: Special) -> Reg {
        let rd = self.reg();
        self.emit(Instr::Read { rd, sp });
        rd
    }

    /// Fresh register holding launch parameter `idx`.
    pub fn param(&mut self, idx: u8) -> Reg {
        let rd = self.reg();
        self.emit(Instr::Param { rd, idx });
        rd
    }

    // ---- ALU: mutate style --------------------------------------------------

    /// `rd = ra <op> b`.
    pub fn assign(&mut self, op: AluOp, rd: Reg, ra: Reg, b: impl Into<Operand>) {
        self.emit(Instr::Alu {
            op,
            rd,
            ra,
            b: b.into(),
        });
    }

    /// `rd = ra + b`.
    pub fn assign_add(&mut self, rd: Reg, ra: Reg, b: impl Into<Operand>) {
        self.assign(AluOp::Add, rd, ra, b);
    }

    /// `rd = ra - b`.
    pub fn assign_sub(&mut self, rd: Reg, ra: Reg, b: impl Into<Operand>) {
        self.assign(AluOp::Sub, rd, ra, b);
    }

    /// `rd = (ra <op> b) ? 1 : 0`.
    pub fn assign_cmp(&mut self, op: CmpOp, rd: Reg, ra: Reg, b: impl Into<Operand>) {
        self.emit(Instr::Setp {
            op,
            rd,
            ra,
            b: b.into(),
        });
    }

    // ---- ALU: value style ---------------------------------------------------

    fn value(&mut self, op: AluOp, ra: Reg, b: impl Into<Operand>) -> Reg {
        let rd = self.reg();
        self.assign(op, rd, ra, b);
        rd
    }

    /// Fresh register = `a + b`.
    pub fn add(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Add, a, b)
    }

    /// Fresh register = `a - b`.
    pub fn sub(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Sub, a, b)
    }

    /// Fresh register = `a * b`.
    pub fn mul(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Mul, a, b)
    }

    /// Fresh register = `a / b` (unsigned).
    pub fn div(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Div, a, b)
    }

    /// Fresh register = `a % b` (unsigned).
    pub fn rem(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Rem, a, b)
    }

    /// Fresh register = `min(a, b)` (unsigned).
    pub fn min(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Min, a, b)
    }

    /// Fresh register = `max(a, b)` (unsigned).
    pub fn max(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Max, a, b)
    }

    /// Fresh register = `a & b`.
    pub fn and(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::And, a, b)
    }

    /// Fresh register = `a | b`.
    pub fn or(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Or, a, b)
    }

    /// Fresh register = `a ^ b`.
    pub fn xor(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Xor, a, b)
    }

    /// Fresh register = `a << b`.
    pub fn shl(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Shl, a, b)
    }

    /// Fresh register = `a >> b` (logical).
    pub fn shr(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.value(AluOp::Shr, a, b)
    }

    fn cmp(&mut self, op: CmpOp, a: Reg, b: impl Into<Operand>) -> Reg {
        let rd = self.reg();
        self.assign_cmp(op, rd, a, b);
        rd
    }

    /// Fresh register = `a == b`.
    pub fn eq(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.cmp(CmpOp::Eq, a, b)
    }

    /// Fresh register = `a != b`.
    pub fn ne(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.cmp(CmpOp::Ne, a, b)
    }

    /// Fresh register = `a < b` (unsigned).
    pub fn lt(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.cmp(CmpOp::Lt, a, b)
    }

    /// Fresh register = `a <= b` (unsigned).
    pub fn le(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.cmp(CmpOp::Le, a, b)
    }

    /// Fresh register = `a > b` (unsigned).
    pub fn gt(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.cmp(CmpOp::Gt, a, b)
    }

    /// Fresh register = `a >= b` (unsigned).
    pub fn ge(&mut self, a: Reg, b: impl Into<Operand>) -> Reg {
        self.cmp(CmpOp::Ge, a, b)
    }

    /// Fresh register = `cond ? a : b`.
    pub fn sel(&mut self, cond: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let rd = self.reg();
        self.emit(Instr::Sel {
            rd,
            cond,
            a: a.into(),
            b: b.into(),
        });
        rd
    }

    // ---- memory -------------------------------------------------------------

    /// Fresh register = global `[addr + off]`.
    pub fn ld(&mut self, addr: Reg, off: i32) -> Reg {
        let rd = self.reg();
        self.ld_at(rd, addr, off);
        rd
    }

    /// `rd = global [addr + off]`.
    pub fn ld_at(&mut self, rd: Reg, addr: Reg, off: i32) {
        self.emit(Instr::Ld {
            rd,
            addr,
            offset: off * 4,
            space: Space::Global,
            volatile: false,
        });
    }

    /// Fresh register = volatile global `[addr + off]` (bypasses L1).
    pub fn ld_volatile(&mut self, addr: Reg, off: i32) -> Reg {
        let rd = self.reg();
        self.emit(Instr::Ld {
            rd,
            addr,
            offset: off * 4,
            space: Space::Global,
            volatile: true,
        });
        rd
    }

    /// Global `[addr + off] = val`.
    pub fn st(&mut self, addr: Reg, off: i32, val: Reg) {
        self.emit(Instr::St {
            addr,
            offset: off * 4,
            val,
            space: Space::Global,
            volatile: false,
        });
    }

    /// Volatile global `[addr + off] = val` (write-through to L2).
    pub fn st_volatile(&mut self, addr: Reg, off: i32, val: Reg) {
        self.emit(Instr::St {
            addr,
            offset: off * 4,
            val,
            space: Space::Global,
            volatile: true,
        });
    }

    /// Fresh register = shared `[addr + off]`.
    pub fn ld_shared(&mut self, addr: Reg, off: i32) -> Reg {
        let rd = self.reg();
        self.emit(Instr::Ld {
            rd,
            addr,
            offset: off * 4,
            space: Space::Shared,
            volatile: false,
        });
        rd
    }

    /// Shared `[addr + off] = val`.
    pub fn st_shared(&mut self, addr: Reg, off: i32, val: Reg) {
        self.emit(Instr::St {
            addr,
            offset: off * 4,
            val,
            space: Space::Shared,
            volatile: false,
        });
    }

    /// Fresh register = old value of scoped atomic RMW at global `[addr + off]`.
    pub fn atom(&mut self, op: AtomOp, scope: Scope, addr: Reg, off: i32, src: Reg) -> Reg {
        let rd = self.reg();
        self.emit(Instr::Atom {
            op,
            scope,
            rd,
            addr,
            offset: off * 4,
            src,
            cmp: src,
        });
        rd
    }

    /// `atomicAdd[_block]`: fresh register = old value.
    pub fn atomic_add(&mut self, scope: Scope, addr: Reg, off: i32, src: Reg) -> Reg {
        self.atom(AtomOp::Add, scope, addr, off, src)
    }

    /// `atomicExch[_block]`: fresh register = old value.
    pub fn atomic_exch(&mut self, scope: Scope, addr: Reg, off: i32, src: Reg) -> Reg {
        self.atom(AtomOp::Exch, scope, addr, off, src)
    }

    /// `atomicCAS[_block]`: fresh register = old value; stores `src` iff
    /// old == `cmp`.
    pub fn atomic_cas(&mut self, scope: Scope, addr: Reg, off: i32, cmp: Reg, src: Reg) -> Reg {
        let rd = self.reg();
        self.emit(Instr::Atom {
            op: AtomOp::Cas,
            scope,
            rd,
            addr,
            offset: off * 4,
            src,
            cmp,
        });
        rd
    }

    // ---- synchronization -----------------------------------------------------

    /// `__threadfence_block()` / `__threadfence()` by scope.
    pub fn membar(&mut self, scope: Scope) {
        self.emit(Instr::Membar { scope });
    }

    /// `__syncthreads()`.
    pub fn syncthreads(&mut self) {
        self.emit(Instr::BarSync);
    }

    /// `__syncwarp()`.
    pub fn syncwarp(&mut self) {
        self.emit(Instr::BarWarp);
    }

    /// Thread exit.
    pub fn exit(&mut self) {
        self.emit(Instr::Exit);
    }

    /// Spin-lock acquire per the CUDA guidebook idiom the paper keys lock
    /// inference on: `while(atomicCAS(lock,0,1) != 0); threadfence(scope)`.
    pub fn lock(&mut self, scope: Scope, lock_addr: Reg, off: i32) {
        let zero = self.imm(0);
        let one = self.imm(1);
        let spin = self.here();
        self.loc("lock: atomicCAS spin");
        let old = self.atomic_cas(scope, lock_addr, off, zero, one);
        self.bra_if(old, spin);
        self.loc("lock: acquire fence");
        self.membar(scope);
    }

    /// Spin-lock release idiom: `threadfence(scope); atomicExch(lock, 0)`.
    pub fn unlock(&mut self, scope: Scope, lock_addr: Reg, off: i32) {
        self.loc("unlock: release fence");
        self.membar(scope);
        let zero = self.imm(0);
        self.loc("unlock: atomicExch");
        let _ = self.atomic_exch(scope, lock_addr, off, zero);
    }

    /// Finalizes the kernel, resolving all labels.
    ///
    /// # Panics
    /// Panics if any referenced label was never bound, or if the code does
    /// not end in a reachable `Exit`.
    #[must_use]
    pub fn build(mut self) -> Kernel {
        // Ensure every thread terminates even if the author forgot.
        if !matches!(self.code.last(), Some(Instr::Exit)) {
            self.emit(Instr::Exit);
        }
        let resolve = |id: usize, labels: &[Option<usize>], name: &str| -> usize {
            labels[id].unwrap_or_else(|| panic!("kernel `{name}`: unbound label {id}"))
        };
        for instr in &mut self.code {
            match instr {
                Instr::Bra { target } => *target = resolve(*target, &self.labels, &self.name),
                Instr::BraIf { target, .. } => {
                    *target = resolve(*target, &self.labels, &self.name);
                }
                Instr::BraIfNot { target, .. } => {
                    *target = resolve(*target, &self.labels, &self.name);
                }
                _ => {}
            }
        }
        let mut k = Kernel::new(self.name, self.code, self.shared_words);
        k.lines = self.lines;
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_kernel() {
        let mut b = KernelBuilder::new("k");
        let t = b.special(Special::Tid);
        let x = b.add(t, 1);
        let base = b.param(0);
        let a = b.add(base, t);
        b.st(a, 0, x);
        b.exit();
        let k = b.build();
        assert_eq!(&*k.name, "k");
        assert!(k.code.len() >= 5);
    }

    #[test]
    fn forward_label_resolves() {
        let mut b = KernelBuilder::new("fwd");
        let t = b.special(Special::Tid);
        let skip = b.fwd_label();
        b.bra_if(t, skip);
        let _ = b.imm(42);
        b.bind(skip);
        b.exit();
        let k = b.build();
        let target = k
            .code
            .iter()
            .find_map(|i| match i {
                Instr::BraIf { target, .. } => Some(*target),
                _ => None,
            })
            .expect("has branch");
        // The branch must land on the Exit, past the Mov.
        assert!(matches!(k.code[target], Instr::Exit));
    }

    #[test]
    fn backward_label_makes_loop() {
        let mut b = KernelBuilder::new("loop");
        let i = b.imm(0);
        let top = b.here();
        b.assign_add(i, i, 1);
        let done = b.ge(i, 3u32);
        b.bra_ifnot(done, top);
        b.exit();
        let k = b.build();
        assert!(k.code.iter().any(|i| matches!(i, Instr::BraIfNot { .. })));
    }

    #[test]
    fn implicit_exit_appended() {
        let mut b = KernelBuilder::new("noexit");
        let _ = b.imm(1);
        let k = b.build();
        assert!(matches!(k.code.last(), Some(Instr::Exit)));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = KernelBuilder::new("bad");
        let l = b.fwd_label();
        b.bra(l);
        let _ = b.build();
    }

    #[test]
    fn loc_annotates_next_instruction() {
        let mut b = KernelBuilder::new("dbg");
        b.loc("store result");
        let r = b.imm(7);
        let base = b.param(0);
        b.loc("the store");
        b.st(base, 0, r);
        let k = b.build();
        assert_eq!(k.line(0), Some("store result"));
        let st_pc = k
            .code
            .iter()
            .position(|i| matches!(i, Instr::St { .. }))
            .expect("store present");
        assert_eq!(k.line(st_pc), Some("the store"));
    }

    #[test]
    fn lock_unlock_emit_guidebook_idiom() {
        let mut b = KernelBuilder::new("lk");
        let l = b.param(0);
        b.lock(Scope::Device, l, 0);
        b.unlock(Scope::Device, l, 0);
        let k = b.build();
        let has_cas = k.code.iter().any(|i| {
            matches!(
                i,
                Instr::Atom {
                    op: AtomOp::Cas,
                    ..
                }
            )
        });
        let has_exch = k.code.iter().any(|i| {
            matches!(
                i,
                Instr::Atom {
                    op: AtomOp::Exch,
                    ..
                }
            )
        });
        let fences = k
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Membar { .. }))
            .count();
        assert!(has_cas && has_exch);
        assert_eq!(fences, 2);
    }
}
