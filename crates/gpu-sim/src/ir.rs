//! The SASS-like instruction set executed by the simulator.
//!
//! Workload kernels are written against this IR (usually through
//! [`crate::asm::KernelBuilder`]). The instrumentation layer (`nvbit-sim`)
//! observes executed instructions at this level, mirroring how NVBit observes
//! SASS on real hardware: the IR is the "binary" — workloads never need to be
//! recompiled for a detector to attach to them.
//!
//! The machine is a per-thread 32-bit register machine. All memory operations
//! are word (4-byte) sized and word aligned, matching iGUARD's 4-byte
//! metadata granularity.

/// A per-thread general-purpose 32-bit register.
///
/// Each thread owns [`NUM_REGS`] registers, `r0..r{NUM_REGS-1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// Number of general-purpose registers per thread (NVIDIA SASS allows up
/// to 255 per thread; the builder's SSA-ish style leans on this).
pub const NUM_REGS: usize = 255;

/// Number of threads in a warp (CUDA fixes this at 32 on all shipped GPUs).
pub const WARP_SIZE: usize = 32;

/// Either a register or an immediate; the right-hand operand of most ALU ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Read the value of a register.
    Reg(Reg),
    /// A 32-bit immediate.
    Imm(u32),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as u32)
    }
}

/// Built-in values a thread can query about its own position in the grid,
/// mirroring CUDA's special registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// Thread index within its block (`threadIdx.x`).
    Tid,
    /// Block index within the grid (`blockIdx.x`).
    BlockId,
    /// Threads per block (`blockDim.x`).
    BlockDim,
    /// Blocks in the grid (`gridDim.x`).
    GridDim,
    /// Lane index within the warp (`%laneid`).
    LaneId,
    /// Warp index within the block.
    WarpInBlock,
    /// Globally unique warp index (`blockId * warps_per_block + warpInBlock`).
    GlobalWarpId,
    /// Globally unique thread index (`blockId * blockDim + tid`).
    GlobalTid,
    /// Active mask of the currently executing warp split (`__activemask()`).
    ActiveMask,
}

/// Scope qualifier for atomics and fences (CUDA `_block` / default device).
///
/// The paper ignores `system` scope (single-GPU focus, §2.1); so do we.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// Visible only within the issuing threadblock (`cta` scope).
    Block,
    /// Visible to every thread on the GPU (`gpu` scope, the CUDA default).
    Device,
}

/// Memory space of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// GPU global memory (device HBM/GDDR); the space iGUARD watches.
    Global,
    /// Per-block scratchpad (`__shared__`); out of scope for the detector,
    /// exactly as the paper scopes iGUARD to global memory races.
    Shared,
}

/// Read-modify-write operation of an atomic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomOp {
    /// `atomicAdd`: returns old, stores `old + src`.
    Add,
    /// `atomicExch`: returns old, stores `src`.
    Exch,
    /// `atomicCAS`: returns old, stores `src` iff `old == cmp`.
    Cas,
    /// `atomicMin` on unsigned values.
    Min,
    /// `atomicMax` on unsigned values.
    Max,
    /// `atomicOr`.
    Or,
    /// `atomicAnd`.
    And,
}

/// Comparison predicate for [`Instr::Setp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
    /// Signed less-than.
    SLt,
    /// Signed greater-than.
    SGt,
}

/// Binary ALU operation for [`Instr::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Unsigned division; divide-by-zero is a simulation fault.
    Div,
    /// Unsigned remainder; divide-by-zero is a simulation fault.
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// One instruction of the simulated ISA.
///
/// Branch targets are absolute instruction indices within the kernel; the
/// [`crate::asm::KernelBuilder`] resolves symbolic labels to indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd = op` (register move or immediate load).
    Mov { rd: Reg, src: Operand },
    /// `rd = special` (query thread/grid geometry).
    Read { rd: Reg, sp: Special },
    /// `rd = param[idx]` (kernel launch parameter).
    Param { rd: Reg, idx: u8 },
    /// `rd = ra <op> b`.
    Alu {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        b: Operand,
    },
    /// `rd = (ra <cmp> b) ? 1 : 0`.
    Setp {
        op: CmpOp,
        rd: Reg,
        ra: Reg,
        b: Operand,
    },
    /// `rd = cond ? a : b` (select, used to avoid tiny divergent hammocks).
    Sel {
        rd: Reg,
        cond: Reg,
        a: Operand,
        b: Operand,
    },
    /// Unconditional branch to instruction `target`.
    Bra { target: usize },
    /// Branch to `target` iff `cond != 0`.
    BraIf { cond: Reg, target: usize },
    /// Branch to `target` iff `cond == 0`.
    BraIfNot { cond: Reg, target: usize },
    /// `rd = [addr + offset]`; word load.
    ///
    /// `volatile` bypasses the (simulated) non-coherent L1, like CUDA
    /// `volatile` — required for spin-wait loops on flags.
    Ld {
        rd: Reg,
        addr: Reg,
        offset: i32,
        space: Space,
        volatile: bool,
    },
    /// `[addr + offset] = val`; word store.
    St {
        addr: Reg,
        offset: i32,
        val: Reg,
        space: Space,
        volatile: bool,
    },
    /// Scoped atomic on global memory: `rd = RMW(addr + offset)`.
    ///
    /// For [`AtomOp::Cas`], `cmp` holds the compare value and `src` the
    /// swap value; other ops ignore `cmp`.
    Atom {
        op: AtomOp,
        scope: Scope,
        rd: Reg,
        addr: Reg,
        offset: i32,
        src: Reg,
        cmp: Reg,
    },
    /// Scoped memory fence (`__threadfence_block` / `__threadfence`).
    Membar { scope: Scope },
    /// Threadblock barrier (`__syncthreads`). Includes block-fence semantics.
    BarSync,
    /// Warp barrier (`__syncwarp`). Synchronizes non-exited warp threads.
    BarWarp,
    /// Thread exits the kernel.
    Exit,
    /// No operation (padding; also used by instrumentation tests).
    Nop,
}

impl Instr {
    /// Whether this instruction accesses global memory (the class of
    /// instruction iGUARD instruments for metadata update + race checks).
    #[must_use]
    pub fn is_global_access(&self) -> bool {
        match self {
            Instr::Ld { space, .. } | Instr::St { space, .. } => *space == Space::Global,
            Instr::Atom { .. } => true,
            _ => false,
        }
    }

    /// Whether this instruction is a synchronization operation that iGUARD
    /// instruments for synchronization-metadata update.
    #[must_use]
    pub fn is_sync(&self) -> bool {
        matches!(self, Instr::Membar { .. } | Instr::BarSync | Instr::BarWarp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_access_classification() {
        let ld_g = Instr::Ld {
            rd: Reg(0),
            addr: Reg(1),
            offset: 0,
            space: Space::Global,
            volatile: false,
        };
        let ld_s = Instr::Ld {
            rd: Reg(0),
            addr: Reg(1),
            offset: 0,
            space: Space::Shared,
            volatile: false,
        };
        let st_g = Instr::St {
            addr: Reg(1),
            offset: 0,
            val: Reg(0),
            space: Space::Global,
            volatile: false,
        };
        let atom = Instr::Atom {
            op: AtomOp::Add,
            scope: Scope::Block,
            rd: Reg(0),
            addr: Reg(1),
            offset: 0,
            src: Reg(2),
            cmp: Reg(3),
        };
        assert!(ld_g.is_global_access());
        assert!(!ld_s.is_global_access());
        assert!(st_g.is_global_access());
        assert!(atom.is_global_access());
        assert!(!Instr::Nop.is_global_access());
    }

    #[test]
    fn sync_classification() {
        assert!(Instr::BarSync.is_sync());
        assert!(Instr::BarWarp.is_sync());
        assert!(Instr::Membar {
            scope: Scope::Device
        }
        .is_sync());
        assert!(!Instr::Exit.is_sync());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)), Operand::Reg(Reg(3)));
        assert_eq!(Operand::from(7u32), Operand::Imm(7));
        assert_eq!(Operand::from(-1i32), Operand::Imm(u32::MAX));
    }

    #[test]
    fn scope_ordering_block_is_narrower() {
        assert!(Scope::Block < Scope::Device);
    }
}
