//! # gpu-sim: the GPU substrate for the iGUARD reproduction
//!
//! A functional, cycle-accounting simulator of the CUDA execution model:
//! grids, threadblocks, 32-lane warps, lockstep and Independent Thread
//! Scheduling (ITS), scoped atomics and fences with *real scoped
//! visibility*, block and warp barriers, shared scratchpad, and a
//! per-instruction cost model.
//!
//! The original iGUARD (SOSP '21) runs on physical NVIDIA hardware and
//! attaches to SASS via NVBit. Neither exists here, so this crate is the
//! substitute substrate: kernels are written in a SASS-like IR (see
//! [`asm::KernelBuilder`]) and instrumentation tools attach through the
//! [`hook::Hook`] trait, observing exactly what an NVBit tool observes —
//! every dynamic memory access and synchronization operation, with operands
//! and active masks, without recompiling the workload.
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::prelude::*;
//!
//! // __global__ void scale(int* a) { a[tid] *= 3; }
//! let mut b = KernelBuilder::new("scale");
//! let tid = b.special(Special::GlobalTid);
//! let base = b.param(0);
//! let off = b.mul(tid, 4u32);
//! let addr = b.add(base, off);
//! let v = b.ld(addr, 0);
//! let v3 = b.mul(v, 3u32);
//! b.st(addr, 0, v3);
//! let kernel = b.build();
//!
//! let mut gpu = Gpu::new(GpuConfig::default());
//! let buf = gpu.alloc(64).unwrap();
//! gpu.write_slice(buf, &[1, 2, 3, 4]);
//! gpu.launch(&kernel, 1, 4, &[buf], &mut NullHook).unwrap();
//! assert_eq!(gpu.read_slice(buf, 4), vec![3, 6, 9, 12]);
//! ```

#![forbid(unsafe_code)]

pub mod asm;
pub mod disasm;
pub mod error;
pub mod hook;
pub mod ir;
pub mod kernel;
pub mod machine;
pub mod mem;
pub mod overlap;
pub mod sched;
pub mod timing;

/// Convenient glob import for workload and tool authors.
pub mod prelude {
    pub use crate::asm::{KernelBuilder, Label};
    pub use crate::error::SimError;
    pub use crate::hook::{
        AccessKind, ExecMode, Hook, LaneAccess, LaunchInfo, MemAccess, NullHook, SyncEvent,
    };
    pub use crate::ir::{
        AluOp, AtomOp, CmpOp, Instr, Operand, Reg, Scope, Space, Special, WARP_SIZE,
    };
    pub use crate::kernel::Kernel;
    pub use crate::machine::{Gpu, GpuConfig, LaunchStats};
    pub use crate::sched::{
        Decision, EnumeratingScheduler, LaunchContext, RandomScheduler, RecordingScheduler,
        ReplayScheduler, ScheduleTrace, Scheduler,
    };
    pub use crate::timing::{Clock, CostCategory, CostModel, COST_CATEGORIES};
}
