//! Copy/compute overlap model: H2D → kernel → D2H pipelining with
//! busy-vs-idle accounting per engine.
//!
//! Real GPUs expose three engines that proceed concurrently once work is
//! enqueued on separate streams: the host→device copy engine, the
//! compute engine, and the device→host copy engine. The simulator's
//! main clock charges every launch serially; this module layers a
//! *deterministic* overlap schedule on top of the recorded launch
//! timeline so the harness can report how much simulated latency a
//! pipelined sim→detect stage recovers — without perturbing a single
//! cycle of the golden-pinned serial accounting (recording is pure
//! bookkeeping: no clock charges, no RNG draws).
//!
//! The machine records a [`Segment`] per successful launch: host words
//! written since the previous launch (its upload), the launch's
//! simulated cycles (its compute), and host/detector words read back
//! after it (its download — for iGUARD, the race-report records drained
//! while the *next* kernel runs). [`schedule`] then plays the classic
//! three-stage pipeline recurrence over the segment list:
//!
//! ```text
//! h2d_done[i]    = h2d_done[i-1]          + h2d[i]
//! kernel_done[i] = max(kernel_done[i-1], h2d_done[i])    + kernel[i]
//! d2h_done[i]    = max(d2h_done[i-1],   kernel_done[i])  + d2h[i]
//! ```
//!
//! The serial baseline is the plain sum; the difference is the overlap
//! win. Per engine, `busy` is the sum of its transfer/compute durations
//! and `idle = makespan - busy`, so `busy + idle == makespan` holds
//! exactly for every engine — the invariant `ci.sh --perf` checks.

use std::cell::Cell;
use std::sync::Arc;

/// Transfer-cost parameters (cycles). A transfer of `w > 0` words costs
/// `fixed_per_transfer + w * cycles_per_word`; zero-word transfers are
/// free (no engine work is enqueued at all).
#[derive(Debug, Clone, Copy)]
pub struct CopyModel {
    /// Host→device cycles per 32-bit word.
    pub h2d_cycles_per_word: u64,
    /// Device→host cycles per 32-bit word.
    pub d2h_cycles_per_word: u64,
    /// Fixed launch cost per non-empty transfer (driver + DMA setup).
    pub fixed_per_transfer: u64,
}

impl Default for CopyModel {
    fn default() -> Self {
        CopyModel {
            h2d_cycles_per_word: 2,
            d2h_cycles_per_word: 2,
            fixed_per_transfer: 600,
        }
    }
}

impl CopyModel {
    fn h2d_cost(&self, words: u64) -> u64 {
        if words == 0 {
            0
        } else {
            self.fixed_per_transfer + words * self.h2d_cycles_per_word
        }
    }

    fn d2h_cost(&self, words: u64) -> u64 {
        if words == 0 {
            0
        } else {
            self.fixed_per_transfer + words * self.d2h_cycles_per_word
        }
    }
}

/// One pipeline unit: a kernel launch plus the host traffic around it.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Kernel name (interned).
    pub name: Arc<str>,
    /// Words uploaded before this launch (host writes since the previous
    /// launch completed).
    pub h2d_words: u64,
    /// Simulated cycles the launch itself took (all categories).
    pub kernel_cycles: u64,
    /// Words read back after this launch (host reads and detector
    /// records attributed to it).
    pub d2h_words: u64,
}

/// Per-engine occupancy over the overlapped schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineLane {
    /// Cycles the engine spent transferring/computing.
    pub busy: u64,
    /// Cycles the engine sat idle before the makespan elapsed.
    pub idle: u64,
}

impl EngineLane {
    /// `busy / (busy + idle)` in percent (100 when the schedule is
    /// empty: an engine with no work and no waiting is trivially fully
    /// utilized).
    #[must_use]
    pub fn utilization_pct(&self) -> f64 {
        let total = self.busy + self.idle;
        if total == 0 {
            100.0
        } else {
            100.0 * self.busy as f64 / total as f64
        }
    }
}

/// Engine indices into [`OverlapReport::engines`].
pub const ENGINE_H2D: usize = 0;
/// Compute engine index.
pub const ENGINE_KERNEL: usize = 1;
/// Device→host engine index.
pub const ENGINE_D2H: usize = 2;

/// Engine display names, in [`OverlapReport::engines`] order.
pub const ENGINE_NAMES: [&str; 3] = ["h2d", "kernel", "d2h"];

/// The deterministic overlap schedule of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapReport {
    /// Cycles if every transfer and kernel ran back-to-back (the
    /// serial-driver baseline).
    pub serial_cycles: u64,
    /// Makespan of the pipelined schedule (always ≤ serial).
    pub overlapped_cycles: u64,
    /// Busy/idle split per engine: `[h2d, kernel, d2h]`. For each,
    /// `busy + idle == overlapped_cycles`.
    pub engines: [EngineLane; 3],
    /// Number of pipeline segments (successful launches).
    pub segments: usize,
}

impl OverlapReport {
    /// Serial / overlapped latency ratio (1.0 for an empty timeline).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.overlapped_cycles == 0 {
            1.0
        } else {
            self.serial_cycles as f64 / self.overlapped_cycles as f64
        }
    }

    /// Cycles recovered by overlapping.
    #[must_use]
    pub fn saved_cycles(&self) -> u64 {
        self.serial_cycles - self.overlapped_cycles
    }
}

/// Plays the three-engine pipeline recurrence over `segments`.
#[must_use]
pub fn schedule(segments: &[Segment], model: &CopyModel) -> OverlapReport {
    let mut h2d_t = 0u64;
    let mut k_t = 0u64;
    let mut d2h_t = 0u64;
    let mut busy = [0u64; 3];
    let mut serial = 0u64;
    for s in segments {
        let h = model.h2d_cost(s.h2d_words);
        let k = s.kernel_cycles;
        let d = model.d2h_cost(s.d2h_words);
        serial += h + k + d;
        busy[ENGINE_H2D] += h;
        busy[ENGINE_KERNEL] += k;
        busy[ENGINE_D2H] += d;
        h2d_t += h;
        k_t = k_t.max(h2d_t) + k;
        d2h_t = d2h_t.max(k_t) + d;
    }
    let makespan = h2d_t.max(k_t).max(d2h_t);
    let mut engines = [EngineLane::default(); 3];
    for (lane, &b) in engines.iter_mut().zip(busy.iter()) {
        lane.busy = b;
        lane.idle = makespan - b;
    }
    OverlapReport {
        serial_cycles: serial,
        overlapped_cycles: makespan,
        engines,
        segments: segments.len(),
    }
}

/// Passive recorder the machine feeds as the run proceeds.
///
/// Host writes accumulate toward the *next* segment's upload; host (or
/// detector) reads accumulate into the *previous* segment's download.
/// The first host write after a read run closes the download window —
/// matching the natural `upload → launch → read back` structure of the
/// workloads.
#[derive(Debug, Default)]
pub struct Timeline {
    segments: Vec<Segment>,
    pending_h2d: u64,
    /// `Cell`: reads come through `&self` accessors on the machine.
    pending_d2h: Cell<u64>,
}

impl Timeline {
    /// Records `words` uploaded by the host.
    pub fn record_h2d(&mut self, words: u64) {
        self.flush_d2h();
        self.pending_h2d += words;
    }

    /// Records `words` read back to the host, attributed to the most
    /// recent launch. Reads before any launch model initialization
    /// traffic and are dropped.
    pub fn record_d2h(&self, words: u64) {
        if !self.segments.is_empty() {
            self.pending_d2h.set(self.pending_d2h.get() + words);
        }
    }

    /// Closes the current segment: a launch named `name` that took
    /// `kernel_cycles`, preceded by everything uploaded since the last
    /// segment.
    pub fn end_segment(&mut self, name: Arc<str>, kernel_cycles: u64) {
        self.flush_d2h();
        self.segments.push(Segment {
            name,
            h2d_words: std::mem::take(&mut self.pending_h2d),
            kernel_cycles,
            d2h_words: 0,
        });
    }

    /// Folds pending reads into the segment they belong to.
    fn flush_d2h(&mut self) {
        let pending = self.pending_d2h.take();
        if pending > 0 {
            if let Some(last) = self.segments.last_mut() {
                last.d2h_words += pending;
            }
        }
    }

    /// Snapshot of the recorded segments (pending reads folded in).
    #[must_use]
    pub fn segments(&self) -> Vec<Segment> {
        let mut segs = self.segments.clone();
        let pending = self.pending_d2h.get();
        if pending > 0 {
            if let Some(last) = segs.last_mut() {
                last.d2h_words += pending;
            }
        }
        segs
    }

    /// Number of closed segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether any segment has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Schedules the recorded timeline under `model`.
    #[must_use]
    pub fn report(&self, model: &CopyModel) -> OverlapReport {
        schedule(&self.segments(), model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(h2d: u64, k: u64, d2h: u64) -> Segment {
        Segment {
            name: Arc::from("k"),
            h2d_words: h2d,
            kernel_cycles: k,
            d2h_words: d2h,
        }
    }

    /// Unit-cost model: transfers cost exactly their word count.
    fn unit() -> CopyModel {
        CopyModel {
            h2d_cycles_per_word: 1,
            d2h_cycles_per_word: 1,
            fixed_per_transfer: 0,
        }
    }

    #[test]
    fn empty_timeline_is_trivial() {
        let r = schedule(&[], &CopyModel::default());
        assert_eq!(r.serial_cycles, 0);
        assert_eq!(r.overlapped_cycles, 0);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
        for e in r.engines {
            assert_eq!(e.busy + e.idle, r.overlapped_cycles);
        }
    }

    #[test]
    fn single_segment_has_no_overlap() {
        // One segment has nothing to overlap with: makespan == serial.
        let r = schedule(&[seg(10, 100, 5)], &unit());
        assert_eq!(r.serial_cycles, 115);
        assert_eq!(r.overlapped_cycles, 115);
        assert_eq!(r.engines[ENGINE_KERNEL].busy, 100);
        assert_eq!(r.engines[ENGINE_KERNEL].idle, 15);
    }

    #[test]
    fn known_pipeline_numbers() {
        // Two equal segments (h=10, k=100, d=10): segment 2's upload
        // overlaps segment 1's compute, its compute follows back-to-back,
        // and each drain overlaps the next stage. Hand-rolled recurrence:
        //   h2d:   10, 20
        //   kernel: max(0,10)+100 = 110; max(110,20)+100 = 210
        //   d2h:   max(0,110)+10 = 120; max(120,210)+10 = 220
        let r = schedule(&[seg(10, 100, 10), seg(10, 100, 10)], &unit());
        assert_eq!(r.serial_cycles, 240);
        assert_eq!(r.overlapped_cycles, 220);
        assert_eq!(r.saved_cycles(), 20);
        assert_eq!(r.engines[ENGINE_KERNEL].busy, 200);
        assert_eq!(r.engines[ENGINE_KERNEL].idle, 20);
    }

    #[test]
    fn overlap_never_exceeds_serial() {
        let model = CopyModel::default();
        let segs: Vec<Segment> = (0..20)
            .map(|i| seg(i * 37 % 513, 1000 + i * 91, i * 53 % 301))
            .collect();
        let r = schedule(&segs, &model);
        assert!(r.overlapped_cycles <= r.serial_cycles);
        for e in r.engines {
            assert_eq!(e.busy + e.idle, r.overlapped_cycles, "busy+idle invariant");
        }
    }

    #[test]
    fn timeline_attributes_reads_to_previous_launch() {
        let mut t = Timeline::default();
        t.record_h2d(100);
        t.end_segment(Arc::from("k1"), 1000);
        t.record_d2h(7); // belongs to k1
        t.record_h2d(50); // opens k2's upload window
        t.end_segment(Arc::from("k2"), 2000);
        t.record_d2h(3); // belongs to k2, still pending
        let segs = t.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].h2d_words, segs[0].d2h_words), (100, 7));
        assert_eq!((segs[1].h2d_words, segs[1].d2h_words), (50, 3));
    }

    #[test]
    fn reads_before_any_launch_are_dropped() {
        let t = Timeline::default();
        t.record_d2h(99);
        assert!(t.segments().is_empty());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn utilization_pct_is_sane() {
        let lane = EngineLane { busy: 75, idle: 25 };
        assert!((lane.utilization_pct() - 75.0).abs() < 1e-12);
        assert!((EngineLane::default().utilization_pct() - 100.0).abs() < 1e-12);
    }
}
