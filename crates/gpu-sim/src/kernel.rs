//! Loaded kernel objects.
//!
//! A [`Kernel`] is the simulator's analogue of a SASS function inside a CUDA
//! binary: a flat instruction array plus optional debug annotations. The
//! instrumentation layer attaches to `Kernel`s after they are "loaded",
//! without access to or recompilation of their source — the same contract
//! NVBit has with real binaries.

use crate::ir::Instr;
use std::sync::Arc;

/// A kernel ready to be launched on the simulated GPU.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Human-readable kernel name (mangled name analogue). Interned as
    /// `Arc<str>` so launches, instrumentation caches, and race reports
    /// share one allocation instead of cloning `String`s per access.
    pub name: Arc<str>,
    /// Flat instruction stream; branch targets index into this array.
    pub code: Vec<Instr>,
    /// Words of `__shared__` scratchpad each block needs.
    pub shared_words: usize,
    /// Optional per-instruction source annotation ("line info"); present when
    /// the workload was "compiled with debug info". Race reports quote it.
    pub lines: Vec<Option<String>>,
}

impl Kernel {
    /// Creates a kernel from a raw instruction stream with no debug info.
    ///
    /// # Panics
    /// Panics if `code` is empty or if any branch target is out of bounds —
    /// a malformed binary is a programming error in the workload, not a
    /// runtime condition.
    #[must_use]
    pub fn new(name: impl Into<Arc<str>>, code: Vec<Instr>, shared_words: usize) -> Self {
        let lines = vec![None; code.len()];
        let k = Kernel {
            name: name.into(),
            code,
            shared_words,
            lines,
        };
        k.validate();
        k
    }

    fn validate(&self) {
        assert!(
            !self.code.is_empty(),
            "kernel `{}` has no instructions",
            self.name
        );
        for (pc, instr) in self.code.iter().enumerate() {
            let target = match instr {
                Instr::Bra { target }
                | Instr::BraIf { target, .. }
                | Instr::BraIfNot { target, .. } => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                assert!(
                    t < self.code.len(),
                    "kernel `{}`: branch at pc {pc} targets {t}, beyond {} instructions",
                    self.name,
                    self.code.len()
                );
            }
        }
    }

    /// The source annotation for `pc`, if debug info is present.
    #[must_use]
    pub fn line(&self, pc: usize) -> Option<&str> {
        self.lines.get(pc).and_then(|l| l.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;

    #[test]
    fn kernel_validates_branch_targets() {
        let k = Kernel::new("ok", vec![Instr::Bra { target: 1 }, Instr::Exit], 0);
        assert_eq!(k.code.len(), 2);
        assert_eq!(k.line(0), None);
    }

    #[test]
    #[should_panic(expected = "targets 9")]
    fn kernel_rejects_wild_branch() {
        let _ = Kernel::new("bad", vec![Instr::Bra { target: 9 }, Instr::Exit], 0);
    }

    #[test]
    #[should_panic(expected = "no instructions")]
    fn kernel_rejects_empty_code() {
        let _ = Kernel::new("empty", vec![], 0);
    }
}
