//! Simulation faults.

use std::fmt;

/// A fault raised while executing a kernel on the simulated GPU.
///
/// Faults correspond to conditions that would kill (or hang) a real CUDA
/// launch: wild addresses, divide-by-zero, barrier deadlock, or a watchdog
/// timeout. A timeout is the condition iGUARD's parameterized timeout (§5,
/// "Race reporting") exists for: detected races must still be reported after
/// the kernel is killed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A memory access not aligned to the 4-byte word size.
    UnalignedAccess { addr: u32 },
    /// A global-memory access outside every allocation.
    OutOfBounds { addr: u32, words: usize },
    /// A shared-memory access outside the block's scratchpad.
    SharedOutOfBounds { addr: u32, words: usize },
    /// Integer division or remainder by zero.
    DivideByZero { kernel: String, pc: usize },
    /// Every live thread is blocked on a barrier that can never complete.
    Deadlock { kernel: String },
    /// The launch exceeded the step watchdog (livelock or runaway kernel).
    Timeout { steps: u64 },
    /// The grid exceeds simulator limits (e.g. block larger than 1024).
    BadLaunch { reason: String },
    /// Device memory exhausted (logical capacity accounting).
    OutOfMemory { requested: u64, available: u64 },
    /// A structurally invalid device configuration (construction-time).
    BadConfig { reason: String },
    /// The fault plane killed this operation (`site` names the
    /// [`faults::FaultSite`] that fired). Only produced when fault
    /// injection is enabled; consumers treat it as a non-fatal DNF.
    InjectedFault { site: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnalignedAccess { addr } => {
                write!(f, "unaligned 4-byte access at address {addr:#x}")
            }
            SimError::OutOfBounds { addr, words } => {
                write!(
                    f,
                    "global access at {addr:#x} beyond {words} allocated words"
                )
            }
            SimError::SharedOutOfBounds { addr, words } => {
                write!(
                    f,
                    "shared access at {addr:#x} beyond {words} scratchpad words"
                )
            }
            SimError::DivideByZero { kernel, pc } => {
                write!(f, "divide by zero in `{kernel}` at pc {pc}")
            }
            SimError::Deadlock { kernel } => {
                write!(
                    f,
                    "barrier deadlock in `{kernel}`: all live threads blocked"
                )
            }
            SimError::Timeout { steps } => {
                write!(f, "watchdog timeout after {steps} scheduler steps")
            }
            SimError::BadLaunch { reason } => write!(f, "bad launch: {reason}"),
            SimError::BadConfig { reason } => write!(f, "bad config: {reason}"),
            SimError::InjectedFault { site } => {
                write!(f, "injected fault: {site}")
            }
            SimError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device OOM: requested {requested} B, {available} B available"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Timeout { steps: 10 };
        assert!(e.to_string().contains("10"));
        let e = SimError::DivideByZero {
            kernel: "k".into(),
            pc: 3,
        };
        assert!(e.to_string().contains("`k`"));
        assert!(e.to_string().contains("pc 3"));
    }
}
