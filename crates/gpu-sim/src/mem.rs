//! The simulated GPU memory system with *scoped visibility*.
//!
//! Races induced by insufficient scope are only observable if narrower-scope
//! operations really have narrower visibility, so the simulator models the
//! non-coherent L1-per-SM / shared-L2 hierarchy of real NVIDIA GPUs:
//!
//! - plain stores land in the issuing SM's L1 (dirty line) and are visible
//!   to every thread on that SM (all threads of a block share an SM);
//! - plain loads hit the local L1 if a line is present (dirty *or* clean),
//!   otherwise fill from L2 — so an SM can keep reading a stale clean copy
//!   even after L2 moved on, exactly the stale-read failure mode of a
//!   missing device fence;
//! - a **device-scope fence** writes the SM's dirty lines back to L2 and
//!   drops all its lines (subsequent loads refill from L2);
//! - a **block-scope fence** orders accesses within the SM only — it is a
//!   visibility no-op here because intra-SM visibility is immediate, which
//!   is also why it is cheap on hardware (the 21× gap of §1);
//! - a **block-scope atomic** performs its read-modify-write on the SM-local
//!   view (L1), so two blocks on different SMs doing block-scope atomics to
//!   the same word *lose updates* — the Figure 1 bug;
//! - a **device-scope atomic** operates directly on L2 after writing back /
//!   dropping any local line for that word;
//! - `volatile` accesses bypass L1 in both directions (CUDA's escape hatch
//!   used by spin-wait flags like Figure 10's `arrived`).
//!
//! Addresses are byte addresses; all traffic is word (4-byte) sized and
//! aligned, matching the 4-byte granularity of iGUARD's memory metadata.
//!
//! # Weak visibility (litmus mode)
//!
//! The hierarchy above is *deterministic*: a load observes exactly one
//! value given the schedule. Real scoped GPU memory is weaker — which of
//! several in-flight writes a load observes is itself a degree of freedom
//! (store buffering, non-multi-copy-atomic propagation). With
//! [`GlobalMem::enable_weak`] the memory additionally tracks a global
//! version per write and a per-SM per-word *read floor*, and
//! [`GlobalMem::load_weak`] exposes every value the load is allowed to
//! observe as an explicit candidate list:
//!
//! - candidate 0 is always the legacy value (local line, else L2), so a
//!   chooser that always picks 0 reproduces the strong model exactly;
//! - the L2 copy and other SMs' not-yet-written-back dirty lines are
//!   additional candidates (early propagation — the non-multi-copy-atomic
//!   behaviour IRIW probes);
//! - a candidate is only offered if its version is ≥ this SM's read floor
//!   for the word, and a chosen read raises the floor — per-location
//!   coherence: a thread never observes a word going *backwards*;
//! - a device fence writes back a dirty line only if it is not older than
//!   the L2 copy (write serialization at L2).
//!
//! The scheduler's `choose_visibility` picks among the candidates, which is
//! what lets the oracle enumerate visibility orders alongside schedules.

use crate::error::SimError;
use crate::ir::{AtomOp, Scope};

/// One cached word in an SM's L1.
#[derive(Debug, Clone, Copy)]
struct Line {
    value: u32,
    dirty: bool,
}

/// One SM's L1: a flat word-indexed array instead of a hash map, so the
/// per-access hot path is two array reads (epoch check + value) with no
/// hashing or allocation. Presence is an epoch match — a device fence
/// "drops all lines" by bumping the epoch (O(1)) — and dirty lines are
/// additionally tracked in a write-back list so a fence only visits words
/// this SM actually wrote. The backing arrays are zero-filled and
/// lazily paged by the OS, so untouched words cost no physical memory.
#[derive(Debug)]
struct SmL1 {
    epoch: u32,
    slot_epoch: Vec<u32>,
    value: Vec<u32>,
    dirty: Vec<bool>,
    /// Words that transitioned to dirty since the last device fence (may
    /// hold duplicates/stale entries; validity is re-checked at flush).
    dirty_list: Vec<u32>,
    /// Weak mode only (empty otherwise): global version of the write each
    /// valid line holds. Not epoch-gated — only read through valid lines.
    ver: Vec<u32>,
    /// Weak mode only: per-word read floor (minimum version a load on this
    /// SM may still observe). Persists across fences.
    floor: Vec<u32>,
    /// Whether the version/floor arrays are maintained.
    weak: bool,
}

impl SmL1 {
    fn new() -> Self {
        SmL1 {
            epoch: 1,
            slot_epoch: Vec::new(),
            value: Vec::new(),
            dirty: Vec::new(),
            dirty_list: Vec::new(),
            ver: Vec::new(),
            floor: Vec::new(),
            weak: false,
        }
    }

    /// Grows the slot arrays to cover word `w`. Lazy growth keeps each
    /// L1's footprint O(touched high-water address), not O(device
    /// memory) — eagerly sizing 72 caches to `mem_words` costs hundreds
    /// of megabytes of zeroing per `Gpu`. New slots get epoch 0, which
    /// never equals the live epoch (it starts at 1 and wrap resets it
    /// to 1), so they are born invalid.
    #[inline]
    fn ensure(&mut self, w: usize) {
        if w >= self.slot_epoch.len() {
            let n = (w + 1).next_power_of_two();
            self.slot_epoch.resize(n, 0);
            self.value.resize(n, 0);
            self.dirty.resize(n, false);
            if self.weak {
                self.ver.resize(n, 0);
                self.floor.resize(n, 0);
            }
        }
    }

    #[inline]
    fn get(&self, w: usize) -> Option<Line> {
        if w < self.slot_epoch.len() && self.slot_epoch[w] == self.epoch {
            Some(Line {
                value: self.value[w],
                dirty: self.dirty[w],
            })
        } else {
            None
        }
    }

    #[inline]
    fn insert(&mut self, w: usize, line: Line) {
        self.ensure(w);
        if line.dirty && !(self.slot_epoch[w] == self.epoch && self.dirty[w]) {
            self.dirty_list.push(w as u32);
        }
        self.slot_epoch[w] = self.epoch;
        self.value[w] = line.value;
        self.dirty[w] = line.dirty;
    }

    #[inline]
    fn remove(&mut self, w: usize) {
        if w < self.slot_epoch.len() {
            self.slot_epoch[w] = self.epoch.wrapping_sub(1);
        }
    }

    /// Writes back every dirty line and drops all lines. In weak mode a
    /// dirty line only lands in L2 if it is not older than the L2 copy
    /// (write serialization: L2 never goes backwards in version order).
    fn flush(&mut self, l2: &mut [u32], mut l2_ver: Option<&mut [u32]>) {
        for i in 0..self.dirty_list.len() {
            let w = self.dirty_list[i] as usize;
            if self.slot_epoch[w] == self.epoch && self.dirty[w] {
                match l2_ver.as_deref_mut() {
                    Some(lv) => {
                        if self.ver[w] >= lv[w] {
                            l2[w] = self.value[w];
                            lv[w] = self.ver[w];
                        }
                    }
                    None => l2[w] = self.value[w],
                }
            }
        }
        self.dirty_list.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped (needs 2^32 device fences): hard-reset so no
            // stale slot can alias the restarted epoch counter.
            self.slot_epoch.fill(0);
            self.epoch = 1;
        }
    }
}

/// Weak-mode bookkeeping: a global write-version counter and the version
/// of each L2 word.
#[derive(Debug)]
struct WeakState {
    next_ver: u32,
    l2_ver: Vec<u32>,
}

impl WeakState {
    fn bump(&mut self) -> u32 {
        self.next_ver += 1;
        self.next_ver
    }
}

/// Source of one weak-load visibility candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CandSource {
    /// This SM's own (clean) line — the legacy value, a no-op to choose.
    Local,
    /// The L2 copy — choosing it refills the local line (legacy fill).
    L2,
    /// Another SM's not-yet-written-back dirty line (early propagation).
    Remote,
}

/// The global-memory hierarchy: one L2 array plus one L1 per SM.
#[derive(Debug)]
pub struct GlobalMem {
    l2: Vec<u32>,
    l1: Vec<SmL1>,
    /// Weak-visibility bookkeeping; `None` keeps the strong model with
    /// zero overhead on the hot paths.
    weak: Option<WeakState>,
}

impl GlobalMem {
    /// Creates a memory of `words` zero-initialized 4-byte words served by
    /// `num_sms` streaming multiprocessors.
    #[must_use]
    pub fn new(words: usize, num_sms: usize) -> Self {
        GlobalMem {
            l2: vec![0; words],
            l1: (0..num_sms).map(|_| SmL1::new()).collect(),
            weak: None,
        }
    }

    /// Switches on weak-visibility bookkeeping. Must be called before any
    /// traffic (the `Gpu` does this at construction when configured).
    pub fn enable_weak(&mut self) {
        let words = self.l2.len();
        for l1 in &mut self.l1 {
            l1.weak = true;
            let n = l1.slot_epoch.len();
            l1.ver.resize(n, 0);
            l1.floor.resize(n, 0);
        }
        self.weak = Some(WeakState {
            next_ver: 0,
            l2_ver: vec![0; words],
        });
    }

    /// Whether weak-visibility bookkeeping is active.
    #[must_use]
    pub fn weak_enabled(&self) -> bool {
        self.weak.is_some()
    }

    /// Total words of backing storage.
    #[must_use]
    pub fn words(&self) -> usize {
        self.l2.len()
    }

    fn word_index(&self, addr: u32) -> Result<usize, SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::UnalignedAccess { addr });
        }
        let w = (addr / 4) as usize;
        if w >= self.l2.len() {
            return Err(SimError::OutOfBounds {
                addr,
                words: self.l2.len(),
            });
        }
        Ok(w)
    }

    /// Word load by a thread on `sm`.
    pub fn load(&mut self, sm: usize, addr: u32, volatile: bool) -> Result<u32, SimError> {
        let w = self.word_index(addr)?;
        if volatile {
            // Volatile reads observe L2, but a local *dirty* line is this
            // SM's own newer write and must win (program order).
            if let Some(line) = self.l1[sm].get(w) {
                if line.dirty {
                    return Ok(line.value);
                }
                self.l1[sm].remove(w);
            }
            if let Some(wk) = &self.weak {
                let lv = wk.l2_ver[w];
                let l1 = &mut self.l1[sm];
                l1.ensure(w);
                l1.floor[w] = l1.floor[w].max(lv);
            }
            return Ok(self.l2[w]);
        }
        if let Some(line) = self.l1[sm].get(w) {
            return Ok(line.value);
        }
        let v = self.l2[w];
        self.l1[sm].insert(
            w,
            Line {
                value: v,
                dirty: false,
            },
        );
        Ok(v)
    }

    /// Word store by a thread on `sm`.
    pub fn store(
        &mut self,
        sm: usize,
        addr: u32,
        value: u32,
        volatile: bool,
    ) -> Result<(), SimError> {
        let w = self.word_index(addr)?;
        if volatile {
            self.l1[sm].remove(w);
            self.l2[w] = value;
            if let Some(wk) = &mut self.weak {
                let v = wk.bump();
                wk.l2_ver[w] = v;
            }
        } else {
            self.l1[sm].insert(w, Line { value, dirty: true });
            if let Some(wk) = &mut self.weak {
                let v = wk.bump();
                self.l1[sm].ver[w] = v;
            }
        }
        Ok(())
    }

    /// Scoped fence issued by a thread on `sm`.
    ///
    /// Device scope: write back dirty lines, drop everything (acquire +
    /// release visibility). Block scope: intra-SM visibility is already
    /// immediate, so only ordering (tracked by the detector) is affected.
    pub fn fence(&mut self, sm: usize, scope: Scope) {
        if scope == Scope::Device {
            let GlobalMem { l2, l1, weak } = self;
            l1[sm].flush(l2, weak.as_mut().map(|wk| wk.l2_ver.as_mut_slice()));
        }
    }

    /// Scoped atomic read-modify-write; returns the old value.
    ///
    /// `cmp` is only meaningful for [`AtomOp::Cas`].
    pub fn atomic(
        &mut self,
        sm: usize,
        addr: u32,
        op: AtomOp,
        src: u32,
        cmp: u32,
        scope: Scope,
    ) -> Result<u32, SimError> {
        let w = self.word_index(addr)?;
        match scope {
            Scope::Block => {
                // RMW on the SM-local view: atomic w.r.t. this SM only.
                let (old, old_ver) = match self.l1[sm].get(w) {
                    Some(line) => {
                        let v = if self.weak.is_some() {
                            self.l1[sm].ver[w]
                        } else {
                            0
                        };
                        (line.value, v)
                    }
                    None => (
                        self.l2[w],
                        self.weak.as_ref().map_or(0, |wk| wk.l2_ver[w]),
                    ),
                };
                let new = apply_atom(op, old, src, cmp);
                self.l1[sm].insert(
                    w,
                    Line {
                        value: new,
                        dirty: true,
                    },
                );
                if let Some(wk) = &mut self.weak {
                    let v = wk.bump();
                    let l1 = &mut self.l1[sm];
                    l1.ver[w] = v;
                    // The RMW read the old value: coherence floor rises.
                    l1.floor[w] = l1.floor[w].max(old_ver);
                }
                Ok(old)
            }
            Scope::Device => {
                // Publish any local version first, then RMW on L2; do not
                // keep a local copy (atomics bypass L1 on real hardware).
                if let Some(line) = self.l1[sm].get(w) {
                    if line.dirty {
                        match &mut self.weak {
                            Some(wk) => {
                                let ver = self.l1[sm].ver[w];
                                if ver >= wk.l2_ver[w] {
                                    self.l2[w] = line.value;
                                    wk.l2_ver[w] = ver;
                                }
                            }
                            None => self.l2[w] = line.value,
                        }
                    }
                    self.l1[sm].remove(w);
                }
                let old = self.l2[w];
                self.l2[w] = apply_atom(op, old, src, cmp);
                if let Some(wk) = &mut self.weak {
                    let v = wk.bump();
                    wk.l2_ver[w] = v;
                    let l1 = &mut self.l1[sm];
                    l1.ensure(w);
                    l1.floor[w] = l1.floor[w].max(v);
                }
                Ok(old)
            }
        }
    }

    /// Weak-visibility word load: collects every value the load may
    /// observe, asks `choose` to pick one when more than one is allowed,
    /// applies the chosen candidate's cache effect, and raises the read
    /// floor. Requires [`GlobalMem::enable_weak`]; candidate 0 is the
    /// legacy value, so `choose = |_| 0` reproduces [`GlobalMem::load`].
    pub fn load_weak(
        &mut self,
        sm: usize,
        addr: u32,
        choose: &mut dyn FnMut(usize) -> usize,
    ) -> Result<u32, SimError> {
        let w = self.word_index(addr)?;
        assert!(self.weak.is_some(), "load_weak requires enable_weak()");
        self.l1[sm].ensure(w);
        let floor = self.l1[sm].floor[w];

        // This SM's own dirty line is its program-order-latest write: no
        // other value may legally be observed.
        if let Some(line) = self.l1[sm].get(w) {
            if line.dirty {
                let v = self.l1[sm].ver[w];
                self.l1[sm].floor[w] = floor.max(v);
                return Ok(line.value);
            }
        }

        // Candidates in legacy-first order, deduplicated by value (two
        // observable copies holding the same value are indistinguishable,
        // so offering both would only pad the enumeration).
        let mut cands: Vec<(u32, u32, CandSource)> = Vec::new();
        if let Some(line) = self.l1[sm].get(w) {
            let v = self.l1[sm].ver[w];
            if v >= floor {
                cands.push((line.value, v, CandSource::Local));
            }
        }
        let l2v = self.weak.as_ref().unwrap().l2_ver[w];
        if l2v >= floor && !cands.iter().any(|c| c.0 == self.l2[w]) {
            cands.push((self.l2[w], l2v, CandSource::L2));
        }
        for r in 0..self.l1.len() {
            if r == sm {
                continue;
            }
            if let Some(line) = self.l1[r].get(w) {
                if line.dirty {
                    let v = self.l1[r].ver[w];
                    if v >= floor && !cands.iter().any(|c| c.0 == line.value) {
                        cands.push((line.value, v, CandSource::Remote));
                    }
                }
            }
        }
        // The floor's source write is always still observable (it lives in
        // a dirty line or was serialized into L2 at version ≥ floor), so
        // the candidate list cannot be empty; fall back to L2 defensively.
        let (value, ver, source) = if cands.is_empty() {
            debug_assert!(false, "weak load found no candidate");
            (self.l2[w], l2v, CandSource::L2)
        } else if cands.len() == 1 {
            cands[0]
        } else {
            cands[choose(cands.len()).min(cands.len() - 1)]
        };
        match source {
            CandSource::Local => {}
            CandSource::L2 | CandSource::Remote => {
                // Cache the observed copy locally (clean), as the legacy
                // fill does; a snooped copy is cached the same way.
                self.l1[sm].insert(
                    w,
                    Line {
                        value,
                        dirty: false,
                    },
                );
                self.l1[sm].ver[w] = ver;
            }
        }
        let l1 = &mut self.l1[sm];
        l1.floor[w] = l1.floor[w].max(ver);
        Ok(value)
    }

    /// Host-side read of the coherent (L2) value, used to seed inputs and
    /// check results after all SM state has been flushed by kernel exit.
    #[must_use]
    pub fn read_coherent(&self, addr: u32) -> u32 {
        self.l2[(addr / 4) as usize]
    }

    /// Host-side coherent write (cudaMemcpy-to-device analogue).
    pub fn write_coherent(&mut self, addr: u32, value: u32) {
        let w = (addr / 4) as usize;
        self.l2[w] = value;
        if let Some(wk) = &mut self.weak {
            let v = wk.bump();
            wk.l2_ver[w] = v;
        }
        for l1 in &mut self.l1 {
            l1.remove(w);
        }
    }

    /// Kernel-exit flush: the implicit device-wide barrier at the end of a
    /// grid publishes every SM's writes (§2.1, implicit barrier 3).
    pub fn flush_all(&mut self) {
        for sm in 0..self.l1.len() {
            self.fence(sm, Scope::Device);
        }
    }
}

/// Pure RMW step shared by both scopes.
fn apply_atom(op: AtomOp, old: u32, src: u32, cmp: u32) -> u32 {
    match op {
        AtomOp::Add => old.wrapping_add(src),
        AtomOp::Exch => src,
        AtomOp::Cas => {
            if old == cmp {
                src
            } else {
                old
            }
        }
        AtomOp::Min => old.min(src),
        AtomOp::Max => old.max(src),
        AtomOp::Or => old | src,
        AtomOp::And => old & src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> GlobalMem {
        GlobalMem::new(64, 4)
    }

    #[test]
    fn store_visible_on_same_sm_immediately() {
        let mut m = mem();
        m.store(0, 8, 42, false).unwrap();
        assert_eq!(m.load(0, 8, false).unwrap(), 42);
    }

    #[test]
    fn store_invisible_across_sms_without_fence() {
        let mut m = mem();
        m.store(0, 8, 42, false).unwrap();
        assert_eq!(
            m.load(1, 8, false).unwrap(),
            0,
            "SM1 must not see SM0's unfenced store"
        );
    }

    #[test]
    fn device_fence_publishes_to_other_sms() {
        let mut m = mem();
        m.store(0, 8, 42, false).unwrap();
        m.fence(0, Scope::Device);
        assert_eq!(m.load(1, 8, false).unwrap(), 42);
    }

    #[test]
    fn block_fence_does_not_publish() {
        let mut m = mem();
        m.store(0, 8, 42, false).unwrap();
        m.fence(0, Scope::Block);
        assert_eq!(m.load(1, 8, false).unwrap(), 0);
    }

    #[test]
    fn stale_clean_line_persists_until_fence() {
        let mut m = mem();
        assert_eq!(m.load(1, 8, false).unwrap(), 0); // SM1 caches clean 0
        m.store(0, 8, 7, false).unwrap();
        m.fence(0, Scope::Device);
        // SM1 still sees its stale clean copy...
        assert_eq!(m.load(1, 8, false).unwrap(), 0);
        // ...until it fences (acquire side).
        m.fence(1, Scope::Device);
        assert_eq!(m.load(1, 8, false).unwrap(), 7);
    }

    #[test]
    fn volatile_load_bypasses_clean_l1() {
        let mut m = mem();
        assert_eq!(m.load(1, 8, false).unwrap(), 0);
        m.store(0, 8, 7, false).unwrap();
        m.fence(0, Scope::Device);
        assert_eq!(
            m.load(1, 8, true).unwrap(),
            7,
            "volatile read must observe L2"
        );
    }

    #[test]
    fn volatile_store_writes_through() {
        let mut m = mem();
        m.store(0, 8, 9, true).unwrap();
        assert_eq!(m.load(1, 8, false).unwrap(), 9);
    }

    #[test]
    fn block_atomic_loses_updates_across_sms() {
        // The Figure 1 failure mode: two SMs atomicAdd_block the same word.
        let mut m = mem();
        let one = 1;
        assert_eq!(
            m.atomic(0, 0, AtomOp::Add, one, 0, Scope::Block).unwrap(),
            0
        );
        assert_eq!(
            m.atomic(1, 0, AtomOp::Add, one, 0, Scope::Block).unwrap(),
            0
        );
        m.flush_all();
        // One of the two increments is lost: both RMWed their local view.
        assert_eq!(m.read_coherent(0), 1);
    }

    #[test]
    fn device_atomic_is_globally_atomic() {
        let mut m = mem();
        assert_eq!(m.atomic(0, 0, AtomOp::Add, 1, 0, Scope::Device).unwrap(), 0);
        assert_eq!(m.atomic(1, 0, AtomOp::Add, 1, 0, Scope::Device).unwrap(), 1);
        assert_eq!(m.read_coherent(0), 2);
    }

    #[test]
    fn device_atomic_publishes_local_dirty_line_first() {
        let mut m = mem();
        m.store(0, 0, 10, false).unwrap();
        // The device atomic must observe this SM's own program-order store.
        assert_eq!(
            m.atomic(0, 0, AtomOp::Add, 1, 0, Scope::Device).unwrap(),
            10
        );
        assert_eq!(m.read_coherent(0), 11);
    }

    #[test]
    fn cas_semantics() {
        let mut m = mem();
        assert_eq!(m.atomic(0, 4, AtomOp::Cas, 5, 0, Scope::Device).unwrap(), 0);
        assert_eq!(m.read_coherent(4), 5);
        // Failing CAS leaves value intact.
        assert_eq!(m.atomic(0, 4, AtomOp::Cas, 9, 0, Scope::Device).unwrap(), 5);
        assert_eq!(m.read_coherent(4), 5);
    }

    #[test]
    fn atom_ops_cover_all_variants() {
        assert_eq!(apply_atom(AtomOp::Add, 2, 3, 0), 5);
        assert_eq!(apply_atom(AtomOp::Exch, 2, 3, 0), 3);
        assert_eq!(apply_atom(AtomOp::Min, 2, 3, 0), 2);
        assert_eq!(apply_atom(AtomOp::Max, 2, 3, 0), 3);
        assert_eq!(apply_atom(AtomOp::Or, 0b01, 0b10, 0), 0b11);
        assert_eq!(apply_atom(AtomOp::And, 0b11, 0b10, 0), 0b10);
        assert_eq!(
            apply_atom(AtomOp::Add, u32::MAX, 1, 0),
            0,
            "atomicAdd wraps"
        );
    }

    #[test]
    fn unaligned_and_oob_accesses_fault() {
        let mut m = mem();
        assert!(matches!(
            m.load(0, 2, false),
            Err(SimError::UnalignedAccess { .. })
        ));
        assert!(matches!(
            m.load(0, 4 * 64, false),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.store(0, 1, 0, false),
            Err(SimError::UnalignedAccess { .. })
        ));
    }

    #[test]
    fn kernel_exit_flush_publishes_everything() {
        let mut m = mem();
        m.store(2, 12, 99, false).unwrap();
        m.flush_all();
        assert_eq!(m.read_coherent(12), 99);
    }

    #[test]
    fn host_write_invalidates_cached_copies() {
        let mut m = mem();
        assert_eq!(m.load(0, 8, false).unwrap(), 0); // cache clean 0 on SM0
        m.write_coherent(8, 5);
        assert_eq!(m.load(0, 8, false).unwrap(), 5);
    }

    // ---- weak-visibility mode ----

    fn weak_mem() -> GlobalMem {
        let mut m = GlobalMem::new(64, 4);
        m.enable_weak();
        m
    }

    /// Runs a weak load forced to candidate `pick`, returning the value
    /// and the candidate count the chooser saw (0 if not consulted).
    fn weak_load(m: &mut GlobalMem, sm: usize, addr: u32, pick: usize) -> (u32, usize) {
        let mut seen = 0;
        let v = m
            .load_weak(sm, addr, &mut |n| {
                seen = n;
                pick
            })
            .unwrap();
        (v, seen)
    }

    #[test]
    fn weak_candidate_zero_reproduces_strong_model() {
        // Mirror `stale_clean_line_persists_until_fence` with choice 0.
        let mut m = weak_mem();
        assert_eq!(weak_load(&mut m, 1, 8, 0).0, 0);
        m.store(0, 8, 7, false).unwrap();
        m.fence(0, Scope::Device);
        assert_eq!(weak_load(&mut m, 1, 8, 0).0, 0, "stale clean line wins");
        m.fence(1, Scope::Device);
        assert_eq!(weak_load(&mut m, 1, 8, 0).0, 7);
    }

    #[test]
    fn weak_load_offers_remote_dirty_line() {
        // SM0's unfenced store is observable early (non-multi-copy-atomic
        // propagation) but never forced.
        let mut m = weak_mem();
        m.store(0, 8, 42, false).unwrap();
        let (v, n) = weak_load(&mut m, 1, 8, 1);
        assert_eq!(n, 2, "candidates: L2 (0) and SM0's dirty 42");
        assert_eq!(v, 42);
        // Having observed 42, SM1 may not go backwards to 0.
        let (v, n) = weak_load(&mut m, 1, 8, 0);
        assert_eq!((v, n), (42, 0), "floor forces the snooped value");
    }

    #[test]
    fn weak_load_own_dirty_line_is_forced() {
        let mut m = weak_mem();
        m.store(1, 8, 9, false).unwrap();
        m.store(0, 8, 5, false).unwrap(); // remote dirty, must not matter
        let (v, n) = weak_load(&mut m, 1, 8, 1);
        assert_eq!((v, n), (9, 0), "own write wins, chooser not consulted");
    }

    #[test]
    fn weak_stale_reread_after_snooping_other_location() {
        // The heart of the MP-with-writer-fence anomaly: a reader that
        // cached x=0 clean may re-read the stale 0 even after the writer's
        // device fence published x=1.
        let mut m = weak_mem();
        assert_eq!(weak_load(&mut m, 1, 8, 0).0, 0); // cache x=0 clean
        m.store(0, 8, 1, false).unwrap();
        m.fence(0, Scope::Device);
        let (v, n) = weak_load(&mut m, 1, 8, 0);
        assert_eq!(n, 2, "stale local 0 and fresh L2 1 both observable");
        assert_eq!(v, 0);
        // Choosing the fresh copy raises the floor past the stale line.
        let (v, _) = weak_load(&mut m, 1, 8, 1);
        assert_eq!(v, 1);
        let (v, n) = weak_load(&mut m, 1, 8, 0);
        assert_eq!((v, n), (1, 0), "coherence: no going back to 0");
    }

    #[test]
    fn weak_fence_writeback_respects_l2_version_order() {
        // SM0 writes first, SM1 second; flushing SM1 then SM0 must leave
        // SM1's (newer) value in L2 — the strong model would let SM0's
        // later flush clobber it.
        let mut m = weak_mem();
        m.store(0, 8, 1, false).unwrap();
        m.store(1, 8, 2, false).unwrap();
        m.fence(1, Scope::Device);
        m.fence(0, Scope::Device);
        assert_eq!(m.read_coherent(8), 2, "older write must not clobber");
    }

    #[test]
    fn weak_volatile_load_raises_floor_to_l2() {
        let mut m = weak_mem();
        m.store(0, 8, 3, true).unwrap(); // volatile write-through
        assert_eq!(m.load(1, 8, true).unwrap(), 3);
        // Plain reads afterwards may not resurrect the initial 0.
        let (v, n) = weak_load(&mut m, 1, 8, 0);
        assert_eq!((v, n), (3, 0));
    }

    #[test]
    fn weak_device_atomic_observes_and_raises_floor() {
        let mut m = weak_mem();
        m.store(0, 0, 4, false).unwrap();
        m.fence(0, Scope::Device);
        assert_eq!(m.atomic(1, 0, AtomOp::Add, 1, 0, Scope::Device).unwrap(), 4);
        assert_eq!(m.read_coherent(0), 5);
        let (v, n) = weak_load(&mut m, 1, 0, 0);
        assert_eq!((v, n), (5, 0), "atomic's RMW pins the floor at latest");
    }

    #[test]
    fn weak_block_atomic_still_loses_updates() {
        // Weak bookkeeping must not accidentally strengthen block atomics.
        let mut m = weak_mem();
        assert_eq!(m.atomic(0, 0, AtomOp::Add, 1, 0, Scope::Block).unwrap(), 0);
        assert_eq!(m.atomic(1, 0, AtomOp::Add, 1, 0, Scope::Block).unwrap(), 0);
        m.flush_all();
        assert_eq!(m.read_coherent(0), 1);
    }
}
