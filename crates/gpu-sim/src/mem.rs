//! The simulated GPU memory system with *scoped visibility*.
//!
//! Races induced by insufficient scope are only observable if narrower-scope
//! operations really have narrower visibility, so the simulator models the
//! non-coherent L1-per-SM / shared-L2 hierarchy of real NVIDIA GPUs:
//!
//! - plain stores land in the issuing SM's L1 (dirty line) and are visible
//!   to every thread on that SM (all threads of a block share an SM);
//! - plain loads hit the local L1 if a line is present (dirty *or* clean),
//!   otherwise fill from L2 — so an SM can keep reading a stale clean copy
//!   even after L2 moved on, exactly the stale-read failure mode of a
//!   missing device fence;
//! - a **device-scope fence** writes the SM's dirty lines back to L2 and
//!   drops all its lines (subsequent loads refill from L2);
//! - a **block-scope fence** orders accesses within the SM only — it is a
//!   visibility no-op here because intra-SM visibility is immediate, which
//!   is also why it is cheap on hardware (the 21× gap of §1);
//! - a **block-scope atomic** performs its read-modify-write on the SM-local
//!   view (L1), so two blocks on different SMs doing block-scope atomics to
//!   the same word *lose updates* — the Figure 1 bug;
//! - a **device-scope atomic** operates directly on L2 after writing back /
//!   dropping any local line for that word;
//! - `volatile` accesses bypass L1 in both directions (CUDA's escape hatch
//!   used by spin-wait flags like Figure 10's `arrived`).
//!
//! Addresses are byte addresses; all traffic is word (4-byte) sized and
//! aligned, matching the 4-byte granularity of iGUARD's memory metadata.

use crate::error::SimError;
use crate::ir::{AtomOp, Scope};

/// One cached word in an SM's L1.
#[derive(Debug, Clone, Copy)]
struct Line {
    value: u32,
    dirty: bool,
}

/// One SM's L1: a flat word-indexed array instead of a hash map, so the
/// per-access hot path is two array reads (epoch check + value) with no
/// hashing or allocation. Presence is an epoch match — a device fence
/// "drops all lines" by bumping the epoch (O(1)) — and dirty lines are
/// additionally tracked in a write-back list so a fence only visits words
/// this SM actually wrote. The backing arrays are zero-filled and
/// lazily paged by the OS, so untouched words cost no physical memory.
#[derive(Debug)]
struct SmL1 {
    epoch: u32,
    slot_epoch: Vec<u32>,
    value: Vec<u32>,
    dirty: Vec<bool>,
    /// Words that transitioned to dirty since the last device fence (may
    /// hold duplicates/stale entries; validity is re-checked at flush).
    dirty_list: Vec<u32>,
}

impl SmL1 {
    fn new() -> Self {
        SmL1 {
            epoch: 1,
            slot_epoch: Vec::new(),
            value: Vec::new(),
            dirty: Vec::new(),
            dirty_list: Vec::new(),
        }
    }

    /// Grows the slot arrays to cover word `w`. Lazy growth keeps each
    /// L1's footprint O(touched high-water address), not O(device
    /// memory) — eagerly sizing 72 caches to `mem_words` costs hundreds
    /// of megabytes of zeroing per `Gpu`. New slots get epoch 0, which
    /// never equals the live epoch (it starts at 1 and wrap resets it
    /// to 1), so they are born invalid.
    #[inline]
    fn ensure(&mut self, w: usize) {
        if w >= self.slot_epoch.len() {
            let n = (w + 1).next_power_of_two();
            self.slot_epoch.resize(n, 0);
            self.value.resize(n, 0);
            self.dirty.resize(n, false);
        }
    }

    #[inline]
    fn get(&self, w: usize) -> Option<Line> {
        if w < self.slot_epoch.len() && self.slot_epoch[w] == self.epoch {
            Some(Line {
                value: self.value[w],
                dirty: self.dirty[w],
            })
        } else {
            None
        }
    }

    #[inline]
    fn insert(&mut self, w: usize, line: Line) {
        self.ensure(w);
        if line.dirty && !(self.slot_epoch[w] == self.epoch && self.dirty[w]) {
            self.dirty_list.push(w as u32);
        }
        self.slot_epoch[w] = self.epoch;
        self.value[w] = line.value;
        self.dirty[w] = line.dirty;
    }

    #[inline]
    fn remove(&mut self, w: usize) {
        if w < self.slot_epoch.len() {
            self.slot_epoch[w] = self.epoch.wrapping_sub(1);
        }
    }

    /// Writes back every dirty line and drops all lines.
    fn flush(&mut self, l2: &mut [u32]) {
        for i in 0..self.dirty_list.len() {
            let w = self.dirty_list[i] as usize;
            if self.slot_epoch[w] == self.epoch && self.dirty[w] {
                l2[w] = self.value[w];
            }
        }
        self.dirty_list.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped (needs 2^32 device fences): hard-reset so no
            // stale slot can alias the restarted epoch counter.
            self.slot_epoch.fill(0);
            self.epoch = 1;
        }
    }
}

/// The global-memory hierarchy: one L2 array plus one L1 per SM.
#[derive(Debug)]
pub struct GlobalMem {
    l2: Vec<u32>,
    l1: Vec<SmL1>,
}

impl GlobalMem {
    /// Creates a memory of `words` zero-initialized 4-byte words served by
    /// `num_sms` streaming multiprocessors.
    #[must_use]
    pub fn new(words: usize, num_sms: usize) -> Self {
        GlobalMem {
            l2: vec![0; words],
            l1: (0..num_sms).map(|_| SmL1::new()).collect(),
        }
    }

    /// Total words of backing storage.
    #[must_use]
    pub fn words(&self) -> usize {
        self.l2.len()
    }

    fn word_index(&self, addr: u32) -> Result<usize, SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::UnalignedAccess { addr });
        }
        let w = (addr / 4) as usize;
        if w >= self.l2.len() {
            return Err(SimError::OutOfBounds {
                addr,
                words: self.l2.len(),
            });
        }
        Ok(w)
    }

    /// Word load by a thread on `sm`.
    pub fn load(&mut self, sm: usize, addr: u32, volatile: bool) -> Result<u32, SimError> {
        let w = self.word_index(addr)?;
        if volatile {
            // Volatile reads observe L2, but a local *dirty* line is this
            // SM's own newer write and must win (program order).
            if let Some(line) = self.l1[sm].get(w) {
                if line.dirty {
                    return Ok(line.value);
                }
                self.l1[sm].remove(w);
            }
            return Ok(self.l2[w]);
        }
        if let Some(line) = self.l1[sm].get(w) {
            return Ok(line.value);
        }
        let v = self.l2[w];
        self.l1[sm].insert(
            w,
            Line {
                value: v,
                dirty: false,
            },
        );
        Ok(v)
    }

    /// Word store by a thread on `sm`.
    pub fn store(
        &mut self,
        sm: usize,
        addr: u32,
        value: u32,
        volatile: bool,
    ) -> Result<(), SimError> {
        let w = self.word_index(addr)?;
        if volatile {
            self.l1[sm].remove(w);
            self.l2[w] = value;
        } else {
            self.l1[sm].insert(w, Line { value, dirty: true });
        }
        Ok(())
    }

    /// Scoped fence issued by a thread on `sm`.
    ///
    /// Device scope: write back dirty lines, drop everything (acquire +
    /// release visibility). Block scope: intra-SM visibility is already
    /// immediate, so only ordering (tracked by the detector) is affected.
    pub fn fence(&mut self, sm: usize, scope: Scope) {
        if scope == Scope::Device {
            self.l1[sm].flush(&mut self.l2);
        }
    }

    /// Scoped atomic read-modify-write; returns the old value.
    ///
    /// `cmp` is only meaningful for [`AtomOp::Cas`].
    pub fn atomic(
        &mut self,
        sm: usize,
        addr: u32,
        op: AtomOp,
        src: u32,
        cmp: u32,
        scope: Scope,
    ) -> Result<u32, SimError> {
        let w = self.word_index(addr)?;
        match scope {
            Scope::Block => {
                // RMW on the SM-local view: atomic w.r.t. this SM only.
                let old = match self.l1[sm].get(w) {
                    Some(line) => line.value,
                    None => self.l2[w],
                };
                let new = apply_atom(op, old, src, cmp);
                self.l1[sm].insert(
                    w,
                    Line {
                        value: new,
                        dirty: true,
                    },
                );
                Ok(old)
            }
            Scope::Device => {
                // Publish any local version first, then RMW on L2; do not
                // keep a local copy (atomics bypass L1 on real hardware).
                if let Some(line) = self.l1[sm].get(w) {
                    if line.dirty {
                        self.l2[w] = line.value;
                    }
                    self.l1[sm].remove(w);
                }
                let old = self.l2[w];
                self.l2[w] = apply_atom(op, old, src, cmp);
                Ok(old)
            }
        }
    }

    /// Host-side read of the coherent (L2) value, used to seed inputs and
    /// check results after all SM state has been flushed by kernel exit.
    #[must_use]
    pub fn read_coherent(&self, addr: u32) -> u32 {
        self.l2[(addr / 4) as usize]
    }

    /// Host-side coherent write (cudaMemcpy-to-device analogue).
    pub fn write_coherent(&mut self, addr: u32, value: u32) {
        let w = (addr / 4) as usize;
        self.l2[w] = value;
        for l1 in &mut self.l1 {
            l1.remove(w);
        }
    }

    /// Kernel-exit flush: the implicit device-wide barrier at the end of a
    /// grid publishes every SM's writes (§2.1, implicit barrier 3).
    pub fn flush_all(&mut self) {
        for sm in 0..self.l1.len() {
            self.fence(sm, Scope::Device);
        }
    }
}

/// Pure RMW step shared by both scopes.
fn apply_atom(op: AtomOp, old: u32, src: u32, cmp: u32) -> u32 {
    match op {
        AtomOp::Add => old.wrapping_add(src),
        AtomOp::Exch => src,
        AtomOp::Cas => {
            if old == cmp {
                src
            } else {
                old
            }
        }
        AtomOp::Min => old.min(src),
        AtomOp::Max => old.max(src),
        AtomOp::Or => old | src,
        AtomOp::And => old & src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> GlobalMem {
        GlobalMem::new(64, 4)
    }

    #[test]
    fn store_visible_on_same_sm_immediately() {
        let mut m = mem();
        m.store(0, 8, 42, false).unwrap();
        assert_eq!(m.load(0, 8, false).unwrap(), 42);
    }

    #[test]
    fn store_invisible_across_sms_without_fence() {
        let mut m = mem();
        m.store(0, 8, 42, false).unwrap();
        assert_eq!(
            m.load(1, 8, false).unwrap(),
            0,
            "SM1 must not see SM0's unfenced store"
        );
    }

    #[test]
    fn device_fence_publishes_to_other_sms() {
        let mut m = mem();
        m.store(0, 8, 42, false).unwrap();
        m.fence(0, Scope::Device);
        assert_eq!(m.load(1, 8, false).unwrap(), 42);
    }

    #[test]
    fn block_fence_does_not_publish() {
        let mut m = mem();
        m.store(0, 8, 42, false).unwrap();
        m.fence(0, Scope::Block);
        assert_eq!(m.load(1, 8, false).unwrap(), 0);
    }

    #[test]
    fn stale_clean_line_persists_until_fence() {
        let mut m = mem();
        assert_eq!(m.load(1, 8, false).unwrap(), 0); // SM1 caches clean 0
        m.store(0, 8, 7, false).unwrap();
        m.fence(0, Scope::Device);
        // SM1 still sees its stale clean copy...
        assert_eq!(m.load(1, 8, false).unwrap(), 0);
        // ...until it fences (acquire side).
        m.fence(1, Scope::Device);
        assert_eq!(m.load(1, 8, false).unwrap(), 7);
    }

    #[test]
    fn volatile_load_bypasses_clean_l1() {
        let mut m = mem();
        assert_eq!(m.load(1, 8, false).unwrap(), 0);
        m.store(0, 8, 7, false).unwrap();
        m.fence(0, Scope::Device);
        assert_eq!(
            m.load(1, 8, true).unwrap(),
            7,
            "volatile read must observe L2"
        );
    }

    #[test]
    fn volatile_store_writes_through() {
        let mut m = mem();
        m.store(0, 8, 9, true).unwrap();
        assert_eq!(m.load(1, 8, false).unwrap(), 9);
    }

    #[test]
    fn block_atomic_loses_updates_across_sms() {
        // The Figure 1 failure mode: two SMs atomicAdd_block the same word.
        let mut m = mem();
        let one = 1;
        assert_eq!(
            m.atomic(0, 0, AtomOp::Add, one, 0, Scope::Block).unwrap(),
            0
        );
        assert_eq!(
            m.atomic(1, 0, AtomOp::Add, one, 0, Scope::Block).unwrap(),
            0
        );
        m.flush_all();
        // One of the two increments is lost: both RMWed their local view.
        assert_eq!(m.read_coherent(0), 1);
    }

    #[test]
    fn device_atomic_is_globally_atomic() {
        let mut m = mem();
        assert_eq!(m.atomic(0, 0, AtomOp::Add, 1, 0, Scope::Device).unwrap(), 0);
        assert_eq!(m.atomic(1, 0, AtomOp::Add, 1, 0, Scope::Device).unwrap(), 1);
        assert_eq!(m.read_coherent(0), 2);
    }

    #[test]
    fn device_atomic_publishes_local_dirty_line_first() {
        let mut m = mem();
        m.store(0, 0, 10, false).unwrap();
        // The device atomic must observe this SM's own program-order store.
        assert_eq!(
            m.atomic(0, 0, AtomOp::Add, 1, 0, Scope::Device).unwrap(),
            10
        );
        assert_eq!(m.read_coherent(0), 11);
    }

    #[test]
    fn cas_semantics() {
        let mut m = mem();
        assert_eq!(m.atomic(0, 4, AtomOp::Cas, 5, 0, Scope::Device).unwrap(), 0);
        assert_eq!(m.read_coherent(4), 5);
        // Failing CAS leaves value intact.
        assert_eq!(m.atomic(0, 4, AtomOp::Cas, 9, 0, Scope::Device).unwrap(), 5);
        assert_eq!(m.read_coherent(4), 5);
    }

    #[test]
    fn atom_ops_cover_all_variants() {
        assert_eq!(apply_atom(AtomOp::Add, 2, 3, 0), 5);
        assert_eq!(apply_atom(AtomOp::Exch, 2, 3, 0), 3);
        assert_eq!(apply_atom(AtomOp::Min, 2, 3, 0), 2);
        assert_eq!(apply_atom(AtomOp::Max, 2, 3, 0), 3);
        assert_eq!(apply_atom(AtomOp::Or, 0b01, 0b10, 0), 0b11);
        assert_eq!(apply_atom(AtomOp::And, 0b11, 0b10, 0), 0b10);
        assert_eq!(
            apply_atom(AtomOp::Add, u32::MAX, 1, 0),
            0,
            "atomicAdd wraps"
        );
    }

    #[test]
    fn unaligned_and_oob_accesses_fault() {
        let mut m = mem();
        assert!(matches!(
            m.load(0, 2, false),
            Err(SimError::UnalignedAccess { .. })
        ));
        assert!(matches!(
            m.load(0, 4 * 64, false),
            Err(SimError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.store(0, 1, 0, false),
            Err(SimError::UnalignedAccess { .. })
        ));
    }

    #[test]
    fn kernel_exit_flush_publishes_everything() {
        let mut m = mem();
        m.store(2, 12, 99, false).unwrap();
        m.flush_all();
        assert_eq!(m.read_coherent(12), 99);
    }

    #[test]
    fn host_write_invalidates_cached_copies() {
        let mut m = mem();
        assert_eq!(m.load(0, 8, false).unwrap(), 0); // cache clean 0 on SM0
        m.write_coherent(8, 5);
        assert_eq!(m.load(0, 8, false).unwrap(), 5);
    }
}
