//! A SASS-style disassembler for kernel objects.
//!
//! Race reports reference instructions by pc; the disassembler renders the
//! surrounding code the way `nvdisasm` would, so a report like
//! "ITS race at pc 8" can be read in context:
//!
//! ```text
//! /*0007*/  SETP.EQ  r4, r0, 0x0
//! /*0008*/  LDG.E    r5, [r1+0x4]      // a[0] = a[1]
//! /*0009*/  STG.E    [r1], r5
//! ```

use std::fmt::Write as _;

use crate::ir::{AluOp, AtomOp, CmpOp, Instr, Operand, Scope, Space, Special};
use crate::kernel::Kernel;

fn op(o: Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Imm(v) => format!("{:#x}", v),
    }
}

fn alu_mnemonic(a: AluOp) -> &'static str {
    match a {
        AluOp::Add => "IADD",
        AluOp::Sub => "ISUB",
        AluOp::Mul => "IMUL",
        AluOp::Div => "IDIV.U32",
        AluOp::Rem => "IREM.U32",
        AluOp::Min => "IMIN.U32",
        AluOp::Max => "IMAX.U32",
        AluOp::And => "LOP.AND",
        AluOp::Or => "LOP.OR",
        AluOp::Xor => "LOP.XOR",
        AluOp::Shl => "SHL",
        AluOp::Shr => "SHR.U32",
    }
}

fn cmp_mnemonic(c: CmpOp) -> &'static str {
    match c {
        CmpOp::Eq => "SETP.EQ",
        CmpOp::Ne => "SETP.NE",
        CmpOp::Lt => "SETP.LT.U32",
        CmpOp::Le => "SETP.LE.U32",
        CmpOp::Gt => "SETP.GT.U32",
        CmpOp::Ge => "SETP.GE.U32",
        CmpOp::SLt => "SETP.LT.S32",
        CmpOp::SGt => "SETP.GT.S32",
    }
}

fn special_name(s: Special) -> &'static str {
    match s {
        Special::Tid => "%tid.x",
        Special::BlockId => "%ctaid.x",
        Special::BlockDim => "%ntid.x",
        Special::GridDim => "%nctaid.x",
        Special::LaneId => "%laneid",
        Special::WarpInBlock => "%warpid",
        Special::GlobalWarpId => "%gwarpid",
        Special::GlobalTid => "%gtid",
        Special::ActiveMask => "%activemask",
    }
}

fn atom_mnemonic(a: AtomOp, scope: Scope) -> String {
    let base = match a {
        AtomOp::Add => "ATOM.ADD",
        AtomOp::Exch => "ATOM.EXCH",
        AtomOp::Cas => "ATOM.CAS",
        AtomOp::Min => "ATOM.MIN.U32",
        AtomOp::Max => "ATOM.MAX.U32",
        AtomOp::Or => "ATOM.OR",
        AtomOp::And => "ATOM.AND",
    };
    match scope {
        Scope::Block => format!("{base}.CTA"),
        Scope::Device => format!("{base}.GPU"),
    }
}

/// Renders one instruction in SASS-ish syntax (without pc or annotation).
#[must_use]
pub fn render_instr(i: &Instr) -> String {
    match *i {
        Instr::Mov { rd, src } => format!("MOV      r{}, {}", rd.0, op(src)),
        Instr::Read { rd, sp } => format!("S2R      r{}, {}", rd.0, special_name(sp)),
        Instr::Param { rd, idx } => format!("LDC      r{}, c[0x0][{idx}]", rd.0),
        Instr::Alu { op: a, rd, ra, b } => {
            format!("{:<8} r{}, r{}, {}", alu_mnemonic(a), rd.0, ra.0, op(b))
        }
        Instr::Setp { op: c, rd, ra, b } => {
            format!("{:<8} r{}, r{}, {}", cmp_mnemonic(c), rd.0, ra.0, op(b))
        }
        Instr::Sel { rd, cond, a, b } => {
            format!("SEL      r{}, r{}, {}, {}", rd.0, cond.0, op(a), op(b))
        }
        Instr::Bra { target } => format!("BRA      {target:#06x}"),
        Instr::BraIf { cond, target } => format!("@r{}  BRA {target:#06x}", cond.0),
        Instr::BraIfNot { cond, target } => format!("@!r{} BRA {target:#06x}", cond.0),
        Instr::Ld {
            rd,
            addr,
            offset,
            space,
            volatile,
        } => {
            let m = match (space, volatile) {
                (Space::Global, false) => "LDG.E",
                (Space::Global, true) => "LDG.E.VOLATILE",
                (Space::Shared, _) => "LDS",
            };
            format!("{:<8} r{}, [r{}{:+#x}]", m, rd.0, addr.0, offset)
        }
        Instr::St {
            addr,
            offset,
            val,
            space,
            volatile,
        } => {
            let m = match (space, volatile) {
                (Space::Global, false) => "STG.E",
                (Space::Global, true) => "STG.E.VOLATILE",
                (Space::Shared, _) => "STS",
            };
            format!("{:<8} [r{}{:+#x}], r{}", m, addr.0, offset, val.0)
        }
        Instr::Atom {
            op: a,
            scope,
            rd,
            addr,
            offset,
            src,
            cmp,
        } => {
            let m = atom_mnemonic(a, scope);
            if a == AtomOp::Cas {
                format!(
                    "{:<8} r{}, [r{}{:+#x}], r{}, r{}",
                    m, rd.0, addr.0, offset, cmp.0, src.0
                )
            } else {
                format!(
                    "{:<8} r{}, [r{}{:+#x}], r{}",
                    m, rd.0, addr.0, offset, src.0
                )
            }
        }
        Instr::Membar { scope } => match scope {
            Scope::Block => "MEMBAR.CTA".to_string(),
            Scope::Device => "MEMBAR.GPU".to_string(),
        },
        Instr::BarSync => "BAR.SYNC 0x0".to_string(),
        Instr::BarWarp => "WARPSYNC 0xffffffff".to_string(),
        Instr::Exit => "EXIT".to_string(),
        Instr::Nop => "NOP".to_string(),
    }
}

/// Disassembles a whole kernel, one line per instruction, with the debug
/// annotation (if any) as a trailing comment.
#[must_use]
pub fn disassemble(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        ".kernel {}  // {} instructions",
        kernel.name,
        kernel.code.len()
    );
    for (pc, instr) in kernel.code.iter().enumerate() {
        let _ = write!(out, "/*{pc:04x}*/  {:<44}", render_instr(instr));
        if let Some(line) = kernel.line(pc) {
            let _ = write!(out, "// {line}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a window of `radius` instructions around `pc`, marking it —
/// what a race report's "show me the code" affordance prints.
#[must_use]
pub fn context(kernel: &Kernel, pc: usize, radius: usize) -> String {
    let lo = pc.saturating_sub(radius);
    let hi = (pc + radius + 1).min(kernel.code.len());
    let mut out = String::new();
    for i in lo..hi {
        let marker = if i == pc { ">>" } else { "  " };
        let _ = write!(
            out,
            "{marker} /*{i:04x}*/  {:<44}",
            render_instr(&kernel.code[i])
        );
        if let Some(line) = kernel.line(i) {
            let _ = write!(out, "// {line}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::KernelBuilder;
    use crate::ir::{Reg, Scope};

    fn sample() -> Kernel {
        let mut b = KernelBuilder::new("sample");
        let tid = b.special(Special::Tid);
        let base = b.param(0);
        let off = b.mul(tid, 4u32);
        let a = b.add(base, off);
        b.loc("the racy store");
        b.st(a, 0, tid);
        let one = b.imm(1);
        let _ = b.atomic_cas(Scope::Device, base, 0, one, one);
        b.membar(Scope::Block);
        b.syncthreads();
        b.syncwarp();
        b.build()
    }

    #[test]
    fn disassembly_covers_every_instruction() {
        let k = sample();
        let d = disassemble(&k);
        assert_eq!(
            d.lines().count(),
            k.code.len() + 1,
            "header + one line per instr"
        );
        assert!(d.contains("S2R"));
        assert!(d.contains("STG.E"));
        assert!(d.contains("ATOM.CAS.GPU"));
        assert!(d.contains("MEMBAR.CTA"));
        assert!(d.contains("BAR.SYNC"));
        assert!(d.contains("WARPSYNC"));
        assert!(d.contains("EXIT"));
    }

    #[test]
    fn annotations_appear_as_comments() {
        let d = disassemble(&sample());
        assert!(d.contains("// the racy store"));
    }

    #[test]
    fn context_marks_the_pc() {
        let k = sample();
        let c = context(&k, 4, 1);
        assert_eq!(c.lines().count(), 3);
        assert!(c.lines().nth(1).unwrap().starts_with(">>"));
    }

    #[test]
    fn context_clamps_at_boundaries() {
        let k = sample();
        let c = context(&k, 0, 3);
        assert!(c.lines().next().unwrap().starts_with(">>"));
        let end = k.code.len() - 1;
        let c = context(&k, end, 3);
        assert!(c.lines().last().unwrap().starts_with(">>"));
    }

    #[test]
    fn every_opcode_renders() {
        use crate::ir::{AluOp, AtomOp, CmpOp, Instr, Operand, Space};
        let r = Reg(1);
        let instrs = vec![
            Instr::Mov {
                rd: r,
                src: Operand::Imm(3),
            },
            Instr::Read {
                rd: r,
                sp: Special::ActiveMask,
            },
            Instr::Param { rd: r, idx: 2 },
            Instr::Alu {
                op: AluOp::Xor,
                rd: r,
                ra: r,
                b: Operand::Reg(r),
            },
            Instr::Setp {
                op: CmpOp::SLt,
                rd: r,
                ra: r,
                b: Operand::Imm(0),
            },
            Instr::Sel {
                rd: r,
                cond: r,
                a: Operand::Imm(1),
                b: Operand::Imm(2),
            },
            Instr::Bra { target: 0 },
            Instr::BraIf { cond: r, target: 0 },
            Instr::BraIfNot { cond: r, target: 0 },
            Instr::Ld {
                rd: r,
                addr: r,
                offset: 4,
                space: Space::Shared,
                volatile: false,
            },
            Instr::St {
                addr: r,
                offset: -4,
                val: r,
                space: Space::Global,
                volatile: true,
            },
            Instr::Atom {
                op: AtomOp::Min,
                scope: Scope::Block,
                rd: r,
                addr: r,
                offset: 0,
                src: r,
                cmp: r,
            },
            Instr::Membar {
                scope: Scope::Device,
            },
            Instr::Nop,
        ];
        for i in instrs {
            assert!(!render_instr(&i).is_empty());
        }
    }
}
