//! Residency-bitmap edge cases: zero-length allocations, page-boundary
//! addressing, and the degenerate device budgets.

use uvm_sim::{ManagedRegion, Touch, UvmConfig};

fn cfg() -> UvmConfig {
    UvmConfig {
        page_bytes: 4096,
        fault_cost: 100,
        evict_cost: 150,
        prefault_cost: 3,
    }
}

#[test]
fn zero_length_region_is_inert() {
    let mut r = ManagedRegion::new(cfg(), 0, 1 << 20).unwrap();
    assert_eq!(r.len_bytes(), 0);
    assert_eq!(r.total_pages(), 0);
    assert_eq!(r.resident_pages(), 0);
    // Prefaulting nothing costs nothing and makes nothing resident.
    assert_eq!(r.prefault(u64::MAX), 0);
    assert_eq!(r.resident_pages(), 0);
    assert_eq!(r.stats(), uvm_sim::UvmStats::default());
}

#[test]
#[should_panic(expected = "beyond region")]
fn touching_a_zero_length_region_panics() {
    let mut r = ManagedRegion::new(cfg(), 0, 1 << 20).unwrap();
    let _ = r.touch(0);
}

#[test]
fn page_boundary_addresses_resolve_to_the_right_page() {
    let page = cfg().page_bytes;
    // Two full pages plus one byte: three pages total.
    let mut r = ManagedRegion::new(cfg(), 2 * page + 1, 1 << 30).unwrap();
    assert_eq!(r.total_pages(), 3);

    // Last byte of page 0 and first byte of page 1 are different pages.
    assert!(matches!(r.touch(page - 1), Touch::Fault { .. }));
    assert_eq!(r.resident_pages(), 1);
    assert!(matches!(r.touch(page), Touch::Fault { .. }));
    assert_eq!(r.resident_pages(), 2);
    // Same pages again: hits, no new residency.
    assert_eq!(r.touch(page - 1), Touch::Hit);
    assert_eq!(r.touch(page), Touch::Hit);
    assert_eq!(r.resident_pages(), 2);

    // The final one-byte tail page is addressable...
    assert!(matches!(r.touch(2 * page), Touch::Fault { .. }));
    assert_eq!(r.resident_pages(), 3);
    assert_eq!(r.stats().faults, 3);
}

#[test]
#[should_panic(expected = "beyond region")]
fn first_byte_past_the_region_panics() {
    let page = cfg().page_bytes;
    let mut r = ManagedRegion::new(cfg(), 2 * page + 1, 1 << 30).unwrap();
    let _ = r.touch(2 * page + 1);
}

#[test]
fn prefault_is_capped_by_request_region_and_budget() {
    let page = cfg().page_bytes;
    let mut r = ManagedRegion::new(cfg(), 10 * page, 1 << 30).unwrap();
    // Request covers 2.5 pages → rounds up to 3.
    let cycles = r.prefault(2 * page + page / 2);
    assert_eq!(r.resident_pages(), 3);
    assert_eq!(cycles, 3 * 3);
    // Re-prefaulting the same prefix is free (already resident).
    assert_eq!(r.prefault(3 * page), 0);

    // A tiny budget caps the resident set regardless of the request.
    let mut tight = ManagedRegion::new(cfg(), 10 * page, 2 * page).unwrap();
    let _ = tight.prefault(u64::MAX);
    assert_eq!(tight.resident_pages(), 2);
    assert_eq!(tight.stats().prefaulted_pages, 2);
}

#[test]
fn zero_budget_region_faults_remotely_forever() {
    let page = cfg().page_bytes;
    let mut r = ManagedRegion::new(cfg(), 4 * page, 0).unwrap();
    // Every touch pays fault + evict and residency never grows.
    for _ in 0..3 {
        let t = r.touch(0);
        assert_eq!(t, Touch::Fault { cycles: 100 + 150 });
    }
    assert_eq!(r.resident_pages(), 0);
    let s = r.stats();
    assert_eq!(s.faults, 3);
    assert_eq!(s.evictions, 3);
    assert_eq!(s.fault_cycles, 3 * 250);
    // And prefaulting with no budget is a no-op.
    assert_eq!(r.prefault(u64::MAX), 0);
    assert_eq!(r.resident_pages(), 0);
}

#[test]
fn fifo_eviction_cycles_through_pages_at_the_budget_edge() {
    let page = cfg().page_bytes;
    let mut r = ManagedRegion::new(cfg(), 4 * page, 2 * page).unwrap();
    assert!(matches!(r.touch(0), Touch::Fault { .. }));
    assert!(matches!(r.touch(page), Touch::Fault { .. }));
    assert_eq!(r.resident_pages(), 2);
    // Page 2 evicts page 0 (FIFO head): re-touching 0 faults again.
    let t = r.touch(2 * page);
    assert_eq!(t, Touch::Fault { cycles: 100 + 150 });
    assert_eq!(r.resident_pages(), 2);
    assert!(matches!(r.touch(0), Touch::Fault { .. }));
    assert_eq!(r.stats().evictions, 2);
}
