//! # uvm-sim: Unified Virtual Memory for the iGUARD reproduction
//!
//! iGUARD allocates its ~4× memory metadata with `cudaMallocManaged` so that
//! **no device memory is pinned** (§6.1 "Allocating metadata"): virtual
//! pages are materialized on the GPU by demand faults, migrated back to the
//! host under pressure, and — when free device memory permits — *prefaulted*
//! at setup time so the hot path never faults. Figure 14 of the paper is
//! entirely a property of this mechanism: iGUARD degrades gracefully as the
//! application footprint grows, while Barracuda's reserve-up-front policy
//! runs out of memory.
//!
//! This crate simulates exactly that: a managed virtual allocation with a
//! page residency set bounded by available device bytes, FIFO eviction, and
//! cycle charges for faults, migrations, and prefault initialization. It
//! stores no data — the *functional* metadata lives in the detector; this
//! models where the pages live and what touching them costs.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;

use faults::{FaultInjector, FaultSite, FaultStats};

/// A structurally invalid UVM request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UvmError {
    /// The migration granularity must be at least one byte.
    ZeroPageSize,
    /// A touch beyond the virtual allocation — unmapped managed memory.
    OutOfRange { offset: u64, len_bytes: u64 },
}

impl fmt::Display for UvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UvmError::ZeroPageSize => write!(f, "UVM page size must be positive"),
            UvmError::OutOfRange { offset, len_bytes } => {
                write!(f, "touch at {offset} beyond region of {len_bytes} B")
            }
        }
    }
}

impl std::error::Error for UvmError {}

/// Cost parameters of the simulated UVM driver (cycles).
#[derive(Debug, Clone)]
pub struct UvmConfig {
    /// Migration granularity. Real UVM migrates in 64 KiB–2 MiB blocks; we
    /// use 2 MiB, the large-page size the driver prefers for streaming.
    pub page_bytes: u64,
    /// GPU page-fault service cost (fault + map + copy) per page.
    pub fault_cost: u64,
    /// Additional cost when servicing a fault requires evicting a victim
    /// page back to the host first (memory oversubscription).
    pub evict_cost: u64,
    /// Per-page cost of prefaulting via `cudaMemset` at setup — batched and
    /// pipelined, so much cheaper than a demand fault.
    pub prefault_cost: u64,
}

impl Default for UvmConfig {
    fn default() -> Self {
        UvmConfig {
            page_bytes: 2 << 20,
            fault_cost: 60,
            evict_cost: 90,
            prefault_cost: 3,
        }
    }
}

/// Outcome of touching one address of a managed allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// Page already resident on the device: free.
    Hit,
    /// Page faulted in; carries the cycle cost charged.
    Fault { cycles: u64 },
}

impl Touch {
    /// Cycles this touch cost.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        match self {
            Touch::Hit => 0,
            Touch::Fault { cycles } => *cycles,
        }
    }
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UvmStats {
    /// Demand faults serviced.
    pub faults: u64,
    /// Faults that additionally evicted a victim page.
    pub evictions: u64,
    /// Pages prefaulted at setup.
    pub prefaulted_pages: u64,
    /// Total cycles charged for faults + evictions.
    pub fault_cycles: u64,
    /// Total cycles charged for prefaulting.
    pub prefault_cycles: u64,
    /// Injected eviction storms: resident pages stolen behind the
    /// detector's back by the fault plane (not counted in `evictions`).
    pub injected_evictions: u64,
    /// Injected device-OOM denials: prefault passes cut short by the
    /// fault plane.
    pub injected_oom_denials: u64,
    /// Cycles charged for injected faults (kept separate from
    /// `fault_cycles` so the zero-fault cost model is untouched).
    pub injected_cycles: u64,
}

/// One `cudaMallocManaged` region with demand-paged device residency.
///
/// Residency is bounded by `device_budget_bytes`: the device memory left
/// over after the application's own allocations. Exceeding it triggers
/// FIFO eviction — the graceful-degradation regime of Figure 14.
#[derive(Debug)]
pub struct ManagedRegion {
    cfg: UvmConfig,
    len_bytes: u64,
    device_budget_pages: u64,
    /// Residency bitmap indexed by page, grown lazily to the touched
    /// high-water page. A flat flag per page replaces the old
    /// `HashSet<u64>` — the residency check runs on every metadata
    /// access, and page indices are small (region bytes / 2 MiB).
    resident: Vec<bool>,
    resident_count: u64,
    fifo: VecDeque<u64>,
    stats: UvmStats,
    faults: FaultInjector,
}

impl ManagedRegion {
    /// Allocates `len_bytes` of *virtual* space. Nothing is resident yet,
    /// exactly like `cudaMallocManaged` (§6.1: "it only allocates virtual
    /// addresses").
    pub fn new(
        cfg: UvmConfig,
        len_bytes: u64,
        device_budget_bytes: u64,
    ) -> Result<Self, UvmError> {
        if cfg.page_bytes == 0 {
            return Err(UvmError::ZeroPageSize);
        }
        let device_budget_pages = device_budget_bytes / cfg.page_bytes;
        Ok(ManagedRegion {
            cfg,
            len_bytes,
            device_budget_pages,
            resident: Vec::new(),
            resident_count: 0,
            fifo: VecDeque::new(),
            stats: UvmStats::default(),
            faults: FaultInjector::disabled(),
        })
    }

    /// Attaches a fault injector (replacing the default disabled one).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Injected-fault counters for this region.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    #[inline]
    fn is_resident(&self, page: u64) -> bool {
        self.resident.get(page as usize).copied().unwrap_or(false)
    }

    #[inline]
    fn set_resident(&mut self, page: u64) {
        let p = page as usize;
        if p >= self.resident.len() {
            self.resident.resize(p + 1, false);
        }
        self.resident[p] = true;
        self.resident_count += 1;
    }

    /// Virtual length of the region.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Total pages spanned by the region.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.len_bytes.div_ceil(self.cfg.page_bytes)
    }

    /// Pages currently resident on the device.
    #[must_use]
    pub fn resident_pages(&self) -> u64 {
        self.resident_count
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> UvmStats {
        self.stats
    }

    /// Prefaults up to `max_bytes` of the region onto the device (the
    /// `cudaMemset` warm-up iGUARD performs when free memory allows).
    /// Returns the cycle cost to charge as *setup* time.
    pub fn prefault(&mut self, max_bytes: u64) -> u64 {
        let want = max_bytes.min(self.len_bytes).div_ceil(self.cfg.page_bytes);
        let mut cycles = 0;
        for page in 0..want {
            if self.resident_count >= self.device_budget_pages {
                break;
            }
            if self.faults.enabled() && self.faults.fire(FaultSite::UvmDeviceOom) {
                // Device memory ran out under the allocator's feet: the
                // remaining pages stay host-resident and will demand-fault.
                self.stats.injected_oom_denials += 1;
                break;
            }
            if !self.is_resident(page) {
                self.set_resident(page);
                self.fifo.push_back(page);
                self.stats.prefaulted_pages += 1;
                cycles += self.cfg.prefault_cost;
            }
        }
        self.stats.prefault_cycles += cycles;
        cycles
    }

    /// Touches `offset` (a byte offset into the region), faulting the page
    /// in if necessary. Returns what happened and what it cost.
    ///
    /// # Panics
    /// Panics if `offset` is beyond the allocation — touching unmapped
    /// managed memory is a tool bug, not a runtime condition. Fallible
    /// callers use [`ManagedRegion::try_touch`].
    pub fn touch(&mut self, offset: u64) -> Touch {
        self.try_touch(offset)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ManagedRegion::touch`]: out-of-range offsets become a
    /// typed error instead of a panic.
    pub fn try_touch(&mut self, offset: u64) -> Result<Touch, UvmError> {
        if offset >= self.len_bytes {
            return Err(UvmError::OutOfRange {
                offset,
                len_bytes: self.len_bytes,
            });
        }
        let page = offset / self.cfg.page_bytes;
        if self.is_resident(page) {
            if self.faults.enabled() && self.faults.fire(FaultSite::UvmEvictStorm) {
                // An eviction storm stole the page behind our back: pay a
                // re-migration (fault + evict) without disturbing the
                // zero-fault residency bookkeeping.
                let cycles = self.cfg.fault_cost + self.cfg.evict_cost;
                self.stats.injected_evictions += 1;
                self.stats.injected_cycles += cycles;
                return Ok(Touch::Fault { cycles });
            }
            return Ok(Touch::Hit);
        }
        let mut cycles = self.cfg.fault_cost;
        self.stats.faults += 1;
        if self.device_budget_pages == 0 {
            // Nothing fits on-device: every touch is a remote access; the
            // page never becomes resident (pathological oversubscription).
            cycles += self.cfg.evict_cost;
            self.stats.evictions += 1;
            self.stats.fault_cycles += cycles;
            return Ok(Touch::Fault { cycles });
        }
        if self.resident_count >= self.device_budget_pages {
            let victim = self.fifo.pop_front().expect("resident set non-empty");
            self.resident[victim as usize] = false;
            self.resident_count -= 1;
            self.stats.evictions += 1;
            cycles += self.cfg.evict_cost;
        }
        self.set_resident(page);
        self.fifo.push_back(page);
        self.stats.fault_cycles += cycles;
        Ok(Touch::Fault { cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> UvmConfig {
        UvmConfig {
            page_bytes: 4096,
            fault_cost: 100,
            evict_cost: 150,
            prefault_cost: 10,
        }
    }

    #[test]
    fn allocation_is_virtual_only() {
        let r = ManagedRegion::new(cfg(), 1 << 20, 1 << 20).unwrap();
        assert_eq!(r.resident_pages(), 0);
        assert_eq!(r.total_pages(), 256);
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 1 << 20).unwrap();
        assert_eq!(r.touch(0), Touch::Fault { cycles: 100 });
        assert_eq!(r.touch(8), Touch::Hit);
        assert_eq!(r.touch(4095), Touch::Hit);
        assert_eq!(r.touch(4096), Touch::Fault { cycles: 100 });
        assert_eq!(r.stats().faults, 2);
    }

    #[test]
    fn prefault_makes_touches_free() {
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 1 << 20).unwrap();
        let setup = r.prefault(u64::MAX);
        assert_eq!(setup, 256 * 10);
        assert_eq!(r.stats().prefaulted_pages, 256);
        for page in 0..256u64 {
            assert_eq!(r.touch(page * 4096), Touch::Hit);
        }
        assert_eq!(r.stats().faults, 0);
    }

    #[test]
    fn prefault_is_bounded_by_device_budget() {
        // Budget of 8 pages; region of 256 pages.
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 8 * 4096).unwrap();
        r.prefault(u64::MAX);
        assert_eq!(r.resident_pages(), 8);
    }

    #[test]
    fn oversubscription_evicts_fifo() {
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 2 * 4096).unwrap();
        assert!(matches!(r.touch(0), Touch::Fault { cycles: 100 }));
        assert!(matches!(r.touch(4096), Touch::Fault { cycles: 100 }));
        // Third page evicts page 0 (FIFO): fault + evict cost.
        assert_eq!(r.touch(2 * 4096), Touch::Fault { cycles: 250 });
        assert_eq!(r.stats().evictions, 1);
        // Page 0 must fault again (and evict page 1).
        assert_eq!(r.touch(0), Touch::Fault { cycles: 250 });
    }

    #[test]
    fn zero_budget_never_becomes_resident() {
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 0).unwrap();
        assert!(matches!(r.touch(0), Touch::Fault { .. }));
        assert!(matches!(r.touch(0), Touch::Fault { .. }));
        assert_eq!(r.resident_pages(), 0);
        assert_eq!(r.stats().evictions, 2);
    }

    #[test]
    fn partial_prefault_respects_byte_limit() {
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 1 << 20).unwrap();
        r.prefault(10 * 4096);
        assert_eq!(r.resident_pages(), 10);
        assert_eq!(r.touch(0), Touch::Hit);
        assert!(matches!(r.touch(11 * 4096), Touch::Fault { .. }));
    }

    #[test]
    fn stats_accumulate_cycles() {
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 4096).unwrap();
        let _ = r.touch(0);
        let _ = r.touch(4096); // evicts
        let s = r.stats();
        assert_eq!(s.fault_cycles, 100 + 250);
        assert_eq!(s.faults, 2);
    }

    #[test]
    #[should_panic(expected = "beyond region")]
    fn touch_beyond_region_panics() {
        let mut r = ManagedRegion::new(cfg(), 4096, 1 << 20).unwrap();
        let _ = r.touch(4096);
    }

    #[test]
    fn touch_cycles_accessor() {
        assert_eq!(Touch::Hit.cycles(), 0);
        assert_eq!(Touch::Fault { cycles: 7 }.cycles(), 7);
    }

    #[test]
    fn zero_page_size_is_a_typed_error() {
        let bad = UvmConfig {
            page_bytes: 0,
            ..cfg()
        };
        assert_eq!(
            ManagedRegion::new(bad, 1 << 20, 1 << 20).unwrap_err(),
            UvmError::ZeroPageSize
        );
    }

    #[test]
    fn try_touch_reports_out_of_range() {
        let mut r = ManagedRegion::new(cfg(), 4096, 1 << 20).unwrap();
        assert_eq!(
            r.try_touch(4096).unwrap_err(),
            UvmError::OutOfRange {
                offset: 4096,
                len_bytes: 4096
            }
        );
        assert!(r.try_touch(0).is_ok());
    }

    #[test]
    fn evict_storm_charges_without_disturbing_residency() {
        use faults::{FaultConfig, RATE_ONE};
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 1 << 20).unwrap();
        let _ = r.touch(0); // fault in page 0
        let fc = FaultConfig::disabled()
            .with_seed(5)
            .with_rate(FaultSite::UvmEvictStorm, RATE_ONE);
        r.set_faults(FaultInjector::new(&fc, "test"));
        // Every resident touch now pays a re-migration...
        assert_eq!(r.touch(0), Touch::Fault { cycles: 100 + 150 });
        let s = r.stats();
        assert_eq!(s.injected_evictions, 1);
        assert_eq!(s.injected_cycles, 250);
        // ...but the zero-fault counters and residency are untouched.
        assert_eq!((s.faults, s.evictions), (1, 0));
        assert_eq!(r.resident_pages(), 1);
        assert_eq!(r.fault_stats().get(FaultSite::UvmEvictStorm), 1);
    }

    #[test]
    fn injected_oom_cuts_prefault_short() {
        use faults::{FaultConfig, RATE_ONE};
        let mut r = ManagedRegion::new(cfg(), 1 << 20, 1 << 20).unwrap();
        let fc = FaultConfig::disabled()
            .with_seed(5)
            .with_rate(FaultSite::UvmDeviceOom, RATE_ONE);
        r.set_faults(FaultInjector::new(&fc, "test"));
        r.prefault(u64::MAX);
        let s = r.stats();
        assert_eq!(s.prefaulted_pages, 0);
        assert_eq!(s.injected_oom_denials, 1);
        // The denied pages demand-fault later instead.
        assert!(matches!(r.touch(0), Touch::Fault { .. }));
    }
}
