//! End-to-end degradation accounting: run the *actual* detector over a
//! real workload under random fault schedules and check that the
//! pipeline's own counters balance — every injected metadata eviction
//! appears in `IguardStats::missed_checks`, every channel loss is in
//! `ChannelStats::dropped`, and `Degradation::fully_accounted()` holds.
//!
//! The table-level mirror of this property lives in
//! `iguard/tests/proptest_fault_plane.rs` with far more cases; this suite
//! runs few cases because each one is a full simulated kernel.

use faults::{FaultConfig, FaultSite, RATE_ONE};
use iguard::IguardConfig;
use proptest::prelude::*;
use workloads::Size;

use bench::{gpu_config, run_iguard_with};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipeline_degradation_is_fully_accounted(
        seed in 0u64..1 << 32,
        evict_rate in 0u32..=RATE_ONE / 8,
        alias_rate in 0u32..=RATE_ONE / 8,
        drop_rate in 0u32..=RATE_ONE / 4,
        cap_pow in 6u32..10,
    ) {
        let faults = FaultConfig::disabled()
            .with_seed(seed)
            .with_rate(FaultSite::MetaEviction, evict_rate)
            .with_rate(FaultSite::MetaTagAlias, alias_rate)
            .with_rate(FaultSite::ReportDrop, drop_rate);
        let w = workloads::by_name("reduction").expect("reduction exists");
        let icfg = IguardConfig {
            faults: faults.clone(),
            table_capacity_words: Some(1usize << cap_pow),
            ..IguardConfig::default()
        };
        let run = run_iguard_with(&w, Size::Test, gpu_config(seed), icfg);

        let d = run.degradation;
        prop_assert!(
            d.fully_accounted(),
            "missed={} evictions={} sent={} drained+dropped={}",
            d.missed_checks,
            d.meta.total_evictions(),
            d.channel.sent,
            d.channel.drained + d.channel.dropped
        );
        // The detector's missed-check counter is exactly the table's
        // eviction total, and the injected share equals the fault
        // plane's own fire counts.
        prop_assert_eq!(d.missed_checks, d.meta.total_evictions());
        let f = &run.fault_stats;
        prop_assert_eq!(f.get(FaultSite::MetaEviction), d.meta.injected_evictions);
        prop_assert_eq!(f.get(FaultSite::MetaTagAlias), d.meta.injected_aliases);
        prop_assert!(d.channel.dropped >= f.get(FaultSite::ReportDrop));
    }
}
