//! Fast integration gate over the two headline tables, at reduced sizes
//! and through the parallel driver: every racey workload yields at least
//! its paper-reported race count (Table 4), and no race-free workload
//! yields any report at all (Table 5's zero-false-positive claim).

use bench::{run_jobs, DriverConfig, JobSpec, Outcome, RunOutput, ToolSpec, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

fn iguard_sweep(set: Vec<workloads::Workload>) -> Vec<(workloads::Workload, usize)> {
    let jobs = set
        .iter()
        .map(|w| {
            JobSpec::new(
                *w,
                ToolSpec::Iguard(IguardConfig::default()),
                Size::Test,
                DEFAULT_SEED,
            )
            .into_job()
        })
        .collect();
    set.into_iter()
        .zip(run_jobs(jobs, &DriverConfig::parallel(4)))
        .map(|(w, o)| match o {
            Outcome::Done {
                value: RunOutput::Iguard(r),
                ..
            } => (w, r.sites.len()),
            other => panic!("{} did not finish: {other:?}", w.name),
        })
        .collect()
}

#[test]
fn table4_counts_iguard_detects_at_least_the_paper_races() {
    let mut total = 0;
    for (w, found) in iguard_sweep(workloads::racey()) {
        assert!(
            found >= w.paper_races,
            "{}: found {found} races, paper reports {}",
            w.name,
            w.paper_races
        );
        total += found;
    }
    assert!(total >= 57, "Table 4 total must reach the paper's 57, got {total}");
}

#[test]
fn table5_counts_no_false_positives_on_clean_workloads() {
    for (w, found) in iguard_sweep(workloads::clean()) {
        assert_eq!(found, 0, "{}: {found} false positive(s)", w.name);
    }
}
