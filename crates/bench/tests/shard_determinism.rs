//! Shard-parallel determinism: for *any* shard count, execution mode
//! (inline or threaded), and batch size, the sharded detector's race
//! reports and verdict-relevant counters are byte-identical to the
//! serial detector — including under injected report-channel faults,
//! where both must also stay `fully_accounted`.
//!
//! The one accepted divergence is the metadata plane's *cycle* costs:
//! each shard owns a private UVM region, so `uvm_cycles` (and the
//! simulated times derived from it) follow a different — still
//! deterministic — paging pattern. Everything the verdict depends on is
//! compared field by field below.

use faults::{FaultConfig, FaultSite, RATE_ONE};
use iguard::{IguardConfig, ShardConfig};
use proptest::prelude::*;
use workloads::Size;

use bench::{gpu_config, run_iguard_sharded_with, run_iguard_with, IguardRun, DEFAULT_SEED};

/// Asserts everything verdict-relevant matches between a serial and a
/// sharded run (excluding `uvm_cycles` / simulated time, see module
/// docs). Returns an error string on mismatch so proptest can shrink.
fn assert_equivalent(serial: &IguardRun, sharded: &IguardRun) -> Result<(), String> {
    macro_rules! eq {
        ($field:expr, $a:expr, $b:expr) => {
            if $a != $b {
                return Err(format!("{}: serial {:?} != sharded {:?}", $field, $a, $b));
            }
        };
    }
    eq!("sites", &serial.sites, &sharded.sites);
    let (a, b) = (&serial.stats, &sharded.stats);
    eq!("accesses", a.accesses, b.accesses);
    eq!("coalesced_saved", a.coalesced_saved, b.coalesced_saved);
    eq!("safe_hits", a.safe_hits, b.safe_hits);
    eq!("race_hits", a.race_hits, b.race_hits);
    eq!("contended_accesses", a.contended_accesses, b.contended_accesses);
    eq!("contention_cycles", a.contention_cycles, b.contention_cycles);
    eq!("launches", a.launches, b.launches);
    eq!("missed_checks", a.missed_checks, b.missed_checks);
    eq!("orphan_events", a.orphan_events, b.orphan_events);
    eq!("table_init_failures", a.table_init_failures, b.table_init_failures);
    // The central report channel sees the same record sequence, so its
    // accounting — including fault-plane drops — matches exactly.
    eq!("channel", serial.degradation.channel, sharded.degradation.channel);
    eq!("timed_out", serial.timed_out, sharded.timed_out);
    eq!("exec steps", serial.stats_exec.steps, sharded.stats_exec.steps);
    Ok(())
}

/// The racey workloads the suite sweeps (fast at `Size::Test`, multiple
/// kernels/launches between them).
const WORKLOADS: [&str; 3] = ["reduction", "graph-color", "interac"];

#[test]
fn inline_sharding_matches_serial_for_every_shard_count() {
    for name in WORKLOADS {
        let w = workloads::by_name(name).expect("workload exists");
        let serial = run_iguard_with(
            &w,
            Size::Test,
            gpu_config(DEFAULT_SEED),
            IguardConfig::default(),
        );
        assert!(!serial.sites.is_empty(), "{name} should race");
        for shards in [1usize, 2, 4, 8] {
            let sharded = run_iguard_sharded_with(
                &w,
                Size::Test,
                gpu_config(DEFAULT_SEED),
                IguardConfig::default(),
                ShardConfig::inline(shards),
            );
            if let Err(e) = assert_equivalent(&serial, &sharded) {
                panic!("{name} with {shards} inline shards diverged: {e}");
            }
        }
    }
}

#[test]
fn threaded_sharding_matches_serial_and_reports_pipe_stats() {
    let w = workloads::by_name("reduction").expect("workload exists");
    let serial = run_iguard_with(
        &w,
        Size::Test,
        gpu_config(DEFAULT_SEED),
        IguardConfig::default(),
    );
    let sharded = run_iguard_sharded_with(
        &w,
        Size::Test,
        gpu_config(DEFAULT_SEED),
        IguardConfig::default(),
        ShardConfig::threaded(4),
    );
    if let Err(e) = assert_equivalent(&serial, &sharded) {
        panic!("threaded(4) diverged: {e}");
    }
    assert_eq!(sharded.pipe.len(), 4, "one pipe per shard worker");
    let routed: u64 = sharded.pipe.iter().map(|p| p.pushed).sum();
    assert!(routed > 0, "workers must have received batches");
    for p in &sharded.pipe {
        assert_eq!(p.pushed, p.popped, "every batch consumed");
    }
}

#[test]
fn clean_workload_stays_clean_under_sharding() {
    let w = workloads::by_name("b_reduce").expect("workload exists");
    for scfg in [ShardConfig::inline(8), ShardConfig::threaded(2)] {
        let run = run_iguard_sharded_with(
            &w,
            Size::Test,
            gpu_config(DEFAULT_SEED),
            IguardConfig::default(),
            scfg,
        );
        assert!(run.sites.is_empty(), "got {:?}", run.sites);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any shard count × any drain interleaving (threaded workers with
    /// arbitrary batch sizes) × report-channel fault schedules: reports
    /// stay byte-identical to serial and degradation stays fully
    /// accounted on both sides.
    #[test]
    fn sharded_reports_match_serial_under_channel_faults(
        seed in 0u64..1 << 32,
        shards_pow in 0u32..4,
        threaded in any::<bool>(),
        batch in prop_oneof![Just(1usize), Just(7), Just(256)],
        drop_rate in 0u32..=RATE_ONE / 4,
        overflow_rate in 0u32..=RATE_ONE / 8,
        small_capacity in any::<bool>(),
        wl in 0usize..WORKLOADS.len(),
    ) {
        // Only report-channel sites: the channel is central and shared,
        // so its fault draws must replay identically. (Metadata-plane
        // sites act on per-shard tables whose draw sequences are a
        // different — deterministic — schedule by design.)
        let faults = FaultConfig::disabled()
            .with_seed(seed)
            .with_rate(FaultSite::ReportDrop, drop_rate)
            .with_rate(FaultSite::ChannelOverflow, overflow_rate);
        let icfg = IguardConfig {
            faults,
            report_capacity: if small_capacity { 4 } else { 16 * 1024 },
            ..IguardConfig::default()
        };
        let scfg = ShardConfig {
            shards: 1 << shards_pow,
            threaded,
            batch_events: batch,
            ..ShardConfig::default()
        };
        let w = workloads::by_name(WORKLOADS[wl]).expect("workload exists");
        let serial = run_iguard_with(&w, Size::Test, gpu_config(seed), icfg.clone());
        let sharded = run_iguard_sharded_with(&w, Size::Test, gpu_config(seed), icfg, scfg);

        if let Err(e) = assert_equivalent(&serial, &sharded) {
            panic!("sharded run diverged from serial: {e}");
        }
        prop_assert!(serial.degradation.fully_accounted());
        prop_assert!(
            sharded.degradation.fully_accounted(),
            "sharded degradation must stay accounted: {:?}",
            sharded.degradation
        );
    }
}
