//! Serial-vs-parallel equivalence: the driver's result stream must be
//! byte-identical (on the runs' Debug forms) whether the sweep uses one
//! worker or several — the property that makes `--jobs N` safe for every
//! table and figure.

use bench::{run_jobs, DriverConfig, JobSpec, Outcome, RunOutput, ToolSpec, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

/// A small racey + clean sample (kept quick: the whole sweep runs twice).
const SAMPLE: [&str; 6] = [
    "graph-color",   // racey, atomic-scope
    "uts",           // racey, improper locking
    "interac",       // racey, ITS
    "b_reduce",      // clean
    "d_scan",        // clean
    "louvain",       // racey, multi-file
];

fn sweep(cfg: &DriverConfig) -> Vec<String> {
    let jobs = SAMPLE
        .iter()
        .flat_map(|name| {
            let w = workloads::by_name(name).expect("sample workload exists");
            [
                JobSpec::new(w, ToolSpec::Native, Size::Test, DEFAULT_SEED).into_job(),
                JobSpec::new(
                    w,
                    ToolSpec::Iguard(IguardConfig::default()),
                    Size::Test,
                    DEFAULT_SEED,
                )
                .into_job(),
            ]
        })
        .collect();
    run_jobs(jobs, cfg)
        .into_iter()
        .map(|o| match o {
            Outcome::Done { value, .. } => render(&value),
            other => panic!("sample job did not finish: {other:?}"),
        })
        .collect()
}

/// Debug form stripped of nothing: simulated results carry no wall-clock
/// or thread-dependent state, so the full Debug string must match.
fn render(out: &RunOutput) -> String {
    format!("{out:?}")
}

#[test]
fn parallel_results_are_byte_identical_to_serial() {
    let serial = sweep(&DriverConfig::serial());
    let parallel = sweep(&DriverConfig::parallel(4));
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "result {i} diverged between serial and 4-worker runs");
    }
}

#[test]
fn worker_count_does_not_change_results() {
    let two = sweep(&DriverConfig::parallel(2));
    let eight = sweep(&DriverConfig::parallel(8));
    assert_eq!(two, eight);
}
