//! Byte-identity gate for experiment stdout.
//!
//! Runs the `table4`, `table5`, and `fig11` binaries at their default
//! seeds and compares stdout byte-for-byte against transcripts recorded
//! from the pre-optimization seed build (`tests/golden/` at the repo
//! root). Together with `golden_equivalence.rs` this enforces the PR-2
//! contract: hot-path optimizations may change wall-clock time only,
//! never a byte of any table or figure.
//!
//! Regenerate after a *deliberate* output change:
//!
//! ```text
//! GOLDEN_WRITE=1 cargo test -p bench --release --test golden_stdout
//! ```

use std::path::PathBuf;
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
        .join(format!("{name}.txt"))
}

fn check(bin: &str, exe: &str) {
    let out = Command::new(exe)
        .arg("--no-progress")
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let path = golden_path(bin);
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        std::fs::write(&path, &got).expect("write golden transcript");
        eprintln!("golden stdout regenerated at {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {}: {e}; regenerate with GOLDEN_WRITE=1", path.display()));
    assert_eq!(
        got, want,
        "{bin} stdout diverged from the seed transcript"
    );
}

#[test]
fn table4_stdout_matches_seed() {
    check("table4", env!("CARGO_BIN_EXE_table4"));
}

#[test]
fn table5_stdout_matches_seed() {
    check("table5", env!("CARGO_BIN_EXE_table5"));
}

#[test]
fn fig11_stdout_matches_seed() {
    check("fig11", env!("CARGO_BIN_EXE_fig11"));
}
