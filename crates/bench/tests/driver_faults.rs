//! Fault isolation in the experiment driver: a panicking job and a hung
//! job must each be reported as an isolated DNF while the rest of the
//! sweep completes and keeps its submission-order results.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use bench::{run_jobs, DriverConfig, Job, Outcome};

#[test]
fn panicking_job_is_isolated_and_reported() {
    let jobs = vec![
        Job::custom("ok-1", || 10u32),
        Job::custom("boom", || panic!("boom {}", 6 * 7)),
        Job::custom("ok-2", || 20u32),
    ];
    let out = run_jobs(jobs, &DriverConfig::parallel(2));
    assert_eq!(out.len(), 3);
    assert_eq!(out[0].value(), Some(&10));
    assert_eq!(out[2].value(), Some(&20));
    match &out[1] {
        Outcome::Panicked { message, .. } => {
            assert!(message.contains("boom 42"), "got {message:?}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert!(out[1].is_dnf());
    assert_eq!(out[1].dnf_cell(), Some("DNF(panic)"));
}

#[test]
fn injected_fault_deaths_are_classified_apart_from_panics() {
    let jobs = vec![
        Job::custom("fault", || -> u32 { panic!("injected fault: kernel-abort") }),
        Job::custom("bug", || -> u32 { panic!("index out of bounds") }),
    ];
    let out = run_jobs(jobs, &DriverConfig::serial());
    assert!(
        matches!(&out[0], Outcome::Faulted { message, .. } if message.contains("kernel-abort")),
        "expected Faulted, got {:?}",
        out[0]
    );
    assert_eq!(out[0].dnf_cell(), Some("DNF(fault)"));
    assert!(matches!(out[1], Outcome::Panicked { .. }));
    assert_eq!(out[1].dnf_cell(), Some("DNF(panic)"));
}

#[test]
fn retryable_job_recovers_within_its_retry_budget() {
    static TRIES: AtomicUsize = AtomicUsize::new(0);
    let mut cfg = DriverConfig::serial();
    cfg.retries = 3;
    cfg.retry_backoff = Duration::from_millis(1);
    let jobs = vec![Job::retryable("flaky", || {
        // Dies twice (once as an injected fault, once as a plain panic),
        // then succeeds: both DNF causes must be retried.
        match TRIES.fetch_add(1, Ordering::SeqCst) {
            0 => panic!("injected fault: kernel-abort"),
            1 => panic!("spurious"),
            n => n as u32,
        }
    })];
    let out = run_jobs(jobs, &cfg);
    assert_eq!(out[0].value(), Some(&2));
    assert_eq!(TRIES.load(Ordering::SeqCst), 3);
}

#[test]
fn retry_budget_exhaustion_keeps_the_final_outcome() {
    static TRIES: AtomicUsize = AtomicUsize::new(0);
    let mut cfg = DriverConfig::serial();
    cfg.retries = 2;
    cfg.retry_backoff = Duration::from_millis(1);
    let jobs = vec![Job::retryable("doomed", || -> u32 {
        TRIES.fetch_add(1, Ordering::SeqCst);
        panic!("always fails")
    })];
    let out = run_jobs(jobs, &cfg);
    assert!(matches!(out[0], Outcome::Panicked { .. }));
    // Initial attempt + 2 retries.
    assert_eq!(TRIES.load(Ordering::SeqCst), 3);
}

#[test]
fn one_shot_jobs_are_never_retried() {
    static TRIES: AtomicUsize = AtomicUsize::new(0);
    let mut cfg = DriverConfig::serial();
    cfg.retries = 5;
    cfg.retry_backoff = Duration::from_millis(1);
    let jobs = vec![Job::custom("once", || -> u32 {
        TRIES.fetch_add(1, Ordering::SeqCst);
        panic!("dies")
    })];
    let out = run_jobs(jobs, &cfg);
    assert!(matches!(out[0], Outcome::Panicked { .. }));
    assert_eq!(TRIES.load(Ordering::SeqCst), 1);
}

#[test]
fn panicking_job_is_isolated_in_serial_mode_too() {
    let jobs = vec![
        Job::custom("boom", || panic!("first job dies")),
        Job::custom("ok", || 7u32),
    ];
    let out = run_jobs(jobs, &DriverConfig::serial());
    assert!(matches!(out[0], Outcome::Panicked { .. }));
    assert_eq!(out[1].value(), Some(&7));
}

/// Release valve for the hung job: the worker thread is leaked past its
/// deadline, so the spin must stop once the test has its verdict or the
/// abandoned thread would burn a core for the rest of the test run.
static RELEASE_HUNG: AtomicBool = AtomicBool::new(false);

#[test]
fn hung_job_times_out_while_sweep_completes() {
    let mut cfg = DriverConfig::parallel(2);
    cfg.timeout = Some(Duration::from_millis(200));
    cfg.progress = false;
    let jobs = vec![
        Job::custom("ok-1", || 1u32),
        Job::custom("hang", || {
            // A cycle-budget spin standing in for a non-terminating
            // kernel; yields so the 1-core CI box can still run peers.
            while !RELEASE_HUNG.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
            0u32
        }),
        Job::custom("ok-2", || 2u32),
        Job::custom("ok-3", || 3u32),
    ];
    let out = run_jobs(jobs, &cfg);
    RELEASE_HUNG.store(true, Ordering::Relaxed);

    assert_eq!(out.len(), 4);
    assert_eq!(out[0].value(), Some(&1));
    assert!(
        matches!(out[1], Outcome::TimedOut { .. }),
        "hung job must be declared DNF, got {:?}",
        out[1]
    );
    // The replacement worker spawned at the deadline finished the queue.
    assert_eq!(out[2].value(), Some(&2));
    assert_eq!(out[3].value(), Some(&3));
}

#[test]
fn outcomes_preserve_submission_order_under_contention() {
    // Many quick jobs racing over few workers: values must come back in
    // submission order regardless of completion order.
    let jobs: Vec<Job<usize>> = (0..64)
        .map(|i| {
            Job::custom(format!("j{i}"), move || {
                if i % 7 == 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                i
            })
        })
        .collect();
    let out = run_jobs(jobs, &DriverConfig::parallel(4));
    let values: Vec<usize> = out.into_iter().filter_map(Outcome::into_value).collect();
    assert_eq!(values, (0..64).collect::<Vec<_>>());
}
