//! Determinism regression: the simulator and detector must be pure
//! functions of `(workload, size, seed, mode)`. Running the same spec
//! twice must produce identical execution statistics and identical race
//! reports — under both the ITS scheduler (seeded warp splits) and
//! lockstep execution.

use bench::{gpu_config, run_iguard_with, run_native_with};
use gpu_sim::hook::ExecMode;
use gpu_sim::machine::GpuConfig;
use iguard::IguardConfig;
use workloads::Size;

const SEEDS: [u64; 3] = [1, 7, 42];
const MODES: [ExecMode; 2] = [ExecMode::Its, ExecMode::Lockstep];

fn cfg(seed: u64, mode: ExecMode) -> GpuConfig {
    GpuConfig {
        mode,
        ..gpu_config(seed)
    }
}

#[test]
fn native_stats_are_reproducible_across_seeds_and_modes() {
    let w = workloads::by_name("graph-color").unwrap();
    for seed in SEEDS {
        for mode in MODES {
            let a = run_native_with(&w, Size::Test, cfg(seed, mode));
            let b = run_native_with(&w, Size::Test, cfg(seed, mode));
            assert_eq!(
                a.stats, b.stats,
                "native LaunchStats diverged for seed={seed} mode={mode:?}"
            );
            assert_eq!(a.time, b.time, "simulated time diverged");
        }
    }
}

#[test]
fn iguard_reports_are_reproducible_across_seeds_and_modes() {
    for name in ["uts", "interac"] {
        let w = workloads::by_name(name).unwrap();
        for seed in SEEDS {
            for mode in MODES {
                let a = run_iguard_with(&w, Size::Test, cfg(seed, mode), IguardConfig::default());
                let b = run_iguard_with(&w, Size::Test, cfg(seed, mode), IguardConfig::default());
                assert_eq!(
                    a.stats_exec, b.stats_exec,
                    "{name}: LaunchStats diverged for seed={seed} mode={mode:?}"
                );
                assert_eq!(
                    a.sites, b.sites,
                    "{name}: race reports diverged for seed={seed} mode={mode:?}"
                );
                assert_eq!(a.stats.accesses, b.stats.accesses);
                assert_eq!(a.time, b.time);
            }
        }
    }
}

#[test]
fn different_seeds_still_find_the_seeded_races() {
    // Schedules differ per seed, but the seeded bugs are schedule-robust:
    // detection counts must not depend on the seed.
    let w = workloads::by_name("graph-color").unwrap();
    let counts: Vec<usize> = SEEDS
        .iter()
        .map(|&s| {
            run_iguard_with(&w, Size::Test, cfg(s, ExecMode::Its), IguardConfig::default())
                .sites
                .len()
        })
        .collect();
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "seed-dependent race counts: {counts:?}"
    );
    assert_eq!(counts[0], w.paper_races);
}
