//! Golden-equivalence gate for the hot-path optimizations.
//!
//! The PR-2 overhaul (flat detector state, paged flat L1, interned kernel
//! names, predecoded dispatch) must be *semantics-preserving*: simulated
//! cycle counts, race reports, and every table/figure output stay
//! byte-identical to the unoptimized seed. This test pins the seed's
//! observable outputs — race-site counts, full race-report text,
//! `LaunchStats`, detector counters, UVM counters, and the simulated
//! clock — across 3 schedule seeds × {ITS, lockstep} for every racey
//! workload (Table 4) and, at the default seed, every clean workload
//! (Table 5).
//!
//! The golden file was recorded from the pre-optimization build:
//!
//! ```text
//! GOLDEN_WRITE=1 cargo test -p bench --release --test golden_equivalence
//! ```
//!
//! Regenerating it on purpose is how a *deliberate* semantic change lands;
//! an accidental diff here means an optimization changed behaviour.

use std::fmt::Write as _;

use gpu_sim::hook::ExecMode;
use gpu_sim::machine::{Gpu, GpuConfig, LaunchStats};
use iguard::{Iguard, IguardConfig};
use nvbit_sim::Instrumented;
use workloads::{Size, Workload};

/// Schedule seeds the equivalence matrix covers (first is the harness
/// default).
const SEEDS: [u64; 3] = [bench::DEFAULT_SEED, 7, 1337];

/// Watchdog for golden runs: small enough that lockstep livelocks (§6.6)
/// resolve quickly, large enough that every Test-size workload finishes.
const GOLDEN_MAX_STEPS: u64 = 2_000_000;

fn golden_gpu(seed: u64, mode: ExecMode) -> GpuConfig {
    GpuConfig {
        mode,
        max_steps: GOLDEN_MAX_STEPS,
        ..bench::gpu_config(seed)
    }
}

/// Runs `w` under iGUARD and renders every observable output as one
/// pipe-separated line. Any behavioural drift — in scheduling, memory
/// visibility, detection, cycle accounting, or reporting — changes the
/// line.
fn run_line(w: &Workload, seed: u64, mode: ExecMode) -> String {
    let mut gpu = Gpu::new(golden_gpu(seed, mode));
    let launches = w.build(&mut gpu, Size::Test);
    let mut tool = Instrumented::new(Iguard::new(IguardConfig::default()));
    let mut stats = LaunchStats::default();
    let mut timed_out = false;
    for l in &launches {
        match gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool) {
            Ok(s) => {
                stats.steps += s.steps;
                stats.dyn_instrs += s.dyn_instrs;
                stats.lane_instrs += s.lane_instrs;
            }
            Err(gpu_sim::error::SimError::Timeout { .. }) => timed_out = true,
            Err(e) => panic!("{} failed under iGUARD: {e}", w.name),
        }
    }
    let det = tool.tool_mut();
    let ig = det.stats();
    let uvm = det.uvm_stats();
    let records = det.races();
    let sites = iguard::report::group_sites(&records);

    let mode_name = match mode {
        ExecMode::Its => "its",
        ExecMode::Lockstep => "lockstep",
    };
    let mut line = String::new();
    write!(
        line,
        "{}|seed={seed}|mode={mode_name}|timeout={timed_out}|sites={}|stats={},{},{}|\
         ig={},{},{:?},{:?},{},{},{},{}|uvm={},{},{},{},{}|time={:?}",
        w.name,
        sites.len(),
        stats.steps,
        stats.dyn_instrs,
        stats.lane_instrs,
        ig.accesses,
        ig.coalesced_saved,
        ig.safe_hits,
        ig.race_hits,
        ig.contended_accesses,
        ig.contention_cycles,
        ig.uvm_cycles,
        ig.launches,
        uvm.faults,
        uvm.evictions,
        uvm.prefaulted_pages,
        uvm.fault_cycles,
        uvm.prefault_cycles,
        gpu.clock().total_time(),
    )
    .unwrap();
    for r in &records {
        write!(line, "|race={r}").unwrap();
    }
    line
}

/// The full equivalence matrix, in a fixed order.
fn golden_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for w in workloads::racey() {
        for seed in SEEDS {
            for mode in [ExecMode::Its, ExecMode::Lockstep] {
                lines.push(run_line(&w, seed, mode));
            }
        }
    }
    for w in workloads::clean() {
        for mode in [ExecMode::Its, ExecMode::Lockstep] {
            lines.push(run_line(&w, bench::DEFAULT_SEED, mode));
        }
    }
    lines
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/detector_golden.txt"
);

#[test]
fn optimized_pipeline_matches_seed_golden() {
    let lines = golden_lines();
    let rendered = lines.join("\n") + "\n";
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("golden file regenerated at {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with GOLDEN_WRITE=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        lines.len(),
        "golden matrix shape changed"
    );
    for (i, (got, want)) in lines.iter().zip(&golden_lines).enumerate() {
        assert_eq!(
            got, want,
            "row {i} diverged from the seed baseline\n  got: {got}\n want: {want}"
        );
    }
}

/// The same pipeline run twice must be bit-identical — catches
/// nondeterminism introduced by e.g. iteration over hash maps in the hot
/// path (the seed's contention/history state was `HashMap`-backed; the
/// flat replacement must stay order-independent too).
#[test]
fn pipeline_is_deterministic_across_repeats() {
    let w = workloads::by_name("uts").expect("uts exists");
    let a = run_line(&w, bench::DEFAULT_SEED, ExecMode::Its);
    let b = run_line(&w, bench::DEFAULT_SEED, ExecMode::Its);
    assert_eq!(a, b);
}
