//! Golden-equivalence gate for the hot-path optimizations.
//!
//! The PR-2 overhaul (flat detector state, paged flat L1, interned kernel
//! names, predecoded dispatch) must be *semantics-preserving*: simulated
//! cycle counts, race reports, and every table/figure output stay
//! byte-identical to the unoptimized seed. This test pins the seed's
//! observable outputs — race-site counts, full race-report text,
//! `LaunchStats`, detector counters, UVM counters, and the simulated
//! clock — across 3 schedule seeds × {ITS, lockstep} for every racey
//! workload (Table 4) and, at the default seed, every clean workload
//! (Table 5).
//!
//! The golden file was recorded from the pre-optimization build:
//!
//! ```text
//! GOLDEN_WRITE=1 cargo test -p bench --release --test golden_equivalence
//! ```
//!
//! Regenerating it on purpose is how a *deliberate* semantic change lands;
//! an accidental diff here means an optimization changed behaviour.

use std::fmt::Write as _;

use faults::FaultConfig;
use gpu_sim::hook::ExecMode;
use gpu_sim::machine::{Gpu, GpuConfig, LaunchStats};
use gpu_sim::sched::{RandomScheduler, RecordingScheduler, ReplayScheduler, ScheduleTrace, Scheduler};
use iguard::{Iguard, IguardConfig};
use nvbit_sim::Instrumented;
use workloads::{Size, Workload};

/// Schedule seeds the equivalence matrix covers (first is the harness
/// default).
const SEEDS: [u64; 3] = [bench::DEFAULT_SEED, 7, 1337];

/// Watchdog for golden runs: small enough that lockstep livelocks (§6.6)
/// resolve quickly, large enough that every Test-size workload finishes.
const GOLDEN_MAX_STEPS: u64 = 2_000_000;

fn golden_gpu(seed: u64, mode: ExecMode) -> GpuConfig {
    GpuConfig {
        mode,
        max_steps: GOLDEN_MAX_STEPS,
        ..bench::gpu_config(seed)
    }
}

/// Runs `w` under iGUARD and renders every observable output as one
/// pipe-separated line. Any behavioural drift — in scheduling, memory
/// visibility, detection, cycle accounting, or reporting — changes the
/// line.
fn run_line(w: &Workload, seed: u64, mode: ExecMode) -> String {
    run_line_sched(w, seed, mode, None, &FaultConfig::disabled())
}

/// Like [`run_line`], but with an explicit scheduler driving every launch
/// (`None` = the built-in `gpu.launch` path) and an explicit fault plane
/// threaded through both the GPU and the detector.
fn run_line_sched(
    w: &Workload,
    seed: u64,
    mode: ExecMode,
    mut sched: Option<&mut dyn Scheduler>,
    faults: &FaultConfig,
) -> String {
    let mut gpu = Gpu::new(GpuConfig {
        faults: faults.clone(),
        ..golden_gpu(seed, mode)
    });
    let launches = w.build(&mut gpu, Size::Test);
    let mut tool = Instrumented::new(Iguard::new(IguardConfig {
        faults: faults.clone(),
        ..IguardConfig::default()
    }));
    let mut stats = LaunchStats::default();
    let mut timed_out = false;
    for l in &launches {
        let result = match &mut sched {
            Some(s) => gpu.launch_with(&l.kernel, l.grid, l.block, &l.params, &mut tool, &mut **s),
            None => gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool),
        };
        match result {
            Ok(s) => {
                stats.steps += s.steps;
                stats.dyn_instrs += s.dyn_instrs;
                stats.lane_instrs += s.lane_instrs;
            }
            Err(gpu_sim::error::SimError::Timeout { .. }) => timed_out = true,
            Err(e) => panic!("{} failed under iGUARD: {e}", w.name),
        }
    }
    let det = tool.tool_mut();
    let ig = det.stats();
    let uvm = det.uvm_stats();
    let records = det.races();
    let sites = iguard::report::group_sites(&records);

    let mode_name = match mode {
        ExecMode::Its => "its",
        ExecMode::Lockstep => "lockstep",
    };
    let mut line = String::new();
    write!(
        line,
        "{}|seed={seed}|mode={mode_name}|timeout={timed_out}|sites={}|stats={},{},{}|\
         ig={},{},{:?},{:?},{},{},{},{}|uvm={},{},{},{},{}|time={:?}",
        w.name,
        sites.len(),
        stats.steps,
        stats.dyn_instrs,
        stats.lane_instrs,
        ig.accesses,
        ig.coalesced_saved,
        ig.safe_hits,
        ig.race_hits,
        ig.contended_accesses,
        ig.contention_cycles,
        ig.uvm_cycles,
        ig.launches,
        uvm.faults,
        uvm.evictions,
        uvm.prefaulted_pages,
        uvm.fault_cycles,
        uvm.prefault_cycles,
        gpu.clock().total_time(),
    )
    .unwrap();
    for r in &records {
        write!(line, "|race={r}").unwrap();
    }
    line
}

/// The full equivalence matrix, in a fixed order, with an explicit fault
/// plane threaded through every run.
fn golden_lines_with(faults: &FaultConfig) -> Vec<String> {
    let mut lines = Vec::new();
    for w in workloads::racey() {
        for seed in SEEDS {
            for mode in [ExecMode::Its, ExecMode::Lockstep] {
                lines.push(run_line_sched(&w, seed, mode, None, faults));
            }
        }
    }
    for w in workloads::clean() {
        for mode in [ExecMode::Its, ExecMode::Lockstep] {
            lines.push(run_line_sched(&w, bench::DEFAULT_SEED, mode, None, faults));
        }
    }
    lines
}

/// The full equivalence matrix, in a fixed order.
fn golden_lines() -> Vec<String> {
    golden_lines_with(&FaultConfig::disabled())
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/detector_golden.txt"
);

#[test]
fn optimized_pipeline_matches_seed_golden() {
    let lines = golden_lines();
    let rendered = lines.join("\n") + "\n";
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        eprintln!("golden file regenerated at {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with GOLDEN_WRITE=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        golden_lines.len(),
        lines.len(),
        "golden matrix shape changed"
    );
    for (i, (got, want)) in lines.iter().zip(&golden_lines).enumerate() {
        assert_eq!(
            got, want,
            "row {i} diverged from the seed baseline\n  got: {got}\n want: {want}"
        );
    }
}

/// The fault plane must be byte-invisible when every rate is zero: the
/// full matrix (3 seeds × {ITS, lockstep} over the racy workloads, plus
/// the clean set) with a *seeded but zero-rate* plane threaded through
/// the GPU, metadata table, UVM region, and report channel matches the
/// golden file exactly. Zero-rate sites consume no RNG draws and the
/// disabled plane short-circuits before touching any state, so compiling
/// it in changes nothing.
#[test]
fn disabled_fault_plane_matches_seed_golden() {
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        return; // the main test owns regeneration
    }
    let armed_but_silent = FaultConfig::disabled().with_seed(0x5eed);
    let lines = golden_lines_with(&armed_but_silent);
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with GOLDEN_WRITE=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(golden_lines.len(), lines.len(), "golden matrix shape changed");
    for (i, (got, want)) in lines.iter().zip(&golden_lines).enumerate() {
        assert_eq!(
            got, want,
            "row {i}: zero-rate fault plane perturbed the pipeline\n  got: {got}\n want: {want}"
        );
    }
}

/// The same pipeline run twice must be bit-identical — catches
/// nondeterminism introduced by e.g. iteration over hash maps in the hot
/// path (the seed's contention/history state was `HashMap`-backed; the
/// flat replacement must stay order-independent too).
#[test]
fn pipeline_is_deterministic_across_repeats() {
    let w = workloads::by_name("uts").expect("uts exists");
    let a = run_line(&w, bench::DEFAULT_SEED, ExecMode::Its);
    let b = run_line(&w, bench::DEFAULT_SEED, ExecMode::Its);
    assert_eq!(a, b);
}

/// The scheduler extraction must be invisible: driving a launch through an
/// explicit `RandomScheduler` (the `launch_with` path) produces the same
/// RNG decision sequence — and therefore byte-identical stats, reports,
/// and clock — as the built-in `gpu.launch` path, across seeds and modes.
#[test]
fn explicit_random_scheduler_is_byte_identical_to_launch() {
    let w = workloads::by_name("uts").expect("uts exists");
    for seed in SEEDS {
        for mode in [ExecMode::Its, ExecMode::Lockstep] {
            let implicit = run_line(&w, seed, mode);
            let prob = golden_gpu(seed, mode).its_split_prob;
            let mut sched = RandomScheduler::new(seed, prob);
            let explicit =
                run_line_sched(&w, seed, mode, Some(&mut sched), &FaultConfig::disabled());
            assert_eq!(implicit, explicit, "seed={seed} mode={mode:?}");
        }
    }
}

/// Recording the random schedule and replaying the trace reproduces the
/// run byte-for-byte, and the trace survives a text round-trip.
#[test]
fn recorded_schedule_replays_byte_identically() {
    let w = workloads::by_name("uts").expect("uts exists");
    let seed = bench::DEFAULT_SEED;
    let prob = golden_gpu(seed, ExecMode::Its).its_split_prob;

    let mut rec = RecordingScheduler::new(RandomScheduler::new(seed, prob));
    let recorded = run_line_sched(&w, seed, ExecMode::Its, Some(&mut rec), &FaultConfig::disabled());
    let trace = rec.into_trace();
    assert_eq!(recorded, run_line(&w, seed, ExecMode::Its));

    let round_tripped = ScheduleTrace::parse(&trace.to_compact_string()).expect("trace parses");
    assert_eq!(round_tripped.digest(), trace.digest());

    let mut replay = ReplayScheduler::new(round_tripped);
    let replayed =
        run_line_sched(&w, seed, ExecMode::Its, Some(&mut replay), &FaultConfig::disabled());
    assert!(replay.finished(), "replay left unconsumed decisions");
    assert_eq!(recorded, replayed);
}

/// Pins the exact ITS RNG decision stream of the default seed: any change
/// to how `RandomScheduler` consumes its RNG — reordered draws, skipped
/// single-candidate consultations, a different reseed — changes this
/// digest even if the schedule happens to coincide.
#[test]
fn its_decision_stream_digest_is_pinned() {
    let w = workloads::by_name("uts").expect("uts exists");
    let seed = bench::DEFAULT_SEED;
    let prob = golden_gpu(seed, ExecMode::Its).its_split_prob;
    let mut rec = RecordingScheduler::new(RandomScheduler::new(seed, prob));
    let _ = run_line_sched(&w, seed, ExecMode::Its, Some(&mut rec), &FaultConfig::disabled());
    let trace = rec.into_trace();
    let digest = trace.digest();
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        eprintln!("uts ITS decision digest: {digest:#018x} ({} decisions)", trace.decisions.len());
        return;
    }
    assert_eq!(
        digest, PINNED_UTS_ITS_DIGEST,
        "RandomScheduler RNG decision sequence changed ({} decisions)",
        trace.decisions.len()
    );
}

/// Recorded from the seed build via `GOLDEN_WRITE=1` (see above);
/// 1869 decisions for `uts` at the default seed.
const PINNED_UTS_ITS_DIGEST: u64 = 0x9af2_f5a0_8ea1_1890;

/// The weak-memory litmus plane must be byte-invisible to every v1 path:
/// the default machine config keeps weak visibility and load recording
/// off, legacy schedule traces stay non-eager with an unchanged compact
/// header, and a canonical v1 oracle exploration reproduces its pinned
/// schedule count and witness digest exactly. (The golden-matrix tests
/// above already pin every seed workload output; this arm pins the v1
/// *oracle* plane the litmus engine was grafted onto.)
#[test]
fn litmus_machinery_is_invisible_to_v1_oracle_runs() {
    use oracle::explore::{explore, ExploreConfig};
    use oracle::spec::KernelSpec;

    // Machine defaults: the weak plane is opt-in only.
    let d = GpuConfig::default();
    assert!(!d.weak_visibility, "weak visibility must default off");
    assert!(!d.record_load_values, "load recording must default off");

    // Legacy traces never carry the eager flag and keep the v1 header.
    let trace = ScheduleTrace::default();
    assert!(!trace.eager);
    let header = trace.to_compact_string();
    assert!(
        header.starts_with("v1;w;") || header.starts_with("v1;r;"),
        "legacy trace header changed: {header}"
    );

    // Canonical v1 exploration: counts and witness bytes pinned.
    let spec = KernelSpec::parse("v1;CB;S0.L1/L0").expect("v1 spec parses");
    let r = explore(&spec, &ExploreConfig::default());
    assert!(r.complete && r.racy);
    let witness = r.witness.expect("racy exploration has a witness");
    assert!(!witness.eager, "v1 oracle witnesses must stay non-eager");
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        eprintln!(
            "v1 oracle pin: schedules={} witness_digest={:#018x}",
            r.schedules,
            witness.digest()
        );
        return;
    }
    assert_eq!(r.schedules, PINNED_V1_ORACLE_SCHEDULES);
    assert_eq!(witness.digest(), PINNED_V1_ORACLE_WITNESS_DIGEST);
}

/// Recorded via `GOLDEN_WRITE=1` before the litmus plane landed. The
/// schedule count is exactly C(14,8) = 3003: the two single-thread blocks
/// run 8- and 6-instruction straight-line paths and the DFS enumerates
/// every interleaving of the two program orders.
const PINNED_V1_ORACLE_SCHEDULES: u64 = 3003;
const PINNED_V1_ORACLE_WITNESS_DIGEST: u64 = 0x9f1a_1e4d_9d10_6c85;
