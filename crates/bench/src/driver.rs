//! The parallel, fault-isolated experiment driver.
//!
//! Every table and figure of the evaluation replays tens to hundreds of
//! independent deterministic simulations. This module fans them out over
//! a work-stealing pool of OS threads while keeping the *results* exactly
//! what serial execution would produce:
//!
//! - **Deterministic ordered collection.** Jobs are claimed from a shared
//!   queue in submission order and results are returned indexed by
//!   submission position, so the caller's formatting loop — and therefore
//!   every byte of table output — is identical under `--serial` and
//!   `--jobs N`. Each job seeds its own `Gpu`, so values cannot depend on
//!   which worker ran it.
//! - **Per-job panic isolation.** A panicking job is caught on its worker
//!   and reported as [`Outcome::Panicked`]; the rest of the sweep
//!   completes. This is Barracuda-style *DNF* ("did not finish") rather
//!   than a lost evening of sweep.
//! - **Per-job wall-clock deadline.** A job that exceeds
//!   [`DriverConfig::timeout`] is abandoned — its worker thread is leaked
//!   and a replacement is spawned to keep the pool at strength — and the
//!   job is reported as [`Outcome::TimedOut`].
//!
//! `cfg.jobs == 1` runs the same machinery with one worker: "serial mode"
//! is a degenerate pool, not a separate code path, so flag handling and
//! DNF semantics cannot drift between the two.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::job::Job;

/// Driver configuration, usually built by [`DriverConfig::from_args`].
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads; `1` is serial execution through the same pool.
    pub jobs: usize,
    /// Per-job wall-clock deadline; `None` waits forever.
    pub timeout: Option<Duration>,
    /// Emit live per-job progress/timing lines on stderr.
    pub progress: bool,
    /// Re-run attempts granted to a DNF job (panic, deadline, or injected
    /// fault) before its outcome is final. Only jobs built with
    /// [`Job::retryable`](crate::job::Job::retryable) can be retried;
    /// one-shot jobs keep their first outcome regardless.
    pub retries: usize,
    /// Delay before a DNF job's first retry; each further attempt doubles
    /// it (exponential backoff).
    pub retry_backoff: Duration,
}

impl Default for DriverConfig {
    /// Parallel across available cores, 120 s deadline, progress on —
    /// the defaults the bench binaries run with. No retries: a DNF in a
    /// deterministic sweep would fail identically again unless the job is
    /// racing a deadline or an injected-fault schedule.
    fn default() -> Self {
        DriverConfig {
            jobs: available_jobs(),
            timeout: Some(Duration::from_secs(120)),
            progress: true,
            retries: 0,
            retry_backoff: Duration::from_millis(250),
        }
    }
}

/// Worker count used by `--jobs 0` / the default: available parallelism.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl DriverConfig {
    /// One worker, no deadline, no progress: the quiet configuration the
    /// equivalence tests compare against.
    #[must_use]
    pub fn serial() -> Self {
        DriverConfig {
            jobs: 1,
            timeout: None,
            progress: false,
            retries: 0,
            retry_backoff: Duration::from_millis(250),
        }
    }

    /// `n` workers, no deadline, no progress.
    #[must_use]
    pub fn parallel(n: usize) -> Self {
        DriverConfig {
            jobs: n.max(1),
            timeout: None,
            progress: false,
            retries: 0,
            retry_backoff: Duration::from_millis(250),
        }
    }

    /// Parses and strips the shared driver flags from a raw argument
    /// list, returning the remaining arguments for the binary's own
    /// parser. Recognized: `--jobs N` (0 ⇒ all cores), `--serial`
    /// (alias for `--jobs 1`), `--timeout-secs N` (0 ⇒ no deadline),
    /// `--retries N`, `--retry-backoff-ms N`, and `--no-progress`.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> (Self, Vec<String>) {
        let mut cfg = DriverConfig::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--serial" => cfg.jobs = 1,
                "--jobs" => {
                    let n: usize = numeric(&mut it, "--jobs");
                    cfg.jobs = if n == 0 { available_jobs() } else { n };
                }
                "--timeout-secs" => {
                    let secs: u64 = numeric(&mut it, "--timeout-secs");
                    cfg.timeout = (secs > 0).then(|| Duration::from_secs(secs));
                }
                "--retries" => cfg.retries = numeric(&mut it, "--retries"),
                "--retry-backoff-ms" => {
                    let ms: u64 = numeric(&mut it, "--retry-backoff-ms");
                    cfg.retry_backoff = Duration::from_millis(ms);
                }
                "--no-progress" => cfg.progress = false,
                _ => rest.push(a),
            }
        }
        (cfg, rest)
    }

    /// [`DriverConfig::from_args`] over the process arguments (skipping
    /// `argv[0]`).
    #[must_use]
    pub fn from_env() -> (Self, Vec<String>) {
        Self::from_args(std::env::args().skip(1))
    }
}

/// Exits with a clean message on a missing or non-numeric flag value.
fn numeric<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(raw) = it.next() else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{raw}`");
        std::process::exit(2);
    })
}

/// Substring that classifies a job failure as an injected fault rather
/// than a genuine bug: `SimError::InjectedFault` renders as
/// `"injected fault: <site>"`, so any panic whose message carries it was
/// killed by the fault plane on purpose.
pub const FAULT_MARKER: &str = "injected fault";

/// What became of one job.
#[derive(Debug)]
pub enum Outcome<T> {
    /// The job completed and produced a value.
    Done {
        /// The job's result.
        value: T,
        /// Wall-clock time on its worker.
        elapsed: Duration,
    },
    /// The job panicked; the sweep continued without it.
    Panicked {
        /// The panic payload, stringified.
        message: String,
        /// Wall-clock time until the panic.
        elapsed: Duration,
    },
    /// The job exceeded the per-job deadline and was abandoned.
    TimedOut {
        /// The configured deadline it exceeded.
        elapsed: Duration,
    },
    /// The job was killed by a deliberately injected fault (its failure
    /// message carried [`FAULT_MARKER`]) — expected under a chaos
    /// campaign, alarming anywhere else.
    Faulted {
        /// The failure message naming the injected fault site.
        message: String,
        /// Wall-clock time until the fault fired.
        elapsed: Duration,
    },
}

impl<T> Outcome<T> {
    /// The value, if the job finished.
    #[must_use]
    pub fn value(&self) -> Option<&T> {
        match self {
            Outcome::Done { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The value by move, if the job finished.
    #[must_use]
    pub fn into_value(self) -> Option<T> {
        match self {
            Outcome::Done { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Whether the job did not finish (panic or deadline).
    #[must_use]
    pub fn is_dnf(&self) -> bool {
        !matches!(self, Outcome::Done { .. })
    }

    /// Short cell text for DNF rows in tables, naming the cause
    /// (`"DNF(panic)"`, `"DNF(timeout)"`, `"DNF(fault)"`); `None` if done.
    #[must_use]
    pub fn dnf_cell(&self) -> Option<&'static str> {
        match self {
            Outcome::Done { .. } => None,
            Outcome::Panicked { .. } => Some("DNF(panic)"),
            Outcome::TimedOut { .. } => Some("DNF(timeout)"),
            Outcome::Faulted { .. } => Some("DNF(fault)"),
        }
    }
}

/// Messages workers send the supervisor.
enum Msg<T> {
    Claimed { idx: usize },
    Finished { idx: usize, result: Result<T, String>, elapsed: Duration },
}

/// The submission-ordered shared work queue.
type JobQueue<T> = Arc<Mutex<std::collections::VecDeque<(usize, Job<T>)>>>;

/// Runs `jobs` under `cfg` and returns outcomes in submission order.
///
/// The output of this function is a pure function of the jobs themselves
/// (each must be internally deterministic, which every simulation job is:
/// it builds its own seeded `Gpu`); worker count only changes wall-clock
/// time and the interleaving of stderr progress lines.
pub fn run_jobs<T: Send + 'static>(jobs: Vec<Job<T>>, cfg: &DriverConfig) -> Vec<Outcome<T>> {
    let total = jobs.len();
    let mut results: Vec<Option<Outcome<T>>> = (0..total).map(|_| None).collect();
    if total == 0 {
        return Vec::new();
    }
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    // Rebuildable bodies for retryable jobs; `None` entries are one-shot
    // and keep their first outcome regardless of `cfg.retries`.
    let factories: Vec<_> = jobs.iter().map(Job::factory).collect();

    // Workers claim the lowest pending index, so with one worker
    // execution order equals submission order.
    let queue: JobQueue<T> = Arc::new(Mutex::new(jobs.into_iter().enumerate().collect()));
    let (tx, rx) = channel::<Msg<T>>();

    // The supervisor keeps `tx` to mint senders for replacement workers,
    // so the channel never disconnects; the loop terminates on the job
    // count instead.
    let workers = cfg.jobs.max(1).min(total);
    for _ in 0..workers {
        spawn_worker(Arc::clone(&queue), tx.clone());
    }

    let started_at = Instant::now();
    let mut running: HashMap<usize, Instant> = HashMap::new();
    // Retry attempts consumed per job, and jobs waiting out their backoff
    // (re-enqueued once `Instant` passes).
    let mut attempts: Vec<usize> = vec![0; total];
    let mut retry_at: Vec<(Instant, usize)> = Vec::new();
    let mut done = 0usize;
    while done < total {
        // Wake at the earliest of: a running job's deadline, a pending
        // retry's backoff expiry. With neither, block on the channel.
        let now = Instant::now();
        let deadline_wake = cfg.timeout.and_then(|limit| {
            running
                .values()
                .map(|s| (*s + limit).saturating_duration_since(now))
                .min()
        });
        let retry_wake = retry_at
            .iter()
            .map(|(t, _)| t.saturating_duration_since(now))
            .min();
        let next_wake = match (deadline_wake, retry_wake) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let msg = match next_wake {
            None => Some(rx.recv().expect("supervisor holds a sender")),
            Some(wake) => match rx.recv_timeout(wake.max(Duration::from_millis(1))) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("supervisor holds a sender")
                }
            },
        };

        match msg {
            Some(Msg::Claimed { idx }) => {
                running.insert(idx, Instant::now());
            }
            Some(Msg::Finished { idx, result, elapsed }) => {
                running.remove(&idx);
                if results[idx].is_some() {
                    // Already declared DNF at its deadline; the stray
                    // late completion keeps serial/parallel output equal.
                    continue;
                }
                let outcome = match result {
                    Ok(value) => Outcome::Done { value, elapsed },
                    Err(message) if message.contains(FAULT_MARKER) => {
                        Outcome::Faulted { message, elapsed }
                    }
                    Err(message) => Outcome::Panicked { message, elapsed },
                };
                if outcome.is_dnf()
                    && schedule_retry(idx, cfg, &factories, &labels, &mut attempts, &mut retry_at)
                {
                    continue;
                }
                done += 1;
                if cfg.progress {
                    progress_line(done, total, &labels[idx], &outcome, started_at);
                }
                results[idx] = Some(outcome);
            }
            None => {
                let now = Instant::now();
                // Deadline sweep: declare every overdue job DNF (or grant
                // it a retry) and spawn replacement workers for their
                // abandoned threads.
                if let Some(limit) = cfg.timeout {
                    let overdue: Vec<usize> = running
                        .iter()
                        .filter(|(_, s)| now.duration_since(**s) >= limit)
                        .map(|(i, _)| *i)
                        .collect();
                    for idx in overdue {
                        running.remove(&idx);
                        spawn_worker(Arc::clone(&queue), tx.clone());
                        if schedule_retry(
                            idx,
                            cfg,
                            &factories,
                            &labels,
                            &mut attempts,
                            &mut retry_at,
                        ) {
                            continue;
                        }
                        let outcome = Outcome::TimedOut { elapsed: limit };
                        done += 1;
                        if cfg.progress {
                            progress_line(done, total, &labels[idx], &outcome, started_at);
                        }
                        results[idx] = Some(outcome);
                    }
                }
                // Backoff sweep: re-enqueue every due retry. The original
                // workers may have drained the queue and exited, so each
                // re-enqueued job brings its own worker.
                let mut i = 0;
                while i < retry_at.len() {
                    if retry_at[i].0 <= now {
                        let (_, idx) = retry_at.swap_remove(i);
                        let job = factories[idx]
                            .as_ref()
                            .map(|f| Job::from_factory(labels[idx].clone(), Arc::clone(f)))
                            .expect("only retryable jobs are scheduled for retry");
                        queue
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push_back((idx, job));
                        spawn_worker(Arc::clone(&queue), tx.clone());
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    drop(tx);
    results
        .into_iter()
        .map(|r| r.expect("every submitted job resolved"))
        .collect()
}

/// Grants `idx` one more attempt if the configuration and the job allow
/// it: bumps its attempt count and parks it until its exponential-backoff
/// delay (`retry_backoff << (attempt-1)`) expires. Returns `false` when
/// the job's outcome should be final.
fn schedule_retry<F>(
    idx: usize,
    cfg: &DriverConfig,
    factories: &[Option<F>],
    labels: &[String],
    attempts: &mut [usize],
    retry_at: &mut Vec<(Instant, usize)>,
) -> bool {
    if attempts[idx] >= cfg.retries || factories[idx].is_none() {
        return false;
    }
    attempts[idx] += 1;
    let delay = cfg
        .retry_backoff
        .saturating_mul(1u32 << (attempts[idx] - 1).min(16));
    if cfg.progress {
        eprintln!(
            "[retry {}/{}] {:<44} backing off {:.2}s",
            attempts[idx],
            cfg.retries,
            labels[idx],
            delay.as_secs_f64()
        );
    }
    retry_at.push((Instant::now() + delay, idx));
    true
}

/// Convenience: run every job serially on the calling configuration's
/// pool and unwrap, panicking on any DNF. For harnesses that must not
/// lose rows (unit tests, equivalence baselines).
pub fn run_jobs_strict<T: Send + 'static>(jobs: Vec<Job<T>>, cfg: &DriverConfig) -> Vec<T> {
    run_jobs(jobs, cfg)
        .into_iter()
        .enumerate()
        .map(|(i, o)| match o {
            Outcome::Done { value, .. } => value,
            Outcome::Panicked { message, .. } => panic!("job {i} panicked: {message}"),
            Outcome::TimedOut { .. } => panic!("job {i} exceeded its deadline"),
            Outcome::Faulted { message, .. } => panic!("job {i} hit an injected fault: {message}"),
        })
        .collect()
}

fn spawn_worker<T: Send + 'static>(queue: JobQueue<T>, tx: Sender<Msg<T>>) {
    std::thread::Builder::new()
        .name("bench-worker".into())
        .spawn(move || loop {
            let claimed = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
            let Some((idx, job)) = claimed else { break };
            if tx.send(Msg::Claimed { idx }).is_err() {
                break; // supervisor gone
            }
            let start = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| job.execute())).map_err(|payload| {
                payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into())
            });
            let elapsed = start.elapsed();
            if tx.send(Msg::Finished { idx, result, elapsed }).is_err() {
                break;
            }
        })
        .expect("spawn bench worker");
}

fn progress_line<T>(done: usize, total: usize, label: &str, outcome: &Outcome<T>, t0: Instant) {
    let wall = t0.elapsed().as_secs_f64();
    match outcome {
        Outcome::Done { elapsed, .. } => eprintln!(
            "[{done:>3}/{total}] {label:<44} {:>9.1} ms   (t+{wall:.1}s)",
            elapsed.as_secs_f64() * 1e3
        ),
        Outcome::Panicked { message, .. } => {
            let first = message.lines().next().unwrap_or("");
            eprintln!("[{done:>3}/{total}] {label:<44}       DNF   (panicked: {first})");
        }
        Outcome::TimedOut { elapsed } => eprintln!(
            "[{done:>3}/{total}] {label:<44}       DNF   (deadline {:.0}s exceeded)",
            elapsed.as_secs_f64()
        ),
        Outcome::Faulted { message, .. } => {
            let first = message.lines().next().unwrap_or("");
            eprintln!("[{done:>3}/{total}] {label:<44}       DNF   ({first})");
        }
    }
}
