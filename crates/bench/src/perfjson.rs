//! Minimal JSON emit/parse for the perf trajectory files.
//!
//! The workspace is built offline with no serde available, and the perf
//! harness only needs one document shape (`BENCH_PR2.json`): objects with
//! string keys, arrays, numbers, strings, and booleans. This module
//! implements exactly that — an order-preserving [`Value`] tree, a pretty
//! emitter, and a recursive-descent parser — so the harness can merge
//! "baseline" and "current" runs into one file and CI can verify the file
//! stays well-formed.

use std::fmt::Write as _;

/// Schema tag of the PR 7 trajectory document (`BENCH_PR7.json`).
///
/// Bumped from `bench-pr2-v1` to make every run record the host it was
/// measured on (`host.cores`, `host.jobs`): wall-clock numbers from a
/// single-core CI box must never be compared against a multi-core run,
/// so the baseline/current speedup is only computed when both runs'
/// host blocks match (see [`hosts_comparable`]).
pub const SCHEMA_PR7: &str = "bench-pr7-v1";

/// The host block every `bench-pr7-v1` run carries.
#[must_use]
pub fn host_info(cores: usize, jobs: usize) -> Value {
    let mut h = Value::obj();
    h.set("cores", Value::Num(cores as f64));
    h.set("jobs", Value::Num(jobs as f64));
    h
}

/// Whether two runs' host blocks describe comparable measurements
/// (same core count and same `--jobs` fan-out). Missing host blocks —
/// e.g. a run recorded under an older schema — are never comparable.
#[must_use]
pub fn hosts_comparable(a: &Value, b: &Value) -> bool {
    let field = |run: &Value, key: &str| run.get("host").and_then(|h| h.get(key)).and_then(Value::as_f64);
    matches!(
        (field(a, "cores"), field(b, "cores"), field(a, "jobs"), field(b, "jobs")),
        (Some(ca), Some(cb), Some(ja), Some(jb)) if ca == cb && ja == jb
    )
}

/// Structural validation of a `bench-pr7-v1` document: schema tag, host
/// blocks on every recorded run, and the overlap model's accounting
/// invariants (`busy + idle == total` per engine, `overlapped <=
/// serial`). This is what `ci.sh --perf` runs against the emitted file.
///
/// # Errors
/// Returns a description of the first violated constraint.
pub fn validate_pr7(doc: &Value) -> Result<(), String> {
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA_PR7 => {}
        Some(s) => return Err(format!("schema is `{s}`, expected `{SCHEMA_PR7}`")),
        None => return Err("missing `schema`".into()),
    }
    let mut saw_run = false;
    for key in ["baseline", "current"] {
        let Some(run) = doc.get(key) else { continue };
        saw_run = true;
        for field in ["cores", "jobs"] {
            if run
                .get("host")
                .and_then(|h| h.get(field))
                .and_then(Value::as_f64)
                .is_none()
            {
                return Err(format!("run `{key}` lacks host.{field}"));
            }
        }
        if run.get("totals").is_none() {
            return Err(format!("run `{key}` lacks totals"));
        }
    }
    if !saw_run {
        return Err("document records neither `baseline` nor `current`".into());
    }
    if let Some(overlap) = doc.get("overlap") {
        let Some(Value::Arr(entries)) = overlap.get("workloads") else {
            return Err("overlap.workloads missing or not an array".into());
        };
        for e in entries {
            check_overlap_entry(e)?;
        }
        if let Some(streamed) = overlap.get("pipelined_sweep") {
            check_overlap_entry(streamed)?;
        }
    }
    if let Some(sweep) = doc.get("shard_sweep") {
        let Some(Value::Arr(entries)) = sweep.get("entries") else {
            return Err("shard_sweep.entries missing or not an array".into());
        };
        for e in entries {
            for k in ["shards", "wall_ms"] {
                if e.get(k).and_then(Value::as_f64).is_none() {
                    return Err(format!("shard_sweep entry lacks `{k}`"));
                }
            }
        }
    }
    Ok(())
}

/// Checks one overlap-schedule object (a `overlap.workloads` entry or
/// the `overlap.pipelined_sweep` aggregate): `overlapped <= serial` and
/// every engine lane's `busy + idle == overlapped`.
fn check_overlap_entry(e: &Value) -> Result<(), String> {
    let name = e.get("name").and_then(Value::as_str).unwrap_or("?");
    let num = |k: &str| {
        e.get(k)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("overlap entry `{name}` lacks `{k}`"))
    };
    let serial = num("serial_cycles")?;
    let overlapped = num("overlapped_cycles")?;
    if overlapped > serial {
        return Err(format!(
            "overlap entry `{name}`: overlapped {overlapped} > serial {serial}"
        ));
    }
    let Some(Value::Arr(engines)) = e.get("engines") else {
        return Err(format!("overlap entry `{name}` lacks engines"));
    };
    for eng in engines {
        let ename = eng.get("name").and_then(Value::as_str).unwrap_or("?");
        let busy = eng.get("busy").and_then(Value::as_f64);
        let idle = eng.get("idle").and_then(Value::as_f64);
        match (busy, idle) {
            (Some(b), Some(i)) if b + i == overlapped => {}
            (Some(b), Some(i)) => {
                return Err(format!(
                    "overlap entry `{name}` engine `{ename}`: busy {b} + idle {i} != total {overlapped}"
                ));
            }
            _ => {
                return Err(format!(
                    "overlap entry `{name}` engine `{ename}` lacks busy/idle"
                ));
            }
        }
    }
    Ok(())
}

/// One JSON value. Object keys keep insertion order so emitted files are
/// stable under re-emission (deterministic diffs in the perf trajectory).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (emitted as an integer when it is one).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, v: Value) {
        let Value::Obj(entries) = self else {
            panic!("Value::set on non-object");
        };
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = v;
        } else {
            entries.push((key.to_string(), v));
        }
    }

    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; the perf harness never produces them, but
        // degrade gracefully rather than emit an unparsable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, rejecting trailing garbage.
///
/// # Errors
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    s.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{s}` at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "non-utf8 escape"))
                            .map_err(ToString::to_string)?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Surrogates never appear in our own documents.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("bad escape `\\{}`", c as char)),
                }
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "non-utf8 string")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(entries));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        entries.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_perf_document() {
        let mut doc = Value::obj();
        doc.set("schema", Value::Str("bench-pr2-v1".into()));
        let mut run = Value::obj();
        run.set("wall_ms", Value::Num(12.5));
        run.set("accesses", Value::Num(123_456.0));
        run.set("quick", Value::Bool(false));
        doc.set(
            "workloads",
            Value::Arr(vec![run, Value::Null]),
        );
        let text = doc.pretty();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_emit_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 42.0);
        assert_eq!(s, "42");
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut o = Value::obj();
        o.set("k", Value::Num(1.0));
        o.set("k", Value::Num(2.0));
        assert_eq!(o.get("k").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    fn minimal_pr7() -> Value {
        let mut doc = Value::obj();
        doc.set("schema", Value::Str(SCHEMA_PR7.into()));
        let mut run = Value::obj();
        run.set("host", host_info(1, 1));
        run.set("totals", Value::obj());
        doc.set("current", run);
        doc
    }

    #[test]
    fn validate_accepts_minimal_document() {
        assert_eq!(validate_pr7(&minimal_pr7()), Ok(()));
    }

    #[test]
    fn validate_rejects_wrong_schema_and_missing_host() {
        let mut doc = minimal_pr7();
        doc.set("schema", Value::Str("bench-pr2-v1".into()));
        assert!(validate_pr7(&doc).unwrap_err().contains("schema"));

        let mut doc = Value::obj();
        doc.set("schema", Value::Str(SCHEMA_PR7.into()));
        let mut run = Value::obj();
        run.set("totals", Value::obj());
        doc.set("current", run);
        assert!(validate_pr7(&doc).unwrap_err().contains("host"));
    }

    #[test]
    fn validate_checks_busy_plus_idle_invariant() {
        let mut doc = minimal_pr7();
        let mut entry = Value::obj();
        entry.set("name", Value::Str("w".into()));
        entry.set("serial_cycles", Value::Num(100.0));
        entry.set("overlapped_cycles", Value::Num(80.0));
        let mut eng = Value::obj();
        eng.set("name", Value::Str("kernel".into()));
        eng.set("busy", Value::Num(70.0));
        eng.set("idle", Value::Num(10.0));
        entry.set("engines", Value::Arr(vec![eng.clone()]));
        let mut overlap = Value::obj();
        overlap.set("workloads", Value::Arr(vec![entry.clone()]));
        doc.set("overlap", overlap.clone());
        assert_eq!(validate_pr7(&doc), Ok(()));

        // Break the invariant: busy + idle != overlapped.
        eng.set("idle", Value::Num(11.0));
        entry.set("engines", Value::Arr(vec![eng]));
        overlap.set("workloads", Value::Arr(vec![entry]));
        doc.set("overlap", overlap);
        assert!(validate_pr7(&doc).unwrap_err().contains("busy"));
    }

    #[test]
    fn hosts_comparable_requires_matching_cores_and_jobs() {
        let mut a = Value::obj();
        a.set("host", host_info(8, 4));
        let mut b = Value::obj();
        b.set("host", host_info(8, 4));
        assert!(hosts_comparable(&a, &b));
        b.set("host", host_info(1, 4));
        assert!(!hosts_comparable(&a, &b));
        // A run without a host block (older schema) is never comparable.
        let bare = Value::obj();
        assert!(!hosts_comparable(&a, &bare));
    }
}
