//! Mid-campaign checkpointing for long-running sweeps.
//!
//! A campaign (differential fuzzing, chaos testing) is a deterministic
//! sequence of independent units of work. A [`Checkpoint`] snapshots the
//! campaign's cursor — arbitrary `meta` key/values naming where the
//! stream stands — plus one `row` per completed unit, in completion
//! order. Because the unit stream is a pure function of the campaign
//! seed, reloading a checkpoint and continuing from its cursor
//! reproduces exactly the results an uninterrupted campaign would have
//! produced; the chaos smoke (`bench --bin chaos`) asserts this
//! byte-for-byte.
//!
//! The on-disk format is line-oriented, human-readable text:
//!
//! ```text
//! # bench campaign checkpoint v1
//! meta<TAB>seed<TAB>42
//! meta<TAB>done<TAB>64
//! row<TAB><label><TAB><value>
//! ```
//!
//! Tabs separate fields, so labels and values may contain spaces (but
//! not tabs or newlines).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Magic first line; bumping the version invalidates stale checkpoints.
const HEADER: &str = "# bench campaign checkpoint v1";

/// A resumable snapshot of campaign progress.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Campaign cursor: seed, stream position, aggregate counters.
    pub meta: BTreeMap<String, String>,
    /// One `(label, value)` per completed unit, in completion order.
    pub rows: Vec<(String, String)>,
}

impl Checkpoint {
    /// An empty checkpoint.
    #[must_use]
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// Sets a cursor field (stringified).
    pub fn set_meta(&mut self, key: &str, value: impl ToString) {
        self.meta.insert(key.to_string(), value.to_string());
    }

    /// Reads a cursor field parsed as `T`, `None` if absent or malformed.
    #[must_use]
    pub fn meta_as<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.meta.get(key).and_then(|v| v.parse().ok())
    }

    /// Appends a completed unit.
    pub fn push_row(&mut self, label: impl Into<String>, value: impl Into<String>) {
        self.rows.push((label.into(), value.into()));
    }

    /// Serializes to the text format.
    #[must_use]
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for (k, v) in &self.meta {
            let _ = writeln!(out, "meta\t{k}\t{v}");
        }
        for (label, value) in &self.rows {
            let _ = writeln!(out, "row\t{label}\t{value}");
        }
        out
    }

    /// Parses the text format, rejecting unknown versions and malformed
    /// lines (a truncated checkpoint must not silently resume).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h == HEADER => {}
            Some(h) => return Err(format!("unsupported checkpoint header `{h}`")),
            None => return Err("empty checkpoint".into()),
        }
        let mut ck = Checkpoint::new();
        for (no, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let kind = parts.next().unwrap_or("");
            let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
                return Err(format!("line {}: expected 3 tab-separated fields", no + 2));
            };
            match kind {
                "meta" => {
                    ck.meta.insert(a.to_string(), b.to_string());
                }
                "row" => ck.rows.push((a.to_string(), b.to_string())),
                other => return Err(format!("line {}: unknown record `{other}`", no + 2)),
            }
        }
        Ok(ck)
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename),
    /// so an interrupt mid-write cannot corrupt a resumable state.
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, self.format())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads and parses a checkpoint from `path`.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Checkpoint::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_meta_and_rows() {
        let mut ck = Checkpoint::new();
        ck.set_meta("seed", 42u64);
        ck.set_meta("stream_seed", 0xDEAD_BEEFu64);
        ck.push_row("job a", "ok sites=2");
        ck.push_row("job b", "DNF(fault)");
        let parsed = Checkpoint::parse(&ck.format()).unwrap();
        assert_eq!(parsed, ck);
        assert_eq!(parsed.meta_as::<u64>("seed"), Some(42));
    }

    #[test]
    fn labels_with_spaces_survive() {
        let mut ck = Checkpoint::new();
        ck.push_row("scor/append size=Test seed=7", "races=3 missed=0");
        let parsed = Checkpoint::parse(&ck.format()).unwrap();
        assert_eq!(parsed.rows[0].0, "scor/append size=Test seed=7");
    }

    #[test]
    fn rejects_foreign_headers_and_truncated_lines() {
        assert!(Checkpoint::parse("# something else\n").is_err());
        assert!(Checkpoint::parse("").is_err());
        let bad = format!("{HEADER}\nmeta\tonly-two-fields\n");
        assert!(Checkpoint::parse(&bad).is_err());
    }

    #[test]
    fn save_and_load_through_disk() {
        let mut ck = Checkpoint::new();
        ck.set_meta("done", 7usize);
        let path = std::env::temp_dir().join("bench-ckpt-test.txt");
        let path = path.to_str().unwrap().to_string();
        ck.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, ck);
    }
}
