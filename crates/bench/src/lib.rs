//! # bench: the evaluation harness
//!
//! Shared infrastructure for regenerating every table and figure of the
//! paper's evaluation (§7): run a workload natively, under iGUARD, or
//! under Barracuda, and report simulated time, detected races, and
//! detector statistics. Each table/figure has a dedicated binary
//! (`table4`, `table5`, `fig11`, `fig12`, `fig13`, `fig14`,
//! `fence_scope_cost`, `ablation_history`).

#![forbid(unsafe_code)]

pub mod campaign;
pub mod driver;
pub mod job;
pub mod perfjson;

use barracuda::{Barracuda, BarracudaConfig, BarracudaFailure, BinaryKind};
use gpu_sim::hook::{ExecMode, NullHook};
use gpu_sim::machine::{Gpu, GpuConfig, LaunchStats};
use gpu_sim::overlap::{CopyModel, OverlapReport, Segment};
use gpu_sim::timing::{CostCategory, COST_CATEGORIES};
use iguard::{Iguard, IguardConfig, RaceSite, ShardConfig, ShardedIguard};
use nvbit_sim::pipeline::PipeStats;
use nvbit_sim::Instrumented;
use workloads::{Size, Workload};

pub use driver::{available_jobs, run_jobs, run_jobs_strict, DriverConfig, Outcome, FAULT_MARKER};
pub use job::{Job, JobSpec, RunOutput, ToolSpec};

/// Default schedule seed used by every harness (deterministic results).
pub const DEFAULT_SEED: u64 = 42;

/// GPU configuration used across the evaluation (Table 3's Titan RTX).
#[must_use]
pub fn gpu_config(seed: u64) -> GpuConfig {
    GpuConfig {
        seed,
        mode: ExecMode::Its,
        max_steps: 80_000_000,
        ..GpuConfig::default()
    }
}

/// Outcome of one native (uninstrumented) run.
#[derive(Debug, Clone)]
pub struct NativeRun {
    /// Simulated time (cycles, parallelism-adjusted).
    pub time: f64,
    /// Aggregate execution statistics across all launches (determinism
    /// witness: identical for identical `(workload, size, config)`).
    pub stats: LaunchStats,
    /// Whether the watchdog killed the run.
    pub timed_out: bool,
    /// Launches killed by an injected fault (zero without a fault plane).
    pub aborted_launches: u64,
}

/// Runs `w` natively with the evaluation GPU configuration for `seed`.
#[must_use]
pub fn run_native(w: &Workload, size: Size, seed: u64) -> NativeRun {
    run_native_with(w, size, gpu_config(seed))
}

/// Runs `w` natively under an explicit GPU configuration.
#[must_use]
pub fn run_native_with(w: &Workload, size: Size, gcfg: GpuConfig) -> NativeRun {
    let mut gpu = Gpu::new(gcfg);
    let launches = w.build(&mut gpu, size);
    let mut timed_out = false;
    let mut aborted_launches = 0u64;
    let mut stats = LaunchStats::default();
    for l in &launches {
        match gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook) {
            Ok(s) => accumulate(&mut stats, &s),
            Err(gpu_sim::error::SimError::Timeout { .. }) => timed_out = true,
            Err(gpu_sim::error::SimError::InjectedFault { .. }) => aborted_launches += 1,
            Err(e) => panic!("{} failed natively: {e}", w.name),
        }
    }
    NativeRun {
        time: gpu.clock().total_time(),
        stats,
        timed_out,
        aborted_launches,
    }
}

/// Sums launch statistics across a workload's kernel launches.
fn accumulate(acc: &mut LaunchStats, s: &LaunchStats) {
    acc.steps += s.steps;
    acc.dyn_instrs += s.dyn_instrs;
    acc.lane_instrs += s.lane_instrs;
    acc.phases.accumulate(&s.phases);
}

/// Outcome of one iGUARD-instrumented run.
#[derive(Debug)]
pub struct IguardRun {
    /// Simulated time with the detector attached.
    pub time: f64,
    /// Per-category times (Figure 13's breakdown), in `COST_CATEGORIES`
    /// order.
    pub breakdown: [f64; 6],
    /// Distinct racing sites, the Table 4 unit.
    pub sites: Vec<RaceSite>,
    /// Detector counters.
    pub stats: iguard::IguardStats,
    /// UVM counters of the metadata region.
    pub uvm: uvm_sim::UvmStats,
    /// Aggregate execution statistics across all launches (determinism
    /// witness: identical for identical `(workload, size, config)`).
    pub stats_exec: LaunchStats,
    /// Whether the watchdog killed the run (races still reported).
    pub timed_out: bool,
    /// Launches killed by an injected fault (zero without a fault plane).
    pub aborted_launches: u64,
    /// Everything the detector degraded on, fully accounted (collected
    /// after the final report drain, so the channel invariant holds).
    pub degradation: iguard::Degradation,
    /// Injected-fault counters aggregated across the detector's
    /// components and the GPU launch boundary.
    pub fault_stats: faults::FaultStats,
    /// Copy/compute overlap schedule of the run (H2D upload → kernel →
    /// report-drain D2H), with per-engine busy/idle accounting. The D2H
    /// words are the race-report records shipped per launch, so a
    /// multi-launch run shows launch *i*'s report drain overlapping
    /// kernel *i + 1*.
    pub overlap: OverlapReport,
    /// The raw overlap-timeline segments behind [`IguardRun::overlap`].
    /// Callers can concatenate segments from several runs and reschedule
    /// them (`gpu_sim::overlap::schedule`) to model a *streamed* sweep
    /// where one workload's report drain overlaps the next's kernel.
    pub overlap_segments: Vec<Segment>,
    /// Per-shard pipeline counters (empty for the serial detector and
    /// for inline sharding — only threaded shard workers have queues).
    pub pipe: Vec<PipeStats>,
}

/// Runs `w` under iGUARD with the evaluation GPU configuration for `seed`.
#[must_use]
pub fn run_iguard(w: &Workload, size: Size, seed: u64, cfg: IguardConfig) -> IguardRun {
    run_iguard_with(w, size, gpu_config(seed), cfg)
}

/// Runs `w` under iGUARD with an explicit GPU configuration.
#[must_use]
pub fn run_iguard_with(w: &Workload, size: Size, gcfg: GpuConfig, cfg: IguardConfig) -> IguardRun {
    let mut gpu = Gpu::new(gcfg);
    let launches = w.build(&mut gpu, size);
    let mut tool = Instrumented::new(Iguard::new(cfg));
    let mut timed_out = false;
    let mut aborted_launches = 0u64;
    let mut stats_exec = LaunchStats::default();
    let mut last_sent = 0u64;
    for l in &launches {
        match gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool) {
            Ok(s) => accumulate(&mut stats_exec, &s),
            Err(gpu_sim::error::SimError::Timeout { .. }) => timed_out = true,
            Err(gpu_sim::error::SimError::InjectedFault { .. }) => aborted_launches += 1,
            Err(e) => panic!("{} failed under iGUARD: {e}", w.name),
        }
        // Race-report records shipped by this launch are its D2H traffic:
        // draining them can overlap the next kernel in the pipeline model.
        let sent = tool.tool().channel_stats().sent;
        gpu.overlap_timeline().record_d2h(sent - last_sent);
        last_sent = sent;
    }
    let mut breakdown = [0.0; 6];
    for (i, &c) in COST_CATEGORIES.iter().enumerate() {
        breakdown[i] = gpu.clock().time(c);
    }
    let time = gpu.clock().total_time();
    let overlap = gpu.overlap_report(&CopyModel::default());
    let overlap_segments = gpu.overlap_timeline().segments();
    let det = tool.tool_mut();
    // `race_sites` drains the report channel, so the degradation summary
    // collected afterwards satisfies `sent == drained + dropped`.
    let sites = det.race_sites();
    let degradation = det.degradation();
    let mut fault_stats = det.fault_stats();
    fault_stats.accumulate(&gpu.fault_stats());
    IguardRun {
        time,
        breakdown,
        sites,
        stats: det.stats(),
        uvm: det.uvm_stats(),
        stats_exec,
        timed_out,
        aborted_launches,
        degradation,
        fault_stats,
        overlap,
        overlap_segments,
        pipe: Vec::new(),
    }
}

/// Runs `w` under the sharded iGUARD with the evaluation GPU
/// configuration for `seed`.
#[must_use]
pub fn run_iguard_sharded(
    w: &Workload,
    size: Size,
    seed: u64,
    cfg: IguardConfig,
    scfg: ShardConfig,
) -> IguardRun {
    run_iguard_sharded_with(w, size, gpu_config(seed), cfg, scfg)
}

/// Runs `w` under [`ShardedIguard`] with an explicit GPU configuration.
///
/// Race reports and verdict-relevant counters are byte-identical to
/// [`run_iguard_with`] for any [`ShardConfig`]; the metadata plane's
/// cycle costs (UVM faults, setup) follow the per-shard regions instead,
/// so `time`/`breakdown`/`uvm` are deterministic but not comparable to
/// the serial run.
#[must_use]
pub fn run_iguard_sharded_with(
    w: &Workload,
    size: Size,
    gcfg: GpuConfig,
    cfg: IguardConfig,
    scfg: ShardConfig,
) -> IguardRun {
    let mut gpu = Gpu::new(gcfg);
    let launches = w.build(&mut gpu, size);
    let mut tool = Instrumented::new(ShardedIguard::new(cfg, scfg));
    let mut timed_out = false;
    let mut aborted_launches = 0u64;
    let mut stats_exec = LaunchStats::default();
    let mut last_sent = 0u64;
    for l in &launches {
        match gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool) {
            Ok(s) => accumulate(&mut stats_exec, &s),
            Err(gpu_sim::error::SimError::Timeout { .. }) => timed_out = true,
            Err(gpu_sim::error::SimError::InjectedFault { .. }) => aborted_launches += 1,
            Err(e) => panic!("{} failed under sharded iGUARD: {e}", w.name),
        }
        let sent = tool.tool().channel_stats().sent;
        gpu.overlap_timeline().record_d2h(sent - last_sent);
        last_sent = sent;
    }
    let mut breakdown = [0.0; 6];
    for (i, &c) in COST_CATEGORIES.iter().enumerate() {
        breakdown[i] = gpu.clock().time(c);
    }
    let time = gpu.clock().total_time();
    let overlap = gpu.overlap_report(&CopyModel::default());
    let overlap_segments = gpu.overlap_timeline().segments();
    let det = tool.tool_mut();
    let sites = det.race_sites();
    let degradation = det.degradation();
    let mut fault_stats = det.fault_stats();
    fault_stats.accumulate(&gpu.fault_stats());
    let pipe = det.pipe_stats();
    IguardRun {
        time,
        breakdown,
        sites,
        stats: det.stats(),
        uvm: det.uvm_stats(),
        stats_exec,
        timed_out,
        aborted_launches,
        degradation,
        fault_stats,
        overlap,
        overlap_segments,
        pipe,
    }
}

/// Outcome of one Barracuda run.
#[derive(Debug)]
pub enum BarracudaRun {
    /// The front end refused the binary.
    Unsupported(barracuda::Unsupported),
    /// The run completed (or failed mid-way).
    Ran {
        /// Simulated time with the baseline attached.
        time: f64,
        /// Races the CPU-side detector found (per-pc).
        races: usize,
        /// OOM / did-not-terminate, if any.
        failure: Option<BarracudaFailure>,
        /// Events shipped through the serialized channel.
        events: u64,
    },
}

/// Runs `w` under Barracuda with the evaluation GPU configuration for
/// `seed`.
#[must_use]
pub fn run_barracuda(w: &Workload, size: Size, seed: u64, cfg: BarracudaConfig) -> BarracudaRun {
    run_barracuda_with(w, size, gpu_config(seed), cfg)
}

/// Runs `w` under the Barracuda baseline with an explicit GPU
/// configuration.
#[must_use]
pub fn run_barracuda_with(
    w: &Workload,
    size: Size,
    gcfg: GpuConfig,
    cfg: BarracudaConfig,
) -> BarracudaRun {
    let mut gpu = Gpu::new(gcfg);
    let launches = w.build(&mut gpu, size);
    let kind = if w.multi_file {
        BinaryKind::MultiFile
    } else {
        BinaryKind::SingleFile
    };
    let kernels = Workload::kernels(&launches);
    if let Err(u) = barracuda::supports(&kernels, kind) {
        return BarracudaRun::Unsupported(u);
    }
    let mut tool = Instrumented::new(Barracuda::new(cfg));
    for l in &launches {
        match gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool) {
            Ok(_)
            | Err(gpu_sim::error::SimError::Timeout { .. })
            | Err(gpu_sim::error::SimError::InjectedFault { .. }) => {}
            Err(e) => panic!("{} failed under Barracuda: {e}", w.name),
        }
        if tool.tool().failure().is_some() {
            break;
        }
    }
    // CPU-side analysis happens at drain time; charge it to the clock.
    let races = {
        let (det, clock) = (&mut tool, &mut gpu);
        det.tool_mut().finish(clock.clock_mut()).len()
    };
    let events = tool.tool().events_sent();
    let failure = tool.tool().failure().cloned();
    BarracudaRun::Ran {
        time: gpu.clock().total_time(),
        races,
        failure,
        events,
    }
}

/// Barracuda configuration used by the harness: a fixed CPU-processing
/// budget (serial cycles). Workloads whose event stream exceeds it are
/// reported as non-terminating — in practice only `interac`'s
/// transactional retry flood does, matching the paper.
#[must_use]
pub fn barracuda_config_for(_w: &Workload) -> BarracudaConfig {
    // 25 000 records of CPU budget: every workload's stream fits except
    // interac's transactional retry flood — the paper's non-termination.
    BarracudaConfig {
        timeout_serial_cycles: 660_000,
        ..BarracudaConfig::default()
    }
}

/// Convenience: iGUARD's overhead over native for one workload.
#[must_use]
pub fn iguard_overhead(w: &Workload, size: Size, seed: u64, cfg: IguardConfig) -> f64 {
    let native = run_native(w, size, seed);
    let ig = run_iguard(w, size, seed, cfg);
    ig.time / native.time
}

/// Pretty one-line summary of detected kinds at a site list.
#[must_use]
pub fn kinds_summary(sites: &[RaceSite]) -> String {
    use std::collections::BTreeSet;
    let kinds: BTreeSet<&str> = sites
        .iter()
        .flat_map(|s| s.kinds.iter().map(|k| k.code()))
        .collect();
    kinds.into_iter().collect::<Vec<_>>().join(",")
}

/// Geometric mean helper used by the overhead figures.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// The Figure 13 category labels, in order.
pub const BREAKDOWN_LABELS: [&str; 6] = [
    "Native",
    "NVBit",
    "Setup",
    "Instrumentation",
    "Detection",
    "Misc.",
];

/// Asserts the name maps into `COST_CATEGORIES` order (compile-time doc).
#[must_use]
pub fn category_label(c: CostCategory) -> &'static str {
    match c {
        CostCategory::Native => "Native",
        CostCategory::Nvbit => "NVBit",
        CostCategory::Setup => "Setup",
        CostCategory::Instrumentation => "Instrumentation",
        CostCategory::Detection => "Detection",
        CostCategory::Misc => "Misc.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean(&[1.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn native_run_of_a_clean_workload() {
        let w = workloads::by_name("b_reduce").unwrap();
        let r = run_native(&w, Size::Test, DEFAULT_SEED);
        assert!(r.time > 0.0);
        assert!(!r.timed_out);
    }

    #[test]
    fn iguard_run_reports_no_races_on_clean_workload() {
        let w = workloads::by_name("b_reduce").unwrap();
        let r = run_iguard(&w, Size::Test, DEFAULT_SEED, IguardConfig::default());
        assert!(r.sites.is_empty(), "got {:?}", r.sites);
        assert!(r.time > 0.0);
    }

    #[test]
    fn barracuda_refuses_multi_file() {
        let w = workloads::by_name("louvain").unwrap();
        let r = run_barracuda(&w, Size::Test, DEFAULT_SEED, BarracudaConfig::default());
        assert!(matches!(
            r,
            BarracudaRun::Unsupported(barracuda::Unsupported::MultiFilePtx)
        ));
    }
}
