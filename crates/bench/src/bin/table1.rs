//! Regenerates **Table 1** — the qualitative feature matrix — *by running
//! probes* rather than quoting it: one minimal racy kernel per advanced
//! feature (scoped fence, scoped atomic, ITS, CG), each run under iGUARD,
//! a ScoRD-like detector (same scoped logic, no ITS support), and
//! Barracuda.
//!
//! ```text
//! cargo run -p bench --release --bin table1 [-- --jobs N | --serial]
//! ```

use bench::{gpu_config, run_jobs_strict, DriverConfig, Job, DEFAULT_SEED};
use gpu_sim::error::SimError;
use gpu_sim::machine::Gpu;
use gpu_sim::prelude::*;
use iguard::{Iguard, IguardConfig};
use nvbit_sim::Instrumented;

/// Scoped-fence probe: the producer "publishes" with only a *block*-scope
/// fence before raising the flag; a consumer in another block reads.
fn scoped_fence_probe() -> Kernel {
    let mut b = KernelBuilder::new("probe_sc_fence");
    let base = b.param(0); // [flag, data, out]
    let bid = b.special(Special::BlockId);
    let tid = b.special(Special::Tid);
    let is_p = b.eq(bid, 0u32);
    let cons = b.fwd_label();
    b.bra_ifnot(is_p, cons);
    let t0 = b.eq(tid, 0u32);
    let pd = b.fwd_label();
    b.bra_ifnot(t0, pd);
    let v = b.imm(11);
    b.st(base, 1, v);
    b.membar(Scope::Block); // insufficient: needs device scope
    let one = b.imm(1);
    let _ = b.atomic_exch(Scope::Device, base, 0, one);
    b.bind(pd);
    let endl = b.fwd_label();
    b.bra(endl);
    b.bind(cons);
    let t0c = b.eq(tid, 0u32);
    let cd = b.fwd_label();
    b.bra_ifnot(t0c, cd);
    let spin = b.here();
    let f = b.ld_volatile(base, 0);
    let unset = b.eq(f, 0u32);
    b.bra_if(unset, spin);
    let d = b.ld(base, 1);
    b.st(base, 2, d);
    b.bind(cd);
    b.bind(endl);
    b.build()
}

/// Scoped-atomic probe: block-scope atomicAdd on a counter shared across
/// blocks (the Figure 1 class).
fn scoped_atomic_probe() -> Kernel {
    let mut b = KernelBuilder::new("probe_sc_atomic");
    let base = b.param(0);
    let tid = b.special(Special::Tid);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let one = b.imm(1);
    let _ = b.atom(AtomOp::Add, Scope::Block, base, 0, one);
    b.bind(fin);
    b.build()
}

/// ITS probe: divergent same-warp handoff with no `__syncwarp`.
fn its_probe() -> Kernel {
    let mut b = KernelBuilder::new("probe_its");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    let is1 = b.eq(tid, 1u32);
    let skip = b.fwd_label();
    b.bra_ifnot(is1, skip);
    let v = b.imm(7);
    b.st(base, 1, v);
    b.bind(skip);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(fin);
    b.build()
}

/// CG probe: a cooperative warp-group reduce whose group sync was written
/// with `cg::coalesced_threads().sync()` (a `__syncwarp`) — but one fold
/// happens *outside* the synced region. Detecting it needs full support
/// for warp-level synchronization, which is why no prior tool sees CG
/// races (§4: "none detect races due to CG, since one needs to fully
/// support atomics, fences, and ITS for it").
fn cg_probe() -> Kernel {
    let mut b = KernelBuilder::new("probe_cg");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    // Phase 1 (correctly synced by the CG primitive): lane 2 writes, sync.
    let is2 = b.eq(tid, 2u32);
    let s1 = b.fwd_label();
    b.bra_ifnot(is2, s1);
    let v = b.imm(3);
    b.st(base, 2, v);
    b.bind(s1);
    b.syncwarp(); // cg::coalesced_threads().sync()
                  // Phase 2 (the bug): lane 1 folds, lane 0 reads — no group sync.
    let is1 = b.eq(tid, 1u32);
    let s2 = b.fwd_label();
    b.bra_ifnot(is1, s2);
    let x = b.ld(base, 2);
    let x1 = b.add(x, 1u32);
    b.st(base, 1, x1);
    b.bind(s2);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(fin);
    b.build()
}

fn iguard_detects(k: &Kernel, grid: u32, cfg: IguardConfig) -> bool {
    let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
    let buf = gpu.alloc(8).unwrap();
    let mut tool = Instrumented::new(Iguard::new(cfg));
    match gpu.launch(k, grid, 32, &[buf], &mut tool) {
        Ok(_) | Err(SimError::Timeout { .. }) => {}
        Err(e) => panic!("{e}"),
    }
    tool.tool().unique_races() > 0
}

fn curd_outcome(k: &Kernel, grid: u32) -> &'static str {
    let Ok(curd) =
        barracuda::Curd::for_kernels(&[k], barracuda::BinaryKind::SingleFile, Default::default())
    else {
        return "unsupported";
    };
    let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
    let buf = gpu.alloc(8).unwrap();
    let mut tool = Instrumented::new(curd);
    match gpu.launch(k, grid, 32, &[buf], &mut tool) {
        Ok(_) | Err(SimError::Timeout { .. }) => {}
        Err(e) => panic!("{e}"),
    }
    if tool.tool_mut().finish(gpu.clock_mut()).is_empty() {
        "No"
    } else {
        "Yes"
    }
}

fn barracuda_outcome(k: &Kernel, grid: u32) -> &'static str {
    if barracuda::supports(&[k], barracuda::BinaryKind::SingleFile).is_err() {
        return "unsupported";
    }
    let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
    let buf = gpu.alloc(8).unwrap();
    let mut tool = Instrumented::new(barracuda::Barracuda::default());
    match gpu.launch(k, grid, 32, &[buf], &mut tool) {
        Ok(_) | Err(SimError::Timeout { .. }) => {}
        Err(e) => panic!("{e}"),
    }
    if tool.tool_mut().finish(gpu.clock_mut()).is_empty() {
        "No"
    } else {
        "Yes"
    }
}

/// `(feature, probe constructor, grid, paper row)`.
type Probe = (&'static str, fn() -> Kernel, u32, &'static str);

fn main() {
    let (driver, _rest) = DriverConfig::from_env();
    let probes: [Probe; 4] = [
        (
            "Sc. fence",
            scoped_fence_probe,
            2,
            "Yes / Yes / Yes / Yes",
        ),
        (
            "Sc. atomic",
            scoped_atomic_probe,
            2,
            "No(unsup) / No / Yes / Yes",
        ),
        ("ITS", its_probe, 1, "No / Lim / No / Yes"),
        ("CG", cg_probe, 1, "No / No / No / Yes"),
    ];

    // Four tool columns per probe, each a custom job building its own
    // kernel (probe constructors are plain fn pointers, trivially Send).
    let mut jobs: Vec<Job<&'static str>> = Vec::new();
    for (name, probe, grid, _) in probes {
        jobs.push(Job::custom(format!("{name}/barracuda"), move || {
            barracuda_outcome(&probe(), grid)
        }));
        jobs.push(Job::custom(format!("{name}/curd"), move || {
            curd_outcome(&probe(), grid)
        }));
        jobs.push(Job::custom(format!("{name}/scord"), move || {
            if iguard_detects(&probe(), grid, IguardConfig::scord_like()) {
                "Yes"
            } else {
                "No"
            }
        }));
        jobs.push(Job::custom(format!("{name}/iguard"), move || {
            if iguard_detects(&probe(), grid, IguardConfig::default()) {
                "Yes"
            } else {
                "No"
            }
        }));
    }
    let cells = run_jobs_strict(jobs, &driver);

    println!("Table 1 (functional): race-class support, measured by probe kernels");
    println!();
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}   paper: Barracuda/CURD/ScoRD/iGUARD",
        "feature", "Barracuda", "CURD", "ScoRD*", "iGUARD"
    );
    println!("{}", "-".repeat(86));
    for (i, (name, _, _, paper)) in probes.iter().enumerate() {
        let [bar, curd, scord, ig] = [
            cells[4 * i],
            cells[4 * i + 1],
            cells[4 * i + 2],
            cells[4 * i + 3],
        ];
        println!("{name:<12} {bar:>10} {curd:>10} {scord:>10} {ig:>10}   ({paper})");
    }
    println!();
    println!("* ScoRD emulated as iGUARD's scoped logic without ITS support");
    println!("  (IguardConfig::scord_like()); the real ScoRD is new hardware.");
}
