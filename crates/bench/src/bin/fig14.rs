//! Regenerates **Figure 14**: overhead as the application's memory
//! footprint scales from 1 GB to 16 GB (d_reduce from CUB). The paper's
//! shape: Barracuda's reserve-half-the-GPU policy runs **out of memory**
//! beyond 8 GB, while iGUARD's UVM-backed metadata degrades gracefully —
//! overhead grows with the page faults of an ever-larger metadata working
//! set but never fails.
//!
//! Footprints are modelled with logical allocation sizes (the simulator
//! does not host multi-GB arrays); the detector's `addr_scale` spreads
//! metadata touches across the correspondingly larger managed region.
//!
//! ```text
//! cargo run -p bench --release --bin fig14 [-- --jobs N | --serial]
//! ```

use bench::{gpu_config, run_jobs_strict, DriverConfig, Job, DEFAULT_SEED};
use gpu_sim::hook::NullHook;
use gpu_sim::machine::Gpu;
use iguard::{Iguard, IguardConfig};
use nvbit_sim::Instrumented;
use uvm_sim::UvmStats;
use workloads::{Size, Workload};

const GB: u64 = 1 << 30;
const FOOTPRINTS_GB: [u64; 5] = [1, 2, 4, 8, 16];

/// Builds d_reduce with its buffers *logically* inflated to `footprint`.
fn build_scaled(gpu: &mut Gpu, footprint: u64) -> Vec<workloads::Launch> {
    // Claim the logical footprint beyond what the real buffers occupy.
    let w = workloads::by_name("d_reduce").expect("d_reduce exists");
    let launches = w.build(gpu, Size::Bench);
    let occupied = gpu.allocated_bytes();
    gpu.alloc_logical(16, footprint.saturating_sub(occupied))
        .expect("logical footprint fits");
    launches
}

fn addr_scale_for(footprint: u64, backing_bytes: u64) -> u64 {
    // Map the small backing arrays onto the logical footprint so metadata
    // touches spread over footprint×4 bytes of managed space -- the span
    // the real tool would touch shadowing `footprint` bytes of data.
    (footprint / backing_bytes.max(1)).max(1)
}

/// Native runtime of d_reduce at the inflated footprint.
fn native_scaled(footprint: u64) -> f64 {
    let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
    let launches = build_scaled(&mut gpu, footprint);
    for l in &launches {
        gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
            .unwrap();
    }
    gpu.clock().total_time()
}

/// iGUARD runtime + UVM counters at the inflated footprint.
fn iguard_scaled(footprint: u64) -> (f64, UvmStats) {
    let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
    let before = gpu.allocated_bytes();
    let launches = {
        let w = workloads::by_name("d_reduce").expect("d_reduce exists");
        w.build(&mut gpu, Size::Bench)
    };
    let backing_bytes = gpu.allocated_bytes() - before;
    gpu.alloc_logical(16, footprint.saturating_sub(gpu.allocated_bytes()))
        .expect("logical footprint fits");
    let cfg = IguardConfig {
        addr_scale: addr_scale_for(footprint, backing_bytes),
        ..IguardConfig::default()
    };
    let mut tool = Instrumented::new(Iguard::new(cfg));
    for l in &launches {
        gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool)
            .unwrap();
    }
    (gpu.clock().total_time(), tool.tool().uvm_stats())
}

/// Barracuda's flat serialized-detection overhead on d_reduce — footprint
/// independent when its reservation fits.
fn barracuda_flat_overhead() -> Option<f64> {
    let w: Workload = workloads::by_name("d_reduce").unwrap();
    let native_run = bench::run_native(&w, Size::Bench, DEFAULT_SEED);
    match bench::run_barracuda(&w, Size::Bench, DEFAULT_SEED, bench::barracuda_config_for(&w)) {
        bench::BarracudaRun::Ran { time, .. } => Some(time / native_run.time),
        _ => None,
    }
}

/// One measured row of the figure.
#[derive(Debug)]
struct Row {
    ig_over: f64,
    uvm: UvmStats,
    barracuda_fits: bool,
}

fn measure(gb: u64) -> Row {
    let footprint = gb * GB;
    let native = native_scaled(footprint);
    let (ig_time, uvm) = iguard_scaled(footprint);
    // Barracuda's reservation policy: 50% of capacity + footprint shadow.
    let capacity = gpu_config(DEFAULT_SEED).device_mem_bytes;
    let needed = capacity / 2 + 2 * footprint;
    Row {
        ig_over: ig_time / native,
        uvm,
        barracuda_fits: needed <= capacity,
    }
}

fn main() {
    let (driver, _rest) = DriverConfig::from_env();

    // One job per footprint, plus one job for Barracuda's flat overhead
    // (reused for every footprint where its reservation fits).
    enum Out {
        Row(Row),
        BarOver(Option<f64>),
    }
    let mut jobs: Vec<Job<Out>> = FOOTPRINTS_GB
        .into_iter()
        .map(|gb| Job::custom(format!("d_reduce/footprint {gb}GB"), move || Out::Row(measure(gb))))
        .collect();
    jobs.push(Job::custom("d_reduce/barracuda flat", || {
        Out::BarOver(barracuda_flat_overhead())
    }));
    let mut outs = run_jobs_strict(jobs, &driver);

    let Some(Out::BarOver(bar_over)) = outs.pop() else {
        unreachable!("last job is the Barracuda overhead")
    };

    println!("Figure 14: overheads with memory footprint scaling (d_reduce)");
    println!();
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>12}",
        "footprint", "iGUARD", "UVM faults", "evictions", "Barracuda"
    );
    println!("{}", "-".repeat(66));

    for (gb, out) in FOOTPRINTS_GB.into_iter().zip(outs) {
        let Out::Row(row) = out else {
            unreachable!("footprint rows precede the Barracuda job")
        };
        let barracuda = if !row.barracuda_fits {
            "OOM".to_string()
        } else {
            match bar_over {
                Some(over) => format!("{over:9.1}x"),
                None => "-".to_string(),
            }
        };
        println!(
            "{:>7} GB {:>11.1}x {:>14} {:>12} {:>12}",
            gb, row.ig_over, row.uvm.faults, row.uvm.evictions, barracuda
        );
    }
    println!();
    println!("paper shape: Barracuda OOM beyond 8 GB; iGUARD degrades gracefully");
    println!("(overhead rises with UVM faults/evictions as metadata outgrows free memory)");
}
