//! Regenerates **Figure 14**: overhead as the application's memory
//! footprint scales from 1 GB to 16 GB (d_reduce from CUB). The paper's
//! shape: Barracuda's reserve-half-the-GPU policy runs **out of memory**
//! beyond 8 GB, while iGUARD's UVM-backed metadata degrades gracefully —
//! overhead grows with the page faults of an ever-larger metadata working
//! set but never fails.
//!
//! Footprints are modelled with logical allocation sizes (the simulator
//! does not host multi-GB arrays); the detector's `addr_scale` spreads
//! metadata touches across the correspondingly larger managed region.
//!
//! ```text
//! cargo run -p bench --release --bin fig14
//! ```

use bench::{gpu_config, DEFAULT_SEED};
use gpu_sim::hook::NullHook;
use gpu_sim::machine::Gpu;
use iguard::{Iguard, IguardConfig};
use nvbit_sim::Instrumented;
use workloads::{Size, Workload};

const GB: u64 = 1 << 30;

/// Builds d_reduce with its buffers *logically* inflated to `footprint`.
fn build_scaled(gpu: &mut Gpu, footprint: u64) -> Vec<workloads::Launch> {
    // Claim the logical footprint beyond what the real buffers occupy.
    let w = workloads::by_name("d_reduce").expect("d_reduce exists");
    let launches = w.build(gpu, Size::Bench);
    let occupied = gpu.allocated_bytes();
    gpu.alloc_logical(16, footprint.saturating_sub(occupied))
        .expect("logical footprint fits");
    launches
}

fn addr_scale_for(footprint: u64, backing_bytes: u64) -> u64 {
    // Map the small backing arrays onto the logical footprint so metadata
    // touches spread over footprint×4 bytes of managed space -- the span
    // the real tool would touch shadowing `footprint` bytes of data.
    (footprint / backing_bytes.max(1)).max(1)
}

fn main() {
    println!("Figure 14: overheads with memory footprint scaling (d_reduce)");
    println!();
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>12}",
        "footprint", "iGUARD", "UVM faults", "evictions", "Barracuda"
    );
    println!("{}", "-".repeat(66));

    for gb in [1u64, 2, 4, 8, 16] {
        let footprint = gb * GB;

        // Native baseline at this footprint.
        let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
        let launches = build_scaled(&mut gpu, footprint);
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                .unwrap();
        }
        let native = gpu.clock().total_time();

        // iGUARD with UVM-backed metadata.
        let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
        let before = gpu.allocated_bytes();
        let launches = {
            let w = workloads::by_name("d_reduce").expect("d_reduce exists");
            w.build(&mut gpu, Size::Bench)
        };
        let backing_bytes = gpu.allocated_bytes() - before;
        gpu.alloc_logical(16, footprint.saturating_sub(gpu.allocated_bytes()))
            .expect("logical footprint fits");
        let cfg = IguardConfig {
            addr_scale: addr_scale_for(footprint, backing_bytes),
            ..IguardConfig::default()
        };
        let mut tool = Instrumented::new(Iguard::new(cfg));
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool)
                .unwrap();
        }
        let ig_over = gpu.clock().total_time() / native;
        let uvm = tool.tool().uvm_stats();

        // Barracuda's reservation policy: 50% of capacity + footprint shadow.
        let capacity = gpu.config().device_mem_bytes;
        let needed = capacity / 2 + 2 * footprint;
        let barracuda = if needed > capacity {
            "OOM".to_string()
        } else {
            // When it fits, its overhead does not depend on footprint;
            // report the flat serialized-detection overhead measured in
            // Figure 11 for d_reduce.
            let w: Workload = workloads::by_name("d_reduce").unwrap();
            let native_run = bench::run_native(&w, Size::Bench, DEFAULT_SEED);
            match bench::run_barracuda(
                &w,
                Size::Bench,
                DEFAULT_SEED,
                bench::barracuda_config_for(&w),
            ) {
                bench::BarracudaRun::Ran { time, .. } => {
                    format!("{:9.1}x", time / native_run.time)
                }
                _ => "-".to_string(),
            }
        };

        println!(
            "{:>7} GB {:>11.1}x {:>14} {:>12} {:>12}",
            gb, ig_over, uvm.faults, uvm.evictions, barracuda
        );
    }
    println!();
    println!("paper shape: Barracuda OOM beyond 8 GB; iGUARD degrades gracefully");
    println!("(overhead rises with UVM faults/evictions as metadata outgrows free memory)");
}
