//! Regenerates **Figure 11**: performance overhead of iGUARD and Barracuda
//! normalized to native execution, (a) racey applications, (b) race-free
//! applications. The paper's headline shape: iGUARD ≈ 5.1× mean across all
//! workloads, Barracuda ≈ 61× on the race-free set it can run, ≈ 15× gap
//! on the common subset.
//!
//! ```text
//! cargo run -p bench --release --bin fig11 [-- --jobs N | --serial]
//! ```

use bench::{
    geomean, run_jobs, BarracudaRun, DriverConfig, JobSpec, Outcome, RunOutput, ToolSpec,
    DEFAULT_SEED,
};
use iguard::IguardConfig;
use workloads::Size;

/// Per-workload overheads extracted from the three driver outcomes:
/// `(iguard_over, barracuda_over, note)`.
fn row(outcomes: &[Outcome<RunOutput>]) -> Option<(f64, Option<f64>, &'static str)> {
    let native = outcomes[0].value()?.native()?;
    let ig = outcomes[1].value()?.iguard()?;
    let ig_over = ig.time / native.time;
    let Some(bar) = outcomes[2].value().and_then(RunOutput::barracuda) else {
        return Some((ig_over, None, "DNF"));
    };
    Some(match bar {
        BarracudaRun::Unsupported(_) => (ig_over, None, "unsupported"),
        BarracudaRun::Ran { time, failure, .. } => {
            let over = time / native.time;
            match failure {
                Some(barracuda::BarracudaFailure::DidNotTerminate) => {
                    (ig_over, Some(over), "timeout")
                }
                Some(barracuda::BarracudaFailure::OutOfMemory { .. }) => (ig_over, None, "oom"),
                None => (ig_over, Some(over), ""),
            }
        }
    })
}

fn main() {
    let (driver, _rest) = DriverConfig::from_env();

    let sets = [
        ("(a) applications with races", workloads::racey()),
        ("(b) race-free", workloads::clean()),
    ];
    // Three jobs per workload — native, iGUARD, Barracuda — in figure
    // order across both panels.
    let mut jobs = Vec::new();
    for (_, set) in &sets {
        for w in set {
            jobs.push(JobSpec::new(*w, ToolSpec::Native, Size::Bench, DEFAULT_SEED).into_job());
            jobs.push(
                JobSpec::new(
                    *w,
                    ToolSpec::Iguard(IguardConfig::default()),
                    Size::Bench,
                    DEFAULT_SEED,
                )
                .into_job(),
            );
            jobs.push(
                JobSpec::new(
                    *w,
                    ToolSpec::Barracuda(bench::barracuda_config_for(w)),
                    Size::Bench,
                    DEFAULT_SEED,
                )
                .into_job(),
            );
        }
    }
    let outcomes = run_jobs(jobs, &driver);

    let mut all_ig = Vec::new();
    let mut common_ig = Vec::new();
    let mut common_bar = Vec::new();
    let mut cursor = 0usize;

    for (label, set) in &sets {
        println!("Figure 11 {label}");
        println!(
            "{:<15} {:>9} {:>11}  note",
            "workload", "iGUARD", "Barracuda"
        );
        println!("{}", "-".repeat(50));
        let mut ig_set = Vec::new();
        let mut bar_set = Vec::new();
        for w in set {
            let triple = &outcomes[cursor..cursor + 3];
            cursor += 3;
            let Some((ig, bar, note)) = row(triple) else {
                println!("{:<15} {:>9} {:>11}  DNF", w.name, "-", "-");
                continue;
            };
            all_ig.push(ig);
            ig_set.push(ig);
            let bar_str = match bar {
                Some(b) if note != "timeout" => {
                    bar_set.push(b);
                    common_ig.push(ig);
                    common_bar.push(b);
                    format!("{b:10.1}x")
                }
                Some(b) => format!("{b:9.1}x*"),
                None => "-".to_string(),
            };
            println!("{:<15} {:>8.1}x {:>11}  {note}", w.name, ig, bar_str);
        }
        println!(
            "set geomean: iGUARD {:.1}x{}",
            geomean(&ig_set),
            if bar_set.is_empty() {
                String::new()
            } else {
                format!(
                    ", Barracuda {:.1}x (n={})",
                    geomean(&bar_set),
                    bar_set.len()
                )
            }
        );
        println!();
    }

    println!("== summary vs paper ==");
    let amean = all_ig.iter().sum::<f64>() / all_ig.len() as f64;
    println!(
        "iGUARD all workloads: {:.1}x arithmetic mean, {:.1}x geomean   (paper: 5.1x mean over 42)",
        amean,
        geomean(&all_ig)
    );
    if !common_bar.is_empty() {
        let gi = geomean(&common_ig);
        let gb = geomean(&common_bar);
        println!(
            "common subset (n={}): iGUARD {gi:.1}x vs Barracuda {gb:.1}x — ratio {:.1}x   (paper: 3.9x vs 58.9x, ratio ~15x)",
            common_bar.len(),
            gb / gi
        );
    }
}
