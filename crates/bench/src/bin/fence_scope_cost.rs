//! Regenerates the §1 microbenchmark claim: on a Titan RTX, a block-scope
//! `__threadfence_block()` is **21× faster** than the device-scope
//! `__threadfence()`. The simulator's cost model carries this ratio, and
//! this harness measures it end-to-end by timing fence-heavy kernels.
//!
//! ```text
//! cargo run -p bench --release --bin fence_scope_cost
//! ```

use bench::{gpu_config, DEFAULT_SEED};
use gpu_sim::prelude::*;

fn fence_kernel(scope: Scope, fences: u32) -> Kernel {
    let name = if scope == Scope::Block {
        "fence_block"
    } else {
        "fence_device"
    };
    let mut b = KernelBuilder::new(name);
    // Straight-line unrolled fences: no loop bookkeeping in the timing.
    for _ in 0..fences {
        b.membar(scope);
    }
    b.build()
}

fn time_kernel(k: &Kernel) -> f64 {
    let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
    gpu.launch(k, 8, 128, &[], &mut NullHook).expect("launch");
    gpu.clock().total_time()
}

fn main() {
    const FENCES: u32 = 64;
    // Differencing two iteration counts cancels the loop skeleton exactly.
    let net_block = time_kernel(&fence_kernel(Scope::Block, 2 * FENCES))
        - time_kernel(&fence_kernel(Scope::Block, FENCES));
    let net_device = time_kernel(&fence_kernel(Scope::Device, 2 * FENCES))
        - time_kernel(&fence_kernel(Scope::Device, FENCES));
    println!("fence microbenchmark ({FENCES} fences/thread net, 8x128 grid)");
    println!("  block-scope  __threadfence_block(): {net_block:>10.0} cycles");
    println!("  device-scope __threadfence():       {net_device:>10.0} cycles");
    println!(
        "  ratio: {:.1}x   (paper Sec 1: block fence is 21x faster on Titan RTX)",
        net_device / net_block
    );
}
