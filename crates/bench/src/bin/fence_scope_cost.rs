//! Regenerates the §1 microbenchmark claim: on a Titan RTX, a block-scope
//! `__threadfence_block()` is **21× faster** than the device-scope
//! `__threadfence()`. The simulator's cost model carries this ratio, and
//! this harness measures it end-to-end by timing fence-heavy kernels.
//!
//! ```text
//! cargo run -p bench --release --bin fence_scope_cost [-- --jobs N | --serial]
//! ```

use bench::{gpu_config, run_jobs_strict, DriverConfig, Job, DEFAULT_SEED};
use gpu_sim::prelude::*;

fn fence_kernel(scope: Scope, fences: u32) -> Kernel {
    let name = if scope == Scope::Block {
        "fence_block"
    } else {
        "fence_device"
    };
    let mut b = KernelBuilder::new(name);
    // Straight-line unrolled fences: no loop bookkeeping in the timing.
    for _ in 0..fences {
        b.membar(scope);
    }
    b.build()
}

fn time_kernel(scope: Scope, fences: u32) -> f64 {
    let mut gpu = Gpu::new(gpu_config(DEFAULT_SEED));
    gpu.launch(&fence_kernel(scope, fences), 8, 128, &[], &mut NullHook)
        .expect("launch");
    gpu.clock().total_time()
}

fn main() {
    let (driver, _rest) = DriverConfig::from_env();
    const FENCES: u32 = 64;
    // The four timing points ride the driver as custom jobs.
    let jobs = [
        (Scope::Block, 2 * FENCES),
        (Scope::Block, FENCES),
        (Scope::Device, 2 * FENCES),
        (Scope::Device, FENCES),
    ]
    .into_iter()
    .map(|(scope, n)| {
        Job::custom(format!("fence/{scope:?} x{n}"), move || time_kernel(scope, n))
    })
    .collect();
    let times = run_jobs_strict(jobs, &driver);

    // Differencing two iteration counts cancels the loop skeleton exactly.
    let net_block = times[0] - times[1];
    let net_device = times[2] - times[3];
    println!("fence microbenchmark ({FENCES} fences/thread net, 8x128 grid)");
    println!("  block-scope  __threadfence_block(): {net_block:>10.0} cycles");
    println!("  device-scope __threadfence():       {net_device:>10.0} cycles");
    println!(
        "  ratio: {:.1}x   (paper Sec 1: block fence is 21x faster on Titan RTX)",
        net_device / net_block
    );
}
