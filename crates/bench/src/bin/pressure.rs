//! Accuracy under metadata pressure: how detection degrades — and how
//! honestly the degradation is accounted — when the metadata table is
//! capacity-capped or under an injected eviction storm.
//!
//! ```text
//! pressure [--jobs N] [--serial] [--timeout-secs N] [--no-progress]
//! ```
//!
//! For each workload the sweep runs the detector at full table capacity
//! (today's behaviour), at three shrinking entry capacities (bounded
//! eviction: distinct words contend for slots and live metadata is
//! forgotten), and under an injected eviction storm at full capacity.
//! Every row reports the detected race sites next to the detector's own
//! missed-check accounting, and cross-checks the invariant
//! `missed_checks == capacity_evictions + injected_evictions +
//! injected_aliases`. The table feeds EXPERIMENTS.md §"Accuracy under
//! pressure".

use faults::{FaultConfig, FaultSite, RATE_ONE};
use iguard::IguardConfig;
use workloads::Size;

use bench::{gpu_config, run_iguard_with, DriverConfig, IguardRun, Job};

/// Workloads covering the interesting regimes: two racy kernels whose
/// sites can be lost to eviction, one clean kernel that must stay clean.
const WORKLOADS: [&str; 3] = ["reduction", "graph-color", "b_reduce"];

/// The pressure arms, per workload.
#[derive(Clone, Copy)]
enum Arm {
    Full,
    Cap(usize),
    EvictStorm,
}

impl Arm {
    fn label(self) -> String {
        match self {
            Arm::Full => "full".into(),
            Arm::Cap(n) => format!("cap={n}"),
            Arm::EvictStorm => "evict-storm".into(),
        }
    }

    fn config(self) -> IguardConfig {
        let mut cfg = IguardConfig::default();
        match self {
            Arm::Full => {}
            Arm::Cap(n) => cfg.table_capacity_words = Some(n),
            Arm::EvictStorm => {
                // ~3% of loads lose their entry to the fault plane.
                cfg.faults = FaultConfig::disabled()
                    .with_seed(7)
                    .with_rate(FaultSite::MetaEviction, RATE_ONE / 32);
            }
        }
        cfg
    }
}

const ARMS: [Arm; 5] = [
    Arm::Full,
    Arm::Cap(1024),
    Arm::Cap(256),
    Arm::Cap(64),
    Arm::EvictStorm,
];

fn main() {
    let (driver, rest) = DriverConfig::from_env();
    if !rest.is_empty() {
        eprintln!("pressure: unknown flags {rest:?}");
        std::process::exit(2);
    }

    let jobs: Vec<Job<IguardRun>> = WORKLOADS
        .iter()
        .flat_map(|name| {
            ARMS.iter().map(move |arm| {
                let w = workloads::by_name(name).expect("workload list is static");
                let arm = *arm;
                Job::retryable(format!("{name}/{}", arm.label()), move || {
                    run_iguard_with(&w.clone(), Size::Test, gpu_config(42), arm.config())
                })
            })
        })
        .collect();
    let runs = bench::run_jobs_strict(jobs, &driver);

    println!("Accuracy under metadata pressure (Size::Test, seed 42)");
    println!(
        "{:<12} {:<12} {:>5} {:>8} {:>9} {:>9} {:>9}  accounted",
        "workload", "arm", "sites", "missed", "cap-ev", "inj-ev", "accesses"
    );
    println!("{}", "-".repeat(86));

    let mut full_sites = 0usize;
    let mut bad = 0usize;
    for (i, run) in runs.iter().enumerate() {
        let (name, arm) = (WORKLOADS[i / ARMS.len()], ARMS[i % ARMS.len()]);
        let d = run.degradation;
        if matches!(arm, Arm::Full) {
            full_sites = run.sites.len();
        }
        let accounted = d.fully_accounted();
        bad += usize::from(!accounted);
        let note = match arm {
            Arm::Full => String::new(),
            _ if run.sites.len() < full_sites => {
                format!("  (lost {} site(s))", full_sites - run.sites.len())
            }
            _ => String::new(),
        };
        println!(
            "{:<12} {:<12} {:>5} {:>8} {:>9} {:>9} {:>9}  {}{}",
            name,
            arm.label(),
            run.sites.len(),
            d.missed_checks,
            d.meta.capacity_evictions,
            d.meta.injected_evictions + d.meta.injected_aliases,
            run.stats.accesses,
            if accounted { "yes" } else { "NO" },
            note,
        );
    }
    println!("{}", "-".repeat(86));
    if bad > 0 {
        println!("{bad} row(s) with unaccounted degradation");
        std::process::exit(1);
    }
    println!("every missed check is accounted (missed == cap-ev + inj-ev)");
}
