//! Differential fuzz campaign: generated kernels vs the schedule-space
//! oracle vs both detectors, fanned out over the work-stealing driver.
//!
//! ```text
//! fuzz [--kernels N] [--budget SECS] [--seed S] [--corpus PATH] [--spec STR]
//!      [--checkpoint PATH] [--resume PATH]
//!      [--jobs N] [--serial] [--timeout-secs N] [--no-progress]
//! ```
//!
//! - `--kernels N`  kernels to generate (default 200; 0 = unlimited,
//!   requires `--budget`).
//! - `--budget S`   stop starting new batches after S seconds.
//! - `--seed S`     campaign seed for the kernel generator (default 42).
//! - `--corpus P`   append shrunk unexplained divergences to corpus file P.
//! - `--spec STR`   run a single compact spec instead of a campaign.
//! - `--checkpoint P`  snapshot campaign progress to P after every batch.
//! - `--resume P`   continue an interrupted campaign from checkpoint P
//!   (restores the seed, stream position, and every counter; keeps
//!   checkpointing to the same file). The kernel stream is a pure
//!   function of the campaign seed, so a resumed campaign produces
//!   exactly the results the uninterrupted one would have.
//!
//! Exit code 1 on any unexplained oracle/detector divergence (after
//! shrinking it to a minimal repro), 0 otherwise.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use bench::campaign::Checkpoint;
use bench::{run_jobs, DriverConfig, Job, Outcome};
use oracle::corpus;
use oracle::diff::{diff_spec, generate_specs, DiffConfig, DiffReport};
use oracle::shrink::shrink_spec;
use oracle::spec::KernelSpec;

const BATCH: usize = 32;

struct Args {
    kernels: usize,
    budget: Option<Duration>,
    seed: u64,
    corpus_path: Option<String>,
    spec: Option<String>,
    checkpoint: Option<String>,
    resume: Option<String>,
}

fn parse_args(rest: Vec<String>) -> Args {
    let mut args = Args {
        kernels: 200,
        budget: None,
        seed: 42,
        corpus_path: None,
        spec: None,
        checkpoint: None,
        resume: None,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--kernels" => {
                args.kernels = value("--kernels").parse().unwrap_or_else(|_| {
                    eprintln!("--kernels expects a number");
                    std::process::exit(2);
                });
            }
            "--budget" => {
                let secs: u64 = value("--budget").parse().unwrap_or_else(|_| {
                    eprintln!("--budget expects seconds");
                    std::process::exit(2);
                });
                args.budget = Some(Duration::from_secs(secs));
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects a number");
                    std::process::exit(2);
                });
            }
            "--corpus" => args.corpus_path = Some(value("--corpus")),
            "--spec" => args.spec = Some(value("--spec")),
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")),
            "--resume" => args.resume = Some(value("--resume")),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    if args.kernels == 0 && args.budget.is_none() {
        eprintln!("--kernels 0 (unlimited) requires --budget");
        std::process::exit(2);
    }
    args
}

fn main() {
    let (driver, rest) = DriverConfig::from_env();
    let args = parse_args(rest);
    let cfg = DiffConfig::default();

    // Single-spec repro mode.
    if let Some(s) = &args.spec {
        let spec = KernelSpec::parse(s).unwrap_or_else(|e| {
            eprintln!("bad --spec: {e}");
            std::process::exit(2);
        });
        let r = diff_spec(&spec, &cfg);
        println!("{}", r.describe());
        std::process::exit(i32::from(!r.unexplained().is_empty()));
    }

    let started = Instant::now();
    let mut stream_seed = args.seed;
    let mut kernels_target = args.kernels;
    let mut done = 0usize;
    let mut racy = 0usize;
    let mut explained: BTreeMap<String, usize> = BTreeMap::new();
    let mut unexplained: Vec<DiffReport> = Vec::new();
    let mut dnf = 0usize;

    // Resume: restore the stream cursor and every aggregate from the
    // checkpoint; keep saving to the same file unless --checkpoint
    // pointed elsewhere.
    let ckpt_path = args.checkpoint.clone().or_else(|| args.resume.clone());
    if let Some(path) = &args.resume {
        let ck = Checkpoint::load(path).unwrap_or_else(|e| {
            eprintln!("--resume: {e}");
            std::process::exit(2);
        });
        stream_seed = ck.meta_as("stream_seed").unwrap_or(stream_seed);
        kernels_target = ck.meta_as("kernels").unwrap_or(kernels_target);
        done = ck.meta_as("done").unwrap_or(0);
        racy = ck.meta_as("racy").unwrap_or(0);
        dnf = ck.meta_as("dnf").unwrap_or(0);
        for (k, v) in &ck.meta {
            if let Some(reason) = k.strip_prefix("explained:") {
                explained.insert(reason.to_string(), v.parse().unwrap_or(0));
            }
        }
        // Stored unexplained specs are deterministic; re-diff to rebuild
        // their full reports for the final shrink/corpus stage.
        for (kind, spec_str) in &ck.rows {
            if kind != "unexplained" {
                continue;
            }
            match KernelSpec::parse(spec_str) {
                Ok(spec) => unexplained.push(diff_spec(&spec, &cfg)),
                Err(e) => eprintln!("checkpointed spec `{spec_str}` unreadable: {e}"),
            }
        }
        eprintln!(
            "resumed campaign seed={} at kernel {done} (stream seed {stream_seed:#x})",
            ck.meta_as::<u64>("seed").unwrap_or(args.seed)
        );
    }

    while kernels_target == 0 || done < kernels_target {
        if let Some(b) = args.budget {
            if started.elapsed() >= b {
                break;
            }
        }
        let batch = if kernels_target == 0 {
            BATCH
        } else {
            BATCH.min(kernels_target - done)
        };
        // A fresh generator seed per batch keeps the stream deterministic
        // for a given campaign seed regardless of batch boundaries.
        let specs = generate_specs(batch, stream_seed);
        stream_seed = stream_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);

        let jobs: Vec<Job<DiffReport>> = specs
            .into_iter()
            .map(|spec| {
                let cfg = cfg.clone();
                Job::custom(spec.to_compact_string(), move || diff_spec(&spec, &cfg))
            })
            .collect();
        for outcome in run_jobs(jobs, &driver) {
            match outcome {
                Outcome::Done { value, .. } => {
                    racy += usize::from(value.oracle.racy);
                    for d in &value.divergences {
                        if let Some(reason) = d.explanation {
                            *explained.entry(reason.to_string()).or_insert(0) += 1;
                        }
                    }
                    if !value.unexplained().is_empty() {
                        unexplained.push(value);
                    }
                }
                Outcome::Panicked { message, .. } => {
                    eprintln!("fuzz job panicked: {message}");
                    dnf += 1;
                }
                Outcome::TimedOut { .. } => dnf += 1,
                Outcome::Faulted { message, .. } => {
                    // The differential harness runs no fault plane; an
                    // injected-fault death here is as fatal as a panic.
                    eprintln!("fuzz job faulted: {message}");
                    dnf += 1;
                }
            }
            done += 1;
        }

        // Batch boundary: snapshot the stream cursor and aggregates so an
        // interrupted campaign resumes without repeating finished work.
        if let Some(path) = &ckpt_path {
            let mut ck = Checkpoint::new();
            ck.set_meta("seed", args.seed);
            ck.set_meta("kernels", kernels_target);
            ck.set_meta("stream_seed", stream_seed);
            ck.set_meta("done", done);
            ck.set_meta("racy", racy);
            ck.set_meta("dnf", dnf);
            for (reason, n) in &explained {
                ck.set_meta(&format!("explained:{reason}"), n);
            }
            for r in &unexplained {
                ck.push_row("unexplained", r.spec.to_compact_string());
            }
            if let Err(e) = ck.save(path) {
                eprintln!("cannot write checkpoint {path}: {e}");
            }
        }
    }

    println!(
        "fuzz: {done} kernels in {:.1}s ({racy} racy, {} clean, {dnf} DNF)",
        started.elapsed().as_secs_f64(),
        done - racy - dnf,
    );
    for (reason, n) in &explained {
        println!("  explained divergence: {reason} x{n}");
    }

    if unexplained.is_empty() && dnf == 0 {
        println!("no unexplained divergences");
        return;
    }

    let mut entries = Vec::new();
    for r in &unexplained {
        let small = shrink_spec(&r.spec, |s| !diff_spec(s, &cfg).unexplained().is_empty());
        let shrunk = diff_spec(&small, &cfg);
        eprintln!("UNEXPLAINED: {}", r.describe());
        eprintln!("  shrunk repro: {}", shrunk.describe());
        eprintln!(
            "  rerun: fuzz --spec '{}'",
            small.to_compact_string()
        );
        entries.push(corpus::entry_for(&small, &cfg));
    }
    if let Some(path) = &args.corpus_path {
        let text = match std::fs::read_to_string(path) {
            Ok(existing) => {
                let mut all = corpus::parse(&existing).unwrap_or_else(|e| {
                    eprintln!("existing corpus {path} unreadable: {e}");
                    std::process::exit(2);
                });
                all.extend(entries);
                corpus::format(&all)
            }
            Err(_) => corpus::format(&entries),
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write corpus {path}: {e}");
        } else {
            eprintln!("shrunk repros appended to {path}");
        }
    }
    std::process::exit(1);
}
