//! Chaos smoke: seeded fault campaigns across the whole detection
//! pipeline, asserting the three robustness contracts of the fault plane:
//!
//! 1. **Zero panics.** With every fault site armed — metadata eviction
//!    and tag aliasing, report drop/corruption/overflow, UVM eviction
//!    storms and device OOM, hung and aborted kernels — every run
//!    completes; faults degrade results, never crash the process.
//! 2. **Zero unaccounted degradations.** Every injected fault is
//!    traceable to a consumer-side counter: metadata fires equal the
//!    table's injected-eviction/alias counters (each of which produced a
//!    missed check), channel fires equal the corruption/overflow
//!    counters, UVM fires equal the storm/OOM counters, and kernel
//!    aborts equal the aborted-launch count.
//! 3. **Clean resume.** A campaign interrupted at its mid-point
//!    checkpoint and resumed reproduces the remaining results exactly
//!    (verified digest-by-digest against the uninterrupted run).
//!
//! ```text
//! chaos [--campaigns N] [--seed S] [--rate-denom D]
//!       [--jobs N] [--serial] [--timeout-secs N] [--no-progress]
//! ```

use faults::{FaultConfig, FaultSite, RATE_ONE};
use gpu_sim::machine::GpuConfig;
use iguard::IguardConfig;
use workloads::Size;

use bench::campaign::Checkpoint;
use bench::{gpu_config, run_iguard_with, run_jobs, DriverConfig, IguardRun, Job, Outcome};

/// Workloads exercised per campaign: racy, clean, and contended kernels.
const WORKLOADS: [&str; 4] = ["reduction", "graph-color", "uts", "b_reduce"];

struct Args {
    campaigns: u64,
    seed: u64,
    rate_denom: u32,
}

fn parse_args(rest: Vec<String>) -> Args {
    let mut args = Args {
        campaigns: 5,
        seed: 42,
        rate_denom: 64,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        fn numeric<T: std::str::FromStr>(flag: &str, raw: String) -> T {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got `{raw}`");
                std::process::exit(2)
            })
        }
        match a.as_str() {
            "--campaigns" => args.campaigns = numeric("--campaigns", value("--campaigns")),
            "--seed" => args.seed = numeric("--seed", value("--seed")),
            "--rate-denom" => args.rate_denom = numeric("--rate-denom", value("--rate-denom")),
            other => {
                eprintln!("chaos: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One campaign's per-job configuration: every fault site armed at
/// `RATE_ONE / denom`, a capacity-capped table so genuine capacity
/// evictions mix with injected ones, and the campaign seed driving both
/// the fault streams and the warp schedule.
fn job_for(name: &'static str, campaign_seed: u64, denom: u32) -> Job<IguardRun> {
    let plane = FaultConfig::uniform(campaign_seed, RATE_ONE / denom);
    Job::retryable(format!("{name} seed={campaign_seed}"), move || {
        let w = workloads::by_name(name).expect("workload list is static");
        let gcfg = GpuConfig {
            faults: plane.clone(),
            ..gpu_config(campaign_seed)
        };
        let icfg = IguardConfig {
            faults: plane.clone(),
            table_capacity_words: Some(256),
            ..IguardConfig::default()
        };
        run_iguard_with(&w, Size::Test, gcfg, icfg)
    })
}

/// A deterministic one-line digest of everything that matters for the
/// resume check: detected sites plus every degradation counter.
fn digest(run: &IguardRun) -> String {
    let d = run.degradation;
    format!(
        "sites={} missed={} cap={} inj_ev={} inj_al={} sent={} drained={} dropped={} \
         corrupted={} overflow={} uvm_ev={} uvm_oom={} aborted={} timed_out={} fires={}",
        run.sites.len(),
        d.missed_checks,
        d.meta.capacity_evictions,
        d.meta.injected_evictions,
        d.meta.injected_aliases,
        d.channel.sent,
        d.channel.drained,
        d.channel.dropped,
        d.channel.corrupted,
        d.channel.overflow_drops,
        d.uvm_injected_evictions,
        d.uvm_injected_oom_denials,
        run.aborted_launches,
        run.timed_out,
        run.fault_stats.total(),
    )
}

/// Checks that every injected fault maps onto exactly one consumer-side
/// counter. Returns the violations (empty = fully traceable).
fn unaccounted(run: &IguardRun) -> Vec<String> {
    let d = run.degradation;
    let f = &run.fault_stats;
    let mut bad = Vec::new();
    let mut check = |what: &str, fired: u64, counted: u64| {
        if fired != counted {
            bad.push(format!("{what}: {fired} fired but {counted} counted"));
        }
    };
    check(
        "meta-eviction",
        f.get(FaultSite::MetaEviction),
        d.meta.injected_evictions,
    );
    check(
        "meta-tag-alias",
        f.get(FaultSite::MetaTagAlias),
        d.meta.injected_aliases,
    );
    check(
        "report-corrupt",
        f.get(FaultSite::ReportCorrupt),
        d.channel.corrupted,
    );
    check(
        "channel-overflow",
        f.get(FaultSite::ChannelOverflow),
        d.channel.overflow_drops,
    );
    check(
        "uvm-evict-storm",
        f.get(FaultSite::UvmEvictStorm),
        d.uvm_injected_evictions,
    );
    check(
        "uvm-device-oom",
        f.get(FaultSite::UvmDeviceOom),
        d.uvm_injected_oom_denials,
    );
    check(
        "kernel-abort",
        f.get(FaultSite::KernelAbort),
        run.aborted_launches,
    );
    // Drop fires land in the aggregate `dropped` (alongside corruption
    // singles and overflow bulk drops), so the bound is one-sided.
    let drop_like = f.get(FaultSite::ReportDrop) + f.get(FaultSite::ReportCorrupt);
    if d.channel.dropped < drop_like {
        bad.push(format!(
            "report-drop: {drop_like} fired but only {} dropped",
            d.channel.dropped
        ));
    }
    if !d.fully_accounted() {
        bad.push(format!(
            "degradation invariant: missed={} vs evictions={}, sent={} vs drained+dropped={}",
            d.missed_checks,
            d.meta.total_evictions(),
            d.channel.sent,
            d.channel.drained + d.channel.dropped
        ));
    }
    bad
}

fn run_campaign(
    campaign_seed: u64,
    denom: u32,
    driver: &DriverConfig,
    from: usize,
) -> Result<Vec<String>, String> {
    let jobs: Vec<Job<IguardRun>> = WORKLOADS[from..]
        .iter()
        .map(|name| job_for(name, campaign_seed, denom))
        .collect();
    let mut digests = Vec::new();
    let mut fires = 0u64;
    for (i, outcome) in run_jobs(jobs, driver).into_iter().enumerate() {
        let name = WORKLOADS[from + i];
        match outcome {
            Outcome::Done { value, .. } => {
                let bad = unaccounted(&value);
                if !bad.is_empty() {
                    return Err(format!("{name}: unaccounted degradation: {bad:?}"));
                }
                fires += value.fault_stats.total();
                digests.push(digest(&value));
            }
            Outcome::Panicked { message, .. } => {
                return Err(format!("{name}: PANIC under fault injection: {message}"));
            }
            Outcome::TimedOut { .. } => return Err(format!("{name}: driver deadline exceeded")),
            Outcome::Faulted { message, .. } => {
                // run_iguard_with absorbs injected aborts; a fault-death
                // escaping to the driver means a tolerance hole.
                return Err(format!("{name}: fault escaped graceful handling: {message}"));
            }
        }
    }
    if from == 0 && fires == 0 {
        return Err(format!(
            "campaign {campaign_seed}: no fault fired — smoke is vacuous, raise the rate"
        ));
    }
    Ok(digests)
}

fn main() {
    let (driver, rest) = DriverConfig::from_env();
    let args = parse_args(rest);
    let ckpt_path = std::env::temp_dir().join(format!("chaos-ckpt-{}.txt", std::process::id()));
    let ckpt_path = ckpt_path.to_str().expect("utf-8 temp path").to_string();
    let mut failures = 0usize;

    for c in 0..args.campaigns {
        let campaign_seed = args.seed + c;
        let digests = match run_campaign(campaign_seed, args.rate_denom, &driver, 0) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("chaos campaign {campaign_seed}: {e}");
                failures += 1;
                continue;
            }
        };

        // Resume drill: write the checkpoint a mid-campaign interrupt
        // would have left (cursor + first half of the digests), reload
        // it, run only the remaining jobs, and demand the stitched
        // results match the uninterrupted campaign exactly.
        let half = WORKLOADS.len() / 2;
        let mut ck = Checkpoint::new();
        ck.set_meta("seed", campaign_seed);
        ck.set_meta("next", half);
        for (name, dig) in WORKLOADS.iter().zip(&digests[..half]) {
            ck.push_row(*name, dig.clone());
        }
        if let Err(e) = ck.save(&ckpt_path) {
            eprintln!("chaos campaign {campaign_seed}: cannot write checkpoint: {e}");
            failures += 1;
            continue;
        }
        let resumed = Checkpoint::load(&ckpt_path).expect("just written");
        let from: usize = resumed.meta_as("next").expect("cursor present");
        let tail = match run_campaign(campaign_seed, args.rate_denom, &driver, from) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("chaos campaign {campaign_seed} (resumed): {e}");
                failures += 1;
                continue;
            }
        };
        let stitched: Vec<String> = resumed
            .rows
            .iter()
            .map(|(_, v)| v.clone())
            .chain(tail)
            .collect();
        if stitched != digests {
            eprintln!(
                "chaos campaign {campaign_seed}: resume diverged\n  full:     {digests:?}\n  resumed:  {stitched:?}"
            );
            failures += 1;
            continue;
        }
        println!(
            "chaos campaign {campaign_seed}: {} jobs, all degradations accounted, resume OK",
            WORKLOADS.len()
        );
    }
    std::fs::remove_file(&ckpt_path).ok();

    if failures > 0 {
        eprintln!("chaos: {failures}/{} campaigns failed", args.campaigns);
        std::process::exit(1);
    }
    println!(
        "chaos: {} campaigns x {} jobs: zero panics, zero unaccounted degradations, clean resume",
        args.campaigns,
        WORKLOADS.len()
    );
}
