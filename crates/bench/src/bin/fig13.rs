//! Regenerates **Figure 13**: the breakdown of instrumented runtime into
//! Native / NVBit / Setup / Instrumentation / Detection / Misc., averaged
//! per benchmark suite. The paper's observations to reproduce: NVBit's
//! one-time analysis is often a key contributor; CG-suite apps are
//! detection-dominated (little computation); CUB apps are short-running so
//! framework overheads dominate.
//!
//! ```text
//! cargo run -p bench --release --bin fig13
//! ```

use std::collections::BTreeMap;

use bench::{run_iguard, BREAKDOWN_LABELS, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

fn main() {
    println!("Figure 13: breakdown of application runtime under iGUARD (% of total)");
    println!();
    print!("{:<10}", "Suite");
    for l in BREAKDOWN_LABELS {
        print!(" {l:>16}");
    }
    println!();
    println!("{}", "-".repeat(10 + 17 * 6));

    let mut suites: BTreeMap<&str, ([f64; 6], usize)> = BTreeMap::new();
    for w in workloads::all() {
        let ig = run_iguard(&w, Size::Bench, DEFAULT_SEED, IguardConfig::default());
        let total: f64 = ig.breakdown.iter().sum();
        let entry = suites.entry(w.suite.name()).or_insert(([0.0; 6], 0));
        for i in 0..6 {
            entry.0[i] += ig.breakdown[i] / total;
        }
        entry.1 += 1;
    }

    for (suite, (sums, n)) in suites {
        print!("{suite:<10}");
        for s in sums {
            print!(" {:>15.1}%", 100.0 * s / n as f64);
        }
        println!();
    }
    println!();
    println!("paper observations to check:");
    println!("  - NVBit analysis is a visible contributor across suites");
    println!("  - CG suite is Detection-dominated (synchronization demos, little compute)");
    println!("  - CUB's short kernels are dominated by framework overheads");
}
