//! Regenerates **Figure 13**: the breakdown of instrumented runtime into
//! Native / NVBit / Setup / Instrumentation / Detection / Misc., averaged
//! per benchmark suite. The paper's observations to reproduce: NVBit's
//! one-time analysis is often a key contributor; CG-suite apps are
//! detection-dominated (little computation); CUB apps are short-running so
//! framework overheads dominate.
//!
//! ```text
//! cargo run -p bench --release --bin fig13 [-- --jobs N | --serial]
//! ```

use std::collections::BTreeMap;

use bench::{run_jobs, DriverConfig, JobSpec, RunOutput, ToolSpec, BREAKDOWN_LABELS, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

fn main() {
    let (driver, _rest) = DriverConfig::from_env();
    let set = workloads::all();
    let jobs = set
        .iter()
        .map(|w| {
            JobSpec::new(
                *w,
                ToolSpec::Iguard(IguardConfig::default()),
                Size::Bench,
                DEFAULT_SEED,
            )
            .into_job()
        })
        .collect();
    let outcomes = run_jobs(jobs, &driver);

    println!("Figure 13: breakdown of application runtime under iGUARD (% of total)");
    println!();
    print!("{:<10}", "Suite");
    for l in BREAKDOWN_LABELS {
        print!(" {l:>16}");
    }
    println!();
    println!("{}", "-".repeat(10 + 17 * 6));

    let mut suites: BTreeMap<&str, ([f64; 6], usize)> = BTreeMap::new();
    let mut dnf = Vec::new();
    for (w, o) in set.iter().zip(&outcomes) {
        let Some(ig) = o.value().and_then(RunOutput::iguard) else {
            dnf.push(w.name);
            continue;
        };
        let total: f64 = ig.breakdown.iter().sum();
        let entry = suites.entry(w.suite.name()).or_insert(([0.0; 6], 0));
        for i in 0..6 {
            entry.0[i] += ig.breakdown[i] / total;
        }
        entry.1 += 1;
    }

    for (suite, (sums, n)) in suites {
        print!("{suite:<10}");
        for s in sums {
            print!(" {:>15.1}%", 100.0 * s / n as f64);
        }
        println!();
    }
    if !dnf.is_empty() {
        println!("DNF (excluded from averages): {}", dnf.join(", "));
    }
    println!();
    println!("paper observations to check:");
    println!("  - NVBit analysis is a visible contributor across suites");
    println!("  - CG suite is Detection-dominated (synchronization demos, little compute)");
    println!("  - CUB's short kernels are dominated by framework overheads");
}
