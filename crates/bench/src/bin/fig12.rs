//! Regenerates **Figure 12**: iGUARD's overhead with and without the §6.5
//! contention optimizations (coalesced metadata access + dynamically
//! adjusted exponential backoff), on the eight workloads that suffer heavy
//! metadata-lock contention. The paper reports a mean 7× improvement, with
//! conjugGMB dropping from 706× to 6×.
//!
//! Pass `--ablate` to additionally measure each optimization alone.
//!
//! ```text
//! cargo run -p bench --release --bin fig12 [-- --ablate]
//! ```

use bench::{geomean, run_iguard, run_native, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

fn overhead(w: &workloads::Workload, cfg: IguardConfig) -> f64 {
    let native = run_native(w, Size::Bench, DEFAULT_SEED);
    let ig = run_iguard(w, Size::Bench, DEFAULT_SEED, cfg);
    ig.time / native.time
}

fn main() {
    let ablate = std::env::args().any(|a| a == "--ablate");
    println!("Figure 12: overhead with and without the contention optimizations");
    if ablate {
        println!(
            "{:<15} {:>10} {:>12} {:>12} {:>10} {:>8}",
            "workload", "baseline", "+coalesce", "+backoff", "+both", "gain"
        );
    } else {
        println!(
            "{:<15} {:>10} {:>10} {:>8}",
            "workload", "baseline", "optimized", "gain"
        );
    }
    println!("{}", "-".repeat(72));

    let mut gains = Vec::new();
    for w in workloads::all().into_iter().filter(|w| w.contention_heavy) {
        let base = overhead(&w, IguardConfig::without_contention_opts());
        let both = overhead(&w, IguardConfig::default());
        gains.push(base / both);
        if ablate {
            let co = overhead(
                &w,
                IguardConfig {
                    coalescing: true,
                    backoff: false,
                    ..IguardConfig::default()
                },
            );
            let bo = overhead(
                &w,
                IguardConfig {
                    coalescing: false,
                    backoff: true,
                    ..IguardConfig::default()
                },
            );
            println!(
                "{:<15} {:>9.1}x {:>11.1}x {:>11.1}x {:>9.1}x {:>7.1}x",
                w.name,
                base,
                co,
                bo,
                both,
                base / both
            );
        } else {
            println!(
                "{:<15} {:>9.1}x {:>9.1}x {:>7.1}x",
                w.name,
                base,
                both,
                base / both
            );
        }
    }
    println!("{}", "-".repeat(72));
    println!(
        "mean improvement: {:.1}x   (paper: 7x on average; conjugGMB 706x -> 6x)",
        geomean(&gains)
    );
}
