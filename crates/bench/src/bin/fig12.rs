//! Regenerates **Figure 12**: iGUARD's overhead with and without the §6.5
//! contention optimizations (coalesced metadata access + dynamically
//! adjusted exponential backoff), on the eight workloads that suffer heavy
//! metadata-lock contention. The paper reports a mean 7× improvement, with
//! conjugGMB dropping from 706× to 6×.
//!
//! Pass `--ablate` to additionally measure each optimization alone.
//!
//! ```text
//! cargo run -p bench --release --bin fig12 [-- --ablate] [-- --jobs N | --serial]
//! ```

use bench::{geomean, run_jobs, DriverConfig, JobSpec, Outcome, RunOutput, ToolSpec, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

/// iGUARD time / native time from two adjacent outcomes; `None` on DNF.
fn over(native: &Outcome<RunOutput>, ig: &Outcome<RunOutput>) -> Option<f64> {
    let n = native.value()?.native()?;
    let i = ig.value()?.iguard()?;
    Some(i.time / n.time)
}

fn main() {
    let (driver, rest) = DriverConfig::from_env();
    let ablate = rest.iter().any(|a| a == "--ablate");

    // Per workload: native, then one iGUARD job per configuration column.
    let configs: Vec<IguardConfig> = if ablate {
        vec![
            IguardConfig::without_contention_opts(),
            IguardConfig {
                coalescing: true,
                backoff: false,
                ..IguardConfig::default()
            },
            IguardConfig {
                coalescing: false,
                backoff: true,
                ..IguardConfig::default()
            },
            IguardConfig::default(),
        ]
    } else {
        vec![IguardConfig::without_contention_opts(), IguardConfig::default()]
    };
    let stride = configs.len() + 1;

    let set: Vec<_> = workloads::all()
        .into_iter()
        .filter(|w| w.contention_heavy)
        .collect();
    let mut jobs = Vec::new();
    for w in &set {
        jobs.push(JobSpec::new(*w, ToolSpec::Native, Size::Bench, DEFAULT_SEED).into_job());
        for cfg in &configs {
            jobs.push(
                JobSpec::new(*w, ToolSpec::Iguard(cfg.clone()), Size::Bench, DEFAULT_SEED)
                    .into_job(),
            );
        }
    }
    let outcomes = run_jobs(jobs, &driver);

    println!("Figure 12: overhead with and without the contention optimizations");
    if ablate {
        println!(
            "{:<15} {:>10} {:>12} {:>12} {:>10} {:>8}",
            "workload", "baseline", "+coalesce", "+backoff", "+both", "gain"
        );
    } else {
        println!(
            "{:<15} {:>10} {:>10} {:>8}",
            "workload", "baseline", "optimized", "gain"
        );
    }
    println!("{}", "-".repeat(72));

    let mut gains = Vec::new();
    for (i, w) in set.iter().enumerate() {
        let chunk = &outcomes[i * stride..(i + 1) * stride];
        let native = &chunk[0];
        let cols: Vec<Option<f64>> =
            (1..stride).map(|j| over(native, &chunk[j])).collect();
        let (base, both) = (cols[0], cols[cols.len() - 1]);
        let cell = |v: Option<f64>, w: usize| match v {
            Some(x) => format!("{x:>w$.1}x", w = w),
            None => format!("{:>w$}", "DNF", w = w + 1),
        };
        let gain = base.zip(both).map(|(b, o)| b / o);
        if let Some(g) = gain {
            gains.push(g);
        }
        if ablate {
            println!(
                "{:<15} {} {} {} {} {}",
                w.name,
                cell(cols[0], 9),
                cell(cols[1], 11),
                cell(cols[2], 11),
                cell(cols[3], 9),
                cell(gain, 7),
            );
        } else {
            println!(
                "{:<15} {} {} {}",
                w.name,
                cell(cols[0], 9),
                cell(cols[1], 9),
                cell(gain, 7),
            );
        }
    }
    println!("{}", "-".repeat(72));
    println!(
        "mean improvement: {:.1}x   (paper: 7x on average; conjugGMB 706x -> 6x)",
        geomean(&gains)
    );
}
