//! Regenerates the §6.7 ablation: tracking the last 2, 4, or 8 accessors
//! per memory location (instead of the default last-accessor/last-writer
//! pair) finds **no additional races** on any evaluated workload — the
//! justification for the 16-byte metadata entry.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_history [-- --jobs N | --serial]
//! ```

use bench::{run_jobs, DriverConfig, JobSpec, RunOutput, ToolSpec, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

const DEPTHS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let (driver, _rest) = DriverConfig::from_env();
    let set = workloads::racey();
    let mut jobs = Vec::new();
    for w in &set {
        for d in DEPTHS {
            jobs.push(
                JobSpec::new(
                    *w,
                    ToolSpec::Iguard(IguardConfig::with_history(d)),
                    Size::Test,
                    DEFAULT_SEED,
                )
                .into_job(),
            );
        }
    }
    let outcomes = run_jobs(jobs, &driver);

    println!("Sec 6.7 ablation: races found vs accessor-history depth");
    println!();
    println!(
        "{:<15} {:>8} {:>8} {:>8} {:>8}",
        "workload", "depth 1", "depth 2", "depth 4", "depth 8"
    );
    println!("{}", "-".repeat(55));
    let mut any_new = false;
    for (i, w) in set.iter().enumerate() {
        let counts: Vec<Option<usize>> = (0..DEPTHS.len())
            .map(|j| {
                outcomes[i * DEPTHS.len() + j]
                    .value()
                    .and_then(RunOutput::iguard)
                    .map(|r| r.sites.len())
            })
            .collect();
        let cell = |c: Option<usize>| match c {
            Some(n) => n.to_string(),
            None => "DNF".to_string(),
        };
        println!(
            "{:<15} {:>8} {:>8} {:>8} {:>8}",
            w.name,
            cell(counts[0]),
            cell(counts[1]),
            cell(counts[2]),
            cell(counts[3])
        );
        if counts.iter().flatten().any(|&c| Some(c) != counts[0]) {
            any_new = true;
        }
    }
    println!("{}", "-".repeat(55));
    if any_new {
        println!("!! deeper history changed the result — unlike the paper's finding");
    } else {
        println!("deeper history finds no additional races — matches Sec 6.7");
    }
}
