//! Regenerates the §6.7 ablation: tracking the last 2, 4, or 8 accessors
//! per memory location (instead of the default last-accessor/last-writer
//! pair) finds **no additional races** on any evaluated workload — the
//! justification for the 16-byte metadata entry.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_history
//! ```

use bench::{run_iguard, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

fn main() {
    println!("Sec 6.7 ablation: races found vs accessor-history depth");
    println!();
    println!(
        "{:<15} {:>8} {:>8} {:>8} {:>8}",
        "workload", "depth 1", "depth 2", "depth 4", "depth 8"
    );
    println!("{}", "-".repeat(55));
    let mut any_new = false;
    for w in workloads::racey() {
        let counts: Vec<usize> = [1usize, 2, 4, 8]
            .iter()
            .map(|&d| {
                run_iguard(&w, Size::Test, DEFAULT_SEED, IguardConfig::with_history(d))
                    .sites
                    .len()
            })
            .collect();
        println!(
            "{:<15} {:>8} {:>8} {:>8} {:>8}",
            w.name, counts[0], counts[1], counts[2], counts[3]
        );
        if counts.iter().any(|&c| c != counts[0]) {
            any_new = true;
        }
    }
    println!("{}", "-".repeat(55));
    if any_new {
        println!("!! deeper history changed the result — unlike the paper's finding");
    } else {
        println!("deeper history finds no additional races — matches Sec 6.7");
    }
}
