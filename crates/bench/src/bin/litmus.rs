//! Weak-memory litmus campaign: v2 litmus specs vs the relaxed-visibility
//! oracle vs both detectors, fanned out over the work-stealing driver.
//!
//! ```text
//! litmus [--tests N] [--budget SECS] [--seed S]
//!        [--spec STR] [--corpus PATH] [--corpus-out PATH]
//!        [--jobs N] [--serial] [--timeout-secs N] [--no-progress]
//! ```
//!
//! Three modes, checked in order:
//!
//! - `--spec STR`    diff a single compact v2 litmus spec and print the
//!   full report (outcome matrix size, assertion verdict, divergences).
//! - `--corpus P`    replay a pinned litmus corpus: every entry is
//!   re-diffed and its witness trace re-run on the weak machine; any
//!   drift from the pinned verdicts fails the run.
//! - campaign        generate `--tests N` random specs (default 100;
//!   0 = unlimited, requires `--budget`) from `--seed S` (default 42),
//!   diff each, tally explained-divergence classes, and shrink any
//!   unexplained divergence to a 1-minimal repro. `--corpus-out P`
//!   appends shrunk repros to a litmus corpus file.
//!
//! Exit code 1 on any unexplained divergence, replay failure, or DNF;
//! 0 otherwise.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use bench::{run_jobs, DriverConfig, Job, Outcome};
use oracle::corpus;
use oracle::diff::{diff_litmus, generate_litmus, DiffConfig, LitmusDiffReport};
use oracle::litmus::LitmusSpec;
use oracle::shrink::shrink_litmus;

const BATCH: usize = 32;

struct Args {
    tests: usize,
    budget: Option<Duration>,
    seed: u64,
    spec: Option<String>,
    corpus: Option<String>,
    corpus_out: Option<String>,
}

fn parse_args(rest: Vec<String>) -> Args {
    let mut args = Args {
        tests: 100,
        budget: None,
        seed: 42,
        spec: None,
        corpus: None,
        corpus_out: None,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--tests" => {
                args.tests = value("--tests").parse().unwrap_or_else(|_| {
                    eprintln!("--tests expects a number");
                    std::process::exit(2);
                });
            }
            "--budget" => {
                let secs: u64 = value("--budget").parse().unwrap_or_else(|_| {
                    eprintln!("--budget expects seconds");
                    std::process::exit(2);
                });
                args.budget = Some(Duration::from_secs(secs));
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed expects a number");
                    std::process::exit(2);
                });
            }
            "--spec" => args.spec = Some(value("--spec")),
            "--corpus" => args.corpus = Some(value("--corpus")),
            "--corpus-out" => args.corpus_out = Some(value("--corpus-out")),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    if args.tests == 0 && args.budget.is_none() && args.spec.is_none() && args.corpus.is_none() {
        eprintln!("--tests 0 (unlimited) requires --budget");
        std::process::exit(2);
    }
    args
}

/// Replay a pinned litmus corpus file; returns the process exit code.
fn replay_corpus(path: &str, cfg: &DiffConfig, driver: &DriverConfig) -> i32 {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read corpus {path}: {e}");
        std::process::exit(2);
    });
    let entries = corpus::parse_litmus(&text).unwrap_or_else(|e| {
        eprintln!("corpus {path} unreadable: {e}");
        std::process::exit(2);
    });
    let total = entries.len();
    let labels: Vec<String> = entries
        .iter()
        .map(|e| e.spec.to_compact_string())
        .collect();
    let jobs: Vec<Job<Result<(), String>>> = entries
        .into_iter()
        .map(|entry| {
            let cfg = cfg.clone();
            Job::custom(entry.spec.to_compact_string(), move || {
                corpus::verify_litmus(&entry, &cfg)
            })
        })
        .collect();
    let mut failures = 0usize;
    // `run_jobs` returns outcomes in submission order, so `labels[i]`
    // names the entry behind outcome `i`.
    for (i, outcome) in run_jobs(jobs, driver).into_iter().enumerate() {
        let label = &labels[i];
        match outcome {
            Outcome::Done { value: Err(e), .. } => {
                eprintln!("REPLAY FAILED {label}: {e}");
                failures += 1;
            }
            Outcome::Done { .. } => {}
            Outcome::Panicked { message, .. } => {
                eprintln!("REPLAY PANICKED {label}: {message}");
                failures += 1;
            }
            Outcome::TimedOut { .. } => {
                eprintln!("REPLAY TIMED OUT {label}");
                failures += 1;
            }
            Outcome::Faulted { message, .. } => {
                eprintln!("REPLAY FAULTED {label}: {message}");
                failures += 1;
            }
        }
    }
    println!("litmus corpus: {}/{total} entries verified", total - failures);
    i32::from(failures > 0)
}

fn main() {
    let (driver, rest) = DriverConfig::from_env();
    let args = parse_args(rest);
    let cfg = DiffConfig::default();

    // Single-spec repro mode.
    if let Some(s) = &args.spec {
        let spec = LitmusSpec::parse(s).unwrap_or_else(|e| {
            eprintln!("bad --spec: {e}");
            std::process::exit(2);
        });
        let r = diff_litmus(&spec, &cfg);
        println!("{}", r.describe());
        std::process::exit(i32::from(!r.unexplained().is_empty()));
    }

    // Pinned-corpus replay mode.
    if let Some(path) = &args.corpus {
        std::process::exit(replay_corpus(path, &cfg, &driver));
    }

    // Fuzz campaign.
    let started = Instant::now();
    let mut stream_seed = args.seed;
    let mut done = 0usize;
    let mut racy = 0usize;
    let mut weak_anomalies = 0usize;
    let mut explained: BTreeMap<String, usize> = BTreeMap::new();
    let mut unexplained: Vec<LitmusDiffReport> = Vec::new();
    let mut dnf = 0usize;

    while args.tests == 0 || done < args.tests {
        if let Some(b) = args.budget {
            if started.elapsed() >= b {
                break;
            }
        }
        let batch = if args.tests == 0 {
            BATCH
        } else {
            BATCH.min(args.tests - done)
        };
        // A fresh generator seed per batch keeps the stream deterministic
        // for a given campaign seed regardless of batch boundaries.
        let specs = generate_litmus(batch, stream_seed);
        stream_seed = stream_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);

        let jobs: Vec<Job<LitmusDiffReport>> = specs
            .into_iter()
            .map(|spec| {
                let cfg = cfg.clone();
                Job::custom(spec.to_compact_string(), move || diff_litmus(&spec, &cfg))
            })
            .collect();
        for outcome in run_jobs(jobs, &driver) {
            match outcome {
                Outcome::Done { value, .. } => {
                    racy += usize::from(value.oracle.racy);
                    weak_anomalies += usize::from(
                        value
                            .oracle
                            .assertion
                            .as_ref()
                            .is_some_and(|a| a.reachable && !a.sc_reachable),
                    );
                    for d in &value.divergences {
                        if let Some(reason) = d.explanation {
                            *explained.entry(reason.to_string()).or_insert(0) += 1;
                        }
                    }
                    if !value.unexplained().is_empty() {
                        unexplained.push(value);
                    }
                }
                Outcome::Panicked { message, .. } => {
                    eprintln!("litmus job panicked: {message}");
                    dnf += 1;
                }
                Outcome::TimedOut { .. } => dnf += 1,
                Outcome::Faulted { message, .. } => {
                    eprintln!("litmus job faulted: {message}");
                    dnf += 1;
                }
            }
            done += 1;
        }
    }

    println!(
        "litmus: {done} specs in {:.1}s ({racy} racy, {} clean, \
         {weak_anomalies} weak-only assertion violations, {dnf} DNF)",
        started.elapsed().as_secs_f64(),
        done - racy - dnf,
    );
    for (reason, n) in &explained {
        println!("  explained divergence: {reason} x{n}");
    }

    if unexplained.is_empty() && dnf == 0 {
        println!("no unexplained divergences");
        return;
    }

    let mut entries = Vec::new();
    for r in &unexplained {
        let small = shrink_litmus(&r.spec, |s| !diff_litmus(s, &cfg).unexplained().is_empty());
        let shrunk = diff_litmus(&small, &cfg);
        eprintln!("UNEXPLAINED: {}", r.describe());
        eprintln!("  shrunk repro: {}", shrunk.describe());
        eprintln!("  rerun: litmus --spec '{}'", small.to_compact_string());
        entries.push(corpus::entry_for_litmus(&small, &cfg));
    }
    if let Some(path) = &args.corpus_out {
        let text = match std::fs::read_to_string(path) {
            Ok(existing) => {
                let mut all = corpus::parse_litmus(&existing).unwrap_or_else(|e| {
                    eprintln!("existing corpus {path} unreadable: {e}");
                    std::process::exit(2);
                });
                all.extend(entries);
                corpus::format_litmus(&all)
            }
            Err(_) => corpus::format_litmus(&entries),
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write corpus {path}: {e}");
        } else {
            eprintln!("shrunk repros appended to {path}");
        }
    }
    std::process::exit(1);
}
