//! `iguard_run` — the reproduction's command-line face: run any evaluation
//! workload under a chosen detector and print races (with disassembly
//! context), detector statistics, and the runtime breakdown.
//!
//! ```text
//! cargo run -p bench --release --bin iguard_run -- --list
//! cargo run -p bench --release --bin iguard_run -- graph-color
//! cargo run -p bench --release --bin iguard_run -- reduction --context 2
//! cargo run -p bench --release --bin iguard_run -- shocbfs --detector barracuda
//! cargo run -p bench --release --bin iguard_run -- conjugGMB --no-coalesce --no-backoff
//! ```

use bench::{gpu_config, run_jobs, DriverConfig, Job, Outcome, BREAKDOWN_LABELS};
use gpu_sim::disasm;
use gpu_sim::machine::Gpu;
use gpu_sim::timing::COST_CATEGORIES;
use iguard::{Iguard, IguardConfig};
use nvbit_sim::Instrumented;
use workloads::{Size, Workload};

struct Args {
    workload: Option<String>,
    detector: String,
    size: Size,
    seed: u64,
    context: usize,
    coalesce: bool,
    backoff: bool,
    history: usize,
    list: bool,
}

fn parse_args(rest: Vec<String>) -> Args {
    let mut args = Args {
        workload: None,
        detector: "iguard".into(),
        size: Size::Test,
        seed: bench::DEFAULT_SEED,
        context: 0,
        coalesce: true,
        backoff: true,
        history: 1,
        list: false,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => args.list = true,
            "--detector" => args.detector = it.next().expect("--detector <name>"),
            "--size" => {
                args.size = match it.next().expect("--size <test|bench>").as_str() {
                    "bench" => Size::Bench,
                    _ => Size::Test,
                }
            }
            "--seed" => args.seed = numeric_arg(&mut it, "--seed"),
            "--context" => args.context = numeric_arg(&mut it, "--context"),
            "--history" => args.history = numeric_arg(&mut it, "--history"),
            "--no-coalesce" => args.coalesce = false,
            "--no-backoff" => args.backoff = false,
            "--help" | "-h" => {
                println!(
                    "usage: iguard_run <workload> [--detector iguard|barracuda|curd|none] \
                     [--size test|bench] [--seed N] [--context N] [--history N] \
                     [--no-coalesce] [--no-backoff] \
                     [--jobs N | --serial] [--timeout-secs N] | --list"
                );
                std::process::exit(0);
            }
            w if !w.starts_with('-') => args.workload = Some(w.to_string()),
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Parses the next argument as a number, exiting with a clean message on
/// a missing or non-numeric value (a user typo must not panic).
fn numeric_arg<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(raw) = it.next() else {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects a number, got `{raw}`");
        std::process::exit(2);
    })
}

fn list_workloads() {
    println!(
        "{:<16} {:<10} {:>6}  classes (Table 4)",
        "name", "suite", "races"
    );
    println!("{}", "-".repeat(60));
    for w in workloads::all() {
        let tags: Vec<&str> = w.tags.iter().map(|t| t.detector_code()).collect();
        println!(
            "{:<16} {:<10} {:>6}  {}",
            w.name,
            w.suite.name(),
            w.paper_races,
            if tags.is_empty() {
                "race-free".to_string()
            } else {
                tags.join(",")
            }
        );
    }
}

fn main() {
    let (mut driver, rest) = DriverConfig::from_env();
    driver.progress = false; // single run: the report itself is the output
    let args = parse_args(rest);
    if args.list {
        list_workloads();
        return;
    }
    let Some(name) = args.workload.clone() else {
        eprintln!("no workload given; try --list or --help");
        std::process::exit(2);
    };
    let Some(w) = workloads::by_name(&name) else {
        eprintln!("unknown workload `{name}`; try --list");
        std::process::exit(2);
    };
    if !matches!(args.detector.as_str(), "iguard" | "barracuda" | "curd" | "none") {
        eprintln!(
            "unknown detector `{}` (iguard|barracuda|curd|none)",
            args.detector
        );
        std::process::exit(2);
    }

    // The run rides the driver as one job: a panicking or hung workload is
    // reported as DNF instead of taking the shell down with it.
    let label = format!("{}/{}", w.name, args.detector);
    let job = Job::custom(label.clone(), move || match args.detector.as_str() {
        "iguard" => run_iguard(&w, &args),
        "barracuda" => run_barracuda(&w, &args),
        "curd" => run_curd(&w, &args),
        _ => run_native(&w, &args),
    });
    match run_jobs(vec![job], &driver).remove(0) {
        Outcome::Done { .. } => {}
        Outcome::Panicked { message, .. } => {
            eprintln!("{label}: DNF (panicked: {message})");
            std::process::exit(1);
        }
        Outcome::TimedOut { elapsed } => {
            eprintln!(
                "{label}: DNF (deadline {:.0}s exceeded)",
                elapsed.as_secs_f64()
            );
            std::process::exit(1);
        }
        Outcome::Faulted { message, .. } => {
            eprintln!("{label}: DNF ({message})");
            std::process::exit(1);
        }
    }
}

fn launch_all(
    gpu: &mut Gpu,
    launches: &[workloads::Launch],
    hook: &mut dyn gpu_sim::hook::Hook,
) -> bool {
    let mut timed_out = false;
    for l in launches {
        match gpu.launch(&l.kernel, l.grid, l.block, &l.params, hook) {
            Ok(_) => {}
            Err(gpu_sim::error::SimError::Timeout { .. }) => timed_out = true,
            Err(e) => {
                eprintln!("launch failed: {e}");
                std::process::exit(1);
            }
        }
    }
    timed_out
}

fn run_native(w: &Workload, args: &Args) {
    let mut gpu = Gpu::new(gpu_config(args.seed));
    let launches = w.build(&mut gpu, args.size);
    let timed_out = launch_all(&mut gpu, &launches, &mut gpu_sim::hook::NullHook);
    println!(
        "{}: native run, {} kernel launch(es)",
        w.name,
        launches.len()
    );
    println!(
        "simulated time: {:.0} cycles{}",
        gpu.clock().total_time(),
        if timed_out {
            "  (WATCHDOG TIMEOUT)"
        } else {
            ""
        }
    );
}

fn run_iguard(w: &Workload, args: &Args) {
    let cfg = IguardConfig {
        coalescing: args.coalesce,
        backoff: args.backoff,
        history_depth: args.history,
        ..IguardConfig::default()
    };
    let mut gpu = Gpu::new(gpu_config(args.seed));
    let launches = w.build(&mut gpu, args.size);
    let mut tool = Instrumented::new(Iguard::new(cfg));
    let timed_out = launch_all(&mut gpu, &launches, &mut tool);

    let races = tool.tool_mut().races();
    println!(
        "{}: iGUARD found {} race(s){}  (paper: {})",
        w.name,
        races.len(),
        if timed_out {
            " before the watchdog timeout"
        } else {
            ""
        },
        w.paper_races
    );
    for r in &races {
        println!("\n  {r}");
        if args.context > 0 {
            if let Some(l) = launches.iter().find(|l| l.kernel.name == r.kernel) {
                for line in disasm::context(&l.kernel, r.pc, args.context).lines() {
                    println!("    {line}");
                }
            }
        }
    }

    let s = tool.tool().stats();
    println!("\ndetector statistics:");
    println!("  accesses processed:   {}", s.accesses);
    println!("  coalesced away:       {}", s.coalesced_saved);
    println!("  contended accesses:   {}", s.contended_accesses);
    println!("  safe-check hits P1-6: {:?}", s.safe_hits);
    println!("  race-check hits R1-5: {:?}", s.race_hits);
    let uvm = tool.tool().uvm_stats();
    println!(
        "  UVM: {} prefaulted pages, {} faults, {} evictions",
        uvm.prefaulted_pages, uvm.faults, uvm.evictions
    );

    println!("\nruntime breakdown:");
    let total = gpu.clock().total_time();
    for (i, &c) in COST_CATEGORIES.iter().enumerate() {
        let t = gpu.clock().time(c);
        println!(
            "  {:<16} {:>10.0} cycles  ({:>5.1}%)",
            BREAKDOWN_LABELS[i],
            t,
            100.0 * t / total
        );
    }
}

fn run_curd(w: &Workload, args: &Args) {
    let mut gpu = Gpu::new(gpu_config(args.seed));
    let launches = w.build(&mut gpu, args.size);
    let kind = if w.multi_file {
        barracuda::BinaryKind::MultiFile
    } else {
        barracuda::BinaryKind::SingleFile
    };
    let kernels = Workload::kernels(&launches);
    let curd = match barracuda::Curd::for_kernels(&kernels, kind, Default::default()) {
        Ok(c) => c,
        Err(u) => {
            println!("{}: CURD refuses this binary: {u}", w.name);
            return;
        }
    };
    println!("{}: CURD path = {:?}", w.name, curd.path());
    let mut tool = Instrumented::new(curd);
    let timed_out = launch_all(&mut gpu, &launches, &mut tool);
    let races = tool.tool_mut().finish(gpu.clock_mut());
    println!(
        "  {} race(s){}; simulated time {:.0} cycles",
        races.len(),
        if timed_out { " (timeout)" } else { "" },
        gpu.clock().total_time()
    );
}

fn run_barracuda(w: &Workload, args: &Args) {
    match bench::run_barracuda(w, args.size, args.seed, bench::barracuda_config_for(w)) {
        bench::BarracudaRun::Unsupported(u) => {
            println!("{}: Barracuda refuses this binary: {u}", w.name);
        }
        bench::BarracudaRun::Ran {
            time,
            races,
            failure,
            events,
        } => {
            println!("{}: Barracuda found {races} race(s)", w.name);
            println!("  events shipped: {events}");
            println!("  simulated time: {time:.0} cycles");
            match failure {
                Some(barracuda::BarracudaFailure::DidNotTerminate) => {
                    println!("  DID NOT TERMINATE (CPU consumer fell behind; results partial)");
                }
                Some(barracuda::BarracudaFailure::OutOfMemory { needed, capacity }) => {
                    println!("  OUT OF MEMORY (reservation {needed} B > capacity {capacity} B)");
                }
                None => {}
            }
        }
    }
}
