//! `perf`: the wall-clock perf harness and trajectory recorder.
//!
//! Unlike every other bench binary — which reports *simulated* cycles —
//! this one measures the reproduction itself: real wall-clock time per
//! workload for the simulator→hook→detector pipeline, the detector's
//! self-profiled phase breakdown (simulate / instrument / detect / UVM),
//! a shard-count sweep of the threaded detector with per-pipe
//! utilization, and the copy/compute overlap model's simulated-latency
//! win. Results land in `BENCH_PR7.json` at the repo root, under either
//! the `"baseline"` key (`--record-baseline`) or the `"current"` key.
//!
//! Every run records the host it was measured on (`host.cores`,
//! `host.jobs`); the baseline/current speedup is only computed when the
//! two host blocks match, so single-core CI numbers are never compared
//! against multi-core runs. The PR 2 trajectory (`BENCH_PR2.json`,
//! schema `bench-pr2-v1`) predates host recording and is carried along
//! as an informational `pr2_reference` only.
//!
//! Usage:
//!
//! ```text
//! perf [--record-baseline] [--label STR] [--reps N] [--out PATH] [--quick]
//!      [--validate PATH]
//!      [driver flags: --jobs N | --serial | --timeout-secs N | --no-progress]
//! ```
//!
//! `--quick` runs a 5-workload subset (and a single-point shard sweep)
//! to a scratch file — a CI smoke that exercises the harness and
//! validates the JSON without touching the recorded trajectory.
//! `--validate PATH` parses an existing trajectory file and checks the
//! schema plus the overlap accounting invariants (`busy + idle ==
//! total` per engine, `overlapped <= serial`), exiting non-zero on any
//! violation. Timing methodology: `--reps N` (default 3) repeats the
//! sweep and keeps each workload's *minimum* wall time; a second
//! profiled pass collects the phase breakdown without contaminating the
//! timing pass with `Instant` reads.

use std::time::Duration;

use bench::perfjson::{self, Value};
use bench::{available_jobs, run_jobs, DriverConfig, Job, Outcome, DEFAULT_SEED};
use gpu_sim::machine::GpuConfig;
use gpu_sim::overlap::{self, CopyModel, OverlapReport, Segment, ENGINE_NAMES};
use gpu_sim::timing::PhaseTimes;
use iguard::{IguardConfig, ShardConfig};
use nvbit_sim::pipeline::PipeStats;
use workloads::{Size, Workload};

const DEFAULT_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
const QUICK_OUT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../target/BENCH_PR7.quick.json"
);
const PR2_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json");

struct Args {
    quick: bool,
    record_baseline: bool,
    label: Option<String>,
    reps: usize,
    out: Option<String>,
    validate: Option<String>,
}

fn parse_args(rest: Vec<String>) -> Args {
    let mut args = Args {
        quick: false,
        record_baseline: false,
        label: None,
        reps: 0,
        out: None,
        validate: None,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--record-baseline" => args.record_baseline = true,
            "--label" => args.label = it.next(),
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--reps expects a number"));
            }
            "--out" => args.out = it.next(),
            "--validate" => {
                args.validate = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--validate expects a path")),
                );
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if args.reps == 0 {
        args.reps = if args.quick { 1 } else { 3 };
    }
    args
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("perf: {msg}");
    }
    eprintln!(
        "usage: perf [--record-baseline] [--label STR] [--reps N] [--out PATH] [--quick]\n\
         \x20           [--validate PATH] [--jobs N | --serial] [--timeout-secs N] [--no-progress]"
    );
    std::process::exit(2);
}

/// One workload's measured result across both passes.
struct Measured {
    name: &'static str,
    racey: bool,
    /// Minimum wall time over the timing reps (profiling off).
    wall: Duration,
    /// Detector-processed accesses (deterministic across reps).
    accesses: u64,
    /// Phase breakdown from the profiled pass.
    phases: PhaseTimes,
    /// Copy/compute overlap schedule (deterministic across reps).
    overlap: OverlapReport,
    /// Raw timeline segments, for the streamed-sweep reschedule.
    segments: Vec<Segment>,
}

fn sweep(quick: bool) -> Vec<(Workload, bool)> {
    let mut all: Vec<(Workload, bool)> = workloads::racey().into_iter().map(|w| (w, true)).collect();
    all.extend(workloads::clean().into_iter().map(|w| (w, false)));
    if quick {
        // Fixed 5-workload smoke subset: first 3 racey, first 2 clean.
        let racey: Vec<_> = all.iter().filter(|(_, r)| *r).take(3).cloned().collect();
        let clean: Vec<_> = all.iter().filter(|(_, r)| !*r).take(2).cloned().collect();
        all = racey.into_iter().chain(clean).collect();
    }
    all
}

fn perf_gpu_config(profile: bool) -> GpuConfig {
    GpuConfig {
        profile_phases: profile,
        ..bench::gpu_config(DEFAULT_SEED)
    }
}

/// Unwraps a driver outcome or exits with a diagnostic.
fn expect_done<T>(outcome: Outcome<T>, name: &str) -> (Duration, T) {
    match outcome {
        Outcome::Done { value, elapsed } => (elapsed, value),
        Outcome::Panicked { message, .. } => {
            eprintln!("perf: job `{name}` panicked: {message}");
            std::process::exit(1);
        }
        Outcome::TimedOut { elapsed } => {
            eprintln!(
                "perf: job `{name}` exceeded the {:.0}s deadline",
                elapsed.as_secs_f64()
            );
            std::process::exit(1);
        }
        Outcome::Faulted { message, .. } => {
            eprintln!("perf: job `{name}` hit an injected fault: {message}");
            std::process::exit(1);
        }
    }
}

/// Runs the serial-detector sweep once; per workload: wall, accesses,
/// phases, overlap.
type MeasuredRow = (u64, PhaseTimes, OverlapReport, Vec<Segment>);
type SweepRow = (Duration, u64, PhaseTimes, OverlapReport, Vec<Segment>);

fn run_sweep(set: &[(Workload, bool)], cfg: &DriverConfig, profile: bool) -> Vec<SweepRow> {
    let jobs: Vec<Job<MeasuredRow>> = set
        .iter()
        .map(|(w, _)| {
            let w = *w;
            let label = format!("{}/perf profile={profile}", w.name);
            Job::custom(label, move || {
                let r = bench::run_iguard_with(
                    &w,
                    Size::Test,
                    perf_gpu_config(profile),
                    IguardConfig::default(),
                );
                (r.stats.accesses, r.stats_exec.phases, r.overlap, r.overlap_segments)
            })
        })
        .collect();
    run_jobs(jobs, cfg)
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            let (elapsed, (accesses, phases, overlap, segments)) = expect_done(o, set[i].0.name);
            (elapsed, accesses, phases, overlap, segments)
        })
        .collect()
}

/// One shard-sweep point: the racey set under the threaded sharded
/// detector, with pipe counters summed across shards and workloads.
struct SweepPoint {
    shards: usize,
    wall: Duration,
    pipe: PipeStats,
}

fn run_shard_sweep(
    racey: &[(Workload, bool)],
    cfg: &DriverConfig,
    shard_counts: &[usize],
) -> Vec<SweepPoint> {
    shard_counts
        .iter()
        .map(|&shards| {
            let jobs: Vec<Job<PipeStats>> = racey
                .iter()
                .map(|(w, _)| {
                    let w = *w;
                    let label = format!("{}/shards={shards}", w.name);
                    Job::custom(label, move || {
                        let r = bench::run_iguard_sharded_with(
                            &w,
                            Size::Test,
                            perf_gpu_config(false),
                            IguardConfig::default(),
                            ShardConfig::threaded(shards),
                        );
                        let mut total = PipeStats::default();
                        for p in &r.pipe {
                            total.pushed += p.pushed;
                            total.popped += p.popped;
                            total.blocked_sends += p.blocked_sends;
                            total.producer_wait_ns += p.producer_wait_ns;
                            total.consumer_wait_ns += p.consumer_wait_ns;
                            total.max_depth = total.max_depth.max(p.max_depth);
                        }
                        total
                    })
                })
                .collect();
            let mut wall = Duration::ZERO;
            let mut pipe = PipeStats::default();
            for (i, o) in run_jobs(jobs, cfg).into_iter().enumerate() {
                let (elapsed, p) = expect_done(o, racey[i].0.name);
                wall += elapsed;
                pipe.pushed += p.pushed;
                pipe.popped += p.popped;
                pipe.blocked_sends += p.blocked_sends;
                pipe.producer_wait_ns += p.producer_wait_ns;
                pipe.consumer_wait_ns += p.consumer_wait_ns;
                pipe.max_depth = pipe.max_depth.max(p.max_depth);
            }
            SweepPoint { shards, wall, pipe }
        })
        .collect()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn phases_value(p: &PhaseTimes) -> Value {
    let mut v = Value::obj();
    v.set("total_ms", Value::Num(ns_to_ms(p.total_ns)));
    v.set("simulate_ms", Value::Num(ns_to_ms(p.simulate_ns())));
    v.set("instrument_ms", Value::Num(ns_to_ms(p.instrument_ns())));
    v.set("detect_ms", Value::Num(ns_to_ms(p.detect_exclusive_ns())));
    v.set("uvm_ms", Value::Num(ns_to_ms(p.uvm_ns)));
    v
}

fn overlap_value(name: &str, r: &OverlapReport) -> Value {
    let mut v = Value::obj();
    v.set("name", Value::Str(name.to_string()));
    v.set("segments", Value::Num(r.segments as f64));
    v.set("serial_cycles", Value::Num(r.serial_cycles as f64));
    v.set("overlapped_cycles", Value::Num(r.overlapped_cycles as f64));
    v.set("saved_cycles", Value::Num(r.saved_cycles() as f64));
    v.set("speedup", Value::Num(r.speedup()));
    let engines = r
        .engines
        .iter()
        .zip(ENGINE_NAMES)
        .map(|(lane, name)| {
            let mut e = Value::obj();
            e.set("name", Value::Str(name.into()));
            e.set("busy", Value::Num(lane.busy as f64));
            e.set("idle", Value::Num(lane.idle as f64));
            e.set("utilization_pct", Value::Num(lane.utilization_pct()));
            e
        })
        .collect();
    v.set("engines", Value::Arr(engines));
    v
}

fn run_value(results: &[Measured], args: &Args, cfg: &DriverConfig) -> Value {
    let mut workloads_arr = Vec::new();
    let mut racey_wall = Duration::ZERO;
    let mut clean_wall = Duration::ZERO;
    let mut total_accesses = 0u64;
    let mut total_phases = PhaseTimes::default();
    for m in results {
        if m.racey {
            racey_wall += m.wall;
        } else {
            clean_wall += m.wall;
        }
        total_accesses += m.accesses;
        total_phases.accumulate(&m.phases);
        let mut w = Value::obj();
        w.set("name", Value::Str(m.name.to_string()));
        w.set(
            "class",
            Value::Str(if m.racey { "racey" } else { "clean" }.into()),
        );
        w.set("wall_ms", Value::Num(ms(m.wall)));
        w.set("accesses", Value::Num(m.accesses as f64));
        w.set(
            "accesses_per_sec",
            Value::Num(m.accesses as f64 / m.wall.as_secs_f64().max(1e-9)),
        );
        w.set("phases", phases_value(&m.phases));
        workloads_arr.push(w);
    }
    let all_wall = racey_wall + clean_wall;

    let mut totals = Value::obj();
    totals.set("racey_wall_ms", Value::Num(ms(racey_wall)));
    totals.set("clean_wall_ms", Value::Num(ms(clean_wall)));
    totals.set("all_wall_ms", Value::Num(ms(all_wall)));
    totals.set("accesses", Value::Num(total_accesses as f64));
    totals.set(
        "accesses_per_sec",
        Value::Num(total_accesses as f64 / all_wall.as_secs_f64().max(1e-9)),
    );
    totals.set("phases", phases_value(&total_phases));

    let mut run = Value::obj();
    if let Some(label) = &args.label {
        run.set("label", Value::Str(label.clone()));
    }
    run.set("quick", Value::Bool(args.quick));
    run.set("reps", Value::Num(args.reps as f64));
    run.set("host", perfjson::host_info(available_jobs(), cfg.jobs));
    run.set("workloads", Value::Arr(workloads_arr));
    run.set("totals", totals);
    run
}

fn total_of(doc: &Value, run_key: &str, total_key: &str) -> Option<f64> {
    doc.get(run_key)?.get("totals")?.get(total_key)?.as_f64()
}

fn validate_file(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = perfjson::parse(&text).unwrap_or_else(|e| {
        eprintln!("perf: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    if let Err(e) = perfjson::validate_pr7(&doc) {
        eprintln!("perf: {path} fails {} validation: {e}", perfjson::SCHEMA_PR7);
        std::process::exit(1);
    }
    println!("perf: {path} is valid {}", perfjson::SCHEMA_PR7);
    std::process::exit(0);
}

fn main() {
    let (driver_cfg, rest) = DriverConfig::from_env();
    let args = parse_args(rest);
    if let Some(path) = &args.validate {
        validate_file(path);
    }
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| (if args.quick { QUICK_OUT } else { DEFAULT_OUT }).to_string());

    let set = sweep(args.quick);
    eprintln!(
        "perf: sweep of {} workloads, {} timing rep(s) + 1 profiled pass",
        set.len(),
        args.reps
    );

    // Timing pass(es): profiling off, keep each workload's minimum wall.
    let mut best: Vec<(Duration, u64)> = Vec::new();
    for rep in 0..args.reps {
        let pass = run_sweep(&set, &driver_cfg, false);
        if rep == 0 {
            best = pass.iter().map(|(d, a, _, _, _)| (*d, *a)).collect();
        } else {
            for (b, (d, _, _, _, _)) in best.iter_mut().zip(&pass) {
                b.0 = b.0.min(*d);
            }
        }
    }

    // Profiled pass: phase breakdown + the deterministic overlap model.
    let profiled = run_sweep(&set, &driver_cfg, true);

    let results: Vec<Measured> = set
        .iter()
        .zip(best.iter().zip(profiled))
        .map(
            |((w, racey), (&(wall, accesses), (_, _, phases, overlap, segments)))| Measured {
                name: w.name,
                racey: *racey,
                wall,
                accesses,
                phases,
                overlap,
                segments,
            },
        )
        .collect();

    // Shard sweep: the racey set under the threaded sharded detector.
    let racey_set: Vec<(Workload, bool)> = set.iter().filter(|(_, r)| *r).cloned().collect();
    let shard_counts: &[usize] = if args.quick { &[2] } else { &[1, 2, 4, 8] };
    eprintln!("perf: shard sweep over {:?} (threaded, racey set)", shard_counts);
    let sweep_points = run_shard_sweep(&racey_set, &driver_cfg, shard_counts);
    let serial_racey_wall: Duration = results.iter().filter(|m| m.racey).map(|m| m.wall).sum();

    // Merge into the existing trajectory file (if any).
    let mut doc = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|t| perfjson::parse(&t).ok())
        .filter(|d| d.get("schema").and_then(Value::as_str) == Some(perfjson::SCHEMA_PR7))
        .unwrap_or_else(|| {
            let mut d = Value::obj();
            d.set("schema", Value::Str(perfjson::SCHEMA_PR7.into()));
            d
        });
    let run_key = if args.record_baseline {
        "baseline"
    } else {
        "current"
    };
    doc.set(run_key, run_value(&results, &args, &driver_cfg));

    // Baseline/current speedup — only when both runs came from the same
    // host shape (cores + jobs), so the comparison is meaningful.
    if let (Some(base_run), Some(cur_run)) = (doc.get("baseline"), doc.get("current")) {
        let comparable = perfjson::hosts_comparable(base_run, cur_run);
        let mut speedup = Value::obj();
        speedup.set("comparable", Value::Bool(comparable));
        if comparable {
            for key in ["racey_wall_ms", "all_wall_ms"] {
                if let (Some(base), Some(cur)) =
                    (total_of(&doc, "baseline", key), total_of(&doc, "current", key))
                {
                    speedup.set(
                        key.replace("_wall_ms", "_speedup").as_str(),
                        Value::Num(base / cur.max(1e-9)),
                    );
                }
            }
        } else {
            speedup.set(
                "note",
                Value::Str(
                    "baseline and current were measured on different host shapes; \
                     wall-clock speedup not computed"
                        .into(),
                ),
            );
        }
        doc.set("speedup", speedup);
    }

    // Informational PR 2 reference: its schema predates host recording,
    // so the number is context, not a comparison target.
    if let Some(pr2_racey) = std::fs::read_to_string(PR2_PATH)
        .ok()
        .and_then(|t| perfjson::parse(&t).ok())
        .and_then(|d| total_of(&d, "current", "racey_wall_ms"))
    {
        let mut pr2 = Value::obj();
        pr2.set("racey_wall_ms", Value::Num(pr2_racey));
        pr2.set(
            "note",
            Value::Str(
                "from BENCH_PR2.json (schema bench-pr2-v1, no host block); informational only"
                    .into(),
            ),
        );
        doc.set("pr2_reference", pr2);
    }

    // Shard sweep section.
    {
        let mut sweep_v = Value::obj();
        sweep_v.set("workload_set", Value::Str("racey".into()));
        sweep_v.set("mode", Value::Str("threaded".into()));
        sweep_v.set("host", perfjson::host_info(available_jobs(), driver_cfg.jobs));
        sweep_v.set("serial_wall_ms", Value::Num(ms(serial_racey_wall)));
        let entries = sweep_points
            .iter()
            .map(|p| {
                let mut e = Value::obj();
                e.set("shards", Value::Num(p.shards as f64));
                e.set("wall_ms", Value::Num(ms(p.wall)));
                e.set(
                    "speedup_vs_serial",
                    Value::Num(ms(serial_racey_wall) / ms(p.wall).max(1e-9)),
                );
                let wall_ns = p.wall.as_nanos() as f64;
                let mut pipe = Value::obj();
                pipe.set("pushed", Value::Num(p.pipe.pushed as f64));
                pipe.set("popped", Value::Num(p.pipe.popped as f64));
                pipe.set("blocked_sends", Value::Num(p.pipe.blocked_sends as f64));
                pipe.set(
                    "producer_wait_ms",
                    Value::Num(ns_to_ms(p.pipe.producer_wait_ns)),
                );
                pipe.set(
                    "consumer_wait_ms",
                    Value::Num(ns_to_ms(p.pipe.consumer_wait_ns)),
                );
                pipe.set("max_depth", Value::Num(p.pipe.max_depth as f64));
                // Producer utilization: share of the sweep wall the
                // simulation thread was *not* blocked on full queues.
                pipe.set(
                    "producer_utilization_pct",
                    Value::Num(
                        100.0 * (1.0 - (p.pipe.producer_wait_ns as f64 / wall_ns).min(1.0)),
                    ),
                );
                e.set("pipeline", pipe);
                e
            })
            .collect();
        sweep_v.set("entries", Value::Arr(entries));
        doc.set("shard_sweep", sweep_v);
    }

    // Overlap model section (per racey workload + aggregate).
    {
        let model = CopyModel::default();
        let mut overlap_v = Value::obj();
        let mut m = Value::obj();
        m.set("h2d_cycles_per_word", Value::Num(model.h2d_cycles_per_word as f64));
        m.set("d2h_cycles_per_word", Value::Num(model.d2h_cycles_per_word as f64));
        m.set("fixed_per_transfer", Value::Num(model.fixed_per_transfer as f64));
        overlap_v.set("model", m);
        let mut serial_total = 0u64;
        let mut overlapped_total = 0u64;
        let entries: Vec<Value> = results
            .iter()
            .filter(|r| r.racey)
            .map(|r| {
                serial_total += r.overlap.serial_cycles;
                overlapped_total += r.overlap.overlapped_cycles;
                overlap_value(r.name, &r.overlap)
            })
            .collect();
        overlap_v.set("workloads", Value::Arr(entries));

        // The streamed sweep: every racey workload's segments back to
        // back through one three-engine pipeline, so workload i's
        // report-drain D2H and workload i+1's upload overlap workload
        // kernels. This is the deterministic simulated-latency win the
        // single-launch per-workload schedules cannot show on their own.
        let streamed_segments: Vec<Segment> = results
            .iter()
            .filter(|r| r.racey)
            .flat_map(|r| r.segments.iter().cloned())
            .collect();
        let streamed = overlap::schedule(&streamed_segments, &model);
        let mut streamed_v = overlap_value("racey-sweep-streamed", &streamed);
        streamed_v.set(
            "note",
            Value::Str(
                "all racey workloads' segments scheduled through one                  H2D/kernel/D2H pipeline back to back"
                    .into(),
            ),
        );
        overlap_v.set("pipelined_sweep", streamed_v);

        let mut totals = Value::obj();
        totals.set("per_workload_serial_cycles", Value::Num(serial_total as f64));
        totals.set(
            "per_workload_overlapped_cycles",
            Value::Num(overlapped_total as f64),
        );
        totals.set("serial_cycles", Value::Num(streamed.serial_cycles as f64));
        totals.set(
            "overlapped_cycles",
            Value::Num(streamed.overlapped_cycles as f64),
        );
        totals.set("saved_cycles", Value::Num(streamed.saved_cycles() as f64));
        totals.set(
            "reduction_pct",
            Value::Num(if streamed.serial_cycles == 0 {
                0.0
            } else {
                100.0 * streamed.saved_cycles() as f64 / streamed.serial_cycles as f64
            }),
        );
        overlap_v.set("totals", totals);
        doc.set("overlap", overlap_v);
    }

    let rendered = doc.pretty();
    let reparsed = perfjson::parse(&rendered).expect("emitted JSON must re-parse");
    perfjson::validate_pr7(&reparsed).expect("emitted document must satisfy its own schema");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &rendered).expect("write perf trajectory file");

    // Human summary.
    println!("perf sweep ({} workloads) -> {out_path}", results.len());
    println!(
        "{:<12} {:>6} {:>12} {:>14}  phases total/sim/instr/detect/uvm (ms)",
        "workload", "class", "wall_ms", "accesses/s"
    );
    for m in &results {
        println!(
            "{:<12} {:>6} {:>12.2} {:>14.0}  {:.1}/{:.1}/{:.1}/{:.1}/{:.1}",
            m.name,
            if m.racey { "racey" } else { "clean" },
            ms(m.wall),
            m.accesses as f64 / m.wall.as_secs_f64().max(1e-9),
            ns_to_ms(m.phases.total_ns),
            ns_to_ms(m.phases.simulate_ns()),
            ns_to_ms(m.phases.instrument_ns()),
            ns_to_ms(m.phases.detect_exclusive_ns()),
            ns_to_ms(m.phases.uvm_ns),
        );
    }
    let racey_ms: f64 = results.iter().filter(|m| m.racey).map(|m| ms(m.wall)).sum();
    let all_ms: f64 = results.iter().map(|m| ms(m.wall)).sum();
    println!(
        "racey wall total: {racey_ms:.2} ms   all wall total: {all_ms:.2} ms   \
         host {}c/{}j   ({run_key})",
        available_jobs(),
        driver_cfg.jobs
    );
    for p in &sweep_points {
        println!(
            "shards={:<2} racey wall {:>9.2} ms  speedup {:>5.2}x  \
             blocked_sends={} producer_wait {:.2} ms max_depth={}",
            p.shards,
            ms(p.wall),
            ms(serial_racey_wall) / ms(p.wall).max(1e-9),
            p.pipe.blocked_sends,
            ns_to_ms(p.pipe.producer_wait_ns),
            p.pipe.max_depth,
        );
    }
    if let Some(overlap) = doc.get("overlap").and_then(|o| o.get("totals")) {
        let get = |k: &str| overlap.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        println!(
            "overlap model: serial {:.0} cy -> overlapped {:.0} cy ({:.2}% saved)",
            get("serial_cycles"),
            get("overlapped_cycles"),
            get("reduction_pct"),
        );
    }
    if let Some(s) = doc
        .get("speedup")
        .and_then(|s| s.get("racey_speedup"))
        .and_then(Value::as_f64)
    {
        println!("racey-sweep speedup vs baseline: {s:.2}x");
    }
}
