//! `perf`: the wall-clock perf harness and trajectory recorder.
//!
//! Unlike every other bench binary — which reports *simulated* cycles —
//! this one measures the reproduction itself: real wall-clock time per
//! workload for the simulator→hook→detector pipeline, plus the detector's
//! self-profiled phase breakdown (simulate / instrument / detect / UVM).
//! Results land in `BENCH_PR2.json` at the repo root, under either the
//! `"baseline"` key (`--record-baseline`, run once on the pre-optimization
//! build) or the `"current"` key; when both are present the racey-sweep
//! speedup is computed and recorded alongside.
//!
//! Usage:
//!
//! ```text
//! perf [--record-baseline] [--label STR] [--reps N] [--out PATH] [--quick]
//!      [driver flags: --jobs N | --serial | --timeout-secs N | --no-progress]
//! ```
//!
//! The sweep is fixed (every racey + every clean workload, Test size,
//! default seed, ITS scheduling) so numbers are comparable across PRs.
//! `--quick` runs a 5-workload subset to a scratch file — a CI smoke that
//! exercises the harness and validates the JSON without touching the
//! recorded trajectory. Timing methodology: `--reps N` (default 3) repeats
//! the sweep and keeps each workload's *minimum* wall time (least
//! scheduler noise); a second profiled pass collects the phase breakdown
//! without contaminating the timing pass with `Instant` reads.

use std::time::Duration;

use bench::perfjson::{self, Value};
use bench::{run_jobs, DriverConfig, Job, Outcome, DEFAULT_SEED};
use gpu_sim::machine::GpuConfig;
use gpu_sim::timing::PhaseTimes;
use iguard::IguardConfig;
use workloads::{Size, Workload};

const DEFAULT_OUT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR2.json");
const QUICK_OUT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../target/BENCH_PR2.quick.json"
);

struct Args {
    quick: bool,
    record_baseline: bool,
    label: Option<String>,
    reps: usize,
    out: Option<String>,
}

fn parse_args(rest: Vec<String>) -> Args {
    let mut args = Args {
        quick: false,
        record_baseline: false,
        label: None,
        reps: 0,
        out: None,
    };
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--record-baseline" => args.record_baseline = true,
            "--label" => args.label = it.next(),
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--reps expects a number"));
            }
            "--out" => args.out = it.next(),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    if args.reps == 0 {
        args.reps = if args.quick { 1 } else { 3 };
    }
    args
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("perf: {msg}");
    }
    eprintln!(
        "usage: perf [--record-baseline] [--label STR] [--reps N] [--out PATH] [--quick]\n\
         \x20           [--jobs N | --serial] [--timeout-secs N] [--no-progress]"
    );
    std::process::exit(2);
}

/// One workload's measured result across both passes.
struct Measured {
    name: &'static str,
    racey: bool,
    /// Minimum wall time over the timing reps (profiling off).
    wall: Duration,
    /// Detector-processed accesses (deterministic across reps).
    accesses: u64,
    /// Phase breakdown from the profiled pass.
    phases: PhaseTimes,
}

fn sweep(quick: bool) -> Vec<(Workload, bool)> {
    let mut all: Vec<(Workload, bool)> = workloads::racey().into_iter().map(|w| (w, true)).collect();
    all.extend(workloads::clean().into_iter().map(|w| (w, false)));
    if quick {
        // Fixed 5-workload smoke subset: first 3 racey, first 2 clean.
        let racey: Vec<_> = all.iter().filter(|(_, r)| *r).take(3).cloned().collect();
        let clean: Vec<_> = all.iter().filter(|(_, r)| !*r).take(2).cloned().collect();
        all = racey.into_iter().chain(clean).collect();
    }
    all
}

fn perf_gpu_config(profile: bool) -> GpuConfig {
    GpuConfig {
        profile_phases: profile,
        ..bench::gpu_config(DEFAULT_SEED)
    }
}

/// Runs the full sweep once; returns per-workload (wall, accesses, phases).
fn run_sweep(
    set: &[(Workload, bool)],
    cfg: &DriverConfig,
    profile: bool,
) -> Vec<(Duration, u64, PhaseTimes)> {
    let jobs: Vec<Job<(u64, PhaseTimes)>> = set
        .iter()
        .map(|(w, _)| {
            let w = *w;
            let label = format!("{}/perf profile={profile}", w.name);
            Job::custom(label, move || {
                let r =
                    bench::run_iguard_with(&w, Size::Test, perf_gpu_config(profile), IguardConfig::default());
                (r.stats.accesses, r.stats_exec.phases)
            })
        })
        .collect();
    run_jobs(jobs, cfg)
        .into_iter()
        .enumerate()
        .map(|(i, o)| match o {
            Outcome::Done { value, elapsed } => (elapsed, value.0, value.1),
            Outcome::Panicked { message, .. } => {
                eprintln!("perf: job `{}` panicked: {message}", set[i].0.name);
                std::process::exit(1);
            }
            Outcome::TimedOut { elapsed } => {
                eprintln!(
                    "perf: job `{}` exceeded the {:.0}s deadline",
                    set[i].0.name,
                    elapsed.as_secs_f64()
                );
                std::process::exit(1);
            }
            Outcome::Faulted { message, .. } => {
                eprintln!("perf: job `{}` hit an injected fault: {message}", set[i].0.name);
                std::process::exit(1);
            }
        })
        .collect()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn phases_value(p: &PhaseTimes) -> Value {
    let mut v = Value::obj();
    v.set("total_ms", Value::Num(ns_to_ms(p.total_ns)));
    v.set("simulate_ms", Value::Num(ns_to_ms(p.simulate_ns())));
    v.set("instrument_ms", Value::Num(ns_to_ms(p.instrument_ns())));
    v.set("detect_ms", Value::Num(ns_to_ms(p.detect_exclusive_ns())));
    v.set("uvm_ms", Value::Num(ns_to_ms(p.uvm_ns)));
    v
}

fn run_value(results: &[Measured], args: &Args, cfg: &DriverConfig) -> Value {
    let mut workloads_arr = Vec::new();
    let mut racey_wall = Duration::ZERO;
    let mut clean_wall = Duration::ZERO;
    let mut total_accesses = 0u64;
    let mut total_phases = PhaseTimes::default();
    for m in results {
        if m.racey {
            racey_wall += m.wall;
        } else {
            clean_wall += m.wall;
        }
        total_accesses += m.accesses;
        total_phases.accumulate(&m.phases);
        let mut w = Value::obj();
        w.set("name", Value::Str(m.name.to_string()));
        w.set(
            "class",
            Value::Str(if m.racey { "racey" } else { "clean" }.into()),
        );
        w.set("wall_ms", Value::Num(ms(m.wall)));
        w.set("accesses", Value::Num(m.accesses as f64));
        w.set(
            "accesses_per_sec",
            Value::Num(m.accesses as f64 / m.wall.as_secs_f64().max(1e-9)),
        );
        w.set("phases", phases_value(&m.phases));
        workloads_arr.push(w);
    }
    let all_wall = racey_wall + clean_wall;

    let mut totals = Value::obj();
    totals.set("racey_wall_ms", Value::Num(ms(racey_wall)));
    totals.set("clean_wall_ms", Value::Num(ms(clean_wall)));
    totals.set("all_wall_ms", Value::Num(ms(all_wall)));
    totals.set("accesses", Value::Num(total_accesses as f64));
    totals.set(
        "accesses_per_sec",
        Value::Num(total_accesses as f64 / all_wall.as_secs_f64().max(1e-9)),
    );
    totals.set("phases", phases_value(&total_phases));

    let mut run = Value::obj();
    if let Some(label) = &args.label {
        run.set("label", Value::Str(label.clone()));
    }
    run.set("quick", Value::Bool(args.quick));
    run.set("reps", Value::Num(args.reps as f64));
    run.set("jobs", Value::Num(cfg.jobs as f64));
    run.set("workloads", Value::Arr(workloads_arr));
    run.set("totals", totals);
    run
}

fn total_of(doc: &Value, run_key: &str, total_key: &str) -> Option<f64> {
    doc.get(run_key)?
        .get("totals")?
        .get(total_key)?
        .as_f64()
}

fn main() {
    let (driver_cfg, rest) = DriverConfig::from_env();
    let args = parse_args(rest);
    let out_path = args.out.clone().unwrap_or_else(|| {
        (if args.quick { QUICK_OUT } else { DEFAULT_OUT }).to_string()
    });

    let set = sweep(args.quick);
    eprintln!(
        "perf: sweep of {} workloads, {} timing rep(s) + 1 profiled pass",
        set.len(),
        args.reps
    );

    // Timing pass(es): profiling off, keep each workload's minimum wall.
    let mut best: Vec<(Duration, u64)> = Vec::new();
    for rep in 0..args.reps {
        let pass = run_sweep(&set, &driver_cfg, false);
        if rep == 0 {
            best = pass.iter().map(|(d, a, _)| (*d, *a)).collect();
        } else {
            for (b, (d, _, _)) in best.iter_mut().zip(&pass) {
                b.0 = b.0.min(*d);
            }
        }
    }

    // Profiled pass: phase breakdown only.
    let profiled = run_sweep(&set, &driver_cfg, true);

    let results: Vec<Measured> = set
        .iter()
        .zip(best.iter().zip(&profiled))
        .map(|((w, racey), (&(wall, accesses), &(_, _, phases)))| Measured {
            name: w.name,
            racey: *racey,
            wall,
            accesses,
            phases,
        })
        .collect();

    // Merge into the existing trajectory file (if any).
    let mut doc = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|t| perfjson::parse(&t).ok())
        .unwrap_or_else(|| {
            let mut d = Value::obj();
            d.set("schema", Value::Str("bench-pr2-v1".into()));
            d
        });
    let run_key = if args.record_baseline {
        "baseline"
    } else {
        "current"
    };
    doc.set(run_key, run_value(&results, &args, &driver_cfg));
    for key in ["racey_wall_ms", "all_wall_ms"] {
        let (Some(base), Some(cur)) = (total_of(&doc, "baseline", key), total_of(&doc, "current", key))
        else {
            continue;
        };
        let mut speedup = match doc.get("speedup") {
            Some(v @ Value::Obj(_)) => v.clone(),
            _ => Value::obj(),
        };
        speedup.set(
            key.replace("_wall_ms", "_speedup").as_str(),
            Value::Num(base / cur.max(1e-9)),
        );
        doc.set("speedup", speedup);
    }

    let rendered = doc.pretty();
    perfjson::parse(&rendered).expect("emitted JSON must re-parse");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &rendered).expect("write perf trajectory file");

    // Human summary.
    println!("perf sweep ({} workloads) -> {out_path}", results.len());
    println!(
        "{:<12} {:>6} {:>12} {:>14}  phases total/sim/instr/detect/uvm (ms)",
        "workload", "class", "wall_ms", "accesses/s"
    );
    for m in &results {
        println!(
            "{:<12} {:>6} {:>12.2} {:>14.0}  {:.1}/{:.1}/{:.1}/{:.1}/{:.1}",
            m.name,
            if m.racey { "racey" } else { "clean" },
            ms(m.wall),
            m.accesses as f64 / m.wall.as_secs_f64().max(1e-9),
            ns_to_ms(m.phases.total_ns),
            ns_to_ms(m.phases.simulate_ns()),
            ns_to_ms(m.phases.instrument_ns()),
            ns_to_ms(m.phases.detect_exclusive_ns()),
            ns_to_ms(m.phases.uvm_ns),
        );
    }
    let racey_ms: f64 = results.iter().filter(|m| m.racey).map(|m| ms(m.wall)).sum();
    let all_ms: f64 = results.iter().map(|m| ms(m.wall)).sum();
    println!("racey wall total: {racey_ms:.2} ms   all wall total: {all_ms:.2} ms   ({run_key})");
    if let Some(s) = doc.get("speedup").and_then(|s| s.get("racey_speedup")).and_then(Value::as_f64) {
        println!("racey-sweep speedup vs baseline: {s:.2}x");
    }
}
