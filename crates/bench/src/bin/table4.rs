//! Regenerates **Table 4**: races detected by Barracuda and iGUARD across
//! the racey workloads, with race types.
//!
//! ```text
//! cargo run -p bench --release --bin table4 [-- --bench] [-- --jobs N | --serial]
//! ```
//!
//! `--bench` re-runs detection at the larger benchmark grid sizes; counts
//! must be identical (the seeded sites are scale-invariant). Runs fan out
//! over the experiment driver; output is identical for any `--jobs`.

use bench::{
    kinds_summary, run_jobs, BarracudaRun, DriverConfig, JobSpec, RunOutput, ToolSpec,
    DEFAULT_SEED,
};
use iguard::IguardConfig;
use workloads::{BarracudaExpectation, Size};

fn main() {
    let (driver, rest) = DriverConfig::from_env();
    let size = if rest.iter().any(|a| a == "--bench") {
        Size::Bench
    } else {
        Size::Test
    };

    // One iGUARD and one Barracuda job per racey workload, submitted in
    // table order; the driver returns outcomes in the same order.
    let table = workloads::racey();
    let mut jobs = Vec::new();
    for w in &table {
        jobs.push(
            JobSpec::new(*w, ToolSpec::Iguard(IguardConfig::default()), size, DEFAULT_SEED)
                .into_job(),
        );
        jobs.push(
            JobSpec::new(
                *w,
                ToolSpec::Barracuda(bench::barracuda_config_for(w)),
                Size::Test,
                DEFAULT_SEED,
            )
            .into_job(),
        );
    }
    let outcomes = run_jobs(jobs, &driver);

    println!("Table 4: Races detected by Barracuda and iGUARD");
    println!("(paper column = counts reported in the paper; measured = this reproduction)");
    println!();
    println!(
        "{:<10} {:<15} {:>6} {:>9} {:<14} {:>10}  (paper Barracuda)",
        "Suite", "Application", "paper", "measured", "types", "Barracuda"
    );
    println!("{}", "-".repeat(90));

    let mut total_paper = 0;
    let mut total_measured = 0;
    let mut mismatches = Vec::new();
    let mut dnf = 0usize;
    for (i, w) in table.iter().enumerate() {
        let ig = outcomes[2 * i].value().and_then(RunOutput::iguard);
        let bar = outcomes[2 * i + 1].value().and_then(RunOutput::barracuda);
        total_paper += w.paper_races;

        let (measured_str, types_str) = match ig {
            Some(r) => {
                total_measured += r.sites.len();
                if r.sites.len() != w.paper_races {
                    mismatches.push((w.name, w.paper_races, r.sites.len(), r.sites.clone()));
                }
                (r.sites.len().to_string(), kinds_summary(&r.sites))
            }
            None => {
                dnf += 1;
                ("DNF".to_string(), String::new())
            }
        };
        let bar_str = match bar {
            None => {
                dnf += 1;
                "DNF".to_string()
            }
            Some(BarracudaRun::Unsupported(u)) => format!("unsup({u})"),
            Some(BarracudaRun::Ran { races, failure, .. }) => match failure {
                Some(barracuda::BarracudaFailure::DidNotTerminate) => format!("{races}*"),
                Some(barracuda::BarracudaFailure::OutOfMemory { .. }) => "OOM".to_string(),
                None => races.to_string(),
            },
        };
        let paper_bar = match w.barracuda {
            BarracudaExpectation::Unsupported => "unsup".to_string(),
            BarracudaExpectation::Races(n) => n.to_string(),
            BarracudaExpectation::Timeout(n) => format!("{n}*"),
        };
        println!(
            "{:<10} {:<15} {:>6} {:>9} {:<14} {:>10}  ({})",
            w.suite.name(),
            w.name,
            w.paper_races,
            measured_str,
            types_str,
            bar_str,
            paper_bar,
        );
    }
    println!("{}", "-".repeat(90));
    println!("TOTAL: paper {total_paper} races, measured {total_measured} races");
    if dnf > 0 {
        println!("({dnf} run(s) did not finish; see DNF rows)");
    }
    if !mismatches.is_empty() {
        println!("\nmismatched workloads:");
        for (name, paper, measured, sites) in &mismatches {
            println!("  {name}: paper {paper}, measured {measured}");
            for s in sites {
                println!(
                    "    [{}] pc {} kinds {:?} {}",
                    s.kernel,
                    s.pc,
                    s.kinds.iter().map(|k| k.code()).collect::<Vec<_>>(),
                    s.line.as_deref().unwrap_or("")
                );
            }
        }
    }
}
