//! Regenerates **Table 4**: races detected by Barracuda and iGUARD across
//! the racey workloads, with race types.
//!
//! ```text
//! cargo run -p bench --release --bin table4 [-- --bench]
//! ```
//!
//! `--bench` re-runs detection at the larger benchmark grid sizes; counts
//! must be identical (the seeded sites are scale-invariant).

use bench::{kinds_summary, run_barracuda, run_iguard, BarracudaRun, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::{BarracudaExpectation, Size};

fn main() {
    let size = if std::env::args().any(|a| a == "--bench") {
        Size::Bench
    } else {
        Size::Test
    };
    println!("Table 4: Races detected by Barracuda and iGUARD");
    println!("(paper column = counts reported in the paper; measured = this reproduction)");
    println!();
    println!(
        "{:<10} {:<15} {:>6} {:>9} {:<14} {:>10}  (paper Barracuda)",
        "Suite", "Application", "paper", "measured", "types", "Barracuda"
    );
    println!("{}", "-".repeat(90));

    let mut total_paper = 0;
    let mut total_measured = 0;
    let mut mismatches = Vec::new();
    for w in workloads::racey() {
        let ig = run_iguard(&w, size, DEFAULT_SEED, IguardConfig::default());
        let measured = ig.sites.len();
        total_paper += w.paper_races;
        total_measured += measured;

        let bar = run_barracuda(
            &w,
            Size::Test,
            DEFAULT_SEED,
            bench::barracuda_config_for(&w),
        );
        let bar_str = match &bar {
            BarracudaRun::Unsupported(u) => format!("unsup({u})"),
            BarracudaRun::Ran { races, failure, .. } => match failure {
                Some(barracuda::BarracudaFailure::DidNotTerminate) => format!("{races}*"),
                Some(barracuda::BarracudaFailure::OutOfMemory { .. }) => "OOM".to_string(),
                None => races.to_string(),
            },
        };
        let paper_bar = match w.barracuda {
            BarracudaExpectation::Unsupported => "unsup".to_string(),
            BarracudaExpectation::Races(n) => n.to_string(),
            BarracudaExpectation::Timeout(n) => format!("{n}*"),
        };
        println!(
            "{:<10} {:<15} {:>6} {:>9} {:<14} {:>10}  ({})",
            w.suite.name(),
            w.name,
            w.paper_races,
            measured,
            kinds_summary(&ig.sites),
            bar_str,
            paper_bar,
        );
        if measured != w.paper_races {
            mismatches.push((w.name, w.paper_races, measured, ig.sites));
        }
    }
    println!("{}", "-".repeat(90));
    println!("TOTAL: paper {total_paper} races, measured {total_measured} races");
    if !mismatches.is_empty() {
        println!("\nmismatched workloads:");
        for (name, paper, measured, sites) in &mismatches {
            println!("  {name}: paper {paper}, measured {measured}");
            for s in sites {
                println!(
                    "    [{}] pc {} kinds {:?} {}",
                    s.kernel,
                    s.pc,
                    s.kinds.iter().map(|k| k.code()).collect::<Vec<_>>(),
                    s.line.as_deref().unwrap_or("")
                );
            }
        }
    }
}
