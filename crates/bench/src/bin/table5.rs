//! Regenerates **Table 5**: the race-free applications. iGUARD (and
//! Barracuda where it runs) must report zero races — the paper's
//! no-false-positives claim.
//!
//! ```text
//! cargo run -p bench --release --bin table5 [-- --jobs N | --serial]
//! ```

use bench::{run_jobs, BarracudaRun, DriverConfig, JobSpec, RunOutput, ToolSpec, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

fn main() {
    let (driver, _rest) = DriverConfig::from_env();
    let table = workloads::clean();
    let mut jobs = Vec::new();
    for w in &table {
        jobs.push(
            JobSpec::new(
                *w,
                ToolSpec::Iguard(IguardConfig::default()),
                Size::Test,
                DEFAULT_SEED,
            )
            .into_job(),
        );
        jobs.push(
            JobSpec::new(
                *w,
                ToolSpec::Barracuda(bench::barracuda_config_for(w)),
                Size::Test,
                DEFAULT_SEED,
            )
            .into_job(),
        );
    }
    let outcomes = run_jobs(jobs, &driver);

    println!("Table 5: Applications without any reported races");
    println!();
    println!(
        "{:<10} {:<15} {:>7} {:>10}",
        "Suite", "Application", "iGUARD", "Barracuda"
    );
    println!("{}", "-".repeat(50));
    let mut false_positives = 0;
    let mut dnf = 0usize;
    for (i, w) in table.iter().enumerate() {
        let ig = outcomes[2 * i].value().and_then(RunOutput::iguard);
        let bar = outcomes[2 * i + 1].value().and_then(RunOutput::barracuda);
        let ig_str = match ig {
            Some(r) => {
                false_positives += r.sites.len();
                r.sites.len().to_string()
            }
            None => {
                dnf += 1;
                "DNF".to_string()
            }
        };
        let bar_str = match bar {
            None => {
                dnf += 1;
                "DNF".to_string()
            }
            Some(BarracudaRun::Unsupported(_)) => "unsup".to_string(),
            Some(BarracudaRun::Ran { races, .. }) => {
                false_positives += races;
                races.to_string()
            }
        };
        println!(
            "{:<10} {:<15} {:>7} {:>10}",
            w.suite.name(),
            w.name,
            ig_str,
            bar_str
        );
    }
    println!("{}", "-".repeat(50));
    if dnf > 0 {
        println!("({dnf} run(s) did not finish; see DNF rows)");
    }
    if false_positives == 0 {
        println!(
            "zero false positives across all {} race-free workloads ✓",
            workloads::clean().len()
        );
    } else {
        println!("!! {false_positives} FALSE POSITIVES — reproduction broken");
        std::process::exit(1);
    }
}
