//! Regenerates **Table 5**: the race-free applications. iGUARD (and
//! Barracuda where it runs) must report zero races — the paper's
//! no-false-positives claim.
//!
//! ```text
//! cargo run -p bench --release --bin table5
//! ```

use bench::{run_barracuda, run_iguard, BarracudaRun, DEFAULT_SEED};
use iguard::IguardConfig;
use workloads::Size;

fn main() {
    println!("Table 5: Applications without any reported races");
    println!();
    println!(
        "{:<10} {:<15} {:>7} {:>10}",
        "Suite", "Application", "iGUARD", "Barracuda"
    );
    println!("{}", "-".repeat(50));
    let mut false_positives = 0;
    for w in workloads::clean() {
        let ig = run_iguard(&w, Size::Test, DEFAULT_SEED, IguardConfig::default());
        let bar = run_barracuda(
            &w,
            Size::Test,
            DEFAULT_SEED,
            bench::barracuda_config_for(&w),
        );
        let bar_str = match &bar {
            BarracudaRun::Unsupported(_) => "unsup".to_string(),
            BarracudaRun::Ran { races, .. } => races.to_string(),
        };
        println!(
            "{:<10} {:<15} {:>7} {:>10}",
            w.suite.name(),
            w.name,
            ig.sites.len(),
            bar_str
        );
        false_positives += ig.sites.len();
        if let BarracudaRun::Ran { races, .. } = bar {
            false_positives += races;
        }
    }
    println!("{}", "-".repeat(50));
    if false_positives == 0 {
        println!(
            "zero false positives across all {} race-free workloads ✓",
            workloads::clean().len()
        );
    } else {
        println!("!! {false_positives} FALSE POSITIVES — reproduction broken");
        std::process::exit(1);
    }
}
