//! Units of work for the parallel experiment driver.
//!
//! Every evaluation artifact replays many *independent deterministic*
//! simulations: each owns its own [`Gpu`](gpu_sim::machine::Gpu), seeded
//! explicitly, and shares nothing with its neighbours. [`JobSpec`] is the
//! canonical `(workload, tool, config, size, seed)` tuple the tables and
//! figures are built from; [`Job`] is the type-erased closure form the
//! driver executes, which also lets harnesses with bespoke setups
//! (`table1`'s probe kernels, `fig14`'s footprint scaling) ride the same
//! pool via [`Job::custom`].

use std::time::Duration;

use barracuda::BarracudaConfig;
use gpu_sim::hook::ExecMode;
use iguard::IguardConfig;
use workloads::{Size, Workload};

use crate::{
    gpu_config, run_barracuda_with, run_iguard_with, run_native_with, BarracudaRun, IguardRun,
    NativeRun,
};

/// Which detector (if any) to attach to a run.
#[derive(Debug, Clone)]
pub enum ToolSpec {
    /// Uninstrumented run.
    Native,
    /// iGUARD with the given detector configuration.
    Iguard(IguardConfig),
    /// The Barracuda baseline with the given configuration.
    Barracuda(BarracudaConfig),
}

impl ToolSpec {
    /// Short name for labels and progress lines.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ToolSpec::Native => "native",
            ToolSpec::Iguard(_) => "iguard",
            ToolSpec::Barracuda(_) => "barracuda",
        }
    }
}

/// The canonical experiment tuple: workload × tool × size × seed
/// (× scheduler mode). Everything it owns is `'static` data or owned
/// configuration, so a spec can cross the driver's thread boundary.
#[derive(Clone)]
pub struct JobSpec {
    /// The workload to run.
    pub workload: Workload,
    /// Detector attachment.
    pub tool: ToolSpec,
    /// Grid scale.
    pub size: Size,
    /// Schedule seed.
    pub seed: u64,
    /// Warp scheduling mode (ITS by default, matching the evaluation).
    pub mode: ExecMode,
}

impl JobSpec {
    /// Spec with the evaluation defaults (ITS scheduling).
    #[must_use]
    pub fn new(workload: Workload, tool: ToolSpec, size: Size, seed: u64) -> Self {
        JobSpec {
            workload,
            tool,
            size,
            seed,
            mode: ExecMode::Its,
        }
    }

    /// Human-readable identity, used for progress and DNF rows.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{} size={:?} seed={}",
            self.workload.name,
            self.tool.name(),
            self.size,
            self.seed
        )
    }

    /// Executes the run on the calling thread.
    #[must_use]
    pub fn run(self) -> RunOutput {
        let gcfg = gpu_sim::machine::GpuConfig {
            mode: self.mode,
            ..gpu_config(self.seed)
        };
        match self.tool {
            ToolSpec::Native => {
                RunOutput::Native(run_native_with(&self.workload, self.size, gcfg))
            }
            ToolSpec::Iguard(cfg) => RunOutput::Iguard(Box::new(run_iguard_with(
                &self.workload,
                self.size,
                gcfg,
                cfg,
            ))),
            ToolSpec::Barracuda(cfg) => {
                RunOutput::Barracuda(run_barracuda_with(&self.workload, self.size, gcfg, cfg))
            }
        }
    }

    /// Converts the spec into a driver job. Specs are cheap to clone and
    /// fully deterministic, so the job is retryable: under
    /// `DriverConfig::retries` the driver can re-run it after a DNF
    /// (useful when the DNF came from an injected-fault schedule or a
    /// deadline, not a genuine bug).
    #[must_use]
    pub fn into_job(self) -> Job<RunOutput> {
        let label = self.label();
        Job::retryable(label, move || self.clone().run())
    }
}

/// Result of a [`JobSpec`] run, by tool.
#[derive(Debug)]
pub enum RunOutput {
    /// From [`ToolSpec::Native`].
    Native(NativeRun),
    /// From [`ToolSpec::Iguard`] (boxed: it is by far the largest).
    Iguard(Box<IguardRun>),
    /// From [`ToolSpec::Barracuda`].
    Barracuda(BarracudaRun),
}

impl RunOutput {
    /// The native run, if this was one.
    #[must_use]
    pub fn native(&self) -> Option<&NativeRun> {
        match self {
            RunOutput::Native(r) => Some(r),
            _ => None,
        }
    }

    /// The iGUARD run, if this was one.
    #[must_use]
    pub fn iguard(&self) -> Option<&IguardRun> {
        match self {
            RunOutput::Iguard(r) => Some(r),
            _ => None,
        }
    }

    /// The Barracuda run, if this was one.
    #[must_use]
    pub fn barracuda(&self) -> Option<&BarracudaRun> {
        match self {
            RunOutput::Barracuda(r) => Some(r),
            _ => None,
        }
    }
}

/// A unit of driver work: a label plus a `Send` closure producing `T`.
///
/// The closure owns everything it needs (the driver may run it on any
/// worker thread, or abandon it past its deadline), which is also the
/// compiler-checked proof that `Gpu`, `Workload`, and the detector
/// configurations crossing the spawn boundary are `Send`.
pub struct Job<T> {
    /// Identity shown in progress and DNF reporting.
    pub label: String,
    run: JobFn<T>,
}

/// A reusable job body, shared between the queued job and the driver's
/// retry bookkeeping.
pub(crate) type JobFactory<T> = std::sync::Arc<dyn Fn() -> T + Send + Sync + 'static>;

enum JobFn<T> {
    /// Consumed on first execution; cannot be retried.
    Once(Box<dyn FnOnce() -> T + Send + 'static>),
    /// Re-runnable body: the driver can rebuild the job after a DNF.
    Retryable(JobFactory<T>),
}

impl<T> Job<T> {
    /// Wraps an arbitrary one-shot closure as a job.
    pub fn custom(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'static) -> Self {
        Job {
            label: label.into(),
            run: JobFn::Once(Box::new(run)),
        }
    }

    /// Wraps a re-runnable closure as a job the driver may retry after a
    /// DNF (panic, deadline, injected fault) when
    /// `DriverConfig::retries > 0`. The closure must be deterministic or
    /// at least idempotent: a retried run replaces the failed one
    /// wholesale.
    pub fn retryable(
        label: impl Into<String>,
        run: impl Fn() -> T + Send + Sync + 'static,
    ) -> Self {
        Job {
            label: label.into(),
            run: JobFn::Retryable(std::sync::Arc::new(run)),
        }
    }

    /// The shared body, if this job is retryable.
    pub(crate) fn factory(&self) -> Option<JobFactory<T>> {
        match &self.run {
            JobFn::Once(_) => None,
            JobFn::Retryable(f) => Some(std::sync::Arc::clone(f)),
        }
    }

    /// Rebuilds a queueable job from a previously captured factory.
    pub(crate) fn from_factory(label: String, factory: JobFactory<T>) -> Self {
        Job {
            label,
            run: JobFn::Retryable(factory),
        }
    }

    /// Executes the job on the calling thread.
    pub(crate) fn execute(self) -> T {
        match self.run {
            JobFn::Once(f) => f(),
            JobFn::Retryable(f) => f(),
        }
    }
}

impl<T> std::fmt::Debug for Job<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("label", &self.label).finish()
    }
}

/// Wall-clock outcome classification for DNF reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnfReason {
    /// The job panicked; the message is preserved separately.
    Panicked,
    /// The job exceeded the driver's per-job deadline.
    TimedOut,
}

/// Per-job timing record emitted alongside results.
#[derive(Debug, Clone)]
pub struct JobTiming {
    /// The job's label.
    pub label: String,
    /// Wall-clock time from claim to completion (or to the deadline).
    pub elapsed: Duration,
}
