//! Criterion microbenchmarks of the sim→detect pipeline's drain hot
//! path: what the bounded producer/consumer stage itself costs, and
//! what a full sharded run pays versus the serial detector.
//!
//! ```text
//! cargo bench -p bench --bench pipeline_drain
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::thread;

use bench::{gpu_config, run_iguard_sharded_with, run_iguard_with, DEFAULT_SEED};
use iguard::{IguardConfig, ShardConfig};
use nvbit_sim::pipeline;
use workloads::Size;

/// Uncontended send+recv round trips on one thread: the pure queue
/// overhead a shard batch pays with no blocking involved.
fn bench_uncontended_queue(c: &mut Criterion) {
    c.bench_function("pipeline_send_recv_1k_uncontended", |b| {
        b.iter(|| {
            let (tx, rx) = pipeline::bounded::<u32>(1024);
            for i in 0..1024u32 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut acc = 0u64;
            while let Some(v) = rx.recv() {
                acc += u64::from(v);
            }
            black_box(acc)
        });
    });
}

/// Cross-thread drain through a small queue: producer and consumer on
/// separate threads with real backpressure — the threaded shard shape.
fn bench_threaded_drain(c: &mut Criterion) {
    c.bench_function("pipeline_drain_4k_cross_thread_cap64", |b| {
        b.iter(|| {
            let (tx, rx) = pipeline::bounded::<u64>(64);
            let producer = thread::spawn(move || {
                for i in 0..4096u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut acc = 0u64;
            while let Some(v) = rx.recv() {
                acc += v;
            }
            producer.join().unwrap();
            black_box(acc)
        });
    });
}

/// End-to-end detection of one racey workload, serial vs sharded: the
/// number `BENCH_PR7.json`'s shard sweep is made of, as a tracked
/// microbenchmark.
fn bench_detection_modes(c: &mut Criterion) {
    let w = workloads::by_name("reduction").expect("reduction exists");
    let mut g = c.benchmark_group("reduction_detect");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            black_box(run_iguard_with(
                &w,
                Size::Test,
                gpu_config(DEFAULT_SEED),
                IguardConfig::default(),
            ))
        });
    });
    g.bench_function("sharded4_inline", |b| {
        b.iter(|| {
            black_box(run_iguard_sharded_with(
                &w,
                Size::Test,
                gpu_config(DEFAULT_SEED),
                IguardConfig::default(),
                ShardConfig::inline(4),
            ))
        });
    });
    g.bench_function("sharded4_threaded", |b| {
        b.iter(|| {
            black_box(run_iguard_sharded_with(
                &w,
                Size::Test,
                gpu_config(DEFAULT_SEED),
                IguardConfig::default(),
                ShardConfig::threaded(4),
            ))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_uncontended_queue,
    bench_threaded_drain,
    bench_detection_modes
);
criterion_main!(benches);
