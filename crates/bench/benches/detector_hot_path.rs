//! Criterion microbenchmarks of the detector's hot path and the simulator
//! substrate: what the *reproduction itself* costs to run, as opposed to
//! the simulated-cycle figures the `fig*`/`table*` binaries report.
//!
//! ```text
//! cargo bench -p bench
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gpu_sim::prelude::*;
use iguard::bitfield::{AccessorInfo, Flags, MetadataEntry};
use iguard::checks::{detailed, preliminary, AccessType, CurrAccess, MdView};
use iguard::locks::LockTable;
use iguard::{Iguard, IguardConfig};
use nvbit_sim::Instrumented;

/// A small device configuration so wall-clock measurements reflect the
/// simulation and detection work, not zeroing the default 16 MiB backing
/// store every iteration.
fn small_device() -> GpuConfig {
    GpuConfig {
        mem_words: 1 << 14,
        ..GpuConfig::default()
    }
}

fn bench_bitfield(c: &mut Criterion) {
    let entry = MetadataEntry {
        tag: 0x2A5,
        flags: Flags {
            valid: true,
            modified: true,
            ..Flags::default()
        },
        accessor: AccessorInfo {
            warp_id: 77,
            lane: 13,
            ..AccessorInfo::default()
        },
        writer: AccessorInfo {
            warp_id: 3,
            lane: 1,
            ..AccessorInfo::default()
        },
        locks: 0xBEEF,
    };
    c.bench_function("metadata_pack_unpack", |b| {
        b.iter(|| {
            let (a, w) = black_box(entry).pack();
            black_box(MetadataEntry::unpack(a, w))
        });
    });
}

fn bench_checks(c: &mut Criterion) {
    let mut flags = Flags {
        valid: true,
        modified: true,
        ..Flags::default()
    };
    flags.blk_shared = true;
    let writer = AccessorInfo {
        warp_id: 0,
        lane: 3,
        ..AccessorInfo::default()
    };
    let entry = MetadataEntry {
        tag: 0,
        flags,
        accessor: writer,
        writer,
        locks: 0,
    };
    let md = MdView {
        info: writer,
        live_dev_fence: 0,
        live_blk_fence: 0,
    };
    let curr = CurrAccess {
        kind: AccessType::Store,
        warp_id: 1,
        lane: 3,
        block_id: 0,
        active_mask: 1 << 3,
        snap: AccessorInfo {
            warp_id: 1,
            lane: 3,
            ..AccessorInfo::default()
        },
        locks: 0,
    };
    c.bench_function("race_checks_p_and_r", |b| {
        b.iter(|| {
            let p = preliminary(black_box(&entry), black_box(&md), black_box(&curr), 4);
            let r = detailed(black_box(&entry), black_box(&md), black_box(&curr), 4);
            black_box((p, r))
        });
    });
}

fn bench_lock_table(c: &mut Criterion) {
    c.bench_function("lock_table_acquire_release", |b| {
        b.iter(|| {
            let mut t = LockTable::default();
            t.on_cas(black_box(0x1234), Scope::Device);
            t.on_fence(Scope::Device);
            let s = t.summary();
            t.on_exch(0x1234, Scope::Device);
            black_box(s)
        });
    });
}

/// A kernel with a dense mix of loads/stores/atomics for throughput tests.
fn stream_kernel() -> Kernel {
    let mut b = KernelBuilder::new("bench_stream");
    let base = b.param(0);
    let g = b.special(Special::GlobalTid);
    let off = b.mul(g, 4u32);
    let a = b.add(base, off);
    for _ in 0..8 {
        let v = b.ld(a, 0);
        let v2 = b.add(v, 1u32);
        b.st(a, 0, v2);
    }
    let one = b.imm(1);
    let _ = b.atomic_add(Scope::Device, base, 0, one);
    b.build()
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let k = stream_kernel();
    c.bench_function("sim_native_4x64", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(small_device());
            let buf = gpu.alloc(512).unwrap();
            gpu.launch(black_box(&k), 4, 64, &[buf], &mut NullHook)
                .unwrap()
        });
    });
}

fn bench_detector_end_to_end(c: &mut Criterion) {
    let k = stream_kernel();
    c.bench_function("sim_iguard_4x64", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(small_device());
            let buf = gpu.alloc(512).unwrap();
            let mut tool = Instrumented::new(Iguard::new(IguardConfig::default()));
            gpu.launch(black_box(&k), 4, 64, &[buf], &mut tool).unwrap()
        });
    });
}

fn bench_barracuda_end_to_end(c: &mut Criterion) {
    let k = stream_kernel();
    c.bench_function("sim_barracuda_4x64", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(small_device());
            let buf = gpu.alloc(512).unwrap();
            let mut tool = Instrumented::new(barracuda::Barracuda::new(
                barracuda::BarracudaConfig::default(),
            ));
            gpu.launch(black_box(&k), 4, 64, &[buf], &mut tool).unwrap();
            let clock = gpu.clock_mut();
            black_box(tool.tool_mut().finish(clock).len())
        });
    });
}

/// Every thread of every warp hammers the same word: the worst case for
/// the flat contention table (one hot slot, every access contended).
fn hot_word_kernel(rounds: u32) -> Kernel {
    let mut b = KernelBuilder::new("bench_hot_word");
    let base = b.param(0);
    let tid = b.special(Special::Tid);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, rounds);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    b.st(base, 0, tid);
    let _ = b.ld(base, 0);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
    b.build()
}

/// The flat slot/tag path in isolation: strided load/store round-trips
/// through `MetadataTable` (mask/shift slot indexing, epoch
/// invalidation), including indices past the table so tags alias.
fn bench_metadata_table_slots(c: &mut Criterion) {
    use iguard::metadata::{MetadataTable, TableConfig};
    let uvm = IguardConfig::default().uvm;
    let mut table = MetadataTable::new(TableConfig {
        uvm,
        virtual_bytes: 1 << 26,
        device_budget_bytes: 1 << 26,
        ..TableConfig::covering(1 << 12)
    })
    .unwrap();
    let entry = MetadataEntry {
        tag: 0,
        flags: Flags {
            valid: true,
            ..Flags::default()
        },
        accessor: AccessorInfo {
            warp_id: 9,
            lane: 4,
            ..AccessorInfo::default()
        },
        writer: AccessorInfo::default(),
        locks: 0,
    };
    c.bench_function("metadata_table_strided_load_store", |b| {
        b.iter(|| {
            table.begin_epoch();
            let mut acc = 0u64;
            // Stride past the 2^12-entry table so half the loads alias
            // into occupied slots with a different tag.
            for i in (0..4096u32).map(|i| i * 3) {
                let m = table.load(black_box(i));
                acc += u64::from(m.entry.flags.valid);
                table.store(i, entry);
            }
            black_box(acc)
        });
    });
}

/// End-to-end detection with every warp contending on one word: the flat
/// contention table (slot-indexed arrival windows + backoff) is the hot
/// structure here.
fn bench_flat_contention_path(c: &mut Criterion) {
    let k = hot_word_kernel(16);
    c.bench_function("sim_iguard_hot_word_4x64", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(small_device());
            let buf = gpu.alloc(4).unwrap();
            let mut tool = Instrumented::new(Iguard::new(IguardConfig::default()));
            gpu.launch(black_box(&k), 4, 64, &[buf], &mut tool).unwrap()
        });
    });
}

/// Same racy kernel with an 8-deep accessor history (§6.7 ablation): the
/// flat history ring is written on every store and walked on every check
/// that the depth-1 path cannot decide.
fn bench_flat_history_path(c: &mut Criterion) {
    let k = hot_word_kernel(16);
    c.bench_function("sim_iguard_history8_hot_word_4x64", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(small_device());
            let buf = gpu.alloc(4).unwrap();
            let mut tool = Instrumented::new(Iguard::new(IguardConfig::with_history(8)));
            gpu.launch(black_box(&k), 4, 64, &[buf], &mut tool).unwrap()
        });
    });
}

fn bench_workloads_under_detectors(c: &mut Criterion) {
    use workloads::Size;
    let mut group = c.benchmark_group("workload_simulation");
    group.sample_size(10);
    for name in ["b_reduce", "graph-color", "hotspot"] {
        let w = workloads::by_name(name).expect("workload exists");
        group.bench_function(format!("{name}/native"), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(small_device());
                let launches = w.build(&mut gpu, Size::Test);
                for l in &launches {
                    gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                        .unwrap();
                }
                black_box(gpu.clock().total_time())
            });
        });
        group.bench_function(format!("{name}/iguard"), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(small_device());
                let launches = w.build(&mut gpu, Size::Test);
                let mut tool = Instrumented::new(Iguard::default());
                for l in &launches {
                    gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut tool)
                        .unwrap();
                }
                black_box(tool.tool().unique_races())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bitfield,
    bench_checks,
    bench_lock_table,
    bench_simulator_throughput,
    bench_detector_end_to_end,
    bench_barracuda_end_to_end,
    bench_metadata_table_slots,
    bench_flat_contention_path,
    bench_flat_history_path,
    bench_workloads_under_detectors
);
criterion_main!(benches);
