//! Gunrock workloads (§7.1: 7700+ LOC graph framework; iGUARD found 7
//! races, 3 acknowledged). We reproduce the three applications of Table 4:
//! `louvain` (3 ITS races), `pr_nibble` (1 BR), `sm` (1 BR).
//!
//! Gunrock is a multi-file library: Barracuda cannot embed its PTX (§7.1).

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::{addr, busy_work, seed_intra_block, seed_its, work_iters};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

fn dims(size: Size) -> (u32, u32) {
    match size {
        Size::Test => (4, 64),
        Size::Bench => (16, 128),
    }
}

/// The three Gunrock applications of Table 4.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "louvain",
            suite: Suite::Gunrock,
            build: louvain,
            multi_file: true,
            contention_heavy: false,
            paper_races: 3,
            tags: &[RaceTag::ITS],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "pr_nibble",
            suite: Suite::Gunrock,
            build: pr_nibble,
            multi_file: true,
            contention_heavy: false,
            paper_races: 1,
            tags: &[RaceTag::BR],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "sm",
            suite: Suite::Gunrock,
            build: subgraph_matching,
            multi_file: true,
            contention_heavy: false,
            paper_races: 1,
            tags: &[RaceTag::BR],
            barracuda: BarracudaExpectation::Unsupported,
        },
    ]
}

/// Shared clean core: frontier advance — each thread relaxes its vertex's
/// neighbour with a device-scope atomicMin (safe).
fn advance_core(b: &mut KernelBuilder, labels: gpu_sim::ir::Reg) {
    let g = b.special(Special::GlobalTid);
    let gd = b.special(Special::GridDim);
    let bd = b.special(Special::BlockDim);
    let n = b.mul(gd, bd);
    let g1 = b.add(g, 1u32);
    let nb = b.rem(g1, n);
    let my_a = addr(b, labels, g);
    let mine = b.ld(my_a, 0);
    let na = addr(b, labels, nb);
    let _ = b.atom(AtomOp::Min, Scope::Device, na, 0, mine);
}

/// Louvain community detection: warp-cooperative modularity accumulation
/// relying on lockstep that ITS no longer guarantees (3 ITS sites).
fn louvain(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let warps = grid * block.div_ceil(32);
    let labels = gpu.alloc(n).expect("alloc labels");
    let aux = gpu.alloc((3 * warps) as usize + 8).expect("alloc aux");
    for i in 0..n {
        gpu.write(labels, i, i as u32);
    }
    let mut b = KernelBuilder::new("louvain_kernel");
    let plabels = b.param(0);
    let paux = b.param(1);
    busy_work(&mut b, work_iters(size));
    advance_core(&mut b, plabels);
    // Three warp-cooperative accumulation stages, each missing the
    // __syncwarp that ITS requires (the acknowledged Gunrock bugs).
    seed_its(&mut b, paux, 0, "louvain modularity gain");
    seed_its(&mut b, paux, warps, "louvain community weight");
    seed_its(&mut b, paux, 2 * warps, "louvain vertex move");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![labels, aux],
    }]
}

/// pr_nibble (local PageRank): per-block residual staging missing a
/// barrier (1 BR site).
fn pr_nibble(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let rank = gpu.alloc(n).expect("alloc rank");
    let aux = gpu.alloc(grid as usize + 40).expect("alloc aux");
    for i in 0..n {
        gpu.write(rank, i, 1000);
    }
    let mut b = KernelBuilder::new("prnibble_kernel");
    let prank = b.param(0);
    let paux = b.param(1);
    busy_work(&mut b, work_iters(size));
    // Clean push: rank[g] = rank[g]/2 (own cell).
    let g = b.special(Special::GlobalTid);
    let ra = addr(&mut b, prank, g);
    let v = b.ld(ra, 0);
    let half = b.shr(v, 1u32);
    b.st(ra, 0, half);
    // The bug: block-shared residual written by two warps, no barrier.
    seed_intra_block(&mut b, paux, 8, "pr_nibble residual staging");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![rank, aux],
    }]
}

/// sm (subgraph matching): per-block candidate-count staging missing a
/// barrier (1 BR site).
fn subgraph_matching(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let cand = gpu.alloc(n).expect("alloc candidates");
    let aux = gpu.alloc(grid as usize + 40).expect("alloc aux");
    let mut b = KernelBuilder::new("sm_kernel");
    let pcand = b.param(0);
    let paux = b.param(1);
    busy_work(&mut b, work_iters(size));
    // Clean filter: cand[g] = (hash(g) & 3) == 0.
    let g = b.special(Special::GlobalTid);
    let h = b.mul(g, 0x85EBCA6Bu32);
    let bits = b.and(h, 3u32);
    let isz = b.eq(bits, 0u32);
    let ca = addr(&mut b, pcand, g);
    b.st(ca, 0, isz);
    // The bug: candidate count staged per block without a barrier.
    seed_intra_block(&mut b, paux, 8, "sm candidate count");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![cand, aux],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::machine::GpuConfig;

    #[test]
    fn gunrock_kernels_run_natively() {
        for w in workloads() {
            let mut gpu = Gpu::new(GpuConfig {
                seed: 3,
                ..GpuConfig::default()
            });
            for l in &w.build(&mut gpu, Size::Test) {
                gpu.launch(
                    &l.kernel,
                    l.grid,
                    l.block,
                    &l.params,
                    &mut gpu_sim::hook::NullHook,
                )
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            }
        }
    }

    #[test]
    fn gunrock_is_multi_file() {
        assert!(workloads().iter().all(|w| w.multi_file));
    }
}
