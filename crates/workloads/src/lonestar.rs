//! LonestarGPU workloads (§7.1: 6400+ LOC irregular-algorithm suite;
//! iGUARD found 5 races, all acknowledged): `color` (2 BR), `mis`
//! (1 BR + 1 DR), `cc` (2 BR + 1 DR).
//!
//! Multi-file library: Barracuda cannot embed its PTX. `mis` and `cc` are
//! members of the Figure 12 contention-heavy subset: every thread hammers
//! a shared worklist cursor with (safe) device-scope atomics.

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Reg, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::{addr, busy_work, seed_inter_block, seed_intra_block, work_iters};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

fn dims(size: Size) -> (u32, u32) {
    match size {
        Size::Test => (4, 64),
        Size::Bench => (16, 128),
    }
}

/// The three LonestarGPU applications of Table 4.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "color",
            suite: Suite::Lonestar,
            build: color,
            multi_file: true,
            contention_heavy: false,
            paper_races: 2,
            tags: &[RaceTag::BR],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "mis",
            suite: Suite::Lonestar,
            build: mis,
            multi_file: true,
            contention_heavy: true,
            paper_races: 2,
            tags: &[RaceTag::BR, RaceTag::DR],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "cc",
            suite: Suite::Lonestar,
            build: cc,
            multi_file: true,
            contention_heavy: true,
            paper_races: 3,
            tags: &[RaceTag::BR, RaceTag::DR],
            barracuda: BarracudaExpectation::Unsupported,
        },
    ]
}

/// Clean worklist-cursor hammer: every thread pulls work with a
/// device-scope `atomicAdd` on one shared cursor — safe (P6) but heavily
/// contended, which is why `mis`/`cc` appear in Figure 12.
fn worklist_hammer(b: &mut KernelBuilder, cursor: Reg, rounds: u32) {
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, rounds);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let one = b.imm(1);
    b.loc("worklist: atomicAdd(cursor, 1)");
    let _ = b.atom(AtomOp::Add, Scope::Device, cursor, 0, one);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
}

/// Graph coloring (Lonestar variant): two per-block conflict-staging
/// phases missing barriers (2 BR sites).
fn color(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let colors = gpu.alloc(n).expect("alloc colors");
    let aux = gpu.alloc(grid as usize + 72).expect("alloc aux");
    let mut b = KernelBuilder::new("ls_color_kernel");
    let pcolors = b.param(0);
    let paux = b.param(1);
    busy_work(&mut b, work_iters(size));
    // Clean: tentative color = hash of vertex id.
    let g = b.special(Special::GlobalTid);
    let h = b.mul(g, 0xC2B2AE35u32);
    let c = b.and(h, 15u32);
    let ca = addr(&mut b, pcolors, g);
    b.st(ca, 0, c);
    // The two acknowledged bugs: conflict flags staged without barriers.
    seed_intra_block(&mut b, paux, 8, "color conflict flags");
    seed_intra_block(&mut b, paux, 48, "color retry flags");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![colors, aux],
    }]
}

/// Maximal independent set: contended worklist (clean) plus an
/// unbarriered per-block priority stage (BR) and an unfenced global
/// convergence flag (DR).
fn mis(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let state = gpu.alloc(n).expect("alloc state");
    let cursor = gpu.alloc(1).expect("alloc cursor");
    let aux = gpu.alloc(grid as usize + 72).expect("alloc aux");
    let mut b = KernelBuilder::new("ls_mis_kernel");
    let pstate = b.param(0);
    let pcursor = b.param(1);
    let paux = b.param(2);
    busy_work(&mut b, work_iters(size));
    let g = b.special(Special::GlobalTid);
    let h = b.mul(g, 0x27D4EB2Fu32);
    let sa = addr(&mut b, pstate, g);
    b.st(sa, 0, h);
    worklist_hammer(&mut b, pcursor, 6);
    seed_intra_block(&mut b, paux, 8, "mis priority stage");
    seed_inter_block(&mut b, paux, 4, "mis converged flag");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![state, cursor, aux],
    }]
}

/// Connected components: contended worklist (clean) plus two unbarriered
/// per-block hook stages (BR ×2) and an unfenced global level value (DR).
fn cc(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let comp = gpu.alloc(n).expect("alloc comp");
    let cursor = gpu.alloc(1).expect("alloc cursor");
    let aux = gpu.alloc(grid as usize + 72).expect("alloc aux");
    for i in 0..n {
        gpu.write(comp, i, i as u32);
    }
    let mut b = KernelBuilder::new("ls_cc_kernel");
    let pcomp = b.param(0);
    let pcursor = b.param(1);
    let paux = b.param(2);
    busy_work(&mut b, work_iters(size));
    // Clean hooking via device atomicMin.
    let g = b.special(Special::GlobalTid);
    let gd = b.special(Special::GridDim);
    let bd = b.special(Special::BlockDim);
    let nt = b.mul(gd, bd);
    let g1 = b.add(g, 1u32);
    let nb = b.rem(g1, nt);
    let my_a = addr(&mut b, pcomp, g);
    let mine = b.ld(my_a, 0);
    let na = addr(&mut b, pcomp, nb);
    let _ = b.atom(AtomOp::Min, Scope::Device, na, 0, mine);
    worklist_hammer(&mut b, pcursor, 6);
    seed_intra_block(&mut b, paux, 8, "cc hook stage A");
    seed_intra_block(&mut b, paux, 48, "cc hook stage B");
    seed_inter_block(&mut b, paux, 4, "cc level value");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![comp, cursor, aux],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::machine::GpuConfig;

    #[test]
    fn lonestar_kernels_run_natively() {
        for w in workloads() {
            let mut gpu = Gpu::new(GpuConfig {
                seed: 3,
                ..GpuConfig::default()
            });
            for l in &w.build(&mut gpu, Size::Test) {
                gpu.launch(
                    &l.kernel,
                    l.grid,
                    l.block,
                    &l.params,
                    &mut gpu_sim::hook::NullHook,
                )
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            }
        }
    }

    #[test]
    fn mis_and_cc_are_contention_heavy() {
        let names: Vec<&str> = workloads()
            .iter()
            .filter(|w| w.contention_heavy)
            .map(|w| w.name)
            .collect();
        assert_eq!(names, vec!["mis", "cc"]);
    }
}
