//! cuML (RAPIDS machine learning): `cuML_gsync`, the grid-sync
//! implementation in which iGUARD found the same leader-only-fence DR race
//! as in NVIDIA's CG library (§7.1, acknowledged by the developers).
//! Multi-file library; Figure 12 contention-heavy member (all blocks spin
//! on the arrival counter).

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::Special;
use gpu_sim::machine::Gpu;

use crate::util::{addr, grid_sync};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

/// The cuML workload of Table 4.
pub fn workloads() -> Vec<Workload> {
    vec![Workload {
        name: "cuML_gsync",
        suite: Suite::CuMl,
        build: cuml_gsync,
        multi_file: true,
        contention_heavy: true,
        paper_races: 1,
        tags: &[RaceTag::DR],
        barracuda: BarracudaExpectation::Unsupported,
    }]
}

/// Two-phase centroid update: every thread writes a partial, the cuML
/// grid sync runs (leader-only fence — the acknowledged bug), then each
/// block's threads read the partials of the next block (1 DR site).
fn cuml_gsync(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = match size {
        Size::Test => (4, 64),
        Size::Bench => (24, 128),
    };
    let n = grid * block;
    let partials = gpu.alloc(n as usize).expect("alloc partials");
    let sync = gpu.alloc(1).expect("alloc sync");
    let out = gpu.alloc(n as usize).expect("alloc out");
    let mut b = KernelBuilder::new("cuml_gsync_kernel");
    let pp = b.param(0);
    let psync = b.param(1);
    let pout = b.param(2);
    let g = b.special(Special::GlobalTid);
    let v = b.mul(g, 7u32);
    let pa = addr(&mut b, pp, g);
    b.loc("phase 1: partial centroid sum");
    b.st(pa, 0, v);
    grid_sync(&mut b, psync, grid, false);
    let bdim = b.special(Special::BlockDim);
    let shifted = b.add(g, bdim);
    let total = b.imm(n);
    let idx = b.rem(shifted, total);
    let ra = addr(&mut b, pp, idx);
    b.loc("phase 2: read next block's partial  // unfenced");
    let got = b.ld(ra, 0);
    let oa = addr(&mut b, pout, g);
    b.st(oa, 0, got);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![partials, sync, out],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::machine::GpuConfig;

    #[test]
    fn cuml_gsync_runs_natively() {
        let w = &workloads()[0];
        let mut gpu = Gpu::new(GpuConfig {
            seed: 3,
            ..GpuConfig::default()
        });
        for l in &w.build(&mut gpu, Size::Test) {
            gpu.launch(
                &l.kernel,
                l.grid,
                l.block,
                &l.params,
                &mut gpu_sim::hook::NullHook,
            )
            .unwrap();
        }
    }
}
