//! # workloads: the paper's evaluation suite, reproduced
//!
//! 43 workloads from the 10 suites of Tables 4 and 5 (§7), each rebuilt as
//! one or more IR kernels that reproduce the original application's
//! *sharing and synchronization pattern* — including, for the racey half,
//! the precise bug class the paper reports for it (insufficient atomic
//! scope, missing `__syncwarp` under ITS, missing barriers or fences,
//! improper locking, and broken cooperative-group synchronization).
//!
//! Race detection observes sharing patterns and synchronization operations,
//! not application semantics, so each workload is a faithful *pattern*
//! reproduction at reduced scale rather than a port of thousands of lines
//! of CUDA; DESIGN.md documents the substitution.
//!
//! Every [`Workload`] carries its paper-reported expectations (race count,
//! race types, Barracuda behaviour) so the test suite and the Table 4/5
//! harness can assert against them.

#![forbid(unsafe_code)]

pub mod cg;
pub mod cub;
pub mod cuml;
pub mod gunrock;
pub mod kilotm;
pub mod lonestar;
pub mod rodinia;
pub mod scor;
pub mod shoc;
pub mod slabhash;
pub mod util;

use gpu_sim::kernel::Kernel;
use gpu_sim::machine::Gpu;

/// Scale at which to build a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Small grids for the test suite (fast in debug builds).
    Test,
    /// Larger grids for the benchmark harness.
    Bench,
}

/// One kernel launch of a built workload.
#[derive(Debug)]
pub struct Launch {
    /// The kernel object ("binary").
    pub kernel: Kernel,
    /// Blocks in the grid.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Launch parameters (typically buffer base addresses).
    pub params: Vec<u32>,
}

/// Builder signature: allocate buffers on the device, return launches.
pub type BuildFn = fn(&mut Gpu, Size) -> Vec<Launch>;

/// Race classes as Table 4 reports them. `CG` races manifest as `DR` in
/// the detector (§6.4: CG has no dedicated checks; its races surface
/// through the constituent fence/atomic/barrier checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceTag {
    /// Improper locking.
    IL,
    /// Insufficient atomic scope.
    AS,
    /// ITS-induced (missing `__syncwarp`).
    ITS,
    /// Intra-block race.
    BR,
    /// Inter-block (device) race.
    DR,
    /// Cooperative-groups race (reported as DR).
    CG,
}

impl RaceTag {
    /// How the detector reports this tag (CG surfaces as DR).
    #[must_use]
    pub fn detector_code(&self) -> &'static str {
        match self {
            RaceTag::IL => "IL",
            RaceTag::AS => "AS",
            RaceTag::ITS => "ITS",
            RaceTag::BR => "BR",
            RaceTag::DR | RaceTag::CG => "DR",
        }
    }
}

/// Paper-reported Barracuda behaviour on a workload (Table 4 / §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarracudaExpectation {
    /// Refused before execution (scoped atomics, syncwarp, or multi-file
    /// PTX).
    Unsupported,
    /// Ran and reported this many races.
    Races(usize),
    /// Did not terminate; reported this many races before the cutoff.
    Timeout(usize),
}

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Suite {
    ScoR,
    Cg,
    NvlibCg,
    Gunrock,
    Lonestar,
    SlabHash,
    CuMl,
    KiloTm,
    Shoc,
    Cub,
    Rodinia,
}

impl Suite {
    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Suite::ScoR => "ScoR",
            Suite::Cg => "CG",
            Suite::NvlibCg => "NVlib_CG",
            Suite::Gunrock => "Gunrock",
            Suite::Lonestar => "Lonestar",
            Suite::SlabHash => "SlabHash",
            Suite::CuMl => "cuML",
            Suite::KiloTm => "Kilo-TM",
            Suite::Shoc => "SHoC",
            Suite::Cub => "CUB",
            Suite::Rodinia => "Rodinia",
        }
    }
}

/// One workload with its paper-reported expectations.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Application name as in Table 4/5.
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Builder.
    pub build: BuildFn,
    /// Packaged as a multi-file library (Barracuda's PTX gate).
    pub multi_file: bool,
    /// Member of the Figure 12 contention-heavy subset.
    pub contention_heavy: bool,
    /// Races the paper reports for iGUARD (0 ⇒ Table 5 / race-free).
    pub paper_races: usize,
    /// Race classes the paper lists.
    pub tags: &'static [RaceTag],
    /// Barracuda's paper-reported behaviour.
    pub barracuda: BarracudaExpectation,
}

impl Workload {
    /// Whether the workload is expected to be race-free (Table 5).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.paper_races == 0
    }

    /// Builds the workload's launches on `gpu`.
    #[must_use]
    pub fn build(&self, gpu: &mut Gpu, size: Size) -> Vec<Launch> {
        (self.build)(gpu, size)
    }

    /// Borrowed kernels of a built workload (for `barracuda::supports`).
    #[must_use]
    pub fn kernels(launches: &[Launch]) -> Vec<&Kernel> {
        launches.iter().map(|l| &l.kernel).collect()
    }
}

/// Every workload: Table 4's racey half followed by Table 5's clean half.
#[must_use]
pub fn all() -> Vec<Workload> {
    let mut v = racey();
    v.extend(clean());
    v
}

/// The racey workloads of Table 4, in table order.
#[must_use]
pub fn racey() -> Vec<Workload> {
    let mut v = Vec::new();
    v.extend(scor::workloads());
    v.extend(cg::racey_workloads());
    v.extend(gunrock::workloads());
    v.extend(lonestar::workloads());
    v.extend(slabhash::workloads());
    v.extend(cuml::workloads());
    v.extend(kilotm::workloads());
    v.extend(shoc::racey_workloads());
    v.extend(cub::racey_workloads());
    v
}

/// The race-free workloads of Table 5.
#[must_use]
pub fn clean() -> Vec<Workload> {
    let mut v = Vec::new();
    v.extend(cub::clean_workloads());
    v.extend(rodinia::workloads());
    v.extend(cg::clean_workloads());
    v
}

/// Looks a workload up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_and_table5_population() {
        let racey = racey();
        let clean = clean();
        assert_eq!(racey.len(), 22, "Table 4 rows");
        assert_eq!(clean.len(), 21, "Table 5 apps");
        assert!(racey.iter().all(|w| !w.is_clean()));
        assert!(clean.iter().all(Workload::is_clean));
    }

    #[test]
    fn paper_total_is_57_races() {
        let total: usize = racey().iter().map(|w| w.paper_races).sum();
        assert_eq!(total, 57, "the paper's headline count");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|w| w.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn figure12_subset_has_eight_members() {
        let n = all().iter().filter(|w| w.contention_heavy).count();
        assert_eq!(n, 8, "Figure 12 shows eight contention-heavy workloads");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("graph-color").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
