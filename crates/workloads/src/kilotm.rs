//! Kilo-TM workloads (Fung et al., GPU hardware transactional memory —
//! its software test applications): `interac` (4 races; Barracuda did not
//! terminate and missed one) and `hashtable` (2 races; Barracuda found
//! both). Single-file binaries: Barracuda *can* run these (§7.1).

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::{addr, busy_work, seed_inter_block, seed_intra_block, work_iters};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

/// The two Kilo-TM applications of Table 4.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "interac",
            suite: Suite::KiloTm,
            build: interac,
            multi_file: false,
            contention_heavy: false,
            paper_races: 4,
            tags: &[RaceTag::BR, RaceTag::DR],
            barracuda: BarracudaExpectation::Timeout(3),
        },
        Workload {
            name: "hashtable",
            suite: Suite::KiloTm,
            build: hashtable,
            multi_file: false,
            contention_heavy: false,
            paper_races: 2,
            tags: &[RaceTag::DR],
            barracuda: BarracudaExpectation::Races(2),
        },
    ]
}

/// Bank-interaction transactions: a heavy validate/retry loop floods the
/// event channel (why Barracuda never finishes), with 2 BR + 2 DR seeded
/// bugs — the last one placed after the flood, which is the race Barracuda
/// misses when it times out.
fn interac(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    // The flood must be heavy enough that a serialized CPU consumer cannot
    // keep up (Barracuda's non-termination on interac, §7.1).
    let (grid, block, iters) = match size {
        Size::Test => (4u32, 64u32, 1500u32),
        Size::Bench => (16, 128, 800),
    };
    let n = (grid * block) as usize;
    let accounts = gpu.alloc(n).expect("alloc accounts");
    let version = gpu.alloc(1).expect("alloc version");
    let aux = gpu.alloc(grid as usize + 72).expect("alloc aux");
    for i in 0..n {
        gpu.write(accounts, i, 100);
    }
    let mut b = KernelBuilder::new("interac_kernel");
    let pacc = b.param(0);
    let pver = b.param(1);
    let paux = b.param(2);
    // Early bugs: two unbarriered commit-staging words, one unfenced
    // global transaction counter.
    seed_intra_block(&mut b, paux, 8, "interac commit stage A");
    seed_intra_block(&mut b, paux, 48, "interac commit stage B");
    seed_inter_block(&mut b, paux, 4, "interac txn counter");
    // The transactional validate/retry flood: each iteration reads the
    // account, bumps the global version (device atomic, safe), rewrites
    // the account (own cell, safe).
    let g = b.special(Special::GlobalTid);
    let aa = addr(&mut b, pacc, g);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, iters);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let v = b.ld(aa, 0);
    let one = b.imm(1);
    b.loc("txn: atomicAdd(version, 1)");
    let _ = b.atom(AtomOp::Add, Scope::Device, pver, 0, one);
    let v1 = b.add(v, 1u32);
    b.st(aa, 0, v1);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
    // The late bug Barracuda's timeout hides: an unfenced commit flag
    // published after the flood.
    seed_inter_block(&mut b, paux, 5, "interac commit flag");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![accounts, version, aux],
    }]
}

/// Transactional hash table: device-scope CAS inserts (safe) plus two
/// unfenced cross-block metadata publications (2 DR sites).
fn hashtable(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = match size {
        Size::Test => (4, 64),
        Size::Bench => (16, 128),
    };
    let table = gpu.alloc(512).expect("alloc table");
    let aux = gpu.alloc(grid as usize + 8).expect("alloc aux");
    let mut b = KernelBuilder::new("kilotm_hashtable_kernel");
    let ptable = b.param(0);
    let paux = b.param(1);
    busy_work(&mut b, work_iters(size));
    // Linear probing: read the slot, try to claim it, advance on
    // collision — eight probes per insert (the real workload's hot loop).
    let g = b.special(Special::GlobalTid);
    let h = b.mul(g, 0x9E3779B9u32);
    let slot = b.rem(h, 512u32);
    let zero = b.imm(0);
    let key = b.add(g, 1u32);
    let probe = b.imm(0);
    let top = b.here();
    let done = b.ge(probe, 8u32);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let sa = addr(&mut b, ptable, slot);
    let cur = b.ld(sa, 0);
    let empty = b.eq(cur, 0u32);
    let advance = b.fwd_label();
    b.bra_ifnot(empty, advance);
    b.loc("insert: atomicCAS(table[slot], EMPTY, key)");
    let old = b.atomic_cas(Scope::Device, sa, 0, zero, key);
    let won = b.eq(old, 0u32);
    b.bra_if(won, exit_l);
    b.bind(advance);
    let s1 = b.add(slot, 1u32);
    let wrapped = b.rem(s1, 512u32);
    b.mov(slot, wrapped);
    b.assign_add(probe, probe, 1u32);
    b.bra(top);
    b.bind(exit_l);
    seed_inter_block(&mut b, paux, 4, "hashtable size word");
    seed_inter_block(&mut b, paux, 5, "hashtable resize flag");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![table, aux],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::machine::GpuConfig;

    #[test]
    fn kilotm_kernels_run_natively() {
        for w in workloads() {
            let mut gpu = Gpu::new(GpuConfig {
                seed: 3,
                ..GpuConfig::default()
            });
            for l in &w.build(&mut gpu, Size::Test) {
                gpu.launch(
                    &l.kernel,
                    l.grid,
                    l.block,
                    &l.params,
                    &mut gpu_sim::hook::NullHook,
                )
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            }
        }
    }

    #[test]
    fn kilotm_is_barracuda_runnable() {
        assert!(workloads().iter().all(|w| !w.multi_file));
    }
}
