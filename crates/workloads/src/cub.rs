//! CUB (CUDA UnBound) workloads: the racey `cub_gridbar` (grid-barrier
//! race, acknowledged by the developers) and the twelve race-free
//! block-level (`b_*`) and device-level (`d_*`) primitives of Table 5.
//!
//! All CUB workloads are single-file and free of scoped atomics and
//! `__syncwarp`, so Barracuda runs every one of them — they are the bulk
//! of Figure 11(b)'s overhead comparison.

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Reg, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::{addr, block_scan, grid_sync, tree_reduce_block};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

fn dims(size: Size) -> (u32, u32) {
    match size {
        Size::Test => (4, 64),
        Size::Bench => (16, 128),
    }
}

/// The racey CUB workload of Table 4.
pub fn racey_workloads() -> Vec<Workload> {
    vec![Workload {
        name: "cub_gridbar",
        suite: Suite::Cub,
        build: cub_gridbar,
        multi_file: false,
        contention_heavy: false,
        paper_races: 1,
        tags: &[RaceTag::DR],
        barracuda: BarracudaExpectation::Races(1),
    }]
}

/// The twelve race-free CUB workloads of Table 5.
pub fn clean_workloads() -> Vec<Workload> {
    fn entry(name: &'static str, build: crate::BuildFn) -> Workload {
        Workload {
            name,
            suite: Suite::Cub,
            build,
            multi_file: false,
            contention_heavy: false,
            paper_races: 0,
            tags: &[],
            barracuda: BarracudaExpectation::Races(0),
        }
    }
    vec![
        entry("b_reduce", b_reduce),
        entry("b_scan", b_scan),
        entry("b_radix_sort", b_radix_sort),
        entry("d_reduce", d_reduce),
        entry("d_scan", d_scan),
        entry("d_radix_sort", d_radix_sort),
        entry("d_sel_if", d_sel_if),
        entry("d_sel_flag", d_sel_flag),
        entry("d_sel_uniq", d_sel_uniq),
        entry("d_part_if", d_part_if),
        entry("d_part_flag", d_part_flag),
        entry("d_sort_find", d_sort_find),
    ]
}

/// cub_gridbar: CUB's experimental grid barrier with the leader-only-fence
/// bug (1 DR site at the post-barrier read).
fn cub_gridbar(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = grid * block;
    let data = gpu.alloc(n as usize).expect("alloc data");
    let sync = gpu.alloc(1).expect("alloc sync");
    let out = gpu.alloc(n as usize).expect("alloc out");
    let mut b = KernelBuilder::new("cub_gridbar_kernel");
    let pdata = b.param(0);
    let psync = b.param(1);
    let pout = b.param(2);
    let g = b.special(Special::GlobalTid);
    let da = addr(&mut b, pdata, g);
    b.loc("pre-barrier write");
    b.st(da, 0, g);
    grid_sync(&mut b, psync, grid, false);
    let bdim = b.special(Special::BlockDim);
    let shifted = b.add(g, bdim);
    let total = b.imm(n);
    let idx = b.rem(shifted, total);
    let ra = addr(&mut b, pdata, idx);
    b.loc("post-barrier read of another block's write");
    let v = b.ld(ra, 0);
    let oa = addr(&mut b, pout, g);
    b.st(oa, 0, v);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![data, sync, out],
    }]
}

// ---- block-level primitives ---------------------------------------------

/// b_reduce: per-block tree reduction with barriers.
fn b_reduce(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let data = gpu.alloc(n).expect("alloc data");
    let out = gpu.alloc(grid as usize).expect("alloc out");
    for i in 0..n {
        gpu.write(data, i, (i % 9) as u32);
    }
    let mut b = KernelBuilder::new("b_reduce_kernel");
    let pdata = b.param(0);
    let pout = b.param(1);
    tree_reduce_block(&mut b, pdata, pout, block);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![data, out],
    }]
}

/// b_scan: per-block inclusive prefix sum (Hillis–Steele, barriered).
fn b_scan(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let data = gpu.alloc(n).expect("alloc data");
    let tmp = gpu.alloc(n).expect("alloc tmp");
    for i in 0..n {
        gpu.write(data, i, 1);
    }
    let mut b = KernelBuilder::new("b_scan_kernel");
    let pdata = b.param(0);
    let ptmp = b.param(1);
    block_scan(&mut b, pdata, ptmp, block);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![data, tmp],
    }]
}

/// Emits a barriered per-block rank sort: each thread reads its key,
/// barriers, counts the keys in its block that sort before its own, and
/// scatters to the rank. Cross-thread reads are of host-initialized data
/// (read-only) and the scattered slots are unique: race-free.
pub(crate) fn rank_sort_for(b: &mut KernelBuilder, keys: Reg, out: Reg, block: u32) {
    rank_sort_body(b, keys, out, block);
}

fn rank_sort_body(b: &mut KernelBuilder, keys: Reg, out: Reg, block: u32) {
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let bdim = b.special(Special::BlockDim);
    let base = b.mul(bid, bdim);
    let my_idx = b.add(base, tid);
    let my_a = addr(b, keys, my_idx);
    let mine = b.ld(my_a, 0);
    b.syncthreads();
    // rank = #{j : key[j] < mine  or  (key[j] == mine and j < tid)}.
    // Each warp starts its sweep at its own offset (as real implementations
    // do) so warps do not all read the same word at the same time.
    let rank = b.imm(0);
    let j = b.imm(0);
    let warp = b.special(Special::WarpInBlock);
    let stagger = b.mul(warp, 32u32);
    let top = b.here();
    let done = b.ge(j, block);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let js = b.add(j, stagger);
    let jp = b.rem(js, block);
    let ja = b.add(base, jp);
    let jaddr = addr(b, keys, ja);
    let kj = b.ld(jaddr, 0);
    let lt = b.lt(kj, mine);
    let eq = b.eq(kj, mine);
    let jlt = b.lt(jp, tid);
    let tie = b.and(eq, jlt);
    let before = b.or(lt, tie);
    let r1 = b.add(rank, before);
    b.mov(rank, r1);
    b.assign_add(j, j, 1u32);
    b.bra(top);
    b.bind(exit_l);
    let dst_idx = b.add(base, rank);
    let dst = addr(b, out, dst_idx);
    b.st(dst, 0, mine);
}

/// b_radix_sort: per-block sort (rank-based; one digit pass per launch in
/// real CUB — collapsed to a full rank pass here).
fn b_radix_sort(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let keys = gpu.alloc(n).expect("alloc keys");
    let out = gpu.alloc(n).expect("alloc out");
    for i in 0..n {
        gpu.write(keys, i, ((i * 131) % 251) as u32);
    }
    let mut b = KernelBuilder::new("b_radix_sort_kernel");
    let pkeys = b.param(0);
    let pout = b.param(1);
    rank_sort_body(&mut b, pkeys, pout, block);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![keys, out],
    }]
}

// ---- device-level primitives ----------------------------------------------

/// d_reduce: block partials then a second single-block combine kernel.
/// This is the workload Figure 14 scales.
fn d_reduce(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let data = gpu.alloc(n).expect("alloc data");
    let partials = gpu
        .alloc(grid.next_power_of_two() as usize)
        .expect("alloc partials");
    let out = gpu.alloc(1).expect("alloc out");
    for i in 0..n {
        gpu.write(data, i, 1);
    }
    // Kernel 1: per-block tree reduction into partials.
    let mut k1 = KernelBuilder::new("d_reduce_pass1");
    let pdata = k1.param(0);
    let ppart = k1.param(1);
    tree_reduce_block(&mut k1, pdata, ppart, block);
    // Kernel 2: one block combines the partials.
    let mut k2 = KernelBuilder::new("d_reduce_pass2");
    let ppart2 = k2.param(0);
    let pout = k2.param(1);
    let tid = k2.special(Special::Tid);
    let is0 = k2.eq(tid, 0u32);
    let fin = k2.fwd_label();
    k2.bra_ifnot(is0, fin);
    let acc = k2.imm(0);
    let i = k2.imm(0);
    let top = k2.here();
    let done = k2.ge(i, grid);
    let exit_l = k2.fwd_label();
    k2.bra_if(done, exit_l);
    let ia = addr(&mut k2, ppart2, i);
    let v = k2.ld(ia, 0);
    let s = k2.add(acc, v);
    k2.mov(acc, s);
    k2.assign_add(i, i, 1u32);
    k2.bra(top);
    k2.bind(exit_l);
    k2.st(pout, 0, acc);
    k2.bind(fin);
    vec![
        Launch {
            kernel: k1.build(),
            grid,
            block,
            params: vec![data, partials],
        },
        Launch {
            kernel: k2.build(),
            grid: 1,
            block: 32,
            params: vec![partials, out],
        },
    ]
}

/// d_scan: block scans + block-totals scan + offset add (three kernels,
/// ordered by the implicit inter-kernel barrier).
fn d_scan(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let data = gpu.alloc(n).expect("alloc data");
    let tmp = gpu.alloc(n).expect("alloc tmp");
    let totals = gpu.alloc(grid as usize).expect("alloc totals");
    for i in 0..n {
        gpu.write(data, i, 1);
    }
    // Kernel 1: in-block scan; leader stores the block total.
    let mut k1 = KernelBuilder::new("d_scan_pass1");
    let pdata = k1.param(0);
    let ptmp = k1.param(1);
    let ptot = k1.param(2);
    block_scan(&mut k1, pdata, ptmp, block);
    let tid = k1.special(Special::Tid);
    let bid = k1.special(Special::BlockId);
    let bdim = k1.special(Special::BlockDim);
    let last = k1.sub(bdim, 1u32);
    let is_last = k1.eq(tid, last);
    let fin = k1.fwd_label();
    k1.bra_ifnot(is_last, fin);
    // log2(block) is even for 64/128? 64→6 rounds (even: result in data);
    // 128→7 rounds (odd: result in tmp). Read from the right buffer.
    let rounds = block.trailing_zeros();
    let src = if rounds % 2 == 0 { pdata } else { ptmp };
    let base = k1.mul(bid, bdim);
    let my_idx = k1.add(base, tid);
    let ma = addr(&mut k1, src, my_idx);
    let total = k1.ld(ma, 0);
    let ta = addr(&mut k1, ptot, bid);
    k1.st(ta, 0, total);
    k1.bind(fin);
    // Kernel 2: single warp scans the block totals serially (leader).
    let mut k2 = KernelBuilder::new("d_scan_pass2");
    let ptot2 = k2.param(0);
    let tid2 = k2.special(Special::Tid);
    let is0 = k2.eq(tid2, 0u32);
    let fin2 = k2.fwd_label();
    k2.bra_ifnot(is0, fin2);
    let acc = k2.imm(0);
    let i = k2.imm(0);
    let top = k2.here();
    let done = k2.ge(i, grid);
    let exit_l = k2.fwd_label();
    k2.bra_if(done, exit_l);
    let ia = addr(&mut k2, ptot2, i);
    let v = k2.ld(ia, 0);
    let s = k2.add(acc, v);
    k2.mov(acc, s);
    k2.st(ia, 0, acc);
    k2.assign_add(i, i, 1u32);
    k2.bra(top);
    k2.bind(exit_l);
    k2.bind(fin2);
    // Kernel 3: add the previous blocks' total to each element.
    let mut k3 = KernelBuilder::new("d_scan_pass3");
    let pdata3 = k3.param(0);
    let ptmp3 = k3.param(1);
    let ptot3 = k3.param(2);
    let g = k3.special(Special::GlobalTid);
    let bid3 = k3.special(Special::BlockId);
    let rounds = block.trailing_zeros();
    let src3 = if rounds % 2 == 0 { pdata3 } else { ptmp3 };
    let ea = addr(&mut k3, src3, g);
    let v = k3.ld(ea, 0);
    let isb0 = k3.eq(bid3, 0u32);
    let store_l = k3.fwd_label();
    let sum = k3.reg();
    k3.mov(sum, v);
    k3.bra_if(isb0, store_l);
    let prev = k3.sub(bid3, 1u32);
    let pa = addr(&mut k3, ptot3, prev);
    let off = k3.ld(pa, 0);
    let v2 = k3.add(v, off);
    k3.mov(sum, v2);
    k3.bind(store_l);
    let oa = addr(&mut k3, pdata3, g);
    k3.st(oa, 0, sum);
    vec![
        Launch {
            kernel: k1.build(),
            grid,
            block,
            params: vec![data, tmp, totals],
        },
        Launch {
            kernel: k2.build(),
            grid: 1,
            block: 32,
            params: vec![totals],
        },
        Launch {
            kernel: k3.build(),
            grid,
            block,
            params: vec![data, tmp, totals],
        },
    ]
}

/// d_radix_sort: digit histogram (device atomics) then a rank scatter in a
/// second kernel (reads are ordered by the kernel boundary).
fn d_radix_sort(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = grid * block;
    let keys = gpu.alloc(n as usize).expect("alloc keys");
    let hist = gpu.alloc(16).expect("alloc hist");
    let out = gpu.alloc(n as usize).expect("alloc out");
    for i in 0..n as usize {
        gpu.write(keys, i, ((i * 37) % 97) as u32);
    }
    // Kernel 1: 4-bit digit histogram.
    let mut k1 = KernelBuilder::new("d_radix_pass1");
    let pkeys = k1.param(0);
    let phist = k1.param(1);
    let g = k1.special(Special::GlobalTid);
    let ka = addr(&mut k1, pkeys, g);
    let key = k1.ld(ka, 0);
    let digit = k1.and(key, 15u32);
    let ha = addr(&mut k1, phist, digit);
    let one = k1.imm(1);
    let _ = k1.atom(AtomOp::Add, Scope::Device, ha, 0, one);
    // Kernel 2: per-block rank scatter (one digit pass of the real
    // algorithm, block-local like CUB's upsweep tiles).
    let mut k2 = KernelBuilder::new("d_radix_pass2");
    let pkeys2 = k2.param(0);
    let pout = k2.param(1);
    rank_sort_body(&mut k2, pkeys2, pout, block);
    let _ = n;
    vec![
        Launch {
            kernel: k1.build(),
            grid,
            block,
            params: vec![keys, hist],
        },
        Launch {
            kernel: k2.build(),
            grid,
            block,
            params: vec![keys, out],
        },
    ]
}

/// Shared body for the select/partition family: scatter through
/// device-scope atomic cursors (safe by P6; output slots are unique).
///
/// `mode`: 0 = keep-if-predicate, 1 = keep-if-flag, 2 = keep-if-unique,
/// 3 = partition-by-predicate, 4 = partition-by-flag.
fn compaction(gpu: &mut Gpu, size: Size, name: &'static str, mode: u32) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let input = gpu.alloc(n).expect("alloc in");
    let flags = gpu.alloc(n).expect("alloc flags");
    let out = gpu.alloc(n).expect("alloc out");
    let rejected = gpu.alloc(n).expect("alloc rejected");
    let cursors = gpu.alloc(2).expect("alloc cursors");
    for i in 0..n {
        gpu.write(input, i, ((i * 53) % 127) as u32);
        gpu.write(flags, i, u32::from(i % 3 == 0));
    }
    let mut b = KernelBuilder::new(name);
    let pin = b.param(0);
    let pflags = b.param(1);
    let pout = b.param(2);
    let prej = b.param(3);
    let pcur = b.param(4);
    let g = b.special(Special::GlobalTid);
    let ia = addr(&mut b, pin, g);
    let v = b.ld(ia, 0);
    // keep = predicate by mode.
    let keep = match mode {
        0 | 3 => {
            // predicate: v is even
            let bit = b.and(v, 1u32);
            b.eq(bit, 0u32)
        }
        1 | 4 => {
            let fa = addr(&mut b, pflags, g);
            b.ld(fa, 0)
        }
        2 => {
            // unique: input[g] != input[g-1] (g==0 keeps)
            let is0 = b.eq(g, 0u32);
            let keep_r = b.reg();
            b.mov(keep_r, 1u32);
            let fin = b.fwd_label();
            b.bra_if(is0, fin);
            let prev_i = b.sub(g, 1u32);
            let pa = addr(&mut b, pin, prev_i);
            let pv = b.ld(pa, 0);
            let ne = b.ne(v, pv);
            b.mov(keep_r, ne);
            b.bind(fin);
            keep_r
        }
        _ => unreachable!("mode"),
    };
    let one = b.imm(1);
    let keep_l = b.fwd_label();
    let done_l = b.fwd_label();
    b.bra_if(keep, keep_l);
    if mode >= 3 {
        // partition: rejected side also scattered.
        let slot = b.atom(AtomOp::Add, Scope::Device, pcur, 1, one);
        let ra = addr(&mut b, prej, slot);
        b.st(ra, 0, v);
    }
    b.bra(done_l);
    b.bind(keep_l);
    let slot = b.atom(AtomOp::Add, Scope::Device, pcur, 0, one);
    let oa = addr(&mut b, pout, slot);
    b.st(oa, 0, v);
    b.bind(done_l);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![input, flags, out, rejected, cursors],
    }]
}

fn d_sel_if(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    compaction(gpu, size, "d_sel_if_kernel", 0)
}

fn d_sel_flag(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    compaction(gpu, size, "d_sel_flag_kernel", 1)
}

fn d_sel_uniq(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    compaction(gpu, size, "d_sel_uniq_kernel", 2)
}

fn d_part_if(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    compaction(gpu, size, "d_part_if_kernel", 3)
}

fn d_part_flag(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    compaction(gpu, size, "d_part_flag_kernel", 4)
}

/// d_sort_find: per-block rank sort (kernel 1) then a binary search over
/// each block's sorted slice (kernel 2, read-only).
fn d_sort_find(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = grid * block;
    let mut launches = d_radix_sort_inner(gpu, grid, block, n);
    let sorted = launches.last().expect("sort pass").params[1];
    let found = gpu.alloc(n as usize).expect("alloc found");
    let mut k3 = KernelBuilder::new("d_find_pass");
    let psorted = k3.param(0);
    let pfound = k3.param(1);
    let g = k3.special(Special::GlobalTid);
    // Binary search for (g*3 % 97) over the block's sorted slice.
    let g3 = k3.mul(g, 3u32);
    let needle = k3.rem(g3, 97u32);
    let bid = k3.special(Special::BlockId);
    let bdim = k3.special(Special::BlockDim);
    let base = k3.mul(bid, bdim);
    let lo = k3.reg();
    k3.mov(lo, base);
    let hi = k3.add(base, bdim);
    let top = k3.here();
    let exit_l = k3.fwd_label();
    let cont = k3.lt(lo, hi);
    k3.bra_ifnot(cont, exit_l);
    let sum = k3.add(lo, hi);
    let mid = k3.shr(sum, 1u32);
    let ma = addr(&mut k3, psorted, mid);
    let mv = k3.ld(ma, 0);
    let less = k3.lt(mv, needle);
    let go_hi = k3.fwd_label();
    let after = k3.fwd_label();
    k3.bra_if(less, go_hi);
    k3.mov(hi, mid);
    k3.bra(after);
    k3.bind(go_hi);
    let mid1 = k3.add(mid, 1u32);
    k3.mov(lo, mid1);
    k3.bind(after);
    k3.bra(top);
    k3.bind(exit_l);
    let fa = addr(&mut k3, pfound, g);
    k3.st(fa, 0, lo);
    launches.push(Launch {
        kernel: k3.build(),
        grid,
        block,
        params: vec![sorted, found],
    });
    launches
}

fn d_radix_sort_inner(gpu: &mut Gpu, grid: u32, block: u32, n: u32) -> Vec<Launch> {
    let keys = gpu.alloc(n as usize).expect("alloc keys");
    let out = gpu.alloc(n as usize).expect("alloc out");
    for i in 0..n as usize {
        gpu.write(keys, i, ((i * 37) % 97) as u32);
    }
    let mut k2 = KernelBuilder::new("d_sortfind_rank");
    let pkeys2 = k2.param(0);
    let pout = k2.param(1);
    rank_sort_body(&mut k2, pkeys2, pout, block);
    vec![Launch {
        kernel: k2.build(),
        grid,
        block,
        params: vec![keys, out],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::hook::NullHook;
    use gpu_sim::machine::GpuConfig;

    fn run(w: &Workload) -> Gpu {
        let mut gpu = Gpu::new(GpuConfig {
            seed: 3,
            ..GpuConfig::default()
        });
        let launches = w.build(&mut gpu, Size::Test);
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        }
        gpu
    }

    #[test]
    fn all_cub_workloads_run_natively() {
        for w in racey_workloads().iter().chain(clean_workloads().iter()) {
            let _ = run(w);
        }
    }

    #[test]
    fn d_reduce_computes_the_sum() {
        let w = crate::by_name("d_reduce").unwrap();
        let mut gpu = Gpu::new(GpuConfig {
            seed: 9,
            ..GpuConfig::default()
        });
        let launches = w.build(&mut gpu, Size::Test);
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                .unwrap();
        }
        let out = launches[1].params[1];
        assert_eq!(gpu.read(out, 0), 4 * 64, "sum of 256 ones");
    }

    #[test]
    fn d_scan_computes_prefix_sums() {
        let w = crate::by_name("d_scan").unwrap();
        let mut gpu = Gpu::new(GpuConfig {
            seed: 9,
            ..GpuConfig::default()
        });
        let launches = w.build(&mut gpu, Size::Test);
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                .unwrap();
        }
        let data = launches[0].params[0];
        let n = 4 * 64;
        let got = gpu.read_slice(data, n);
        let expect: Vec<u32> = (1..=n as u32).collect();
        assert_eq!(got, expect, "inclusive scan of all-ones");
    }

    #[test]
    fn b_radix_sort_sorts_each_block() {
        let w = crate::by_name("b_radix_sort").unwrap();
        let mut gpu = Gpu::new(GpuConfig {
            seed: 9,
            ..GpuConfig::default()
        });
        let launches = w.build(&mut gpu, Size::Test);
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                .unwrap();
        }
        let out = launches[0].params[1];
        for blk in 0..4 {
            let slice = gpu.read_slice(out + (blk * 64 * 4) as u32, 64);
            let mut sorted = slice.clone();
            sorted.sort_unstable();
            assert_eq!(slice, sorted, "block {blk} must be sorted");
        }
    }

    #[test]
    fn compaction_outputs_every_kept_element() {
        let w = crate::by_name("d_sel_if").unwrap();
        let mut gpu = Gpu::new(GpuConfig {
            seed: 9,
            ..GpuConfig::default()
        });
        let launches = w.build(&mut gpu, Size::Test);
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                .unwrap();
        }
        let input = launches[0].params[0];
        let out = launches[0].params[2];
        let cursors = launches[0].params[4];
        let n = 256;
        let kept = gpu.read(cursors, 0) as usize;
        let expect: Vec<u32> = gpu
            .read_slice(input, n)
            .into_iter()
            .filter(|v| v % 2 == 0)
            .collect();
        assert_eq!(kept, expect.len());
        let mut got = gpu.read_slice(out, kept);
        got.sort_unstable();
        let mut want = expect;
        want.sort_unstable();
        assert_eq!(got, want, "every kept element appears exactly once");
    }
}
