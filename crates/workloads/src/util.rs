//! Shared kernel patterns used across the workload suites: address
//! arithmetic, clean building blocks (tree reduction, scan, streaming), the
//! Figure 10 grid-sync idiom in buggy and fixed forms, and deterministic
//! race seeders for each race class of Table 4.
//!
//! Race seeders are written so the racing *site* (the pc the detector
//! reports) is a single instruction executed by both conflicting threads —
//! this makes the per-workload race counts deterministic and lets the
//! Table 4 harness assert exact numbers.

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{Reg, Scope, Special};

/// `base + idx*4` into a fresh register.
pub fn addr(b: &mut KernelBuilder, base: Reg, idx: Reg) -> Reg {
    let off = b.mul(idx, 4u32);
    b.add(base, off)
}

/// Emits an ALU-only busy loop (~6 cycles per iteration).
///
/// The workload skeletons reproduce the original applications' *sharing
/// patterns* with far fewer arithmetic instructions per memory access than
/// the real kernels execute; this restores a realistic compute density so
/// overhead ratios are comparable to the paper's.
pub fn busy_work(b: &mut KernelBuilder, iters: u32) {
    if iters == 0 {
        return;
    }
    let tid = b.special(Special::Tid);
    let acc = b.add(tid, 0x9E37u32);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, iters);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let m = b.mul(acc, 0x85EB_CA6Bu32);
    let s = b.shr(m, 13u32);
    let x = b.xor(m, s);
    b.mov(acc, x);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
}

/// Standard busy-work iteration count per build size.
#[must_use]
pub fn work_iters(size: crate::Size) -> u32 {
    match size {
        crate::Size::Test => 3,
        crate::Size::Bench => 150,
    }
}

/// Emits a clean per-thread streaming transform: `out[g] = in[g]*3 + 1`.
pub fn stream_body(b: &mut KernelBuilder, input: Reg, output: Reg) {
    let g = b.special(Special::GlobalTid);
    let ia = addr(b, input, g);
    let v = b.ld(ia, 0);
    let v3 = b.mul(v, 3u32);
    let v31 = b.add(v3, 1u32);
    let oa = addr(b, output, g);
    b.st(oa, 0, v31);
}

/// Emits a correctly-barriered tree reduction over `data[block*dim ..]`,
/// leaving the block's sum in `data[block*dim]` and storing it to
/// `out[block]`. `dim` must be a power of two.
pub fn tree_reduce_block(b: &mut KernelBuilder, data: Reg, out: Reg, dim: u32) {
    assert!(
        dim.is_power_of_two(),
        "tree reduction needs a power-of-two block"
    );
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let bdim = b.special(Special::BlockDim);
    let base_idx = b.mul(bid, bdim);
    let my_idx = b.add(base_idx, tid);
    let my_addr = addr(b, data, my_idx);
    let stride = b.imm(dim / 2);
    let top = b.here();
    let done = b.eq(stride, 0u32);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let active = b.lt(tid, stride);
    let skip = b.fwd_label();
    b.bra_ifnot(active, skip);
    let mine = b.ld(my_addr, 0);
    let oidx = b.add(my_idx, stride);
    let oaddr = addr(b, data, oidx);
    let theirs = b.ld(oaddr, 0);
    let sum = b.add(mine, theirs);
    b.st(my_addr, 0, sum);
    b.bind(skip);
    b.syncthreads();
    let half = b.shr(stride, 1u32);
    b.mov(stride, half);
    b.bra(top);
    b.bind(exit_l);
    // Leader publishes the block sum.
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let res = b.ld(my_addr, 0);
    let oaddr = addr(b, out, bid);
    b.st(oaddr, 0, res);
    b.bind(fin);
}

/// Emits a correctly-barriered inclusive Hillis–Steele scan over the
/// block's slice of `data`, double-buffered in `data` and `tmp`.
pub fn block_scan(b: &mut KernelBuilder, data: Reg, tmp: Reg, dim: u32) {
    assert!(dim.is_power_of_two());
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let bdim = b.special(Special::BlockDim);
    let base_idx = b.mul(bid, bdim);
    let my_idx = b.add(base_idx, tid);
    let src = b.reg();
    let dst = b.reg();
    b.mov(src, data);
    b.mov(dst, tmp);
    let stride = b.imm(1);
    let top = b.here();
    let done = b.ge(stride, dim);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let my_addr = addr(b, src, my_idx);
    let mine = b.ld(my_addr, 0);
    let has_left = b.ge(tid, stride);
    let no_add = b.fwd_label();
    let store_l = b.fwd_label();
    b.bra_ifnot(has_left, no_add);
    let lidx = b.sub(my_idx, stride);
    let laddr = addr(b, src, lidx);
    let left = b.ld(laddr, 0);
    let sum = b.add(mine, left);
    b.mov(mine, sum);
    b.bra(store_l);
    b.bind(no_add);
    b.bind(store_l);
    let daddr = addr(b, dst, my_idx);
    b.st(daddr, 0, mine);
    b.syncthreads();
    // Swap buffers.
    let t = b.reg();
    b.mov(t, src);
    b.mov(src, dst);
    b.mov(dst, t);
    let dbl = b.shl(stride, 1u32);
    b.mov(stride, dbl);
    b.bra(top);
    b.bind(exit_l);
}

/// Emits the Figure 10 grid-level synchronization.
///
/// `sync` points at `[arrived]`; `grid_size` is the expected arrival count.
/// With `fenced_by_all == false` this is NVIDIA's buggy implementation: the
/// device fence runs **only in each block's leader**, so non-leader writes
/// are not ordered before the sync — the NVlib_CG bug. With `true`, every
/// thread fences first (the commented-out line 3 of Figure 10).
pub fn grid_sync(b: &mut KernelBuilder, sync: Reg, grid_size: u32, fenced_by_all: bool) {
    if fenced_by_all {
        b.loc("grid_sync: __threadfence() by all (fixed)");
        b.membar(Scope::Device);
    }
    b.syncthreads();
    let tid = b.special(Special::Tid);
    let is0 = b.eq(tid, 0u32);
    let wait = b.fwd_label();
    b.bra_ifnot(is0, wait);
    b.loc("grid_sync: leader __threadfence()");
    b.membar(Scope::Device);
    let one = b.imm(1);
    b.loc("grid_sync: atomicAdd(arrived, 1)");
    let _ = b.atomic_add(Scope::Device, sync, 0, one);
    let spin = b.here();
    let got = b.ld_volatile(sync, 0);
    let not_all = b.ne(got, grid_size);
    b.bra_if(not_all, spin);
    b.bind(wait);
    b.syncthreads();
}

// ---- deterministic race seeders --------------------------------------------
//
// Each seeder plants exactly ONE racing site: a single store/atomic
// instruction executed unsynchronized by two conflicting threads. The site
// the detector reports is that instruction's pc.

/// AS: every block's leader runs a *block-scope* `atomicAdd` on the shared
/// word `ctr[slot]` — insufficient scope across blocks (Figure 1's class).
pub fn seed_scoped_atomic(b: &mut KernelBuilder, ctr: Reg, slot: i32, label: &str) {
    let tid = b.special(Special::Tid);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let one = b.imm(1);
    b.loc(format!("{label}: atomicAdd_block on shared counter"));
    let _ = b.atom(gpu_sim::ir::AtomOp::Add, Scope::Block, ctr, slot, one);
    b.bind(fin);
}

/// BR: threads 0 and 32 (different warps, same block) store the block's
/// word `buf[block + slot]` with no intervening barrier.
pub fn seed_intra_block(b: &mut KernelBuilder, buf: Reg, slot: u32, label: &str) {
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let is0 = b.eq(tid, 0u32);
    let is32 = b.eq(tid, 32u32);
    let hit = b.or(is0, is32);
    let fin = b.fwd_label();
    b.bra_ifnot(hit, fin);
    let idx = b.add(bid, slot);
    let a = addr(b, buf, idx);
    b.loc(format!("{label}: unbarriered store from two warps"));
    b.st(a, 0, tid);
    b.bind(fin);
}

/// DR: each block's leader stores the single shared word `buf[slot]` with
/// no device-scope fence discipline.
pub fn seed_inter_block(b: &mut KernelBuilder, buf: Reg, slot: i32, label: &str) {
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    b.loc(format!("{label}: unfenced store shared across blocks"));
    b.st(buf, slot, bid);
    b.bind(fin);
}

/// ITS: lanes 0 and 1 of each warp store the warp's word `buf[gwarp+slot]`
/// from the *same instruction* at different times (a `for i { if tid==i }`
/// hammock), diverged and with no `__syncwarp` — Figure 8's class.
pub fn seed_its(b: &mut KernelBuilder, buf: Reg, slot: u32, label: &str) {
    let lane = b.special(Special::LaneId);
    let gwarp = b.special(Special::GlobalWarpId);
    let idx = b.add(gwarp, slot);
    let a = addr(b, buf, idx);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, 2u32);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let my_turn = b.eq(lane, i);
    let skip = b.fwd_label();
    b.bra_ifnot(my_turn, skip);
    b.loc(format!("{label}: divergent same-warp store, no __syncwarp"));
    b.st(a, 0, i);
    b.bind(skip);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
}

/// IL: lanes 0 and 1 of each block's warp 0 take *distinct* per-thread
/// locks (`locks[lane]`) and update their block's word `buf[slot + block]`
/// inside their critical sections — Figure 9's class. The data word is
/// per-block so the only conflict is the intra-warp disjoint-lockset one.
pub fn seed_improper_lock(b: &mut KernelBuilder, locks: Reg, buf: Reg, slot: u32, label: &str) {
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let lt2 = b.lt(tid, 2u32);
    let fin = b.fwd_label();
    b.bra_ifnot(lt2, fin);
    let lock_addr = addr(b, locks, tid);
    b.lock(Scope::Device, lock_addr, 0);
    let idx = b.add(bid, slot);
    let data_addr = addr(b, buf, idx);
    // Store-only critical section: the racing site is one instruction.
    b.loc(format!("{label}: data update under disjoint locks"));
    b.st(data_addr, 0, tid);
    b.unlock(Scope::Device, lock_addr, 0);
    b.bind(fin);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::prelude::*;

    #[test]
    fn stream_body_transforms_every_element() {
        let mut b = KernelBuilder::new("stream");
        let input = b.param(0);
        let output = b.param(1);
        stream_body(&mut b, input, output);
        let k = b.build();
        let mut gpu = Gpu::new(GpuConfig::default());
        let ib = gpu.alloc(64).unwrap();
        let ob = gpu.alloc(64).unwrap();
        gpu.write_slice(ib, &(0..64).collect::<Vec<u32>>());
        gpu.launch(&k, 1, 64, &[ib, ob], &mut NullHook).unwrap();
        let got = gpu.read_slice(ob, 64);
        let expect: Vec<u32> = (0..64).map(|v| v * 3 + 1).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn tree_reduce_computes_block_sums() {
        let mut b = KernelBuilder::new("tr");
        let data = b.param(0);
        let out = b.param(1);
        tree_reduce_block(&mut b, data, out, 64);
        let k = b.build();
        let mut gpu = Gpu::new(GpuConfig::default());
        let dbuf = gpu.alloc(128).unwrap();
        let obuf = gpu.alloc(2).unwrap();
        gpu.write_slice(dbuf, &(0..128).collect::<Vec<u32>>());
        gpu.launch(&k, 2, 64, &[dbuf, obuf], &mut NullHook).unwrap();
        assert_eq!(gpu.read(obuf, 0), (0..64).sum::<u32>());
        assert_eq!(gpu.read(obuf, 1), (64..128).sum::<u32>());
    }

    #[test]
    fn block_scan_is_inclusive_prefix_sum() {
        let mut b = KernelBuilder::new("scan");
        let data = b.param(0);
        let tmp = b.param(1);
        block_scan(&mut b, data, tmp, 64);
        let k = b.build();
        let mut gpu = Gpu::new(GpuConfig::default());
        let dbuf = gpu.alloc(64).unwrap();
        let tbuf = gpu.alloc(64).unwrap();
        gpu.write_slice(dbuf, &vec![1u32; 64]);
        gpu.launch(&k, 1, 64, &[dbuf, tbuf], &mut NullHook).unwrap();
        // log2(64) = 6 rounds: even number, result ends in `data`.
        let result = gpu.read_slice(dbuf, 64);
        let expect: Vec<u32> = (1..=64).collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn fixed_grid_sync_synchronizes_blocks() {
        // Every block writes its slot, grid-syncs, then block 0's leader
        // sums all slots. With the all-threads fence this is correct.
        let mut b = KernelBuilder::new("gsync_fixed");
        let data = b.param(0);
        let sync = b.param(1);
        let out = b.param(2);
        let bid = b.special(Special::BlockId);
        let tid = b.special(Special::Tid);
        let is0 = b.eq(tid, 0u32);
        let skip_w = b.fwd_label();
        b.bra_ifnot(is0, skip_w);
        let a = addr(&mut b, data, bid);
        let hundred = b.imm(100);
        b.st(a, 0, hundred);
        b.bind(skip_w);
        grid_sync(&mut b, sync, 4, true);
        let gz = b.special(Special::GlobalTid);
        let isg0 = b.eq(gz, 0u32);
        let fin = b.fwd_label();
        b.bra_ifnot(isg0, fin);
        let acc = b.imm(0);
        for i in 0..4 {
            let idx = b.imm(i);
            let a = addr(&mut b, data, idx);
            let v = b.ld(a, 0);
            let s = b.add(acc, v);
            b.mov(acc, s);
        }
        b.st(out, 0, acc);
        b.bind(fin);
        let k = b.build();
        let mut gpu = Gpu::new(GpuConfig {
            seed: 11,
            ..GpuConfig::default()
        });
        let dbuf = gpu.alloc(4).unwrap();
        let sbuf = gpu.alloc(1).unwrap();
        let obuf = gpu.alloc(1).unwrap();
        gpu.launch(&k, 4, 32, &[dbuf, sbuf, obuf], &mut NullHook)
            .unwrap();
        assert_eq!(gpu.read(obuf, 0), 400);
    }
}
