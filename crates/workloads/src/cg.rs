//! Cooperative-Groups workloads: the CG-suite samples `conjugGMB` and
//! `reduceMB` (1 CG race each), the NVlib_CG `grid_sync` kernel (the
//! Figure 10 bug NVIDIA filed an internal report for), and the race-free
//! `warpAA` (warp-aggregated atomics) sample from Table 5.
//!
//! All CG kernels are Barracuda-unsupported: the CG primitives rely on ITS
//! (`__syncwarp`) which it cannot model (§7.1).

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::{addr, grid_sync, tree_reduce_block};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

fn dims(size: Size) -> (u32, u32) {
    match size {
        Size::Test => (4, 64),
        Size::Bench => (16, 128),
    }
}

/// The racey CG workloads of Table 4.
pub fn racey_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "conjugGMB",
            suite: Suite::Cg,
            build: conjug_gmb,
            multi_file: false,
            contention_heavy: true,
            paper_races: 1,
            tags: &[RaceTag::CG],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "reduceMB",
            suite: Suite::Cg,
            build: reduce_mb,
            multi_file: false,
            contention_heavy: false,
            paper_races: 1,
            tags: &[RaceTag::CG],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "grid_sync",
            suite: Suite::NvlibCg,
            build: nvlib_grid_sync,
            multi_file: false,
            contention_heavy: false,
            paper_races: 1,
            tags: &[RaceTag::DR],
            barracuda: BarracudaExpectation::Unsupported,
        },
    ]
}

/// The race-free CG workload of Table 5.
pub fn clean_workloads() -> Vec<Workload> {
    vec![Workload {
        name: "warpAA",
        suite: Suite::Cg,
        build: warp_aa,
        multi_file: false,
        contention_heavy: true,
        paper_races: 0,
        tags: &[],
        barracuda: BarracudaExpectation::Unsupported,
    }]
}

/// Marks the kernel as CG-library code: the primitives use `__syncwarp`
/// internally, which is what trips Barracuda's front end.
fn cg_preamble(b: &mut KernelBuilder) {
    b.loc("cg::coalesced_threads().sync()");
    b.syncwarp();
}

/// Multi-block conjugate gradient: every thread writes a dot-product
/// partial, the grid "synchronizes" with the buggy leader-only-fence sync
/// of Figure 10, then rank 0 combines the partials. The combine read races
/// with every non-leader partial write (1 CG/DR site).
fn conjug_gmb(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    // Conjugate gradient iterates: many grid-wide synchronizations per
    // solve. The repeated spinning on the arrival counters by every
    // block's leader is the metadata-contention storm of Figure 12
    // (73728 spinning threads in the paper).
    let (grid, block, rounds) = match size {
        Size::Test => (4, 64, 2u32),
        Size::Bench => (48, 128, 4),
    };
    let n = (grid * block) as usize;
    let partials = gpu.alloc(n).expect("alloc partials");
    let sync = gpu.alloc(rounds as usize + 1).expect("alloc sync");
    let out = gpu.alloc(1).expect("alloc out");
    let mut b = KernelBuilder::new("conjuggmb_kernel");
    let pp = b.param(0);
    let psync = b.param(1);
    let pout = b.param(2);
    cg_preamble(&mut b);
    // Every thread computes and stores its dot-product partial.
    let g = b.special(Special::GlobalTid);
    let sq = b.mul(g, g);
    let pa = addr(&mut b, pp, g);
    b.loc("partials[rank] = dot partial");
    b.st(pa, 0, sq);
    // CG iterations: one (buggy) grid sync per round.
    for round in 0..rounds {
        let s = b.add(psync, round * 4);
        grid_sync(&mut b, s, grid, false);
    }
    // Rank 0 combines all partials — reads of non-leader writes race.
    let is0 = b.eq(g, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let acc = b.imm(0);
    let i = b.imm(0);
    let total = b.imm(grid * block);
    let top = b.here();
    let done = b.ge(i, total);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let ia = addr(&mut b, pp, i);
    b.loc("combine: out += partials[i]  // unfenced non-leader writes");
    let v = b.ld(ia, 0);
    let s = b.add(acc, v);
    b.mov(acc, s);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
    b.st(pout, 0, acc);
    b.bind(fin);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![partials, sync, out],
    }]
}

/// Multi-block reduction: blocks tree-reduce, a *non-leader* thread
/// publishes the block result, the buggy grid sync "orders", and rank 0
/// combines (1 CG/DR site at the combine read).
fn reduce_mb(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let data = gpu.alloc(n).expect("alloc data");
    let block_out = gpu.alloc(grid as usize).expect("alloc block_out");
    let scratch = gpu.alloc(grid as usize).expect("alloc scratch");
    let sync = gpu.alloc(1).expect("alloc sync");
    let out = gpu.alloc(1).expect("alloc out");
    for i in 0..n {
        gpu.write(data, i, 1);
    }
    let mut b = KernelBuilder::new("reducemb_kernel");
    let pdata = b.param(0);
    let pblk = b.param(1);
    let psync = b.param(2);
    let pout = b.param(3);
    let pscratch = b.param(4);
    cg_preamble(&mut b);
    // The leader's publish goes to scratch (never read); the *real* block
    // result is published by thread 1 below, a non-leader the buggy sync's
    // fence does not cover.
    tree_reduce_block(&mut b, pdata, pscratch, block_dims_pow2(block));
    // Thread 1 *also* publishes a copy of the block sum (non-leader write:
    // the leader-only fence of the buggy sync does not cover it).
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let is1 = b.eq(tid, 1u32);
    let skip = b.fwd_label();
    b.bra_ifnot(is1, skip);
    let bdim = b.special(Special::BlockDim);
    let base_idx = b.mul(bid, bdim);
    let src = addr(&mut b, pdata, base_idx);
    let v = b.ld(src, 0);
    let dst = addr(&mut b, pblk, bid);
    b.loc("block result published by non-leader");
    b.st(dst, 0, v);
    b.bind(skip);
    grid_sync(&mut b, psync, grid, false);
    let g = b.special(Special::GlobalTid);
    let is0 = b.eq(g, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let acc = b.imm(0);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, grid);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let ia = addr(&mut b, pblk, i);
    b.loc("combine: out[0] += out[blk]  // Figure 3's final loop");
    let v = b.ld(ia, 0);
    let s = b.add(acc, v);
    b.mov(acc, s);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
    b.st(pout, 0, acc);
    b.bind(fin);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![data, block_out, sync, out, scratch],
    }]
}

fn block_dims_pow2(block: u32) -> u32 {
    assert!(block.is_power_of_two());
    block
}

/// The NVlib_CG bug, distilled: every thread writes its slot, the library
/// grid sync runs (leader-only fence), every thread reads a slot written
/// by another *block*'s non-leader thread (1 DR site at the read).
fn nvlib_grid_sync(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = grid * block;
    let data = gpu.alloc(n as usize).expect("alloc data");
    let sync = gpu.alloc(1).expect("alloc sync");
    let out = gpu.alloc(n as usize).expect("alloc out");
    let mut b = KernelBuilder::new("nvlib_gridsync_kernel");
    let pdata = b.param(0);
    let psync = b.param(1);
    let pout = b.param(2);
    cg_preamble(&mut b);
    let g = b.special(Special::GlobalTid);
    let da = addr(&mut b, pdata, g);
    b.loc("pre-sync write by every thread");
    b.st(da, 0, g);
    grid_sync(&mut b, psync, grid, false);
    // Read the slot one block over: written by a (generally non-leader)
    // thread whose stores the leader-only fence did not publish.
    let bdim = b.special(Special::BlockDim);
    let shifted = b.add(g, bdim);
    let total = b.imm(n);
    let idx = b.rem(shifted, total);
    let ra = addr(&mut b, pdata, idx);
    b.loc("post-sync read of another block's write  // Figure 10 bug");
    let v = b.ld(ra, 0);
    let oa = addr(&mut b, pout, g);
    b.st(oa, 0, v);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![data, sync, out],
    }]
}

/// warpAA: warp-aggregated atomics — each warp synchronizes with
/// `__syncwarp`, then its leader performs one device-scope `atomicAdd` on
/// the global counter on behalf of all lanes. Race-free, but every warp in
/// the grid hammers one counter: the Figure 12 contention pattern.
fn warp_aa(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let counter = gpu.alloc(1).expect("alloc counter");
    let out = gpu.alloc((grid * block) as usize).expect("alloc out");
    let mut b = KernelBuilder::new("warpaa_kernel");
    let pctr = b.param(0);
    let pout = b.param(1);
    // Each thread does private work.
    let g = b.special(Special::GlobalTid);
    let h = b.mul(g, 0x9E3779B9u32);
    let oa = addr(&mut b, pout, g);
    b.st(oa, 0, h);
    // Warp-aggregated increment: sync the warp, leader adds 32.
    let iters = b.imm(0);
    let top = b.here();
    let done = b.ge(iters, 4u32);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    b.loc("cg::coalesced_threads().sync()");
    b.syncwarp();
    let lane = b.special(Special::LaneId);
    let is0 = b.eq(lane, 0u32);
    let skip = b.fwd_label();
    b.bra_ifnot(is0, skip);
    let thirty_two = b.imm(32);
    b.loc("leader atomicAdd on behalf of the warp");
    let _ = b.atom(AtomOp::Add, Scope::Device, pctr, 0, thirty_two);
    b.bind(skip);
    b.assign_add(iters, iters, 1u32);
    b.bra(top);
    b.bind(exit_l);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![counter, out],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::machine::GpuConfig;

    #[test]
    fn cg_kernels_run_natively() {
        for w in racey_workloads().iter().chain(clean_workloads().iter()) {
            let mut gpu = Gpu::new(GpuConfig {
                seed: 3,
                ..GpuConfig::default()
            });
            let launches = w.build(&mut gpu, Size::Test);
            for l in &launches {
                gpu.launch(
                    &l.kernel,
                    l.grid,
                    l.block,
                    &l.params,
                    &mut gpu_sim::hook::NullHook,
                )
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            }
        }
    }

    #[test]
    fn conjuggmb_computes_the_sum_despite_racing() {
        // The execution barrier of the buggy sync still works; only memory
        // visibility is broken, and the simulator's per-SM caches mean the
        // combine may read stale values on some schedules — but it must
        // always terminate and produce *something*.
        let mut gpu = Gpu::new(GpuConfig {
            seed: 7,
            ..GpuConfig::default()
        });
        let w = &racey_workloads()[0];
        let launches = w.build(&mut gpu, Size::Test);
        for l in &launches {
            gpu.launch(
                &l.kernel,
                l.grid,
                l.block,
                &l.params,
                &mut gpu_sim::hook::NullHook,
            )
            .unwrap();
        }
    }

    #[test]
    fn all_cg_kernels_contain_syncwarp() {
        // The property Barracuda's refusal rests on.
        let mut gpu = Gpu::new(GpuConfig::default());
        for w in racey_workloads().iter().chain(clean_workloads().iter()) {
            let launches = w.build(&mut gpu, Size::Test);
            let any = launches
                .iter()
                .any(|l| nvbit_sim::inspect::census(&l.kernel).warp_barriers > 0);
            assert!(any, "{} must contain __syncwarp", w.name);
        }
    }
}
