//! Rodinia workloads: the eight race-free applications of Table 5
//! (dwt2d, needle, hotspot, hybridsort, nn, pathfinder, kmeans, srad).
//! Classic bulk-synchronous patterns: stencils with double buffering,
//! wavefront DP with per-stage kernel launches, histogram/accumulate with
//! device atomics — everything correctly synchronized.

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::addr;
use crate::{BarracudaExpectation, Launch, Size, Suite, Workload};

fn dims(size: Size) -> (u32, u32) {
    match size {
        Size::Test => (4, 64),
        Size::Bench => (16, 128),
    }
}

/// The eight Rodinia applications of Table 5.
pub fn workloads() -> Vec<Workload> {
    fn entry(name: &'static str, build: crate::BuildFn) -> Workload {
        Workload {
            name,
            suite: Suite::Rodinia,
            build,
            multi_file: false,
            contention_heavy: false,
            paper_races: 0,
            tags: &[],
            barracuda: BarracudaExpectation::Races(0),
        }
    }
    vec![
        entry("dwt2d", dwt2d),
        entry("needle", needle),
        entry("hotspot", hotspot),
        entry("hybridsort", hybridsort),
        entry("nn", nn),
        entry("pathfinder", pathfinder),
        entry("kmeans", kmeans),
        entry("srad", srad),
    ]
}

/// A double-buffered 1-D stencil pass: `dst[g] = (src[g] + src[g+1] +
/// src[g+2]) * mul / div`. Successive passes are separate launches, so the
/// implicit inter-kernel barrier orders them — the hotspot/srad structure.
fn stencil_pass(name: &str, mul: u32, div: u32) -> gpu_sim::kernel::Kernel {
    let mut b = KernelBuilder::new(name);
    let psrc = b.param(0);
    let pdst = b.param(1);
    let g = b.special(Special::GlobalTid);
    let sa = addr(&mut b, psrc, g);
    let v0 = b.ld(sa, 0);
    let v1 = b.ld(sa, 1);
    let v2 = b.ld(sa, 2);
    let s01 = b.add(v0, v1);
    let s = b.add(s01, v2);
    let scaled = b.mul(s, mul);
    let result = b.div(scaled, div);
    let g1 = b.add(g, 1u32);
    let da = addr(&mut b, pdst, g1);
    b.st(da, 0, result);
    b.build()
}

fn stencil_workload(
    gpu: &mut Gpu,
    size: Size,
    name: &'static str,
    mul: u32,
    div: u32,
) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize + 2;
    let a = gpu.alloc(n).expect("alloc a");
    let bb = gpu.alloc(n).expect("alloc b");
    for i in 0..n {
        gpu.write(a, i, (i % 17) as u32 + 1);
    }
    let k1 = stencil_pass(&format!("{name}_pass1"), mul, div);
    let k2 = stencil_pass(&format!("{name}_pass2"), mul, div);
    vec![
        Launch {
            kernel: k1,
            grid,
            block,
            params: vec![a, bb],
        },
        Launch {
            kernel: k2,
            grid,
            block,
            params: vec![bb, a],
        },
    ]
}

/// hotspot: iterative thermal stencil, double buffered across launches.
fn hotspot(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    stencil_workload(gpu, size, "hotspot", 2, 7)
}

/// srad: speckle-reducing diffusion — same structure, different weights.
fn srad(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    stencil_workload(gpu, size, "srad", 3, 5)
}

/// dwt2d: per-block Haar wavelet — pairwise average/difference with a
/// barrier between the two half-passes.
fn dwt2d(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let data = gpu.alloc(n).expect("alloc data");
    let coeff = gpu.alloc(n).expect("alloc coeff");
    for i in 0..n {
        gpu.write(data, i, (i % 29) as u32);
    }
    let mut b = KernelBuilder::new("dwt2d_kernel");
    let pdata = b.param(0);
    let pcoeff = b.param(1);
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let bdim = b.special(Special::BlockDim);
    let base = b.mul(bid, bdim);
    // Pass 1: first half of the block computes pair averages into coeff.
    let half = b.shr(bdim, 1u32);
    let in_lo = b.lt(tid, half);
    let skip1 = b.fwd_label();
    b.bra_ifnot(in_lo, skip1);
    let two_t = b.mul(tid, 2u32);
    let pair_idx = b.add(base, two_t);
    let pa = addr(&mut b, pdata, pair_idx);
    let a0 = b.ld(pa, 0);
    let a1 = b.ld(pa, 1);
    let sum = b.add(a0, a1);
    let avg = b.shr(sum, 1u32);
    let out_idx = b.add(base, tid);
    let oa = addr(&mut b, pcoeff, out_idx);
    b.st(oa, 0, avg);
    b.bind(skip1);
    b.syncthreads();
    // Pass 2: second half computes differences from the averages.
    let skip2 = b.fwd_label();
    b.bra_if(in_lo, skip2);
    let rel = b.sub(tid, half);
    let two_r = b.mul(rel, 2u32);
    let pair_idx = b.add(base, two_r);
    let pa = addr(&mut b, pdata, pair_idx);
    let a0 = b.ld(pa, 0);
    let avg_idx = b.add(base, rel);
    let aa = addr(&mut b, pcoeff, avg_idx);
    let avg = b.ld(aa, 0);
    let diff = b.sub(a0, avg);
    let out_idx = b.add(base, tid);
    let oa = addr(&mut b, pcoeff, out_idx);
    b.st(oa, 0, diff);
    b.bind(skip2);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![data, coeff],
    }]
}

/// needle (Needleman–Wunsch): wavefront DP — one launch per anti-diagonal
/// band; each band reads only the previous band's cells.
fn needle(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let prev = gpu.alloc(n + 1).expect("alloc prev");
    let cur = gpu.alloc(n + 1).expect("alloc cur");
    let next = gpu.alloc(n + 1).expect("alloc next");
    for i in 0..=n {
        gpu.write(prev, i, i as u32);
        gpu.write(cur, i, (i as u32).wrapping_mul(2));
    }
    fn band(name: &str) -> gpu_sim::kernel::Kernel {
        let mut b = KernelBuilder::new(name);
        let pprev = b.param(0);
        let pcur = b.param(1);
        let pnext = b.param(2);
        let g = b.special(Special::GlobalTid);
        // next[g+1] = max(prev[g] + 1, cur[g], cur[g+1])
        let pa = addr(&mut b, pprev, g);
        let diag = b.ld(pa, 0);
        let diag1 = b.add(diag, 1u32);
        let ca = addr(&mut b, pcur, g);
        let up = b.ld(ca, 0);
        let left = b.ld(ca, 1);
        let m1 = b.max(diag1, up);
        let m = b.max(m1, left);
        let g1 = b.add(g, 1u32);
        let na = addr(&mut b, pnext, g1);
        b.st(na, 0, m);
        b.build()
    }
    vec![
        Launch {
            kernel: band("needle_band1"),
            grid,
            block,
            params: vec![prev, cur, next],
        },
        Launch {
            kernel: band("needle_band2"),
            grid,
            block,
            params: vec![cur, next, prev],
        },
    ]
}

/// pathfinder: row-by-row grid DP, one launch per row.
fn pathfinder(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let row0 = gpu.alloc(n + 2).expect("alloc row0");
    let row1 = gpu.alloc(n + 2).expect("alloc row1");
    for i in 0..n + 2 {
        gpu.write(row0, i, ((i * 7) % 19) as u32);
    }
    fn row_kernel(name: &str) -> gpu_sim::kernel::Kernel {
        let mut b = KernelBuilder::new(name);
        let psrc = b.param(0);
        let pdst = b.param(1);
        let g = b.special(Special::GlobalTid);
        let sa = addr(&mut b, psrc, g);
        let l = b.ld(sa, 0);
        let c = b.ld(sa, 1);
        let r = b.ld(sa, 2);
        let m1 = b.min(l, c);
        let m = b.min(m1, r);
        let cost = b.add(m, 1u32);
        let g1 = b.add(g, 1u32);
        let da = addr(&mut b, pdst, g1);
        b.st(da, 0, cost);
        b.build()
    }
    vec![
        Launch {
            kernel: row_kernel("pathfinder_row1"),
            grid,
            block,
            params: vec![row0, row1],
        },
        Launch {
            kernel: row_kernel("pathfinder_row2"),
            grid,
            block,
            params: vec![row1, row0],
        },
    ]
}

/// nn: nearest neighbour — each thread computes a distance and the global
/// best is kept with a device-scope atomicMin (safe).
fn nn(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let points = gpu.alloc(n).expect("alloc points");
    let best = gpu.alloc(1).expect("alloc best");
    gpu.write(best, 0, u32::MAX);
    for i in 0..n {
        gpu.write(points, i, ((i * 97) % 1021) as u32);
    }
    let mut b = KernelBuilder::new("nn_kernel");
    let ppoints = b.param(0);
    let pbest = b.param(1);
    let g = b.special(Special::GlobalTid);
    let pa = addr(&mut b, ppoints, g);
    let v = b.ld(pa, 0);
    // distance to query 500: |v - 500| via max-min
    let q = b.imm(500);
    let hi = b.max(v, q);
    let lo = b.min(v, q);
    let dist = b.sub(hi, lo);
    let _ = b.atom(AtomOp::Min, Scope::Device, pbest, 0, dist);
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![points, best],
    }]
}

/// kmeans: assignment pass (read-only centroids) then accumulation with
/// device atomics.
fn kmeans(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    const K: u32 = 4;
    let points = gpu.alloc(n).expect("alloc points");
    let centroids = gpu.alloc(K as usize).expect("alloc centroids");
    let assign = gpu.alloc(n).expect("alloc assign");
    let sums = gpu.alloc(K as usize).expect("alloc sums");
    let counts = gpu.alloc(K as usize).expect("alloc counts");
    for i in 0..n {
        gpu.write(points, i, ((i * 31) % 400) as u32);
    }
    for c in 0..K as usize {
        gpu.write(centroids, c, (c as u32) * 100 + 50);
    }
    // Kernel 1: assign each point to the nearest centroid.
    let mut k1 = KernelBuilder::new("kmeans_assign");
    let ppts = k1.param(0);
    let pcent = k1.param(1);
    let passign = k1.param(2);
    let g = k1.special(Special::GlobalTid);
    let pa = addr(&mut k1, ppts, g);
    let v = k1.ld(pa, 0);
    let best_d = k1.imm(u32::MAX);
    let best_c = k1.imm(0);
    let c = k1.imm(0);
    let top = k1.here();
    let done = k1.ge(c, K);
    let exit_l = k1.fwd_label();
    k1.bra_if(done, exit_l);
    let ca = addr(&mut k1, pcent, c);
    let cv = k1.ld(ca, 0);
    let hi = k1.max(v, cv);
    let lo = k1.min(v, cv);
    let d = k1.sub(hi, lo);
    let better = k1.lt(d, best_d);
    let nd = k1.sel(better, d, best_d);
    let nc = k1.sel(better, c, best_c);
    k1.mov(best_d, nd);
    k1.mov(best_c, nc);
    k1.assign_add(c, c, 1u32);
    k1.bra(top);
    k1.bind(exit_l);
    let aa = addr(&mut k1, passign, g);
    k1.st(aa, 0, best_c);
    // Kernel 2: accumulate sums/counts per cluster with device atomics.
    let mut k2 = KernelBuilder::new("kmeans_accumulate");
    let ppts2 = k2.param(0);
    let passign2 = k2.param(1);
    let psums = k2.param(2);
    let pcounts = k2.param(3);
    let g2 = k2.special(Special::GlobalTid);
    let pa2 = addr(&mut k2, ppts2, g2);
    let v2 = k2.ld(pa2, 0);
    let aa2 = addr(&mut k2, passign2, g2);
    let cl = k2.ld(aa2, 0);
    let sa = addr(&mut k2, psums, cl);
    let _ = k2.atom(AtomOp::Add, Scope::Device, sa, 0, v2);
    let ca2 = addr(&mut k2, pcounts, cl);
    let one = k2.imm(1);
    let _ = k2.atom(AtomOp::Add, Scope::Device, ca2, 0, one);
    vec![
        Launch {
            kernel: k1.build(),
            grid,
            block,
            params: vec![points, centroids, assign],
        },
        Launch {
            kernel: k2.build(),
            grid,
            block,
            params: vec![points, assign, sums, counts],
        },
    ]
}

/// hybridsort: bucket histogram with device atomics, then a per-block
/// barriered rank sort of each block's slice.
fn hybridsort(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let keys = gpu.alloc(n).expect("alloc keys");
    let hist = gpu.alloc(16).expect("alloc hist");
    let out = gpu.alloc(n).expect("alloc out");
    for i in 0..n {
        gpu.write(keys, i, ((i * 61) % 223) as u32);
    }
    // Kernel 1: 16-bucket histogram.
    let mut k1 = KernelBuilder::new("hybridsort_hist");
    let pkeys = k1.param(0);
    let phist = k1.param(1);
    let g = k1.special(Special::GlobalTid);
    let ka = addr(&mut k1, pkeys, g);
    let key = k1.ld(ka, 0);
    let bkt = k1.and(key, 15u32);
    let ha = addr(&mut k1, phist, bkt);
    let one = k1.imm(1);
    let _ = k1.atom(AtomOp::Add, Scope::Device, ha, 0, one);
    // Kernel 2: per-block rank sort (barriered).
    let mut k2 = KernelBuilder::new("hybridsort_sort");
    let pkeys2 = k2.param(0);
    let pout = k2.param(1);
    crate::cub::rank_sort_for(&mut k2, pkeys2, pout, block);
    vec![
        Launch {
            kernel: k1.build(),
            grid,
            block,
            params: vec![keys, hist],
        },
        Launch {
            kernel: k2.build(),
            grid,
            block,
            params: vec![keys, out],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::hook::NullHook;
    use gpu_sim::machine::GpuConfig;

    #[test]
    fn all_rodinia_workloads_run_natively() {
        for w in workloads() {
            let mut gpu = Gpu::new(GpuConfig {
                seed: 3,
                ..GpuConfig::default()
            });
            for l in &w.build(&mut gpu, Size::Test) {
                gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            }
        }
    }

    #[test]
    fn nn_finds_the_true_minimum_distance() {
        let w = crate::by_name("nn").unwrap();
        let mut gpu = Gpu::new(GpuConfig {
            seed: 5,
            ..GpuConfig::default()
        });
        let launches = w.build(&mut gpu, Size::Test);
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                .unwrap();
        }
        let points = launches[0].params[0];
        let best = launches[0].params[1];
        let expect = gpu
            .read_slice(points, 256)
            .iter()
            .map(|&v| v.abs_diff(500))
            .min()
            .unwrap();
        assert_eq!(gpu.read(best, 0), expect);
    }

    #[test]
    fn kmeans_counts_every_point() {
        let w = crate::by_name("kmeans").unwrap();
        let mut gpu = Gpu::new(GpuConfig {
            seed: 5,
            ..GpuConfig::default()
        });
        let launches = w.build(&mut gpu, Size::Test);
        for l in &launches {
            gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
                .unwrap();
        }
        let counts = launches[1].params[3];
        let total: u32 = gpu.read_slice(counts, 4).iter().sum();
        assert_eq!(total, 256);
    }
}
