//! The ScoR suite (Kamath, George, Basu — the scoped-racey benchmark suite
//! iGUARD inherits from ScoRD). Seven racey workloads, 27 races total in
//! Table 4: matrix-mult (4), 1dconv (1), graph-con (5), reduction (7),
//! rule-110 (2), uts (6), graph-color (6).
//!
//! Every kernel here contains scoped (`_block`) atomics, which is why
//! Barracuda refuses the whole suite (§7.1).

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::{
    addr, busy_work, seed_improper_lock, seed_inter_block, seed_intra_block, seed_its,
    seed_scoped_atomic, tree_reduce_block, work_iters,
};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

fn dims(size: Size) -> (u32, u32) {
    match size {
        Size::Test => (4, 64),
        Size::Bench => (24, 128),
    }
}

/// All seven ScoR workloads, in Table 4 order.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "matrix-mult",
            suite: Suite::ScoR,
            build: matrix_mult,
            multi_file: false,
            contention_heavy: true,
            paper_races: 4,
            tags: &[RaceTag::IL, RaceTag::AS, RaceTag::BR],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "1dconv",
            suite: Suite::ScoR,
            build: one_d_conv,
            multi_file: false,
            contention_heavy: true,
            paper_races: 1,
            tags: &[RaceTag::AS],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "graph-con",
            suite: Suite::ScoR,
            build: graph_con,
            multi_file: false,
            contention_heavy: true,
            paper_races: 5,
            tags: &[RaceTag::AS, RaceTag::BR, RaceTag::DR],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "reduction",
            suite: Suite::ScoR,
            build: reduction,
            multi_file: false,
            contention_heavy: false,
            paper_races: 7,
            tags: &[RaceTag::ITS, RaceTag::BR, RaceTag::DR],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "rule-110",
            suite: Suite::ScoR,
            build: rule_110,
            multi_file: false,
            contention_heavy: false,
            paper_races: 2,
            tags: &[RaceTag::AS, RaceTag::DR],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "uts",
            suite: Suite::ScoR,
            build: uts,
            multi_file: false,
            contention_heavy: false,
            paper_races: 6,
            tags: &[RaceTag::IL, RaceTag::AS],
            barracuda: BarracudaExpectation::Unsupported,
        },
        Workload {
            name: "graph-color",
            suite: Suite::ScoR,
            build: graph_color,
            multi_file: false,
            contention_heavy: false,
            paper_races: 6,
            tags: &[RaceTag::AS, RaceTag::BR, RaceTag::DR],
            barracuda: BarracudaExpectation::Unsupported,
        },
    ]
}

/// Tiled matrix multiply with a racy progress protocol.
/// Races: IL (result merge under disjoint locks), AS (block-scope tile
/// counter), BR ×2 (unbarriered staging writes).
fn matrix_mult(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    const N: u32 = 16;
    let a = gpu.alloc((N * N) as usize).expect("alloc A");
    let bm = gpu.alloc((N * N) as usize).expect("alloc B");
    let c = gpu.alloc((N * N) as usize).expect("alloc C");
    let aux = gpu.alloc(256).expect("alloc aux");
    let locks = gpu.alloc(8).expect("alloc locks");
    for i in 0..(N * N) as usize {
        gpu.write(a, i, (i % 7) as u32);
        gpu.write(bm, i, (i % 5) as u32);
    }

    let mut b = KernelBuilder::new("matmul_kernel");
    let pa = b.param(0);
    let pb = b.param(1);
    let pc = b.param(2);
    let paux = b.param(3);
    let plocks = b.param(4);
    // Clean compute: C[r][c] = sum_k A[r][k] * B[k][c] for gtid < N*N.
    let g = b.special(Special::GlobalTid);
    let in_range = b.lt(g, N * N);
    let after_compute = b.fwd_label();
    b.bra_ifnot(in_range, after_compute);
    let row = b.div(g, N);
    let col = b.rem(g, N);
    let acc = b.imm(0);
    let k = b.imm(0);
    let top = b.here();
    let done = b.ge(k, N);
    let loop_end = b.fwd_label();
    b.bra_if(done, loop_end);
    let ra = b.mul(row, N);
    let ai = b.add(ra, k);
    let aa = addr(&mut b, pa, ai);
    let av = b.ld(aa, 0);
    let kb = b.mul(k, N);
    let bi = b.add(kb, col);
    let ba = addr(&mut b, pb, bi);
    let bv = b.ld(ba, 0);
    let prod = b.mul(av, bv);
    let nacc = b.add(acc, prod);
    b.mov(acc, nacc);
    b.assign_add(k, k, 1u32);
    b.bra(top);
    b.bind(loop_end);
    let ca = addr(&mut b, pc, g);
    b.st(ca, 0, acc);
    b.bind(after_compute);
    // Race 1 (AS): block-scope atomic on the global tile counter.
    seed_scoped_atomic(&mut b, paux, 0, "matmul tile counter");
    // Races 2-3 (BR): two unbarriered staging writes.
    seed_intra_block(&mut b, paux, 8, "matmul stage-1");
    seed_intra_block(&mut b, paux, 48, "matmul stage-2");
    // Race 4 (IL): partial-result merge under disjoint per-thread locks.
    seed_improper_lock(&mut b, plocks, paux, 96, "matmul result merge");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![a, bm, c, aux, locks],
    }]
}

/// 1-D convolution with halo exchange.
/// Race: AS (block-scope atomic on the shared halo-ready counter).
fn one_d_conv(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let input = gpu.alloc(n + 2).expect("alloc in");
    let output = gpu.alloc(n).expect("alloc out");
    let aux = gpu.alloc(8).expect("alloc aux");
    for i in 0..n + 2 {
        gpu.write(input, i, (i * 3 % 11) as u32);
    }
    let mut b = KernelBuilder::new("conv1d_kernel");
    let pin = b.param(0);
    let pout = b.param(1);
    let paux = b.param(2);
    busy_work(&mut b, work_iters(size));
    // Clean compute: out[g] = in[g] + in[g+1] + in[g+2].
    let g = b.special(Special::GlobalTid);
    let a0 = addr(&mut b, pin, g);
    let v0 = b.ld(a0, 0);
    let v1 = b.ld(a0, 1);
    let v2 = b.ld(a0, 2);
    let s01 = b.add(v0, v1);
    let s = b.add(s01, v2);
    let oa = addr(&mut b, pout, g);
    b.st(oa, 0, s);
    // Race (AS): halo-ready counter bumped with block scope.
    // Every thread ticks the global progress counter each tile round:
    // safe device atomics, but a metadata-contention storm (Figure 12).
    contended_counter(&mut b, paux, 6, 4);
    seed_scoped_atomic(&mut b, paux, 0, "conv1d halo counter");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![input, output, aux],
    }]
}

/// Graph connectivity via label propagation (atomicMin hooking).
/// Races: AS (block-scope hook), BR ×2 (frontier flags), DR ×2
/// (unfenced cross-block convergence flags).
fn graph_con(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let labels = gpu.alloc(n).expect("alloc labels");
    let aux = gpu.alloc(256).expect("alloc aux");
    for i in 0..n {
        gpu.write(labels, i, i as u32);
    }
    let mut b = KernelBuilder::new("graphcon_kernel");
    let plabels = b.param(0);
    let paux = b.param(1);
    busy_work(&mut b, work_iters(size));
    // Clean compute: hook to neighbour's label with device atomicMin.
    let g = b.special(Special::GlobalTid);
    let total = b.special(Special::GridDim);
    let bdim = b.special(Special::BlockDim);
    let nthreads = b.mul(total, bdim);
    let g1 = b.add(g, 1u32);
    let nb = b.rem(g1, nthreads);
    let na = addr(&mut b, plabels, nb);
    let my_a = addr(&mut b, plabels, g);
    let mine = b.ld(my_a, 0);
    let _ = b.atom(AtomOp::Min, Scope::Device, na, 0, mine);
    // Race 1 (AS): block-scope hook on the global min label.
    // The frontier size is ticked by every thread per round (safe device
    // atomics; heavy metadata contention, Figure 12).
    contended_counter(&mut b, paux, 6, 4);
    seed_scoped_atomic(&mut b, paux, 0, "graphcon global min");
    // Races 2-3 (BR): per-block frontier flags, two phases.
    seed_intra_block(&mut b, paux, 8, "graphcon frontier A");
    seed_intra_block(&mut b, paux, 48, "graphcon frontier B");
    // Races 4-5 (DR): cross-block convergence flags, unfenced.
    seed_inter_block(&mut b, paux, 4, "graphcon converged flag");
    seed_inter_block(&mut b, paux, 5, "graphcon iteration flag");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![labels, aux],
    }]
}

/// Multi-stage reduction relying on (absent) lockstep execution.
/// Races: ITS ×3 (warp-level stages missing `__syncwarp`), BR ×2, DR ×2.
fn reduction(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let data = gpu.alloc(n).expect("alloc data");
    let out = gpu.alloc(grid as usize).expect("alloc out");
    let warps = grid * block.div_ceil(32);
    let aux = gpu.alloc(192 + 3 * warps as usize).expect("alloc aux");
    for i in 0..n {
        gpu.write(data, i, 1);
    }
    let mut b = KernelBuilder::new("reduction_kernel");
    let pdata = b.param(0);
    let pout = b.param(1);
    let paux = b.param(2);
    // Clean compute: correctly barriered block tree reduction.
    tree_reduce_block(&mut b, pdata, pout, block_pow2(gpu, block));
    // A *safe* block-scope atomic (per-block slot): makes the binary
    // scoped — the reason Barracuda refuses this suite — without racing.
    let bid = b.special(Special::BlockId);
    let slot = b.add(bid, 96u32);
    let ctr = addr(&mut b, paux, slot);
    let tid = b.special(Special::Tid);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let one = b.imm(1);
    let _ = b.atom(AtomOp::Add, Scope::Block, ctr, 0, one);
    b.bind(fin);
    // Races 1-3 (ITS): the Figure 8 warp stages, three unrolled steps.
    let warp_area = 192; // aux words [192 ..] are the per-warp ITS regions
    seed_its(&mut b, paux, warp_area, "reduction warp stage 1");
    seed_its(&mut b, paux, warp_area + warps, "reduction warp stage 2");
    seed_its(
        &mut b,
        paux,
        warp_area + 2 * warps,
        "reduction warp stage 3",
    );
    // Races 4-5 (BR): block-level combine without barriers.
    seed_intra_block(&mut b, paux, 8, "reduction block combine A");
    seed_intra_block(&mut b, paux, 48, "reduction block combine B");
    // Races 6-7 (DR): final cross-block accumulation without fences.
    seed_inter_block(&mut b, paux, 4, "reduction final sum");
    seed_inter_block(&mut b, paux, 5, "reduction done flag");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![data, out, aux],
    }]
}

fn block_pow2(_gpu: &Gpu, block: u32) -> u32 {
    // Tree reduction requires a power-of-two block; dims() guarantees it.
    assert!(block.is_power_of_two());
    block
}

/// Rule-110 cellular automaton, double buffered.
/// Races: AS (block-scope generation counter), DR (unfenced boundary cell).
fn rule_110(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let n = (grid * block) as usize;
    let cur = gpu.alloc(n + 2).expect("alloc cur");
    let next = gpu.alloc(n + 2).expect("alloc next");
    let aux = gpu.alloc(8).expect("alloc aux");
    gpu.write(cur, n / 2, 1);
    let mut b = KernelBuilder::new("rule110_kernel");
    let pcur = b.param(0);
    let pnext = b.param(1);
    let paux = b.param(2);
    busy_work(&mut b, work_iters(size));
    // Clean compute: next[g+1] = rule110(cur[g], cur[g+1], cur[g+2]).
    let g = b.special(Special::GlobalTid);
    let ca = addr(&mut b, pcur, g);
    let l = b.ld(ca, 0);
    let c = b.ld(ca, 1);
    let r = b.ld(ca, 2);
    // rule 110: new = (c | r) & !(l & c & r)
    let or_cr = b.or(c, r);
    let and_lc = b.and(l, c);
    let and_all = b.and(and_lc, r);
    let not_all = b.xor(and_all, 1u32);
    let nv = b.and(or_cr, not_all);
    let g1 = b.add(g, 1u32);
    let na = addr(&mut b, pnext, g1);
    b.st(na, 0, nv);
    // Race 1 (AS): generation counter with block scope.
    seed_scoped_atomic(&mut b, paux, 0, "rule110 generation counter");
    // Race 2 (DR): boundary cell exchanged across blocks, unfenced.
    seed_inter_block(&mut b, paux, 4, "rule110 boundary cell");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![cur, next, aux],
    }]
}

/// Unbalanced tree search with work stealing.
/// Races: IL ×3 (steal queues under disjoint locks), AS ×3 (block-scope
/// steal counters shared across blocks).
fn uts(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    let aux = gpu.alloc(256).expect("alloc aux");
    let locks = gpu.alloc(16).expect("alloc locks");
    let mut b = KernelBuilder::new("uts_kernel");
    let paux = b.param(0);
    let plocks = b.param(1);
    busy_work(&mut b, work_iters(size));
    // Clean-ish compute: every thread expands a few nodes (pure ALU).
    let g = b.special(Special::GlobalTid);
    let h = b.mul(g, 2654435761u32);
    let h2 = b.shr(h, 7u32);
    let _ = b.xor(h, h2);
    // Races 1-3 (IL): three steal-queue updates under disjoint locks.
    seed_improper_lock(&mut b, plocks, paux, 96, "uts deque head");
    seed_improper_lock(&mut b, plocks, paux, 128, "uts deque tail");
    seed_improper_lock(&mut b, plocks, paux, 160, "uts work count");
    // Races 4-6 (AS): block-scope steal counters.
    seed_scoped_atomic(&mut b, paux, 0, "uts steal counter");
    seed_scoped_atomic(&mut b, paux, 1, "uts node counter");
    seed_scoped_atomic(&mut b, paux, 2, "uts depth counter");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![aux, locks],
    }]
}

/// Graph coloring with work stealing — the Figure 1 kernel.
/// Races: AS (the real getWork steal), plus seeded AS, BR ×2, DR ×2.
fn graph_color(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = dims(size);
    // Tiny partitions force stealing.
    let next_head = gpu.alloc(grid as usize).expect("alloc nextHead");
    let partition_end = gpu.alloc(grid as usize).expect("alloc partitionEnd");
    let aux = gpu.alloc(256).expect("alloc aux");
    for blk in 0..grid as usize {
        gpu.write(next_head, blk, 0);
        // Partition sizes differ so early finishers steal (Figure 1).
        gpu.write(partition_end, blk, if blk % 2 == 0 { 1 } else { 4 });
    }
    let mut b = KernelBuilder::new("graphcolor_kernel");
    let pnext = b.param(0);
    let pend = b.param(1);
    let paux = b.param(2);
    busy_work(&mut b, work_iters(size));
    let tid = b.special(Special::Tid);
    let bid = b.special(Special::BlockId);
    let grid_dim = b.special(Special::GridDim);
    // Leader calls getWork() once per coloring iteration (Figure 1 line
    // 3); small partitions exhaust quickly and force stealing.
    let is0 = b.eq(tid, 0u32);
    let done = b.fwd_label();
    b.bra_ifnot(is0, done);
    let iter = b.imm(0);
    let iter_top = b.here();
    let iters_done = b.ge(iter, 4u32);
    b.bra_if(iters_done, done);
    // Lines 5-7: currHead = atomicAdd_block(&nextHead[blockId], NTHREADS).
    let my_head_a = addr(&mut b, pnext, bid);
    let nthreads = b.imm(1);
    b.loc("getWork: atomicAdd_block(&nextHead[blockId])  // Figure 1 line 6");
    let curr = b.atom(AtomOp::Add, Scope::Block, my_head_a, 0, nthreads);
    // Lines 9-10: work left in own partition?
    let my_end_a = addr(&mut b, pend, bid);
    let my_end = b.ld(my_end_a, 0);
    let next_iter = b.fwd_label();
    let has_work = b.lt(curr, my_end);
    b.bra_if(has_work, next_iter);
    // Lines 12-16: steal from the next block with a device-scope atomic.
    let b1 = b.add(bid, 1u32);
    let victim = b.rem(b1, grid_dim);
    let victim_a = addr(&mut b, pnext, victim);
    b.loc("getWork: atomicAdd(&nextHead[victimBlock])  // Figure 1 line 15");
    let _ = b.atom(AtomOp::Add, Scope::Device, victim_a, 0, nthreads);
    b.bind(next_iter);
    b.assign_add(iter, iter, 1u32);
    b.bra(iter_top);
    b.bind(done);
    // Seeded companions to reach Table 4's six races.
    seed_scoped_atomic(&mut b, paux, 0, "graphcolor color counter");
    seed_intra_block(&mut b, paux, 8, "graphcolor worklist A");
    seed_intra_block(&mut b, paux, 48, "graphcolor worklist B");
    seed_inter_block(&mut b, paux, 4, "graphcolor done flag");
    seed_inter_block(&mut b, paux, 5, "graphcolor round flag");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![next_head, partition_end, aux],
    }]
}

/// A safe (device-scope) atomic hammer on `buf[slot]`: `rounds` increments
/// by every thread. Race-free via P6, but every access serializes on the
/// same metadata entry — the access pattern Figure 12 isolates.
fn contended_counter(b: &mut KernelBuilder, buf: gpu_sim::ir::Reg, slot: u32, rounds: u32) {
    let slot_r = b.imm(slot);
    let ctr = addr(b, buf, slot_r);
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, rounds);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let one = b.imm(1);
    b.loc("progress: atomicAdd(counter, 1)");
    let _ = b.atom(AtomOp::Add, Scope::Device, ctr, 0, one);
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scor_suite_has_27_paper_races() {
        let total: usize = workloads().iter().map(|w| w.paper_races).sum();
        assert_eq!(total, 4 + 1 + 5 + 7 + 2 + 6 + 6);
    }

    #[test]
    fn every_scor_kernel_contains_scoped_atomics() {
        // The property Barracuda's refusal rests on (§7.1).
        let mut gpu = Gpu::new(gpu_sim::machine::GpuConfig::default());
        for w in workloads() {
            let launches = w.build(&mut gpu, Size::Test);
            let any_scoped = launches
                .iter()
                .any(|l| nvbit_sim::inspect::census(&l.kernel).block_scope_atomics > 0);
            assert!(any_scoped, "{} must contain a block-scope atomic", w.name);
        }
    }

    #[test]
    fn workloads_run_to_completion_natively() {
        for w in workloads() {
            let mut gpu = Gpu::new(gpu_sim::machine::GpuConfig {
                seed: 5,
                ..gpu_sim::machine::GpuConfig::default()
            });
            let launches = w.build(&mut gpu, Size::Test);
            for l in &launches {
                gpu.launch(
                    &l.kernel,
                    l.grid,
                    l.block,
                    &l.params,
                    &mut gpu_sim::hook::NullHook,
                )
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            }
        }
    }
}
