//! SlabHash (Ashkiani et al., a dynamic GPU hash table): `slabhash_test`
//! with the 1 DR race iGUARD reported. Multi-file library (Barracuda
//! cannot embed its PTX).

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::{addr, busy_work, seed_inter_block, work_iters};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

/// The SlabHash workload of Table 4.
pub fn workloads() -> Vec<Workload> {
    vec![Workload {
        name: "slabhash_test",
        suite: Suite::SlabHash,
        build: slabhash_test,
        multi_file: true,
        contention_heavy: false,
        paper_races: 1,
        tags: &[RaceTag::DR],
        barracuda: BarracudaExpectation::Unsupported,
    }]
}

/// Concurrent hash-table inserts: bucket claims via device-scope
/// `atomicCAS` (safe), slab allocation via a device-scope cursor (safe),
/// but the table's element count is published with a plain unfenced store
/// read by other blocks — the 1 DR site.
fn slabhash_test(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = match size {
        Size::Test => (4, 64),
        Size::Bench => (16, 128),
    };
    let n = grid * block;
    let buckets = gpu.alloc(256).expect("alloc buckets");
    let alloc_cursor = gpu.alloc(1).expect("alloc cursor");
    let aux = gpu.alloc(grid as usize + 8).expect("alloc aux");
    let mut b = KernelBuilder::new("slabhash_kernel");
    let pbuckets = b.param(0);
    let pcursor = b.param(1);
    let paux = b.param(2);
    busy_work(&mut b, work_iters(size));
    // Clean insert: claim bucket (hash(g) % 256) with device atomicCAS;
    // on failure, allocate a new slab slot from the cursor.
    let g = b.special(Special::GlobalTid);
    let h = b.mul(g, 0x9E3779B9u32);
    let bkt = b.rem(h, 256u32);
    let ba = addr(&mut b, pbuckets, bkt);
    let zero = b.imm(0);
    let g1 = b.add(g, 1u32); // key (nonzero)
    b.loc("insert: atomicCAS(bucket, EMPTY, key)");
    let old = b.atomic_cas(Scope::Device, ba, 0, zero, g1);
    let won = b.eq(old, 0u32);
    let fin = b.fwd_label();
    b.bra_if(won, fin);
    let one = b.imm(1);
    b.loc("collision: allocate slab slot");
    let _ = b.atom(AtomOp::Add, Scope::Device, pcursor, 0, one);
    b.bind(fin);
    let _ = n;
    // The bug: the running element count is published unfenced.
    seed_inter_block(&mut b, paux, 4, "slabhash element count");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![buckets, alloc_cursor, aux],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::machine::GpuConfig;

    #[test]
    fn slabhash_runs_natively() {
        let w = &workloads()[0];
        let mut gpu = Gpu::new(GpuConfig {
            seed: 3,
            ..GpuConfig::default()
        });
        for l in &w.build(&mut gpu, Size::Test) {
            gpu.launch(
                &l.kernel,
                l.grid,
                l.block,
                &l.params,
                &mut gpu_sim::hook::NullHook,
            )
            .unwrap();
        }
    }
}
