//! SHoC (Scalable Heterogeneous Computing benchmark suite): `shocbfs`,
//! the breadth-first-search kernel with the 2 intra-block races Barracuda
//! also found (Table 4). Single-file: Barracuda runs it (slowly — the
//! paper measured 60× vs iGUARD's 2.8×).

use gpu_sim::asm::KernelBuilder;
use gpu_sim::ir::{AtomOp, Scope, Special};
use gpu_sim::machine::Gpu;

use crate::util::{addr, busy_work, seed_intra_block, work_iters};
use crate::{BarracudaExpectation, Launch, RaceTag, Size, Suite, Workload};

/// The SHoC workload of Table 4.
pub fn racey_workloads() -> Vec<Workload> {
    vec![Workload {
        name: "shocbfs",
        suite: Suite::Shoc,
        build: shocbfs,
        multi_file: false,
        contention_heavy: false,
        paper_races: 2,
        tags: &[RaceTag::BR],
        barracuda: BarracudaExpectation::Races(2),
    }]
}

/// BFS level expansion: the frontier queue is maintained with device-scope
/// atomics (safe); the per-block next-frontier staging misses its barriers
/// in two places (2 BR sites).
fn shocbfs(gpu: &mut Gpu, size: Size) -> Vec<Launch> {
    let (grid, block) = match size {
        Size::Test => (4, 64),
        Size::Bench => (16, 128),
    };
    let n = (grid * block) as usize;
    let levels = gpu.alloc(n).expect("alloc levels");
    let frontier_len = gpu.alloc(1).expect("alloc frontier");
    let aux = gpu.alloc(grid as usize + 72).expect("alloc aux");
    for i in 0..n {
        gpu.write(levels, i, u32::MAX);
    }
    gpu.write(levels, 0, 0);
    let mut b = KernelBuilder::new("shocbfs_kernel");
    let plev = b.param(0);
    let pflen = b.param(1);
    let paux = b.param(2);
    busy_work(&mut b, work_iters(size));
    // Clean expand: if my level is set, relax my ring neighbour with
    // atomicMin and bump the frontier length with a device atomic.
    let g = b.special(Special::GlobalTid);
    let la = addr(&mut b, plev, g);
    let lv = b.ld(la, 0);
    let unvisited = b.eq(lv, u32::MAX);
    let fin = b.fwd_label();
    b.bra_if(unvisited, fin);
    let gd = b.special(Special::GridDim);
    let bd = b.special(Special::BlockDim);
    let nt = b.mul(gd, bd);
    let g1 = b.add(g, 1u32);
    let nb = b.rem(g1, nt);
    let na = addr(&mut b, plev, nb);
    let lv1 = b.add(lv, 1u32);
    b.loc("relax: atomicMin(levels[nb], lv+1)");
    let _ = b.atom(AtomOp::Min, Scope::Device, na, 0, lv1);
    let one = b.imm(1);
    let _ = b.atom(AtomOp::Add, Scope::Device, pflen, 0, one);
    b.bind(fin);
    // The two BR bugs Barracuda also caught.
    seed_intra_block(&mut b, paux, 8, "shocbfs next-frontier stage");
    seed_intra_block(&mut b, paux, 48, "shocbfs frontier count stage");
    let kernel = b.build();
    vec![Launch {
        kernel,
        grid,
        block,
        params: vec![levels, frontier_len, aux],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::machine::GpuConfig;

    #[test]
    fn shocbfs_runs_natively() {
        let w = &racey_workloads()[0];
        let mut gpu = Gpu::new(GpuConfig {
            seed: 3,
            ..GpuConfig::default()
        });
        for l in &w.build(&mut gpu, Size::Test) {
            gpu.launch(
                &l.kernel,
                l.grid,
                l.block,
                &l.params,
                &mut gpu_sim::hook::NullHook,
            )
            .unwrap();
        }
    }
}
