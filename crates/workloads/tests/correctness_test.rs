//! Output validation: the race-free workloads must compute what their
//! originals compute (against host-side references), under arbitrary ITS
//! schedules — they are real programs, not no-ops that merely avoid races.

use gpu_sim::hook::NullHook;
use gpu_sim::machine::{Gpu, GpuConfig};
use workloads::{Launch, Size};

fn run(name: &str, seed: u64) -> (Gpu, Vec<Launch>) {
    let w = workloads::by_name(name).unwrap_or_else(|| panic!("{name} exists"));
    let mut gpu = Gpu::new(GpuConfig {
        seed,
        ..GpuConfig::default()
    });
    let launches = w.build(&mut gpu, Size::Test);
    for l in &launches {
        gpu.launch(&l.kernel, l.grid, l.block, &l.params, &mut NullHook)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    (gpu, launches)
}

#[test]
fn hotspot_matches_the_host_stencil() {
    let (gpu, launches) = run("hotspot", 11);
    let n = 4 * 64usize;
    // Reconstruct the two passes on the host.
    let mut a: Vec<u64> = (0..n + 2).map(|i| (i % 17) as u64 + 1).collect();
    let mut b = vec![0u64; n + 2];
    for (src, dst) in [(0, 1), (1, 0)] {
        let bufs: [&Vec<u64>; 2] = [&a.clone(), &b.clone()];
        let src_v = bufs[src].clone();
        let dst_v: &mut Vec<u64> = if dst == 0 { &mut a } else { &mut b };
        for g in 0..n {
            let s = src_v[g] + src_v[g + 1] + src_v[g + 2];
            dst_v[g + 1] = s * 2 / 7;
        }
    }
    // After pass1 (a->b) and pass2 (b->a), compare `a`.
    let a_dev = launches[0].params[0];
    let got = gpu.read_slice(a_dev, n + 2);
    for i in 0..n + 2 {
        assert_eq!(u64::from(got[i]), a[i] & 0xFFFF_FFFF, "cell {i}");
    }
}

#[test]
fn pathfinder_matches_the_host_dp() {
    let (gpu, launches) = run("pathfinder", 12);
    let n = 4 * 64usize;
    let mut row0: Vec<u32> = (0..n + 2).map(|i| ((i * 7) % 19) as u32).collect();
    let mut row1 = vec![0u32; n + 2];
    for _pass in 0..2 {
        for g in 0..n {
            let m = row0[g].min(row0[g + 1]).min(row0[g + 2]);
            row1[g + 1] = m + 1;
        }
        std::mem::swap(&mut row0, &mut row1);
    }
    let dev_row0 = launches[0].params[0];
    let got = gpu.read_slice(dev_row0, n + 2);
    assert_eq!(got, row0);
}

#[test]
fn needle_matches_the_host_wavefront() {
    let (gpu, launches) = run("needle", 13);
    let n = 4 * 64usize;
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let cur: Vec<u32> = (0..=n as u32).map(|i| i.wrapping_mul(2)).collect();
    let mut next = vec![0u32; n + 1];
    // Band 1: (prev, cur) -> next. Band 2: (cur, next) -> prev.
    for band in 0..2 {
        let (p, c, d): (&Vec<u32>, &Vec<u32>, &mut Vec<u32>) = if band == 0 {
            (&prev.clone(), &cur.clone(), &mut next)
        } else {
            (&cur.clone(), &next.clone(), &mut prev)
        };
        for g in 0..n {
            d[g + 1] = (p[g] + 1).max(c[g]).max(c[g + 1]);
        }
        let _ = (p, c);
    }
    let dev_prev = launches[0].params[0];
    let got = gpu.read_slice(dev_prev, n + 1);
    assert_eq!(got, prev);
}

#[test]
fn dwt2d_produces_averages_and_differences() {
    let (gpu, launches) = run("dwt2d", 14);
    let data_dev = launches[0].params[0];
    let coeff_dev = launches[0].params[1];
    let block = 64usize;
    for blk in 0..4usize {
        let base = blk * block;
        let data = gpu.read_slice(data_dev + (base * 4) as u32, block);
        let coeff = gpu.read_slice(coeff_dev + (base * 4) as u32, block);
        let half = block / 2;
        for t in 0..half {
            let avg = (data[2 * t] + data[2 * t + 1]) / 2;
            assert_eq!(coeff[t], avg, "block {blk} avg {t}");
            let diff = data[2 * t].wrapping_sub(avg);
            assert_eq!(coeff[half + t], diff, "block {blk} diff {t}");
        }
    }
}

#[test]
fn hybridsort_histogram_counts_every_key() {
    let (gpu, launches) = run("hybridsort", 15);
    let hist_dev = launches[0].params[1];
    let total: u32 = gpu.read_slice(hist_dev, 16).iter().sum();
    assert_eq!(total, 4 * 64, "one histogram increment per key");
}

#[test]
fn srad_is_deterministic_across_schedules() {
    let (g1, l1) = run("srad", 21);
    let (g2, l2) = run("srad", 99);
    let n = 4 * 64 + 2;
    assert_eq!(
        g1.read_slice(l1[0].params[0], n),
        g2.read_slice(l2[0].params[0], n),
        "a race-free stencil must be schedule-invariant"
    );
}

#[test]
fn clean_workloads_are_schedule_invariant() {
    // Output determinism across schedules is the behavioural definition of
    // race-freedom; spot-check the compaction family's kept-counts.
    for name in ["d_sel_if", "d_part_flag", "d_sel_uniq"] {
        let (g1, l1) = run(name, 1);
        let (g2, l2) = run(name, 1234);
        let c1 = g1.read_slice(l1[0].params[4], 2);
        let c2 = g2.read_slice(l2[0].params[4], 2);
        assert_eq!(
            c1, c2,
            "{name}: cursor counts must not depend on the schedule"
        );
    }
}
