//! Edge cases of the device→host channel and the per-name analysis cache.

use gpu_sim::machine::{Gpu, GpuConfig};
use gpu_sim::prelude::*;
use gpu_sim::timing::{Clock, CostCategory};
use nvbit_sim::channel::HostChannel;
use nvbit_sim::{Instrumented, Tool};

fn channel(capacity: usize) -> HostChannel<u32> {
    HostChannel::new(capacity, 5, 40, CostCategory::Detection).unwrap()
}

#[test]
fn draining_an_empty_channel_is_a_free_noop() {
    let mut ch = channel(8);
    assert_eq!(ch.pending(), 0);
    assert!(ch.drain().is_empty());
    // Idempotent: a second drain is just as empty, and no counter moved.
    assert!(ch.drain().is_empty());
    let s = ch.stats();
    assert_eq!((s.sent, s.drained, s.full_flushes), (0, 0, 0));
}

#[test]
fn drain_returns_records_in_ship_order_exactly_once() {
    let mut ch = channel(8);
    let mut clock = Clock::new();
    for v in 0..5 {
        ch.send(v, &mut clock);
    }
    assert_eq!(ch.pending(), 5);
    assert_eq!(ch.drain(), vec![0, 1, 2, 3, 4]);
    assert_eq!(ch.pending(), 0);
    // Already-drained records never reappear.
    assert!(ch.drain().is_empty());
    let s = ch.stats();
    assert_eq!((s.sent, s.drained, s.full_flushes), (5, 5, 0));
}

#[test]
fn hitting_capacity_forces_a_flush_and_charges_it() {
    let mut ch = channel(3);
    let mut clock = Clock::new();
    for v in 0..3 {
        ch.send(v, &mut clock);
    }
    // The third send filled the buffer: flushed to the host side already.
    assert_eq!(ch.pending(), 0);
    assert_eq!(ch.stats().full_flushes, 1);
    // 3 ship charges + 1 flush charge, all serial.
    let (_, serial) = clock.raw(CostCategory::Detection);
    assert_eq!(serial, 3 * 5 + 40);
    // Flushed records are retained for the final drain, still in order.
    ch.send(99, &mut clock);
    assert_eq!(ch.drain(), vec![0, 1, 2, 99]);
    assert_eq!(ch.stats().drained, 4);
}

/// A tool that counts callbacks; used to observe the analysis cache.
#[derive(Default)]
struct Counter {
    mem: u64,
}

impl Tool for Counter {
    fn on_mem(&mut self, _access: &gpu_sim::hook::MemAccess<'_>, _clock: &mut Clock) {
        self.mem += 1;
    }
}

fn store_kernel() -> Kernel {
    let mut b = KernelBuilder::new("edge_cached");
    let base = b.param(0);
    let one = b.imm(1);
    b.st(base, 0, one);
    b.build()
}

/// NVBit caches instrumented functions by name: rebuilding the same-named
/// kernel (a brand-new `Arc<str>` identity) must not re-charge the
/// one-time binary analysis, and callbacks keep firing on the rebuilt
/// kernel.
#[test]
fn analysis_is_charged_once_across_kernel_rebuilds() {
    let mut gpu = Gpu::new(GpuConfig::default());
    let buf = gpu.alloc(4).unwrap();
    let mut tool = Instrumented::new(Counter::default());

    let first = store_kernel();
    gpu.launch(&first, 1, 1, &[buf], &mut tool).unwrap();
    let (_, after_first) = gpu.clock().raw(gpu_sim::timing::CostCategory::Nvbit);
    assert!(after_first > 0, "first launch must pay analysis");
    assert_eq!(tool.tool().mem, 1);

    // Fresh build: same name, different Arc.
    let rebuilt = store_kernel();
    assert!(!std::sync::Arc::ptr_eq(&first.name, &rebuilt.name));
    gpu.launch(&rebuilt, 1, 1, &[buf], &mut tool).unwrap();
    let (_, after_second) = gpu.clock().raw(gpu_sim::timing::CostCategory::Nvbit);
    assert_eq!(
        after_first, after_second,
        "rebuilt same-named kernel re-paid analysis"
    );
    assert_eq!(tool.tool().mem, 2, "callback lost after rebuild");
}
