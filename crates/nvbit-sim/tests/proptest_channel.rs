//! Property tests of the channel's loss-accounting invariant under random
//! fault schedules: whatever the fault plane does to records in transit,
//! after a full drain every send is either delivered or counted lost —
//! `sent == drained + dropped` — and each fault site's fires land in its
//! dedicated [`ChannelStats`] counter.

use faults::{FaultConfig, FaultInjector, FaultSite, RATE_ONE};
use gpu_sim::timing::{Clock, CostCategory};
use nvbit_sim::channel::HostChannel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The accounting invariant holds for every combination of buffer
    /// capacity, fault seed, per-site rates (from never to always), and
    /// traffic volume.
    #[test]
    fn sent_equals_drained_plus_dropped_under_any_fault_schedule(
        capacity in 1usize..64,
        seed in any::<u64>(),
        drop_rate in 0u32..=RATE_ONE,
        corrupt_rate in 0u32..=RATE_ONE,
        overflow_rate in 0u32..=RATE_ONE,
        sends in 0usize..300,
    ) {
        let cfg = FaultConfig::disabled()
            .with_seed(seed)
            .with_rate(FaultSite::ReportDrop, drop_rate)
            .with_rate(FaultSite::ReportCorrupt, corrupt_rate)
            .with_rate(FaultSite::ChannelOverflow, overflow_rate);
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(capacity, 1, 10, CostCategory::Misc).unwrap();
        ch.set_faults(FaultInjector::new(&cfg, "prop"));
        for i in 0..sends {
            ch.send(i, &mut clk);
        }
        let survivors = ch.drain().len() as u64;
        let s = ch.stats();
        prop_assert_eq!(s.sent, sends as u64);
        prop_assert_eq!(s.sent, s.drained + s.dropped);
        prop_assert_eq!(s.drained, survivors);

        // Per-site traceability: corruption and failed flushes map 1:1
        // onto their counters; drop fires share the aggregate `dropped`
        // with corruption singles and overflow bulk losses, so the bound
        // there is one-sided.
        let f = ch.fault_stats();
        prop_assert_eq!(f.get(FaultSite::ReportCorrupt), s.corrupted);
        prop_assert_eq!(f.get(FaultSite::ChannelOverflow), s.overflow_drops);
        prop_assert!(s.dropped >= f.get(FaultSite::ReportDrop) + s.corrupted);
        prop_assert!(s.corrupted <= s.dropped);
    }

    /// A zero-rate plane is byte-invisible: same deliveries, zero losses,
    /// zero fires, regardless of its seed.
    #[test]
    fn zero_rate_plane_loses_nothing(
        seed in any::<u64>(),
        capacity in 1usize..32,
        sends in 0usize..200,
    ) {
        let cfg = FaultConfig::disabled().with_seed(seed);
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(capacity, 1, 10, CostCategory::Misc).unwrap();
        ch.set_faults(FaultInjector::new(&cfg, "prop"));
        for i in 0..sends {
            ch.send(i, &mut clk);
        }
        prop_assert_eq!(ch.drain(), (0..sends).collect::<Vec<_>>());
        let s = ch.stats();
        prop_assert_eq!(s.dropped, 0);
        prop_assert_eq!(ch.fault_stats().total(), 0);
    }
}
