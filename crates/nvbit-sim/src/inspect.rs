//! Static inspection of loaded kernel objects — the `nvbit_get_instrs`
//! analogue. Tools use this to reason about a binary before execution
//! (e.g. Barracuda's refusal to handle multi-file PTX, or a tool deciding
//! which opcode classes to instrument).

use gpu_sim::ir::{Instr, Scope};
use gpu_sim::kernel::Kernel;

/// Static opcode census of one kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCensus {
    /// Total static instructions.
    pub total: usize,
    /// Global loads.
    pub global_loads: usize,
    /// Global stores.
    pub global_stores: usize,
    /// Atomics, any scope.
    pub atomics: usize,
    /// Atomics with block scope (the class Barracuda cannot handle).
    pub block_scope_atomics: usize,
    /// Fences, any scope.
    pub fences: usize,
    /// `__syncthreads()`.
    pub block_barriers: usize,
    /// `__syncwarp()` (the class pre-ITS tools cannot handle).
    pub warp_barriers: usize,
    /// Shared-memory accesses (outside iGUARD's global-memory focus).
    pub shared_accesses: usize,
}

/// Walks a kernel's static code and classifies every instruction.
#[must_use]
pub fn census(kernel: &Kernel) -> KernelCensus {
    let mut c = KernelCensus {
        total: kernel.code.len(),
        ..KernelCensus::default()
    };
    for instr in &kernel.code {
        match instr {
            Instr::Ld { space, .. } => {
                if instr.is_global_access() {
                    c.global_loads += 1;
                } else {
                    let _ = space;
                    c.shared_accesses += 1;
                }
            }
            Instr::St { .. } => {
                if instr.is_global_access() {
                    c.global_stores += 1;
                } else {
                    c.shared_accesses += 1;
                }
            }
            Instr::Atom { scope, .. } => {
                c.atomics += 1;
                if *scope == Scope::Block {
                    c.block_scope_atomics += 1;
                }
            }
            Instr::Membar { .. } => c.fences += 1,
            Instr::BarSync => c.block_barriers += 1,
            Instr::BarWarp => c.warp_barriers += 1,
            _ => {}
        }
    }
    c
}

/// Instructions a tool would instrument with the default (memory + sync)
/// predicate — useful for estimating instrumentation density.
#[must_use]
pub fn default_instrumentation_points(kernel: &Kernel) -> Vec<usize> {
    kernel
        .code
        .iter()
        .enumerate()
        .filter(|(_, i)| i.is_global_access() || i.is_sync())
        .map(|(pc, _)| pc)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::prelude::*;

    fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("census_me");
        b.shared(4);
        let base = b.param(0);
        let tid = b.special(Special::Tid);
        let v = b.ld(base, 0);
        b.st(base, 1, v);
        let soff = b.mul(tid, 4u32);
        let s = b.ld_shared(soff, 0);
        b.st_shared(soff, 0, s);
        let one = b.imm(1);
        let _ = b.atomic_add(Scope::Block, base, 2, one);
        let _ = b.atomic_add(Scope::Device, base, 3, one);
        b.membar(Scope::Block);
        b.membar(Scope::Device);
        b.syncthreads();
        b.syncwarp();
        b.build()
    }

    #[test]
    fn census_counts_every_class() {
        let c = census(&kernel());
        assert_eq!(c.global_loads, 1);
        assert_eq!(c.global_stores, 1);
        assert_eq!(c.shared_accesses, 2);
        assert_eq!(c.atomics, 2);
        assert_eq!(c.block_scope_atomics, 1);
        assert_eq!(c.fences, 2);
        assert_eq!(c.block_barriers, 1);
        assert_eq!(c.warp_barriers, 1);
    }

    #[test]
    fn instrumentation_points_exclude_alu_and_shared() {
        let k = kernel();
        let pts = default_instrumentation_points(&k);
        // 2 global accesses + 2 atomics + 2 fences + 2 barriers.
        assert_eq!(pts.len(), 8);
        for pc in pts {
            let i = &k.code[pc];
            assert!(i.is_global_access() || i.is_sync());
        }
    }
}
