//! # nvbit-sim: dynamic binary instrumentation for the simulated GPU
//!
//! iGUARD is implemented as an NVBit tool (§5): NVBit inspects the SASS of
//! each kernel as it is loaded, lets the tool pick instrumentation points,
//! and injects device-function callbacks — **no recompilation or source
//! access**, which is what lets the detector attach to closed-source
//! libraries. This crate reproduces that layer over `gpu-sim`:
//!
//! - [`inspect`] — static analysis of loaded kernel objects (the
//!   `nvbit_get_instrs` analogue), with per-pc instrumentation predicates;
//! - [`Tool`] — the tool-side interface (`instrument` + runtime callbacks);
//! - [`Instrumented`] — the adapter that mounts a tool onto the GPU's hook
//!   interface, charging realistic *framework* costs: one-time binary
//!   analysis per kernel (Figure 13's "NVBit" bar) and per-dynamic-callback
//!   dispatch overhead (Figure 13's "Instrumentation" bar);
//! - [`channel`] — a device→host channel with per-record shipping costs
//!   (what Barracuda pays for every event, and iGUARD only for race
//!   reports);
//! - [`pipeline`] — the host-side bounded producer/consumer stage that
//!   lets detection drain on worker threads while simulation continues
//!   (backpressure, never drops, wait-time accounting).

#![forbid(unsafe_code)]

pub mod channel;
pub mod inspect;
pub mod pipeline;

use gpu_sim::hook::{Hook, LaunchInfo, MemAccess, SyncEvent};
use gpu_sim::timing::{Clock, CostCategory};

use std::sync::Arc;

/// Framework cost parameters (cycles).
#[derive(Debug, Clone)]
pub struct NvbitConfig {
    /// One-time binary analysis + injection cost per static instruction of
    /// each kernel (SASS disassembly, CFG build, patching).
    pub analysis_cost_per_instr: u64,
    /// Fixed one-time cost per kernel (module load, relocation).
    pub analysis_cost_fixed: u64,
    /// Dispatch cost per instrumented dynamic memory access (spill, call
    /// injected device function, restore) — charged even if the tool then
    /// does nothing.
    pub callback_cost_mem: u64,
    /// Dispatch cost per instrumented dynamic synchronization operation.
    pub callback_cost_sync: u64,
}

impl Default for NvbitConfig {
    fn default() -> Self {
        NvbitConfig {
            analysis_cost_per_instr: 1,
            analysis_cost_fixed: 60,
            callback_cost_mem: 6,
            callback_cost_sync: 4,
        }
    }
}

/// The interface an instrumentation tool (iGUARD, Barracuda, ...) presents
/// to the framework. Mirrors NVBit's tool API shape: a static `instrument`
/// decision per instruction plus runtime callbacks.
pub trait Tool {
    /// Whether the framework should inject a callback at this static
    /// instruction. The default instruments all global-memory accesses and
    /// synchronization operations — exactly iGUARD's selection (§5).
    fn wants(&self, instr: &gpu_sim::ir::Instr) -> bool {
        instr.is_global_access() || instr.is_sync()
    }

    /// Kernel launch (after framework analysis).
    fn at_launch(&mut self, _info: &LaunchInfo, _clock: &mut Clock) {}

    /// Kernel completion.
    fn at_exit(&mut self, _info: &LaunchInfo, _clock: &mut Clock) {}

    /// An instrumented dynamic global-memory access.
    fn on_mem(&mut self, _access: &MemAccess<'_>, _clock: &mut Clock) {}

    /// An instrumented dynamic synchronization operation.
    fn on_sync(&mut self, _event: &SyncEvent<'_>, _clock: &mut Clock) {}
}

/// Mounts a [`Tool`] onto the GPU as a [`Hook`], adding framework costs.
///
/// Analysis runs once per kernel *name* (NVBit caches instrumented
/// functions); the per-pc instrumentation bitmap produced by the tool's
/// [`Tool::wants`] gates callbacks so un-instrumented instructions run at
/// native speed.
pub struct Instrumented<T: Tool> {
    tool: T,
    cfg: NvbitConfig,
    /// kernel name → per-pc "has callback" bitmap. Kernel names are
    /// interned (`Arc<str>`), so the common case — consecutive accesses
    /// from the same kernel object — resolves with one pointer compare
    /// against `cursor` instead of hashing the name per access. Analysis
    /// still caches by *name* (NVBit caches instrumented functions), so a
    /// same-named kernel loaded twice reuses the first bitmap.
    maps: Vec<(Arc<str>, Vec<bool>)>,
    /// Index into `maps` of the most recently resolved kernel.
    cursor: usize,
}

impl<T: Tool> Instrumented<T> {
    /// Wraps `tool` with default framework costs.
    pub fn new(tool: T) -> Self {
        Self::with_config(tool, NvbitConfig::default())
    }

    /// Wraps `tool` with explicit framework costs.
    pub fn with_config(tool: T, cfg: NvbitConfig) -> Self {
        Instrumented {
            tool,
            cfg,
            maps: Vec::new(),
            cursor: 0,
        }
    }

    /// The wrapped tool.
    pub fn tool(&self) -> &T {
        &self.tool
    }

    /// Mutable access to the wrapped tool (drain reports, read stats).
    pub fn tool_mut(&mut self) -> &mut T {
        &mut self.tool
    }

    /// Unwraps the tool.
    pub fn into_tool(self) -> T {
        self.tool
    }

    /// Resolves (analyzing on first sight) the bitmap index for `kernel`.
    fn map_index(&mut self, kernel: &gpu_sim::kernel::Kernel, clock: &mut Clock) -> usize {
        if let Some((name, _)) = self.maps.get(self.cursor) {
            if Arc::ptr_eq(name, &kernel.name) {
                return self.cursor;
            }
        }
        if let Some(i) = self
            .maps
            .iter()
            .position(|(name, _)| Arc::ptr_eq(name, &kernel.name) || **name == *kernel.name)
        {
            self.cursor = i;
            return i;
        }
        // One-time, host-side (serial) binary analysis.
        let cost = self.cfg.analysis_cost_fixed
            + self.cfg.analysis_cost_per_instr * kernel.code.len() as u64;
        clock.charge_serial(CostCategory::Nvbit, cost);
        let map = kernel.code.iter().map(|i| self.tool.wants(i)).collect();
        self.maps.push((kernel.name.clone(), map));
        self.cursor = self.maps.len() - 1;
        self.cursor
    }
}

impl<T: Tool> Hook for Instrumented<T> {
    fn on_kernel_launch(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        self.tool.at_launch(info, clock);
    }

    fn on_kernel_end(&mut self, info: &LaunchInfo, clock: &mut Clock) {
        self.tool.at_exit(info, clock);
    }

    fn on_mem_access(&mut self, access: &MemAccess<'_>, clock: &mut Clock) {
        let idx = self.map_index(access.kernel, clock);
        if !self.maps[idx]
            .1
            .get(access.pc)
            .copied()
            .unwrap_or(false)
        {
            return;
        }
        clock.charge(CostCategory::Instrumentation, self.cfg.callback_cost_mem);
        self.tool.on_mem(access, clock);
    }

    fn on_sync(&mut self, event: &SyncEvent<'_>, clock: &mut Clock) {
        // Barrier releases carry no kernel/pc; they are always relevant to
        // tools that instrument synchronization, so dispatch them all.
        clock.charge(CostCategory::Instrumentation, self.cfg.callback_cost_sync);
        self.tool.on_sync(event, clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::prelude::*;

    /// Tool that counts callbacks and records what it saw.
    #[derive(Default)]
    struct Probe {
        mems: u64,
        syncs: u64,
        launches: u64,
        exits: u64,
    }

    impl Tool for Probe {
        fn at_launch(&mut self, _i: &LaunchInfo, _c: &mut Clock) {
            self.launches += 1;
        }
        fn at_exit(&mut self, _i: &LaunchInfo, _c: &mut Clock) {
            self.exits += 1;
        }
        fn on_mem(&mut self, _a: &MemAccess<'_>, _c: &mut Clock) {
            self.mems += 1;
        }
        fn on_sync(&mut self, _e: &SyncEvent<'_>, _c: &mut Clock) {
            self.syncs += 1;
        }
    }

    fn test_kernel() -> Kernel {
        let mut b = KernelBuilder::new("probe_me");
        let base = b.param(0);
        let tid = b.special(Special::Tid);
        let off = b.mul(tid, 4u32);
        let addr = b.add(base, off);
        let v = b.ld(addr, 0);
        let v2 = b.add(v, 1u32);
        b.st(addr, 0, v2);
        b.syncthreads();
        b.membar(Scope::Device);
        b.build()
    }

    #[test]
    fn tool_receives_instrumented_events() {
        let mut gpu = Gpu::new(GpuConfig::default());
        let buf = gpu.alloc(64).unwrap();
        let mut inst = Instrumented::new(Probe::default());
        gpu.launch(&test_kernel(), 1, 32, &[buf], &mut inst)
            .unwrap();
        let p = inst.tool();
        assert_eq!(p.launches, 1);
        assert_eq!(p.exits, 1);
        assert!(p.mems >= 2, "load + store splits, got {}", p.mems);
        assert!(p.syncs >= 2, "barrier + fence, got {}", p.syncs);
    }

    #[test]
    fn analysis_cost_charged_once_per_kernel() {
        let mut gpu = Gpu::new(GpuConfig::default());
        let buf = gpu.alloc(64).unwrap();
        let mut inst = Instrumented::new(Probe::default());
        let k = test_kernel();
        gpu.launch(&k, 1, 32, &[buf], &mut inst).unwrap();
        let after_first = gpu.clock().raw(CostCategory::Nvbit).1;
        assert!(after_first > 0);
        gpu.launch(&k, 1, 32, &[buf], &mut inst).unwrap();
        let after_second = gpu.clock().raw(CostCategory::Nvbit).1;
        assert_eq!(after_first, after_second, "NVBit analysis must be cached");
    }

    #[test]
    fn dispatch_cost_charged_per_dynamic_callback() {
        let mut gpu = Gpu::new(GpuConfig::default());
        let buf = gpu.alloc(64).unwrap();
        let mut inst = Instrumented::new(Probe::default());
        gpu.launch(&test_kernel(), 1, 32, &[buf], &mut inst)
            .unwrap();
        let (par, _) = gpu.clock().raw(CostCategory::Instrumentation);
        assert!(par > 0, "instrumentation dispatch must cost cycles");
    }

    /// A tool that opts out of everything sees no memory callbacks and
    /// costs (almost) nothing — NVBit's selective instrumentation.
    struct Selective;

    impl Tool for Selective {
        fn wants(&self, _i: &gpu_sim::ir::Instr) -> bool {
            false
        }
    }

    #[test]
    fn uninstrumented_instructions_run_without_dispatch_cost() {
        let mut gpu = Gpu::new(GpuConfig::default());
        let buf = gpu.alloc(64).unwrap();
        let mut inst = Instrumented::new(Selective);
        gpu.launch(&test_kernel(), 1, 32, &[buf], &mut inst)
            .unwrap();
        let (mem_dispatch, _) = gpu.clock().raw(CostCategory::Instrumentation);
        // Only sync dispatches remain (they carry no pc filter).
        let sync_cost = NvbitConfig::default().callback_cost_sync;
        assert!(mem_dispatch <= sync_cost * 4, "got {mem_dispatch}");
    }
}
