//! Bounded blocking producer/consumer stage for the sim→detect pipeline.
//!
//! [`crate::channel::HostChannel`] models the *simulated* device→host
//! buffer (cycle costs, fault plane); this module is the *host-side*
//! concurrency primitive that lets detection drain on worker threads
//! while the machine keeps simulating. It is a deliberately small
//! `Mutex` + `Condvar` queue with three properties the sharded detector
//! depends on:
//!
//! - **Bounded with backpressure**: `send` blocks when the queue is at
//!   capacity and *never drops* — determinism comes from losslessness,
//!   not best-effort delivery.
//! - **FIFO**: a consumer observes messages in exactly the order one
//!   producer sent them, which is what keeps shard workers' event order
//!   equal to the inline (single-threaded) execution.
//! - **Accounted**: wait times on both sides and the high-water depth are
//!   recorded in [`PipeStats`], feeding the busy-vs-idle utilization
//!   numbers in `bench --bin perf`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Counters for one pipe, cumulative since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Messages accepted by `send`.
    pub pushed: u64,
    /// Messages handed out by `recv`/`try_recv`.
    pub popped: u64,
    /// `send` calls that found the queue full and had to block.
    pub blocked_sends: u64,
    /// Wall nanoseconds producers spent blocked on a full queue.
    pub producer_wait_ns: u64,
    /// Wall nanoseconds consumers spent blocked on an empty queue.
    pub consumer_wait_ns: u64,
    /// Maximum queue depth observed.
    pub max_depth: usize,
}

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    stats: PipeStats,
    senders: usize,
    receiver_alive: bool,
}

#[derive(Debug)]
struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    /// Signalled when the queue gains an item or the senders go away.
    not_empty: Condvar,
    /// Signalled when the queue loses an item or the receiver goes away.
    not_full: Condvar,
}

/// Sending half of a bounded pipe. Clonable: multiple producers may feed
/// one consumer (messages interleave at `send` granularity).
#[derive(Debug)]
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a bounded pipe.
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A send failed because the receiver is gone; the message is returned.
#[derive(Debug, PartialEq, Eq)]
pub struct Disconnected<T>(pub T);

/// Creates a bounded pipe. `capacity` is clamped to at least 1.
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity.max(1)),
            stats: PipeStats::default(),
            senders: 1,
            receiver_alive: true,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while the queue is at capacity. Returns
    /// the message if the receiver has been dropped (the only way a
    /// message can fail to be delivered).
    pub fn send(&self, msg: T) -> Result<(), Disconnected<T>> {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        if st.queue.len() >= self.shared.capacity && st.receiver_alive {
            st.stats.blocked_sends += 1;
            let t0 = Instant::now();
            while st.queue.len() >= self.shared.capacity && st.receiver_alive {
                st = self.shared.not_full.wait(st).expect("pipe poisoned");
            }
            st.stats.producer_wait_ns += t0.elapsed().as_nanos() as u64;
        }
        if !st.receiver_alive {
            return Err(Disconnected(msg));
        }
        st.queue.push_back(msg);
        st.stats.pushed += 1;
        st.stats.max_depth = st.stats.max_depth.max(st.queue.len());
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Current pipe counters.
    #[must_use]
    pub fn stats(&self) -> PipeStats {
        self.shared.state.lock().expect("pipe poisoned").stats
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("pipe poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake a consumer blocked on an empty queue so it can see EOF.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the queue is empty.
    /// Returns `None` once every sender is dropped *and* the queue has
    /// drained — the clean end-of-stream.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        if st.queue.is_empty() && st.senders > 0 {
            let t0 = Instant::now();
            while st.queue.is_empty() && st.senders > 0 {
                st = self.shared.not_empty.wait(st).expect("pipe poisoned");
            }
            st.stats.consumer_wait_ns += t0.elapsed().as_nanos() as u64;
        }
        let msg = st.queue.pop_front();
        if msg.is_some() {
            st.stats.popped += 1;
            drop(st);
            self.shared.not_full.notify_one();
        }
        msg
    }

    /// Non-blocking variant of [`Receiver::recv`]: `None` means "empty
    /// right now", not end-of-stream.
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        let msg = st.queue.pop_front();
        if msg.is_some() {
            st.stats.popped += 1;
            drop(st);
            self.shared.not_full.notify_one();
        }
        msg
    }

    /// Messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("pipe poisoned").queue.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current pipe counters.
    #[must_use]
    pub fn stats(&self) -> PipeStats {
        self.shared.state.lock().expect("pipe poisoned").stats
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("pipe poisoned");
        st.receiver_alive = false;
        drop(st);
        // Release producers blocked on a full queue; their sends error.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_one_producer() {
        let (tx, rx) = bounded(8);
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "EOF is sticky");
    }

    #[test]
    fn send_to_dropped_receiver_returns_message() {
        let (tx, rx) = bounded(2);
        tx.send(41).unwrap();
        drop(rx);
        assert_eq!(tx.send(42), Err(Disconnected(42)));
    }

    /// Satellite: bounded-capacity backpressure. A slow consumer forces
    /// the producer to block on a full queue; every message still
    /// arrives, in order, with zero drops — `pushed == popped` exactly.
    #[test]
    fn backpressure_blocks_producer_and_never_drops() {
        const N: u64 = 200;
        const CAP: usize = 4;
        let (tx, rx) = bounded(CAP);
        let producer = thread::spawn(move || {
            for i in 0..N {
                tx.send(i).unwrap();
            }
            tx.stats()
        });
        // Slow consumer: sleep first so the producer definitely fills the
        // queue, then drain with small pauses.
        thread::sleep(Duration::from_millis(20));
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            if got.len() < 8 {
                thread::sleep(Duration::from_millis(1));
            }
            got.push(v);
        }
        let stats = producer.join().unwrap();
        assert_eq!(got, (0..N).collect::<Vec<_>>(), "lossless and in order");
        assert_eq!(stats.pushed, N);
        assert!(
            stats.blocked_sends > 0,
            "a capacity-{CAP} queue with a slow consumer must block sends"
        );
        assert!(stats.producer_wait_ns > 0);
        assert!(stats.max_depth <= CAP);
        let final_stats = rx.stats();
        assert_eq!(final_stats.popped, N, "never drops at rate 0");
    }

    #[test]
    fn capacity_bounds_queue_depth() {
        let (tx, rx) = bounded(3);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 3);
        // A 4th send would block; drain one and send again instead.
        assert_eq!(rx.recv(), Some(0));
        tx.send(3).unwrap();
        assert_eq!(rx.stats().max_depth, 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let (tx, rx) = bounded(0);
        tx.send(7u8).unwrap();
        assert_eq!(rx.recv(), Some(7));
    }

    #[test]
    fn consumer_wait_time_is_recorded() {
        let (tx, rx) = bounded::<u8>(2);
        let consumer = thread::spawn(move || {
            let v = rx.recv();
            (v, rx.stats())
        });
        thread::sleep(Duration::from_millis(10));
        tx.send(9).unwrap();
        let (v, stats) = consumer.join().unwrap();
        assert_eq!(v, Some(9));
        assert!(stats.consumer_wait_ns > 0);
    }
}
