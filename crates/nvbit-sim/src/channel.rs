//! Device→host communication channel.
//!
//! NVBit tools ship records from injected device code to a host-side
//! consumer through a pinned-memory channel. The *cost structure* of that
//! channel is what separates the two detectors in this reproduction:
//!
//! - **Barracuda** ships *every* memory/synchronization event and performs
//!   detection on the CPU — each record pays a serial (critical-path)
//!   shipping charge, because the host consumer is one thread and the
//!   device-side producers must serialize into the ring buffer. This is the
//!   paper's explanation for Barracuda's 10–1000× overheads (§4).
//! - **iGUARD** ships only *race reports* (a 1 MB buffer drained when full
//!   or at kernel end, §5 "Race reporting"), so channel cost is negligible
//!   unless a program races pathologically.
//!
//! The channel is also a fault-plane consumer: under an enabled
//! [`FaultInjector`] individual records can be dropped or corrupted in
//! transit, and a full-buffer flush can fail wholesale. Every lost record
//! lands in a [`ChannelStats`] counter, preserving the accounting
//! invariant `sent == drained + dropped` once the channel is fully
//! drained.

use std::fmt;

use faults::{FaultInjector, FaultSite, FaultStats};
use gpu_sim::timing::{Clock, CostCategory};

/// A structurally invalid channel configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The buffer must hold at least one record.
    ZeroCapacity,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::ZeroCapacity => write!(f, "channel capacity must be positive"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Send attempts by device-side code (including records later lost).
    pub sent: u64,
    /// Records consumed by the host side.
    pub drained: u64,
    /// Times the buffer filled and forced a synchronous flush.
    pub full_flushes: u64,
    /// Records lost in transit (drops, corruption, failed flushes).
    /// Invariant once fully drained: `sent == drained + dropped`.
    pub dropped: u64,
    /// Of `dropped`: records that arrived corrupted and were discarded by
    /// the host consumer.
    pub corrupted: u64,
    /// Full-buffer flushes that failed and lost their entire buffer.
    pub overflow_drops: u64,
}

/// A bounded device→host record channel with per-record serial cost.
#[derive(Debug)]
pub struct HostChannel<T> {
    buf: Vec<T>,
    capacity: usize,
    ship_cost: u64,
    flush_cost: u64,
    category: CostCategory,
    stats: ChannelStats,
    drained: Vec<T>,
    faults: FaultInjector,
}

impl<T> HostChannel<T> {
    /// A channel holding up to `capacity` records before it must flush.
    ///
    /// `ship_cost` is charged serially per record (ring-buffer slot
    /// reservation is a device-wide atomic); `flush_cost` is charged
    /// serially per forced flush (host round-trip).
    pub fn new(
        capacity: usize,
        ship_cost: u64,
        flush_cost: u64,
        category: CostCategory,
    ) -> Result<Self, ChannelError> {
        if capacity == 0 {
            return Err(ChannelError::ZeroCapacity);
        }
        Ok(HostChannel {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            ship_cost,
            flush_cost,
            category,
            stats: ChannelStats::default(),
            drained: Vec::new(),
            faults: FaultInjector::disabled(),
        })
    }

    /// Attaches a fault injector (replacing the default disabled one).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Ships one record, charging its costs to `clock`.
    ///
    /// Under injected faults the record can be lost in transit (dropped or
    /// corrupted — either way it never reaches the buffer and is counted
    /// in [`ChannelStats::dropped`]), and a forced flush can fail and lose
    /// the whole buffer.
    pub fn send(&mut self, record: T, clock: &mut Clock) {
        clock.charge_serial(self.category, self.ship_cost);
        self.stats.sent += 1;
        if self.faults.enabled() {
            if self.faults.fire(FaultSite::ReportCorrupt) {
                // Arrived mangled; the host consumer discards it.
                self.stats.corrupted += 1;
                self.stats.dropped += 1;
                return;
            }
            if self.faults.fire(FaultSite::ReportDrop) {
                self.stats.dropped += 1;
                return;
            }
        }
        self.buf.push(record);
        if self.buf.len() >= self.capacity {
            self.stats.full_flushes += 1;
            clock.charge_serial(self.category, self.flush_cost);
            if self.faults.enabled() && self.faults.fire(FaultSite::ChannelOverflow) {
                // The flush failed mid-transfer: everything buffered is lost.
                self.stats.overflow_drops += 1;
                self.stats.dropped += self.buf.len() as u64;
                self.buf.clear();
            } else {
                self.drain_internal();
            }
        }
    }

    fn drain_internal(&mut self) {
        self.stats.drained += self.buf.len() as u64;
        self.drained.append(&mut self.buf);
    }

    /// Host-side drain (kernel end / program exit): returns everything
    /// shipped so far, in order.
    pub fn drain(&mut self) -> Vec<T> {
        self.drain_internal();
        std::mem::take(&mut self.drained)
    }

    /// Records currently waiting in the device-side buffer.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Channel counters.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Injected-fault counters for this channel.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::{FaultConfig, RATE_ONE};

    #[test]
    fn records_arrive_in_order() {
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(100, 5, 50, CostCategory::Misc).unwrap();
        for i in 0..10 {
            ch.send(i, &mut clk);
        }
        assert_eq!(ch.drain(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ship_cost_is_serial_per_record() {
        let mut clk = Clock::new();
        clk.set_parallelism(1000.0);
        let mut ch = HostChannel::new(1000, 7, 0, CostCategory::Detection).unwrap();
        for i in 0..100 {
            ch.send(i, &mut clk);
        }
        // 100 records × 7 cycles, unamortized by parallelism.
        assert!((clk.time(CostCategory::Detection) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn full_buffer_forces_flush() {
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(4, 1, 100, CostCategory::Misc).unwrap();
        for i in 0..9 {
            ch.send(i, &mut clk);
        }
        assert_eq!(ch.stats().full_flushes, 2);
        assert_eq!(ch.pending(), 1);
        let all = ch.drain();
        assert_eq!(all.len(), 9);
        assert_eq!(ch.stats().drained, 9);
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = HostChannel::<u32>::new(0, 1, 1, CostCategory::Misc).unwrap_err();
        assert_eq!(err, ChannelError::ZeroCapacity);
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn certain_drop_loses_every_record_with_accounting() {
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(8, 1, 10, CostCategory::Misc).unwrap();
        let cfg = FaultConfig::disabled()
            .with_seed(9)
            .with_rate(FaultSite::ReportDrop, RATE_ONE);
        ch.set_faults(FaultInjector::new(&cfg, "test"));
        for i in 0..20 {
            ch.send(i, &mut clk);
        }
        assert!(ch.drain().is_empty());
        let s = ch.stats();
        assert_eq!((s.sent, s.drained, s.dropped), (20, 0, 20));
        assert_eq!(s.sent, s.drained + s.dropped);
        assert_eq!(ch.fault_stats().get(FaultSite::ReportDrop), 20);
    }

    #[test]
    fn overflow_fault_loses_the_buffered_batch() {
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(4, 1, 10, CostCategory::Misc).unwrap();
        let cfg = FaultConfig::disabled()
            .with_seed(9)
            .with_rate(FaultSite::ChannelOverflow, RATE_ONE);
        ch.set_faults(FaultInjector::new(&cfg, "test"));
        for i in 0..10 {
            ch.send(i, &mut clk);
        }
        // Two forced flushes, both failed: 8 records lost, 2 still pending.
        let s = ch.stats();
        assert_eq!(s.overflow_drops, 2);
        assert_eq!(s.dropped, 8);
        assert_eq!(ch.drain(), vec![8, 9]);
        let s = ch.stats();
        assert_eq!(s.sent, s.drained + s.dropped);
    }

    #[test]
    fn corruption_counts_inside_dropped() {
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(64, 1, 10, CostCategory::Misc).unwrap();
        let cfg = FaultConfig::disabled()
            .with_seed(3)
            .with_rate(FaultSite::ReportCorrupt, RATE_ONE / 2);
        ch.set_faults(FaultInjector::new(&cfg, "test"));
        for i in 0..50 {
            ch.send(i, &mut clk);
        }
        let survivors = ch.drain().len() as u64;
        let s = ch.stats();
        assert!(s.corrupted > 0);
        assert_eq!(s.corrupted, s.dropped);
        assert_eq!(s.sent, survivors + s.dropped);
    }
}
