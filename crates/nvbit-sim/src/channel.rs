//! Device→host communication channel.
//!
//! NVBit tools ship records from injected device code to a host-side
//! consumer through a pinned-memory channel. The *cost structure* of that
//! channel is what separates the two detectors in this reproduction:
//!
//! - **Barracuda** ships *every* memory/synchronization event and performs
//!   detection on the CPU — each record pays a serial (critical-path)
//!   shipping charge, because the host consumer is one thread and the
//!   device-side producers must serialize into the ring buffer. This is the
//!   paper's explanation for Barracuda's 10–1000× overheads (§4).
//! - **iGUARD** ships only *race reports* (a 1 MB buffer drained when full
//!   or at kernel end, §5 "Race reporting"), so channel cost is negligible
//!   unless a program races pathologically.

use gpu_sim::timing::{Clock, CostCategory};

/// Channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Records pushed by device-side code.
    pub sent: u64,
    /// Records consumed by the host side.
    pub drained: u64,
    /// Times the buffer filled and forced a synchronous flush.
    pub full_flushes: u64,
}

/// A bounded device→host record channel with per-record serial cost.
#[derive(Debug)]
pub struct HostChannel<T> {
    buf: Vec<T>,
    capacity: usize,
    ship_cost: u64,
    flush_cost: u64,
    category: CostCategory,
    stats: ChannelStats,
    drained: Vec<T>,
}

impl<T> HostChannel<T> {
    /// A channel holding up to `capacity` records before it must flush.
    ///
    /// `ship_cost` is charged serially per record (ring-buffer slot
    /// reservation is a device-wide atomic); `flush_cost` is charged
    /// serially per forced flush (host round-trip).
    #[must_use]
    pub fn new(capacity: usize, ship_cost: u64, flush_cost: u64, category: CostCategory) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        HostChannel {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            ship_cost,
            flush_cost,
            category,
            stats: ChannelStats::default(),
            drained: Vec::new(),
        }
    }

    /// Ships one record, charging its costs to `clock`.
    pub fn send(&mut self, record: T, clock: &mut Clock) {
        clock.charge_serial(self.category, self.ship_cost);
        self.buf.push(record);
        self.stats.sent += 1;
        if self.buf.len() >= self.capacity {
            self.stats.full_flushes += 1;
            clock.charge_serial(self.category, self.flush_cost);
            self.drain_internal();
        }
    }

    fn drain_internal(&mut self) {
        self.stats.drained += self.buf.len() as u64;
        self.drained.append(&mut self.buf);
    }

    /// Host-side drain (kernel end / program exit): returns everything
    /// shipped so far, in order.
    pub fn drain(&mut self) -> Vec<T> {
        self.drain_internal();
        std::mem::take(&mut self.drained)
    }

    /// Records currently waiting in the device-side buffer.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Channel counters.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_arrive_in_order() {
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(100, 5, 50, CostCategory::Misc);
        for i in 0..10 {
            ch.send(i, &mut clk);
        }
        assert_eq!(ch.drain(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ship_cost_is_serial_per_record() {
        let mut clk = Clock::new();
        clk.set_parallelism(1000.0);
        let mut ch = HostChannel::new(1000, 7, 0, CostCategory::Detection);
        for i in 0..100 {
            ch.send(i, &mut clk);
        }
        // 100 records × 7 cycles, unamortized by parallelism.
        assert!((clk.time(CostCategory::Detection) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn full_buffer_forces_flush() {
        let mut clk = Clock::new();
        let mut ch = HostChannel::new(4, 1, 100, CostCategory::Misc);
        for i in 0..9 {
            ch.send(i, &mut clk);
        }
        assert_eq!(ch.stats().full_flushes, 2);
        assert_eq!(ch.pending(), 1);
        let all = ch.drain();
        assert_eq!(all.len(), 9);
        assert_eq!(ch.stats().drained, 9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = HostChannel::<u32>::new(0, 1, 1, CostCategory::Misc);
    }
}
