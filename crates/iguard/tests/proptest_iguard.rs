//! Property-based tests of the detector's data structures and check logic.

use iguard::bitfield::{wrapping_inc, AccessorInfo, Flags, MetadataEntry};
use iguard::checks::{detailed, preliminary, AccessType, CurrAccess, MdView, Safe};
use iguard::locks::{bloom_bits, lock_hash, LockTable};
use proptest::prelude::*;

fn arb_accessor() -> impl Strategy<Value = AccessorInfo> {
    (
        0u32..1 << 15,
        0u32..32,
        0u8..64,
        0u8..64,
        any::<u8>(),
        0u8..64,
    )
        .prop_map(
            |(warp_id, lane, dev_fence, blk_fence, blk_bar, warp_bar)| AccessorInfo {
                warp_id,
                lane,
                dev_fence,
                blk_fence,
                blk_bar,
                warp_bar,
            },
        )
}

fn arb_flags() -> impl Strategy<Value = Flags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(valid, modified, atomic, scope_block, dev_shared, blk_shared)| Flags {
                valid,
                modified,
                atomic,
                scope_block,
                dev_shared,
                blk_shared,
            },
        )
}

fn arb_entry() -> impl Strategy<Value = MetadataEntry> {
    (
        0u16..1 << 10,
        arb_flags(),
        arb_accessor(),
        arb_accessor(),
        any::<u16>(),
    )
        .prop_map(|(tag, flags, accessor, writer, locks)| MetadataEntry {
            tag,
            flags,
            accessor,
            writer,
            locks,
        })
}

fn arb_access_type() -> impl Strategy<Value = AccessType> {
    prop_oneof![
        Just(AccessType::Load),
        Just(AccessType::Store),
        any::<bool>().prop_map(|scope_block| AccessType::Atomic { scope_block }),
    ]
}

fn arb_curr() -> impl Strategy<Value = CurrAccess> {
    (
        arb_access_type(),
        0u32..1 << 15,
        0u32..32,
        any::<u32>(),
        arb_accessor(),
        any::<u16>(),
    )
        .prop_map(
            |(kind, warp_id, lane, active_mask, snap, locks)| CurrAccess {
                kind,
                warp_id,
                lane,
                block_id: warp_id / 4,
                active_mask,
                snap,
                locks,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Figure 4's packed representation loses no in-range information.
    #[test]
    fn metadata_entry_pack_unpack_round_trips(e in arb_entry()) {
        let (a, w) = e.pack();
        prop_assert_eq!(MetadataEntry::unpack(a, w), e);
    }

    /// Counter wrap stays inside the field width for every width used.
    #[test]
    fn wrapping_inc_stays_in_field(v in any::<u8>(), bits in 1u32..8) {
        let masked = v & ((1u16 << bits) - 1) as u8;
        let next = wrapping_inc(masked, bits);
        prop_assert!(u16::from(next) < (1u16 << bits));
        // And it is a successor modulo 2^bits.
        prop_assert_eq!(u16::from(next), (u16::from(masked) + 1) % (1u16 << bits));
    }

    /// An unmodified location can never race with a load (P2 dominates).
    #[test]
    fn unwritten_locations_never_race_with_loads(
        mut entry in arb_entry(),
        md in arb_accessor(),
        mut curr in arb_curr(),
    ) {
        entry.flags.modified = false;
        curr.kind = AccessType::Load;
        let mdv = MdView { info: md, live_dev_fence: md.dev_fence, live_blk_fence: md.blk_fence };
        prop_assert_eq!(preliminary(&entry, &mdv, &curr, 4), Some(Safe::NoWrite));
    }

    /// A race verdict requires that no preliminary condition held: the two
    /// tiers are evaluated strictly in order, so `detailed` results are
    /// only meaningful (and only used) when `preliminary` is None. Here we
    /// check the core soundness invariant instead: if the previous
    /// accessor is still *converged* with the current thread (same warp,
    /// in-mask), no verdict can be produced by the pipeline — with one
    /// exception. A pair that both hold locks with an empty intersection
    /// is Figure 9's improper-locking bug: convergence is an accident of
    /// the schedule there, and the pipeline must report IL instead.
    #[test]
    fn converged_same_warp_accesses_are_never_racy(
        mut entry in arb_entry(),
        mut curr in arb_curr(),
    ) {
        entry.flags.valid = true;
        entry.flags.dev_shared = false;
        entry.flags.blk_shared = false;
        entry.accessor.warp_id = curr.warp_id;
        entry.writer.warp_id = curr.warp_id;
        // The previous accessor's lane is in the current active mask.
        curr.active_mask |= 1 << entry.accessor.lane;
        curr.active_mask |= 1 << entry.writer.lane;
        let md = if curr.kind.is_write() { entry.accessor } else { entry.writer };
        let mdv = MdView { info: md, live_dev_fence: md.dev_fence, live_blk_fence: md.blk_fence };
        let p = preliminary(&entry, &mdv, &curr, 4);
        let disjointly_locked =
            entry.locks != 0 && curr.locks != 0 && entry.locks & curr.locks == 0;
        if disjointly_locked {
            // R1 (atomic scope) may outrank IL, but the pair must never
            // pass the detailed tier silently on any schedule.
            prop_assert!(
                detailed(&entry, &mdv, &curr, 4).is_some(),
                "disjointly-locked pair must produce a race verdict"
            );
        } else {
            prop_assert!(p.is_some(), "lockstep-converged access must be proven safe");
        }
    }

    /// If md's thread has device-fenced since its access, neither R2, R3
    /// nor R4 can fire — only lockset (R5) remains possible.
    #[test]
    fn a_device_fence_suppresses_all_hb_races(
        mut entry in arb_entry(),
        curr in arb_curr(),
        bump in 1u8..63,
    ) {
        entry.flags.valid = true;
        entry.locks = 0;       // keep R5 out of the picture
        let mut c = curr;
        c.locks = 0;
        entry.flags.atomic = false; // keep R1 out of the picture
        let md = if c.kind.is_write() { entry.accessor } else { entry.writer };
        let mdv = MdView {
            info: md,
            live_dev_fence: (md.dev_fence + bump) & 63,
            live_blk_fence: md.blk_fence,
        };
        prop_assert_eq!(detailed(&entry, &mdv, &c, 4), None);
    }

    /// Lock-table summary is exactly the OR of held locks' Bloom bits, and
    /// acquire/release is idempotent and reversible.
    #[test]
    fn lock_table_summary_matches_held_set(addrs in prop::collection::vec(0u32..1 << 20, 1..4)) {
        let mut t = LockTable::default();
        for &a in &addrs {
            t.on_cas(a * 4, gpu_sim::ir::Scope::Device);
        }
        t.on_fence(gpu_sim::ir::Scope::Device);
        let expected: u16 = addrs
            .iter()
            .map(|&a| bloom_bits(lock_hash(a * 4)))
            .fold(0, |acc, b| acc | b);
        prop_assert_eq!(t.summary(), expected);
        for &a in &addrs {
            t.on_exch(a * 4, gpu_sim::ir::Scope::Device);
        }
        prop_assert_eq!(t.summary(), 0, "all released");
    }

    /// The 18-bit hash and 2-bit Bloom are deterministic and in-range.
    #[test]
    fn lock_hash_and_bloom_are_well_formed(addr in any::<u32>()) {
        let h = lock_hash(addr);
        prop_assert!(h < (1 << 18));
        prop_assert_eq!(h, lock_hash(addr));
        let b = bloom_bits(h);
        prop_assert!(b != 0);
        prop_assert!(b.count_ones() <= 2);
    }
}
