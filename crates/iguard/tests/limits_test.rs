//! Tests of the detector's *documented limitations and design boundaries*
//! (§6.7): the counter wrap-around artifact, scoped lock/unlock races, and
//! behaviour differences between lockstep and ITS execution — a faithful
//! reproduction includes the tool's known blind spots behaving exactly as
//! the paper says they do.

use gpu_sim::prelude::*;
use iguard::{Iguard, IguardConfig, RaceKind};
use nvbit_sim::Instrumented;

fn run(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    words: usize,
    mode: ExecMode,
) -> Instrumented<Iguard> {
    let cfg = GpuConfig {
        seed: 5,
        mode,
        max_steps: 10_000_000,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let buf = gpu.alloc(words).unwrap();
    let mut tool = Instrumented::new(Iguard::new(IguardConfig::default()));
    gpu.launch(kernel, grid, block, &[buf], &mut tool).unwrap();
    tool
}

/// Cross-warp handoff separated by `barriers` consecutive `__syncthreads`.
fn barrier_counted_handoff(barriers: u32) -> Kernel {
    let mut b = KernelBuilder::new("wraparound");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    // Warp 1's leader writes.
    let is32 = b.eq(tid, 32u32);
    let after = b.fwd_label();
    b.bra_ifnot(is32, after);
    let v = b.imm(9);
    b.st(base, 1, v);
    b.bind(after);
    // `barriers` barrier releases in a row (all threads participate).
    let i = b.imm(0);
    let top = b.here();
    let done = b.ge(i, barriers);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    b.syncthreads();
    b.assign_add(i, i, 1u32);
    b.bra(top);
    b.bind(exit_l);
    // Warp 0's leader reads.
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(fin);
    b.build()
}

#[test]
fn barrier_separated_handoff_is_clean_below_the_counter_width() {
    // 255 syncthreads: the 8-bit BlkBarID differs -> P5 proves race-free.
    let mut t = run(&barrier_counted_handoff(255), 1, 64, 4, ExecMode::Its);
    assert_eq!(t.tool_mut().races().len(), 0);
}

#[test]
fn exactly_256_barriers_wrap_the_counter_into_a_false_positive() {
    // §6.7: "a threadblock should issue exactly 256 syncthreads to cause an
    // error in detection". The 8-bit counter wraps to its old value, P5
    // fails, and a (false) intra-block race is reported — the documented
    // trade-off of the compact Figure 4 layout, faithfully reproduced.
    let mut t = run(&barrier_counted_handoff(256), 1, 64, 4, ExecMode::Its);
    let races = t.tool_mut().races();
    assert!(
        races.iter().any(|r| r.kind == RaceKind::IntraBlock),
        "the wrap-around artifact must manifest: {races:?}"
    );
}

/// Leaders of every block take the same lock, but the lock's atomics are
/// *block scoped* — the lock itself races across blocks (§3.1: scoped
/// lock/unlock operations).
fn scoped_lock_kernel() -> Kernel {
    let mut b = KernelBuilder::new("scoped_lock");
    let base = b.param(0); // [lock, data]
    let tid = b.special(Special::Tid);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    b.lock(Scope::Block, base, 0); // insufficient scope across blocks
    let v = b.ld(base, 1);
    let v1 = b.add(v, 1u32);
    b.st(base, 1, v1);
    b.unlock(Scope::Block, base, 0);
    b.bind(fin);
    b.build()
}

#[test]
fn block_scoped_lock_across_blocks_is_a_scoped_atomic_race() {
    let mut t = run(&scoped_lock_kernel(), 4, 32, 8, ExecMode::Its);
    let kinds: Vec<RaceKind> = t.tool_mut().races().iter().map(|r| r.kind).collect();
    assert!(
        kinds.contains(&RaceKind::AtomicScope),
        "the under-scoped lock CAS/Exch must trigger R1: {kinds:?}"
    );
}

/// Lanes 0 and 1 of one warp contend for the same spin lock. Under
/// pre-Volta lockstep this livelocks (the §2.1 motivation for ITS: the
/// waiter's spin and the holder's critical section cannot interleave);
/// under ITS it completes.
fn same_warp_lock_contention() -> Kernel {
    let mut b = KernelBuilder::new("warp_lock_contention");
    let base = b.param(0); // [lock, counter]
    let tid = b.special(Special::Tid);
    let lt2 = b.lt(tid, 2u32);
    let fin = b.fwd_label();
    b.bra_ifnot(lt2, fin);
    b.lock(Scope::Device, base, 0);
    let v = b.ld(base, 1);
    let v1 = b.add(v, 1u32);
    b.st(base, 1, v1);
    b.unlock(Scope::Device, base, 0);
    b.bind(fin);
    b.build()
}

#[test]
fn same_warp_lock_contention_livelocks_under_lockstep() {
    let k = same_warp_lock_contention();
    let cfg = GpuConfig {
        seed: 5,
        mode: ExecMode::Lockstep,
        max_steps: 200_000,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let buf = gpu.alloc(8).unwrap();
    let err = gpu.launch(&k, 1, 32, &[buf], &mut NullHook).unwrap_err();
    assert!(
        matches!(err, SimError::Timeout { .. }),
        "lockstep must livelock on intra-warp lock contention, got {err:?}"
    );
}

#[test]
fn same_warp_lock_contention_completes_under_its() {
    // "Since Volta... ITS avoided such deadlocks" (§2.1).
    let k = same_warp_lock_contention();
    let cfg = GpuConfig {
        seed: 5,
        mode: ExecMode::Its,
        max_steps: 2_000_000,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let buf = gpu.alloc(8).unwrap();
    gpu.launch(&k, 1, 32, &[buf], &mut NullHook)
        .expect("ITS resolves the livelock");
    assert_eq!(gpu.read(buf, 1), 2, "both critical sections executed");
    assert_eq!(gpu.read(buf, 0), 0, "lock released");
}

#[test]
fn correctly_locked_same_warp_contention_is_race_free_under_its() {
    // The same kernel under the detector: the two critical sections share
    // the lock, so no race is reported despite the warp divergence.
    let mut t = run(&same_warp_lock_contention(), 1, 32, 8, ExecMode::Its);
    assert_eq!(t.tool().unique_races(), 0, "{:?}", t.tool_mut().races());
}

#[test]
fn fence_counter_wraps_at_64_can_hide_a_fence() {
    // The 6-bit fence counters wrap at 64: a writer that fences exactly 64
    // times after its store looks like it never fenced — a (spurious) DR
    // report, the mirror-image artifact of the barrier wrap-around.
    fn kernel(fences: u32) -> Kernel {
        let mut b = KernelBuilder::new("fence_wrap");
        let base = b.param(0);
        let bid = b.special(Special::BlockId);
        let tid = b.special(Special::Tid);
        let is_writer = b.eq(bid, 0u32);
        let reader_l = b.fwd_label();
        b.bra_ifnot(is_writer, reader_l);
        let t0 = b.eq(tid, 0u32);
        let wdone = b.fwd_label();
        b.bra_ifnot(t0, wdone);
        let v = b.imm(5);
        b.st(base, 1, v);
        for _ in 0..fences {
            b.membar(Scope::Device);
        }
        let one = b.imm(1);
        let _ = b.atomic_exch(Scope::Device, base, 0, one);
        b.bind(wdone);
        let end = b.fwd_label();
        b.bra(end);
        b.bind(reader_l);
        let t0r = b.eq(tid, 0u32);
        let rdone = b.fwd_label();
        b.bra_ifnot(t0r, rdone);
        let spin = b.here();
        let f = b.ld_volatile(base, 0);
        let unset = b.eq(f, 0u32);
        b.bra_if(unset, spin);
        let _ = b.ld(base, 1);
        b.bind(rdone);
        b.bind(end);
        b.build()
    }
    // One fence: ordered, clean.
    let t = run(&kernel(1), 2, 32, 4, ExecMode::Its);
    assert_eq!(t.tool().unique_races(), 0);
    // Sixty-four fences: the counter returns to its stored value and the
    // release looks absent — a false DR, exactly as §6.7 concedes.
    let mut t = run(&kernel(64), 2, 32, 4, ExecMode::Its);
    let kinds: Vec<RaceKind> = t.tool_mut().races().iter().map(|r| r.kind).collect();
    assert!(kinds.contains(&RaceKind::InterBlock), "got {kinds:?}");
}
