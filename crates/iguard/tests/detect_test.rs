//! End-to-end detection tests: each race class from the paper's examples
//! (Figures 1, 2/8, 3, 9, 10) seeded into a kernel and detected by iGUARD
//! running under instrumentation on the simulated GPU — plus the matching
//! corrected kernels, which must report nothing.

use gpu_sim::prelude::*;
use iguard::{Iguard, IguardConfig, RaceKind};
use nvbit_sim::Instrumented;

fn run(kernel: &Kernel, grid: u32, block: u32, words: usize, seed: u64) -> Instrumented<Iguard> {
    run_with(kernel, grid, block, words, seed, IguardConfig::default())
}

fn run_with(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    words: usize,
    seed: u64,
    cfg: IguardConfig,
) -> Instrumented<Iguard> {
    let gcfg = GpuConfig {
        seed,
        max_steps: 5_000_000,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(gcfg);
    let buf = gpu.alloc(words).unwrap();
    let mut tool = Instrumented::new(Iguard::new(cfg));
    gpu.launch(kernel, grid, block, &[buf], &mut tool).unwrap();
    tool
}

fn kinds(tool: &mut Instrumented<Iguard>) -> Vec<RaceKind> {
    let mut ks: Vec<RaceKind> = tool.tool_mut().races().iter().map(|r| r.kind).collect();
    ks.sort();
    ks.dedup();
    ks
}

// ---- ITS races (Figure 2 / Figure 8) --------------------------------------

fn warp_handoff(with_syncwarp: bool) -> Kernel {
    let mut b = KernelBuilder::new(if with_syncwarp {
        "handoff_ok"
    } else {
        "handoff_racy"
    });
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    let is1 = b.eq(tid, 1u32);
    let after = b.fwd_label();
    b.bra_ifnot(is1, after);
    let v = b.imm(77);
    b.loc("store sdata[tid+1]");
    b.st(base, 1, v);
    b.bind(after);
    if with_syncwarp {
        b.syncwarp();
    }
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    b.loc("load sdata[tid+1]");
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(fin);
    b.build()
}

#[test]
fn its_race_detected_on_missing_syncwarp() {
    let mut t = run(&warp_handoff(false), 1, 32, 4, 3);
    assert!(
        kinds(&mut t).contains(&RaceKind::IntraWarp),
        "Figure 8's ITS race must be caught"
    );
}

#[test]
fn its_race_detected_regardless_of_schedule() {
    // The check is order-insensitive: every seed must catch it.
    for seed in 0..12 {
        let mut t = run(&warp_handoff(false), 1, 32, 4, seed);
        assert!(kinds(&mut t).contains(&RaceKind::IntraWarp), "seed {seed}");
    }
}

#[test]
fn syncwarp_silences_its_race() {
    for seed in 0..12 {
        let t = run(&warp_handoff(true), 1, 32, 4, seed);
        assert_eq!(
            t.tool().unique_races(),
            0,
            "seed {seed}: corrected kernel must be clean"
        );
    }
}

// ---- scoped-atomic races (Figure 1) ----------------------------------------

/// Every block's leader bumps a shared counter; the scope decides safety.
fn scoped_counter(scope: Scope) -> Kernel {
    let name = if scope == Scope::Block {
        "counter_block_scope"
    } else {
        "counter_dev_scope"
    };
    let mut b = KernelBuilder::new(name);
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let one = b.imm(1);
    b.loc("atomicAdd(&nextHead, NTHREADS)");
    let _ = b.atomic_add(scope, base, 0, one);
    b.bind(fin);
    b.build()
}

#[test]
fn underscoped_atomic_race_detected() {
    let mut t = run(&scoped_counter(Scope::Block), 4, 32, 4, 1);
    assert!(
        kinds(&mut t).contains(&RaceKind::AtomicScope),
        "Figure 1's insufficient-scope race must be caught, got {:?}",
        kinds(&mut t)
    );
}

#[test]
fn device_scope_atomics_are_clean() {
    for seed in 0..6 {
        let t = run(&scoped_counter(Scope::Device), 4, 32, 4, seed);
        assert_eq!(t.tool().unique_races(), 0, "seed {seed}");
    }
}

#[test]
fn block_scope_atomic_in_single_block_is_clean() {
    // Narrow scope is fine when all participants share the block.
    let t = run(&scoped_counter(Scope::Block), 1, 64, 4, 1);
    assert_eq!(t.tool().unique_races(), 0);
}

// ---- intra-block races (missing __syncthreads) ------------------------------

fn block_handoff(with_barrier: bool) -> Kernel {
    let mut b = KernelBuilder::new(if with_barrier { "blk_ok" } else { "blk_racy" });
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    // Thread 40 (warp 1) writes; thread 0 (warp 0) reads.
    let is40 = b.eq(tid, 40u32);
    let after = b.fwd_label();
    b.bra_ifnot(is40, after);
    let v = b.imm(5);
    b.st(base, 1, v);
    b.bind(after);
    if with_barrier {
        b.syncthreads();
    }
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let got = b.ld(base, 1);
    b.st(base, 0, got);
    b.bind(fin);
    b.build()
}

#[test]
fn intra_block_race_detected() {
    let mut t = run(&block_handoff(false), 1, 64, 4, 2);
    assert!(
        kinds(&mut t).contains(&RaceKind::IntraBlock),
        "got {:?}",
        kinds(&mut t)
    );
}

#[test]
fn syncthreads_silences_intra_block_race() {
    for seed in 0..8 {
        let t = run(&block_handoff(true), 1, 64, 4, seed);
        assert_eq!(t.tool().unique_races(), 0, "seed {seed}");
    }
}

// ---- inter-block races (Figure 10's missing fence) --------------------------

/// Producer block writes data then sets a flag; consumer block spins and
/// reads. `fenced` controls whether the *producer* device-fences its data
/// write before raising the flag (the Figure 10 bug is the missing fence).
fn grid_handoff(fenced: bool) -> Kernel {
    let mut b = KernelBuilder::new(if fenced { "grid_ok" } else { "grid_racy" });
    let base = b.param(0); // [flag, data, out]
    let bid = b.special(Special::BlockId);
    let is_prod = b.eq(bid, 0u32);
    let consumer = b.fwd_label();
    b.bra_ifnot(is_prod, consumer);
    let v = b.imm(99);
    b.st(base, 1, v);
    if fenced {
        b.membar(Scope::Device);
    }
    let one = b.imm(1);
    // Flag raise via device atomic (always properly synchronized itself).
    let _ = b.atomic_exch(Scope::Device, base, 0, one);
    let endl = b.fwd_label();
    b.bra(endl);
    b.bind(consumer);
    let spin = b.here();
    let f = b.ld_volatile(base, 0);
    let unset = b.eq(f, 0u32);
    b.bra_if(unset, spin);
    let got = b.ld(base, 1);
    b.st(base, 2, got);
    b.bind(endl);
    b.build()
}

#[test]
fn inter_block_race_detected_without_device_fence() {
    let mut t = run(&grid_handoff(false), 2, 1, 4, 4);
    assert!(
        kinds(&mut t).contains(&RaceKind::InterBlock),
        "got {:?}",
        kinds(&mut t)
    );
}

#[test]
fn device_fence_silences_inter_block_race() {
    for seed in 0..8 {
        let mut t = run(&grid_handoff(true), 2, 1, 4, seed);
        let ks = kinds(&mut t);
        assert!(
            !ks.contains(&RaceKind::InterBlock),
            "seed {seed}: got {ks:?}"
        );
    }
}

// ---- lock races (Figure 9) ---------------------------------------------------

/// Per-thread locks protecting per-warp data: the Figure 9 bug (two threads
/// of a warp hold *different* locks while updating the same word).
fn locking_kernel(shared_lock: bool) -> Kernel {
    let mut b = KernelBuilder::new(if shared_lock { "lock_ok" } else { "lock_racy" });
    let tid = b.special(Special::Tid);
    let base = b.param(0); // [lock0, lock1, data, ...]
                           // Only lanes 0 and 1 participate.
    let lt2 = b.lt(tid, 2u32);
    let fin = b.fwd_label();
    b.bra_ifnot(lt2, fin);
    // lockId = shared ? 0 : tid
    let lock_off = if shared_lock {
        b.imm(0)
    } else {
        b.mul(tid, 4u32)
    };
    let lock_addr = b.add(base, lock_off);
    b.lock(Scope::Device, lock_addr, 0);
    // data += tid  (data is word 2)
    let d = b.ld(base, 2);
    let d2 = b.add(d, tid);
    b.loc("data[warpId] += value[threadId]");
    b.st(base, 2, d2);
    b.unlock(Scope::Device, lock_addr, 0);
    b.bind(fin);
    b.build()
}

#[test]
fn per_thread_distinct_locks_race_detected() {
    let mut found = false;
    for seed in 0..16 {
        let mut t = run(&locking_kernel(false), 1, 32, 8, seed);
        if kinds(&mut t).contains(&RaceKind::Locking) {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "Figure 9's improper-locking race must be caught on some schedule"
    );
}

#[test]
fn common_lock_is_clean() {
    for seed in 0..10 {
        let t = run(&locking_kernel(true), 1, 32, 8, seed);
        assert_eq!(t.tool().unique_races(), 0, "seed {seed}");
    }
}

#[test]
fn per_warp_leader_locking_across_blocks_is_clean() {
    // Classic per-warp lock: each block's leader locks, updates, unlocks.
    let mut b = KernelBuilder::new("warp_lock_ok");
    let tid = b.special(Special::Tid);
    let base = b.param(0); // [lock, counter]
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    b.lock(Scope::Device, base, 0);
    let v = b.ld(base, 1);
    let v1 = b.add(v, 1u32);
    b.st(base, 1, v1);
    b.unlock(Scope::Device, base, 0);
    b.bind(fin);
    let k = b.build();
    for seed in 0..6 {
        let mut t = run(&k, 4, 32, 8, seed);
        assert_eq!(
            t.tool().unique_races(),
            0,
            "seed {seed}: got {:?}",
            kinds(&mut t)
        );
    }
}

// ---- misc properties ---------------------------------------------------------

#[test]
fn race_free_tree_reduction_is_clean() {
    // A properly barriered in-global-memory tree reduction.
    let mut b = KernelBuilder::new("tree_reduce");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    let stride = b.imm(32);
    let top = b.here();
    let done = b.eq(stride, 0u32);
    let exit_l = b.fwd_label();
    b.bra_if(done, exit_l);
    let active = b.lt(tid, stride);
    let skip = b.fwd_label();
    b.bra_ifnot(active, skip);
    let off = b.mul(tid, 4u32);
    let a = b.add(base, off);
    let mine = b.ld(a, 0);
    let oidx = b.add(tid, stride);
    let ooff = b.mul(oidx, 4u32);
    let oa = b.add(base, ooff);
    let theirs = b.ld(oa, 0);
    let sum = b.add(mine, theirs);
    b.st(a, 0, sum);
    b.bind(skip);
    b.syncthreads();
    let half = b.shr(stride, 1u32);
    b.mov(stride, half);
    b.bra(top);
    b.bind(exit_l);
    let k = b.build();
    for seed in 0..6 {
        let mut t = run(&k, 1, 64, 64, seed);
        assert_eq!(
            t.tool().unique_races(),
            0,
            "seed {seed}: got {:?}",
            kinds(&mut t)
        );
    }
}

#[test]
fn coalescing_does_not_miss_races() {
    // All 32 lanes load a word another warp wrote without synchronization:
    // with coalescing one lane checks for all — the race must still appear.
    let mut b = KernelBuilder::new("broadcast_racy");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    // Warp 1's lane 0 writes.
    let is32 = b.eq(tid, 32u32);
    let after = b.fwd_label();
    b.bra_ifnot(is32, after);
    let v = b.imm(1);
    b.st(base, 0, v);
    b.bind(after);
    // Warp 0 (all lanes) reads the same word.
    let lt32 = b.lt(tid, 32u32);
    let fin = b.fwd_label();
    b.bra_ifnot(lt32, fin);
    let _ = b.ld(base, 0);
    b.bind(fin);
    let k = b.build();
    let mut with = run(&k, 1, 64, 4, 5);
    let mut without = run_with(
        &k,
        1,
        64,
        4,
        5,
        IguardConfig {
            coalescing: false,
            ..IguardConfig::default()
        },
    );
    let kw = kinds(&mut with);
    let kwo = kinds(&mut without);
    assert!(
        kw.contains(&RaceKind::IntraBlock),
        "coalesced run must catch the race: {kw:?}"
    );
    assert_eq!(
        kw, kwo,
        "§6.5: optimizations must not change detection results"
    );
    assert!(
        with.tool().stats().coalesced_saved > 0,
        "coalescing must actually trigger"
    );
}

#[test]
fn races_survive_watchdog_timeout() {
    // A kernel that races and then livelocks: the timeout kills it, but the
    // collected reports remain available (§5 "Race reporting").
    let mut b = KernelBuilder::new("racy_livelock");
    let tid = b.special(Special::Tid);
    let base = b.param(0);
    let is1 = b.eq(tid, 1u32);
    let after = b.fwd_label();
    b.bra_ifnot(is1, after);
    let v = b.imm(1);
    b.st(base, 1, v);
    b.bind(after);
    let is0 = b.eq(tid, 0u32);
    let fin = b.fwd_label();
    b.bra_ifnot(is0, fin);
    let _ = b.ld(base, 1); // the race
    let spin = b.here();
    b.bra(spin); // livelock
    b.bind(fin);
    let k = b.build();
    let cfg = GpuConfig {
        max_steps: 20_000,
        seed: 1,
        ..GpuConfig::default()
    };
    let mut gpu = Gpu::new(cfg);
    let buf = gpu.alloc(4).unwrap();
    let mut tool = Instrumented::new(Iguard::default());
    let err = gpu.launch(&k, 1, 32, &[buf], &mut tool).unwrap_err();
    assert!(matches!(err, SimError::Timeout { .. }));
    assert!(
        tool.tool().unique_races() > 0,
        "races must be reported despite the timeout"
    );
}

#[test]
fn no_false_positives_across_kernel_launches() {
    // Kernel 1 writes a[i] per thread; kernel 2 reads a[i] from *different*
    // threads. The inter-kernel implicit barrier orders them: no race.
    let mut w = KernelBuilder::new("writer_k");
    let tid = w.special(Special::GlobalTid);
    let base = w.param(0);
    let off = w.mul(tid, 4u32);
    let addr = w.add(base, off);
    w.st(addr, 0, tid);
    let writer = w.build();

    let mut r = KernelBuilder::new("reader_k");
    let tid = r.special(Special::GlobalTid);
    let n = r.special(Special::BlockDim);
    let base = r.param(0);
    // read a[(tid+1) % n] — guaranteed cross-thread.
    let t1 = r.add(tid, 1u32);
    let idx = r.rem(t1, n);
    let off = r.mul(idx, 4u32);
    let addr = r.add(base, off);
    let _ = r.ld(addr, 0);
    let reader = r.build();

    let mut gpu = Gpu::new(GpuConfig::default());
    let buf = gpu.alloc(64).unwrap();
    let mut tool = Instrumented::new(Iguard::default());
    gpu.launch(&writer, 1, 64, &[buf], &mut tool).unwrap();
    gpu.launch(&reader, 1, 64, &[buf], &mut tool).unwrap();
    assert_eq!(
        tool.tool().unique_races(),
        0,
        "kernel boundary is a global barrier"
    );
}

#[test]
fn detection_is_deterministic_given_a_schedule() {
    let k = warp_handoff(false);
    let mut a = run(&k, 1, 32, 4, 9);
    let mut b2 = run(&k, 1, 32, 4, 9);
    let ra: Vec<String> = a
        .tool_mut()
        .races()
        .iter()
        .map(ToString::to_string)
        .collect();
    let rb: Vec<String> = b2
        .tool_mut()
        .races()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(ra, rb);
}

#[test]
fn race_report_carries_debug_line_info() {
    let mut t = run(&warp_handoff(false), 1, 32, 4, 3);
    let races = t.tool_mut().races();
    let its = races
        .iter()
        .find(|r| r.kind == RaceKind::IntraWarp)
        .expect("ITS race");
    assert!(
        its.line.is_some(),
        "builder .loc() annotations must surface in reports"
    );
}

#[test]
fn history_ablation_finds_no_additional_races() {
    // §6.7: tracking 2/4/8 accessors instead of 1 found no new races.
    for depth in [1usize, 2, 4, 8] {
        let cfg = IguardConfig::with_history(depth);
        let t = run_with(&warp_handoff(false), 1, 32, 4, 3, cfg);
        assert_eq!(t.tool().unique_races(), 1, "depth {depth}");
    }
}
